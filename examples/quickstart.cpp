/**
 * @file
 * Quickstart: simulate one ML workload on an NPU generation and
 * compare the power-gating designs.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/table.h"
#include "sim/report.h"

int
main()
{
    using namespace regate;
    using sim::Policy;

    // 1. Pick a workload and a chip generation. The registry covers
    //    the paper's whole Table 1 suite.
    auto workload = models::Workload::Decode70B;
    auto gen = arch::NpuGeneration::D;

    // 2. Simulate. This builds the per-chip operator graph, runs the
    //    compiler (fusion + tiling), executes the tile-level
    //    simulator, and evaluates all five designs on the same run.
    auto report = sim::simulateWorkload(workload, gen);

    std::cout << "Workload: " << models::workloadName(workload)
              << " on " << report.config().name << " ("
              << report.setup.chips << " chips, batch "
              << report.setup.batch << ", "
              << report.setup.par.toString() << ")\n"
              << "Runtime: "
              << TablePrinter::fmt(report.run().seconds * 1e3, 2)
              << " ms for " << TablePrinter::eng(report.units, 0)
              << " tokens\n\n";

    // 3. Compare the designs.
    TablePrinter t({"Design", "Energy/token (mJ)", "Saving",
                    "Avg power (W)", "Perf overhead"});
    for (auto p : sim::allPolicies()) {
        t.addRow({sim::policyName(p),
                  TablePrinter::fmt(
                      report.energyPerUnit(p) * 1e3, 2),
                  TablePrinter::pct(report.run().savingVsNoPg(p), 1),
                  TablePrinter::fmt(report.run().result(p).avgPowerW, 0),
                  TablePrinter::pct(report.run().result(p).perfOverhead,
                                    2)});
    }
    t.print(std::cout);

    // 4. Inspect where the time goes.
    std::cout << "\nComponent temporal utilization: ";
    for (auto c : arch::kAllComponents) {
        if (c == arch::Component::Other)
            continue;
        std::cout << arch::componentName(c) << "="
                  << TablePrinter::pct(report.run().temporalUtil(c), 0)
                  << " ";
    }
    std::cout << "\nSA spatial utilization: "
              << TablePrinter::pct(report.run().saSpatialUtil(), 0)
              << "\n";
    return 0;
}
