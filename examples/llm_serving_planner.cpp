/**
 * @file
 * LLM serving planner: for a Llama deployment, search the
 * SLO-compliant pod configurations on every NPU generation and
 * report the energy per token with and without ReGate — the workflow
 * an infra team would run before picking hardware for an inference
 * fleet.
 */

#include <iostream>

#include "common/table.h"
#include "sim/slo.h"

int
main()
{
    using namespace regate;
    using sim::Policy;

    std::cout << "LLM serving planner: Llama3-70B, prefill + decode\n"
              << "SLO: 5x the NPU-D default-config latency (paper "
                 "§3)\n\n";

    for (auto workload : {models::Workload::Prefill70B,
                          models::Workload::Decode70B}) {
        std::cout << "== " << models::workloadName(workload)
                  << " ==\n";
        TablePrinter t({"Gen", "Chips", "Batch", "SLO", "mJ/token "
                        "(NoPG)", "mJ/token (ReGate)", "Saving"});
        for (auto gen : arch::allGenerations()) {
            auto res = sim::findBestSetup(workload, gen);
            double nopg = res.report.energyPerUnit(Policy::NoPG);
            double full = res.report.energyPerUnit(Policy::Full);
            t.addRow({arch::generationName(gen),
                      std::to_string(res.setup.chips),
                      std::to_string(res.setup.batch),
                      TablePrinter::fmt(res.sloRatio, 0) + "x",
                      TablePrinter::fmt(nopg * 1e3, 2),
                      TablePrinter::fmt(full * 1e3, 2),
                      TablePrinter::pct(1.0 - full / nopg, 1)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Reading: decode fleets benefit most from ReGate "
                 "(memory-bound, SA/SRAM idle); prefill fleets are "
                 "compute-bound and save less.\n";
    return 0;
}
