/**
 * @file
 * Kernel-level power gating with the setpm ISA: hand-write a VLIW
 * kernel (the paper's Fig. 15), let the compiler instrument a larger
 * one automatically, and drive the segment-gated SRAM scratchpad —
 * the full §4.2/§4.3 software stack at instruction granularity.
 */

#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "compiler/compiler.h"
#include "isa/vliw_core.h"
#include "mem/sram.h"

int
main()
{
    using namespace regate;
    using core::PowerMode;
    using isa::FuType;

    // --- 1. Hand-written setpm, exactly like the paper's Fig. 15 ---
    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    cfg.vuWakeDelay = 2;

    isa::Program manual;
    manual.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    manual.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                          PowerMode::Off);
    manual.bundle().saPop(0).saPop(1).nop(6);
    manual.bundle().setpm(0b11, FuType::Vu, PowerMode::On);
    manual.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    manual.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                          PowerMode::Off);

    isa::VliwCore core(cfg);
    core.run(manual);
    std::cout << "Hand-written Fig. 15 kernel: " << core.totalCycles()
              << " cycles, VU0 gated "
              << core.vuTrace(0).gatedCycles() << " cycles, stalls "
              << core.wakeStallCycles() << "\n";
    for (const auto &b : manual.bundles()) {
        if (b.misc.has_value())
            std::cout << "  " << b.misc->toString() << " (encoded 0x"
                      << std::hex << isa::encodeSetpm(*b.misc)
                      << std::dec << ")\n";
    }

    // --- 2. Compiler-instrumented kernel (§4.3) ---
    compiler::KernelSpec spec;
    spec.tiles = 32;
    spec.popCycles = 200;
    spec.vuOpsPerTile = 4;
    auto compiled = compiler::compileKernel(spec, cfg, {});
    isa::VliwCore gated(cfg);
    gated.run(compiled.program);
    std::cout << "\nCompiler-instrumented kernel: "
              << compiled.instrumentation.gatedIntervals
              << " gated intervals, "
              << compiled.instrumentation.setpmInserted
              << " setpm, VU0 gated "
              << gated.vuTrace(0).gatedCycles() << " / "
              << gated.totalCycles() << " cycles, stalls "
              << gated.wakeStallCycles() << "\n";

    // --- 3. SRAM capacity gating with setpm-sram semantics ---
    arch::GatingParams params;
    mem::SramScratchpad pad(units::MiB(128), units::KiB(4), params);
    // Operator needs 24 MB: shrink the rest to OFF (compiler knows
    // the allocation map, so no live data is lost).
    pad.setRange(units::MiB(24), units::MiB(128), PowerMode::Off, 0);
    std::cout << "\nSRAM after setpm %24MB,%128MB,sram,off: "
              << pad.countInState(mem::SegmentState::On)
              << " segments on, "
              << pad.countInState(mem::SegmentState::Off)
              << " off; leakage at "
              << TablePrinter::pct(pad.leakageFraction(params), 1)
              << " of all-on\n";

    // Touching a gated segment wakes it (10-cycle stall) and the
    // model flags the data loss -- the §4.1 safety property.
    pad.write(units::MiB(30), units::KiB(4), 100);
    std::cout << "Write into gated region: "
              << pad.stats().wakeEvents << " wake, "
              << pad.stats().wakeStallCycles << " stall cycles, "
              << pad.stats().dataLossReads << " unsafe reads\n";
    return 0;
}
