/**
 * @file
 * NPU design-space exploration: build hypothetical chip
 * configurations (bigger arrays, more SRAM, faster HBM) and measure
 * how much of their static power ReGate recovers on a mixed workload
 * — the §6.5 "future NPU generations" argument as a what-if tool.
 */

#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "compiler/compiler.h"
#include "energy/power_model.h"
#include "models/workload.h"
#include "sim/engine.h"

int
main()
{
    using namespace regate;
    using sim::Policy;
    using namespace regate::units;

    // Start from NPU-D and grow the units the way NPU-E does.
    std::vector<arch::NpuConfig> designs;
    designs.push_back(arch::npuConfig(arch::NpuGeneration::D));

    arch::NpuConfig wide = designs[0];
    wide.name = "NPU-D+wideSA";
    wide.saWidth = 256;
    wide.numSa = 4;  // Same peak MACs, fewer/larger arrays.
    designs.push_back(wide);

    arch::NpuConfig fat = designs[0];
    fat.name = "NPU-D+2xSRAM";
    fat.sramBytes = MiB(256);
    designs.push_back(fat);

    arch::NpuConfig future = arch::npuConfig(arch::NpuGeneration::E);
    designs.push_back(future);

    auto workload = models::Workload::Decode405B;
    auto setup = models::table4Setup(workload);

    std::cout << "Design explorer: "
              << models::workloadName(workload) << ", "
              << setup.chips << " chips\n\n";

    TablePrinter t({"Design", "Static (W)", "SA spatial util",
                    "Saving (Full)", "J/run/chip (Full)"});
    for (const auto &cfg : designs) {
        cfg.validate();
        auto graph = models::buildGraph(workload, setup);
        auto compiled = compiler::compileGraph(graph, cfg);
        sim::Engine engine(cfg);
        auto run = engine.run(compiled.graph, setup.chips);
        energy::PowerModel power(cfg);

        t.addRow({cfg.name,
                  TablePrinter::fmt(power.totalStaticPower(), 0),
                  TablePrinter::pct(run.saSpatialUtil(), 1),
                  TablePrinter::pct(run.savingVsNoPg(Policy::Full),
                                    1),
                  TablePrinter::fmt(
                      run.result(Policy::Full).energy.busyTotal(),
                      1)});
    }
    t.print(std::cout);

    std::cout << "\nReading: larger units leak more and are harder "
                 "to fill, so the fraction of energy ReGate recovers "
                 "grows with each 'future' design -- the paper's "
                 "§6.5 conclusion.\n";
    return 0;
}
