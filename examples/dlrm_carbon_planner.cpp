/**
 * @file
 * Carbon planner for a DLRM recommendation fleet: operational carbon
 * per million requests, the reduction from ReGate, and the optimal
 * hardware-refresh cadence with and without power gating (the §6.6
 * analysis as a tool).
 */

#include <iostream>

#include "carbon/lifespan.h"
#include "common/table.h"

int
main()
{
    using namespace regate;
    using sim::Policy;

    auto workload = models::Workload::DlrmL;
    auto rep = sim::simulateWorkload(workload, arch::NpuGeneration::D);
    carbon::CarbonParams params;

    std::cout << "DLRM-L fleet: " << rep.setup.chips
              << " NPU-D chips, batch " << rep.setup.batch << "\n\n";

    TablePrinter t({"Design", "mgCO2e per M requests",
                    "Carbon reduction", "Idle power/chip (W)"});
    for (auto p : {Policy::NoPG, Policy::Base, Policy::Full,
                   Policy::Ideal}) {
        t.addRow({sim::policyName(p),
                  TablePrinter::eng(
                      carbon::operationalCarbonPerUnit(rep, p,
                                                       params) *
                          1e12,
                      3),
                  TablePrinter::pct(
                      carbon::operationalCarbonReduction(rep, p,
                                                         params),
                      1),
                  TablePrinter::fmt(rep.idlePowerW(p), 0)});
    }
    t.print(std::cout);

    double factor = carbon::annualEfficiencyFactor(workload);
    auto nopg = carbon::analyzeLifespan(rep, Policy::NoPG, factor, 10,
                                        params);
    auto full = carbon::analyzeLifespan(rep, Policy::Full, factor, 10,
                                        params);

    std::cout << "\nHardware refresh planning (annual efficiency "
                 "factor "
              << TablePrinter::fmt(factor, 3) << "):\n"
              << "  Optimal lifespan without gating: "
              << nopg.optimalYears << " years\n"
              << "  Optimal lifespan with ReGate:    "
              << full.optimalYears << " years\n"
              << "ReGate shrinks the operational term, so chips stay "
                 "carbon-efficient longer before an upgrade pays "
                 "off.\n";
    return 0;
}
