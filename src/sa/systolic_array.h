/**
 * @file
 * Cycle-accurate weight-stationary systolic array with PE-granularity
 * power gating (§4.1, Figs. 11-13).
 *
 * Dataflow: weights are preloaded (one PE per [k][n]); activations
 * stream in from the left with one cycle of skew per row; partial sums
 * flow downward and exit at the bottom of each column.
 *
 * Power gating follows the paper's mechanism exactly:
 *  - row_on/col_on come from zero-weight detection plus prefix-OR
 *    (sa_gating.h); gated rows/columns are fully OFF.
 *  - within powered rows/columns a PE idles in W_on mode (only the
 *    weight register powered) until the PE_on signal, which
 *    propagates diagonally one hop per cycle alongside the data,
 *    wakes it one cycle before its first operand arrives (Fig. 13).
 *
 * The simulator checks that gating never corrupts results: a PE that
 * is not ON cannot compute, so any timing bug shows up as a wrong
 * matmul in the tests rather than as silently optimistic energy.
 */

#ifndef REGATE_SA_SYSTOLIC_ARRAY_H
#define REGATE_SA_SYSTOLIC_ARRAY_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "sa/sa_gating.h"

namespace regate {
namespace sa {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(int rows, int cols, double fill = 0.0);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    double &at(int r, int c) { return data_[index(r, c)]; }
    double at(int r, int c) const { return data_[index(r, c)]; }

  private:
    std::size_t index(int r, int c) const;

    int rows_ = 0;
    int cols_ = 0;
    std::vector<double> data_;
};

/** Reference matmul for validation: [M,K] x [K,N] -> [M,N]. */
Matrix matmulReference(const Matrix &x, const Matrix &w);

/** Per-run statistics of the PE grid. */
struct SaRunStats
{
    Cycles computeCycles = 0;   ///< Cycles of the streaming phase.
    Cycles weightLoadCycles = 0;///< Cycles spent loading weights.

    /** PE-cycles by power state during the compute phase. */
    std::uint64_t peOnCycles = 0;
    std::uint64_t peWOnCycles = 0;
    std::uint64_t peOffCycles = 0;

    std::uint64_t macs = 0;     ///< MACs actually performed.

    /** Rows/columns left powered by the zero-weight logic. */
    int rowsOn = 0;
    int colsOn = 0;

    /** Achieved / peak FLOPs during the run (Fig. 5 metric). */
    double spatialUtilization() const;

    /** Total PE-cycles (width^2 x computeCycles). */
    std::uint64_t totalPeCycles() const;
};

/** Cycle-accurate systolic array. */
class SystolicArray
{
  public:
    /**
     * @param width          Array is width x width PEs.
     * @param gating_enabled PE-level power gating (ReGate-HW); when
     *                       false every PE is ON for the whole run
     *                       (baseline / ReGate-Base behaviour).
     */
    SystolicArray(int width, bool gating_enabled);

    /**
     * Load a [K, N] weight tile (K <= width rows, N <= width cols).
     * The tile is padded to the top-left-origin placement the gating
     * logic expects: K pads toward the top, N toward the right.
     * Takes K cycles (one row pushed per cycle).
     */
    void loadWeights(const Matrix &w);

    /**
     * Stream a [M, K] activation tile through the array and return
     * the [M, N] result. Also accumulates SaRunStats.
     */
    Matrix run(const Matrix &x);

    const SaRunStats &stats() const { return stats_; }

    int width() const { return width_; }
    bool gatingEnabled() const { return gating_; }

    /** row_on/col_on bitmaps from the last loadWeights. */
    const Bitmap &rowOn() const { return rowOn_; }
    const Bitmap &colOn() const { return colOn_; }

  private:
    struct Token
    {
        double value = 0.0;
        int m = -1;          ///< Output-row tag; -1 = invalid.
        bool valid() const { return m >= 0; }
    };

    int width_;
    bool gating_;
    int loadedK_ = 0;        ///< Weight rows loaded (actual K).
    int loadedN_ = 0;        ///< Weight cols loaded (actual N).
    int firstActiveRow_ = 0; ///< width - K (top padding).

    std::vector<double> weights_;     ///< width x width.
    Bitmap rowOn_;
    Bitmap colOn_;
    SaRunStats stats_;
};

}  // namespace sa
}  // namespace regate

#endif  // REGATE_SA_SYSTOLIC_ARRAY_H
