#include "sa/systolic_array.h"

#include "common/error.h"

namespace regate {
namespace sa {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, fill)
{
    REGATE_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension");
}

std::size_t
Matrix::index(int r, int c) const
{
    REGATE_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "matrix index (", r, ",", c, ") out of ", rows_, "x",
                  cols_);
    return static_cast<std::size_t>(r) * cols_ + c;
}

Matrix
matmulReference(const Matrix &x, const Matrix &w)
{
    REGATE_CHECK(x.cols() == w.rows(), "matmul shape mismatch: ",
                 x.cols(), " vs ", w.rows());
    Matrix out(x.rows(), w.cols());
    for (int m = 0; m < x.rows(); ++m) {
        for (int n = 0; n < w.cols(); ++n) {
            double acc = 0.0;
            for (int k = 0; k < x.cols(); ++k)
                acc += x.at(m, k) * w.at(k, n);
            out.at(m, n) = acc;
        }
    }
    return out;
}

double
SaRunStats::spatialUtilization() const
{
    auto total = totalPeCycles();
    return total > 0 ?
        static_cast<double>(macs) / static_cast<double>(total) : 0.0;
}

std::uint64_t
SaRunStats::totalPeCycles() const
{
    return peOnCycles + peWOnCycles + peOffCycles;
}

SystolicArray::SystolicArray(int width, bool gating_enabled)
    : width_(width), gating_(gating_enabled),
      weights_(static_cast<std::size_t>(width) * width, 0.0),
      rowOn_(width, true), colOn_(width, true)
{
    REGATE_CHECK(width > 0, "SA width must be positive");
}

void
SystolicArray::loadWeights(const Matrix &w)
{
    REGATE_CHECK(w.rows() >= 1 && w.rows() <= width_,
                 "weight tile K=", w.rows(), " exceeds SA width ", width_);
    REGATE_CHECK(w.cols() >= 1 && w.cols() <= width_,
                 "weight tile N=", w.cols(), " exceeds SA width ", width_);

    loadedK_ = w.rows();
    loadedN_ = w.cols();
    firstActiveRow_ = width_ - loadedK_;

    // Physical placement: K pads toward the top (weights occupy the
    // bottom K rows so partial sums exit the array directly), N pads
    // toward the right (inputs stop propagating past column N-1).
    std::fill(weights_.begin(), weights_.end(), 0.0);
    ZeroWeightDetector detector(width_);
    std::vector<double> padded(width_, 0.0);
    for (int r = 0; r < firstActiveRow_; ++r)
        detector.pushRow(padded);
    for (int k = 0; k < loadedK_; ++k) {
        std::fill(padded.begin(), padded.end(), 0.0);
        for (int n = 0; n < loadedN_; ++n)
            padded[n] = w.at(k, n);
        detector.pushRow(padded);
        for (int n = 0; n < width_; ++n)
            weights_[static_cast<std::size_t>(firstActiveRow_ + k) *
                     width_ + n] = padded[n];
    }

    if (gating_) {
        rowOn_ = rowOnFromNonZero(detector.rowNonZero());
        colOn_ = colOnFromNonZero(detector.colNonZero());
    } else {
        rowOn_.assign(width_, true);
        colOn_.assign(width_, true);
    }
    stats_.weightLoadCycles += static_cast<Cycles>(loadedK_);
    stats_.rowsOn = popcount(rowOn_);
    stats_.colsOn = popcount(colOn_);
}

Matrix
SystolicArray::run(const Matrix &x)
{
    REGATE_CHECK(loadedK_ > 0, "run() before loadWeights()");
    REGATE_CHECK(x.cols() == loadedK_, "activation tile has K=", x.cols(),
                 " but weights have K=", loadedK_);
    const int m_dim = x.rows();
    const int r0 = firstActiveRow_;
    REGATE_CHECK(m_dim > 0, "empty activation tile");

    const std::size_t w2 = static_cast<std::size_t>(width_) * width_;
    std::vector<Token> xreg(w2), psreg(w2), xprev(w2), psprev(w2);
    std::vector<char> sig(w2, 0), sig_prev(w2, 0);
    auto idx = [this](int r, int c) {
        return static_cast<std::size_t>(r) * width_ + c;
    };

    // Feeder: activation row m for weight row k enters physical row
    // r = r0 + k at cycle k + m + 1 (one cycle of skew per *active*
    // row, plus one cycle in the staging queue while the PE_on signal
    // wakes the first PE -- the paper's Fig. 13 queue behaviour).
    auto feeder = [&](int r, Cycles t) -> Token {
        int k = r - r0;
        if (k < 0)
            return Token{};
        auto m = static_cast<std::int64_t>(t) - k - 1;
        if (m < 0 || m >= m_dim)
            return Token{};
        return Token{x.at(static_cast<int>(m), k), static_cast<int>(m)};
    };

    Matrix out(m_dim, loadedN_);
    std::vector<char> collected(
        static_cast<std::size_t>(m_dim) * loadedN_, 0);
    std::size_t n_collected = 0;
    const std::size_t n_expected = collected.size();

    // Columns gated off by the zero-weight logic produce no tokens;
    // their outputs are zero by construction.
    for (int c = 0; c < loadedN_; ++c) {
        if (!colOn_[c]) {
            for (int m = 0; m < m_dim; ++m) {
                collected[static_cast<std::size_t>(m) * loadedN_ + c] =
                    1;
                ++n_collected;
            }
        }
    }

    const Cycles bound =
        static_cast<Cycles>(m_dim) + 2 * width_ + 8;
    Cycles t = 0;
    for (; t < bound && n_collected < n_expected; ++t) {
        // PE_on signal propagation (combinational on previous state).
        for (int r = 0; r < width_; ++r) {
            for (int c = 0; c < width_; ++c) {
                bool s;
                if (!gating_) {
                    s = true;
                } else if (!rowOn_[r] || !colOn_[c]) {
                    s = false;
                } else if (c == 0) {
                    s = feeder(r, t + 1).valid();
                } else {
                    bool from_left = sig_prev[idx(r, c - 1)];
                    bool from_top = r > 0 && sig_prev[idx(r - 1, c)];
                    s = from_left || from_top;
                }
                sig[idx(r, c)] = s ? 1 : 0;
            }
        }

        xprev = xreg;
        psprev = psreg;

        for (int r = 0; r < width_; ++r) {
            for (int c = 0; c < width_; ++c) {
                // A PE is ON this cycle iff its wake signal was high
                // on the previous cycle (1-cycle wake-up, Table 3).
                bool on = !gating_ || (t > 0 && sig_prev[idx(r, c)]);

                if (gating_ && (!rowOn_[r] || !colOn_[c])) {
                    ++stats_.peOffCycles;
                    xreg[idx(r, c)] = Token{};
                    psreg[idx(r, c)] = Token{};
                    continue;
                }
                if (on)
                    ++stats_.peOnCycles;
                else
                    ++stats_.peWOnCycles;

                Token xin =
                    c == 0 ? feeder(r, t) : xprev[idx(r, c - 1)];
                if (!on || !xin.valid()) {
                    REGATE_ASSERT(!xin.valid() || !gating_ || on,
                                  "PE_on propagation dropped a token at (",
                                  r, ",", c, ") cycle ", t);
                    xreg[idx(r, c)] = Token{};
                    psreg[idx(r, c)] = Token{};
                    continue;
                }

                Token psin;
                if (r > r0) {
                    psin = psprev[idx(r - 1, c)];
                    REGATE_ASSERT(!psin.valid() || psin.m == xin.m,
                                  "partial-sum misalignment at (", r, ",",
                                  c, ") cycle ", t);
                }
                double acc = psin.valid() ? psin.value : 0.0;
                psreg[idx(r, c)] =
                    Token{acc + weights_[idx(r, c)] * xin.value, xin.m};
                xreg[idx(r, c)] = xin;
                ++stats_.macs;
            }
        }
        sig_prev = sig;

        // Outputs exit below the bottom row of each active column.
        for (int c = 0; c < loadedN_; ++c) {
            const Token &tok = psreg[idx(width_ - 1, c)];
            if (!tok.valid())
                continue;
            auto &seen = collected[static_cast<std::size_t>(tok.m) *
                                   loadedN_ + c];
            if (!seen) {
                out.at(tok.m, c) = tok.value;
                seen = 1;
                ++n_collected;
            }
        }
    }

    REGATE_ASSERT(n_collected == n_expected,
                  "systolic run did not drain: ", n_collected, " of ",
                  n_expected, " outputs after ", t, " cycles");
    stats_.computeCycles += t;
    return out;
}

}  // namespace sa
}  // namespace regate
