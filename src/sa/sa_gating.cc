#include "sa/sa_gating.h"

#include "common/error.h"

namespace regate {
namespace sa {

ZeroWeightDetector::ZeroWeightDetector(int width)
    : width_(width), rowNz_(width, false), colNz_(width, false)
{
    REGATE_CHECK(width > 0, "SA width must be positive");
}

void
ZeroWeightDetector::pushRow(const std::vector<double> &row)
{
    REGATE_CHECK(static_cast<int>(row.size()) == width_,
                 "weight row has ", row.size(), " entries, SA width is ",
                 width_);
    REGATE_CHECK(rowsPushed_ < width_, "more weight rows than SA rows");
    bool any = false;
    for (int j = 0; j < width_; ++j) {
        if (row[j] != 0.0) {
            any = true;
            colNz_[j] = true;
        }
    }
    rowNz_[rowsPushed_] = any;
    ++rowsPushed_;
}

Bitmap
rowOnFromNonZero(const Bitmap &row_nz)
{
    Bitmap on(row_nz.size(), false);
    bool seen = false;
    for (std::size_t i = 0; i < row_nz.size(); ++i) {
        seen = seen || row_nz[i];
        on[i] = seen;
    }
    return on;
}

Bitmap
colOnFromNonZero(const Bitmap &col_nz)
{
    Bitmap on(col_nz.size(), false);
    bool seen = false;
    for (std::size_t j = col_nz.size(); j-- > 0;) {
        seen = seen || col_nz[j];
        on[j] = seen;
    }
    return on;
}

int
popcount(const Bitmap &bm)
{
    int n = 0;
    for (bool b : bm)
        n += b ? 1 : 0;
    return n;
}

}  // namespace sa
}  // namespace regate
