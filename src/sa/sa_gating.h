/**
 * @file
 * Row/column-wise SA power-gating control logic (§4.1, Fig. 12).
 *
 * As weight values are pushed into the array row by row, non-zero
 * detection builds the row/column non-zero bitmaps. A prefix-OR then
 * derives which rows/columns must stay powered:
 *
 *  - a row may be OFF only if it and every row above it are all-zero
 *    (rows pass partial sums downward, so anything below a non-zero
 *    row must stay on). The compiler pads short K at the *top*.
 *  - a column may be OFF only if it and every column to its right are
 *    all-zero (columns pass input activations rightward). The compiler
 *    pads short N at the *right*.
 *
 * Paper example: col_nz = 0100 (column 1 non-zero) -> col_on = 1100
 * (column 0 stays on to pass data to column 1).
 */

#ifndef REGATE_SA_SA_GATING_H
#define REGATE_SA_SA_GATING_H

#include <vector>

namespace regate {
namespace sa {

/** Bitmap of rows/columns; index 0 is the top row / leftmost column. */
using Bitmap = std::vector<bool>;

/**
 * Streaming non-zero detector fed one weight row per cycle, building
 * the row and column non-zero bitmaps (Fig. 12 hardware).
 */
class ZeroWeightDetector
{
  public:
    explicit ZeroWeightDetector(int width);

    /** Push one weight row (length == width). */
    void pushRow(const std::vector<double> &row);

    /** Rows pushed so far. */
    int rowsPushed() const { return rowsPushed_; }

    /** Row non-zero bitmap (rows not yet pushed read as zero). */
    const Bitmap &rowNonZero() const { return rowNz_; }

    /** Column non-zero bitmap. */
    const Bitmap &colNonZero() const { return colNz_; }

  private:
    int width_;
    int rowsPushed_ = 0;
    Bitmap rowNz_;
    Bitmap colNz_;
};

/**
 * row_on from row_nz: prefix-OR from the top (row i on iff any row
 * 0..i is non-zero).
 */
Bitmap rowOnFromNonZero(const Bitmap &row_nz);

/**
 * col_on from col_nz: suffix-OR from the right (column j on iff any
 * column j.. is non-zero).
 */
Bitmap colOnFromNonZero(const Bitmap &col_nz);

/** Number of set bits. */
int popcount(const Bitmap &bm);

}  // namespace sa
}  // namespace regate

#endif  // REGATE_SA_SA_GATING_H
