/**
 * @file
 * Closed-form model of the power-gated systolic array.
 *
 * The cycle-accurate simulator (systolic_array.h) is exact but O(W^2)
 * per cycle; whole-workload simulation needs the same numbers in O(1)
 * per tile. The formulas here are validated against the cycle-accurate
 * simulator by property tests over randomized shapes.
 *
 * For a [M, K] x [K, N] tile on a W x W weight-stationary array with
 * diagonal PE_on propagation:
 *   - compute cycles:  M + K + N - 1
 *   - ON PE-cycles:    M * K * N   (each active PE is ON for exactly
 *                                   the M cycles its operands pass by)
 *   - W_on PE-cycles:  K * N * (T - M)
 *   - OFF PE-cycles:   (W^2 - K * N) * T
 */

#ifndef REGATE_SA_SA_ANALYTICAL_H
#define REGATE_SA_SA_ANALYTICAL_H

#include <cstdint>

#include "common/units.h"

namespace regate {
namespace sa {

/** Closed-form per-tile numbers. */
struct SaTileStats
{
    Cycles computeCycles = 0;
    Cycles weightLoadCycles = 0;
    std::uint64_t peOnCycles = 0;
    std::uint64_t peWOnCycles = 0;
    std::uint64_t peOffCycles = 0;
    std::uint64_t macs = 0;

    double spatialUtilization() const;

    /** Total PE-cycles across all power states. */
    std::uint64_t
    totalPeCycles() const
    {
        return peOnCycles + peWOnCycles + peOffCycles;
    }

    SaTileStats &operator+=(const SaTileStats &o);

    /** Multiply all counters by @p n (n identical tiles). */
    SaTileStats scaled(std::uint64_t n) const;
};

/**
 * Stats for one [m, k] x [k, n] tile on a width x width array.
 * Requires 1 <= k, n <= width and m >= 1.
 */
SaTileStats analyzeTile(std::int64_t m, int k, int n, int width);

/**
 * Stats for a full [M, K] x [K, N] matmul tiled onto a width x width
 * array: ceil(K/W) x ceil(N/W) weight tiles, edge tiles taking the
 * remainder dimensions; the whole M dimension streams through each
 * weight tile. Weight loads of subsequent tiles overlap with compute
 * (double-buffered weights), so only the first tile's load is
 * serialized.
 */
SaTileStats analyzeMatmul(std::int64_t m, std::int64_t k, std::int64_t n,
                          int width);

/**
 * Static energy of the SA during a tile/operator under PE-level gating
 * (ReGate-HW and up), joules.
 *
 * @param stats          Output of analyzeTile/analyzeMatmul.
 * @param pe_static_w    Active static power of one PE, watts.
 * @param cycle_time     Seconds per cycle.
 * @param w_on_fraction  Fraction of PE static power consumed in W_on
 *                       mode (weight register only).
 * @param off_leakage    Residual leakage fraction in OFF mode.
 */
double saStaticEnergyGated(const SaTileStats &stats, double pe_static_w,
                           double cycle_time, double w_on_fraction,
                           double off_leakage);

/** Fraction of PE static power consumed in W_on mode. */
constexpr double kWOnPowerFraction = 0.15;

}  // namespace sa
}  // namespace regate

#endif  // REGATE_SA_SA_ANALYTICAL_H
