#include "sa/sa_analytical.h"

#include "common/error.h"

namespace regate {
namespace sa {

double
SaTileStats::spatialUtilization() const
{
    std::uint64_t total = totalPeCycles();
    return total > 0 ?
        static_cast<double>(macs) / static_cast<double>(total) : 0.0;
}

SaTileStats &
SaTileStats::operator+=(const SaTileStats &o)
{
    computeCycles += o.computeCycles;
    weightLoadCycles += o.weightLoadCycles;
    peOnCycles += o.peOnCycles;
    peWOnCycles += o.peWOnCycles;
    peOffCycles += o.peOffCycles;
    macs += o.macs;
    return *this;
}

SaTileStats
SaTileStats::scaled(std::uint64_t n) const
{
    SaTileStats s = *this;
    s.computeCycles *= n;
    s.weightLoadCycles *= n;
    s.peOnCycles *= n;
    s.peWOnCycles *= n;
    s.peOffCycles *= n;
    s.macs *= n;
    return s;
}

SaTileStats
analyzeTile(std::int64_t m, int k, int n, int width)
{
    REGATE_CHECK(width > 0, "SA width must be positive");
    REGATE_CHECK(m >= 1, "tile M must be >= 1");
    REGATE_CHECK(k >= 1 && k <= width, "tile K=", k, " out of [1, ",
                 width, "]");
    REGATE_CHECK(n >= 1 && n <= width, "tile N=", n, " out of [1, ",
                 width, "]");

    SaTileStats s;
    s.computeCycles = static_cast<Cycles>(m) + k + n - 1;
    s.weightLoadCycles = static_cast<Cycles>(k);
    auto active_pes = static_cast<std::uint64_t>(k) * n;
    auto total_pes = static_cast<std::uint64_t>(width) * width;
    s.macs = static_cast<std::uint64_t>(m) * k * n;
    s.peOnCycles = s.macs;
    s.peWOnCycles = active_pes * (s.computeCycles - m);
    s.peOffCycles = (total_pes - active_pes) * s.computeCycles;
    return s;
}

SaTileStats
analyzeMatmul(std::int64_t m, std::int64_t k, std::int64_t n, int width)
{
    REGATE_CHECK(m >= 1 && k >= 1 && n >= 1,
                 "matmul dims must be >= 1, got ", m, "x", k, "x", n);
    const std::int64_t w = width;

    // Weight-stationary: the K and N dimensions tile onto the array;
    // the whole M dimension streams through each weight tile (the
    // tile's activation rows are never split, which is what keeps
    // large-M GEMMs near peak spatial utilization, Fig. 5).
    auto split = [w](std::int64_t dim) {
        std::int64_t full = dim / w;
        std::int64_t rem = dim % w;
        return std::pair<std::int64_t, std::int64_t>(full, rem);
    };
    auto [kf, kr] = split(k);
    auto [nf, nr] = split(n);

    SaTileStats total;
    // Enumerate the (full | remainder) combinations per tiled dim.
    struct Dim { std::int64_t size; std::int64_t count; };
    Dim ks[2] = {{w, kf}, {kr, kr > 0 ? 1 : 0}};
    Dim ns[2] = {{w, nf}, {nr, nr > 0 ? 1 : 0}};
    // The streamed M dimension is chunked only by the simulator's
    // analysis granularity, not reloaded per chunk.
    for (const auto &dk : ks) {
        for (const auto &dn : ns) {
            std::uint64_t count =
                static_cast<std::uint64_t>(dk.count * dn.count);
            if (count == 0 || dk.size == 0 || dn.size == 0)
                continue;
            auto tile = analyzeTile(m, static_cast<int>(dk.size),
                                    static_cast<int>(dn.size), width);
            total += tile.scaled(count);
        }
    }
    // Weight loads are double-buffered: only the first tile's load is
    // exposed; account the rest as overlapped (keep the counter but do
    // not add it to computeCycles here -- the operator model decides).
    return total;
}

double
saStaticEnergyGated(const SaTileStats &stats, double pe_static_w,
                    double cycle_time, double w_on_fraction,
                    double off_leakage)
{
    REGATE_CHECK(pe_static_w >= 0 && cycle_time > 0,
                 "bad PE power/cycle time");
    double on = static_cast<double>(stats.peOnCycles);
    double won = static_cast<double>(stats.peWOnCycles);
    double off = static_cast<double>(stats.peOffCycles);
    return pe_static_w * cycle_time *
           (on + w_on_fraction * won + off_leakage * off);
}

}  // namespace sa
}  // namespace regate
