#include "ici/collective.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace regate {
namespace ici {

namespace {

// Software launch overhead per collective and per-hop wire latency.
constexpr double kLaunchSeconds = 2e-6;
constexpr double kHopSeconds = 0.3e-6;

// Fraction of raw link bandwidth sustainable by the ring algorithms.
constexpr double kLinkEfficiency = 0.85;

}  // namespace

std::string
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::AllReduce:
        return "AllReduce";
      case CollectiveKind::ReduceScatter:
        return "ReduceScatter";
      case CollectiveKind::AllGather:
        return "AllGather";
      case CollectiveKind::AllToAll:
        return "AllToAll";
      case CollectiveKind::P2PSendRecv:
        return "P2PSendRecv";
    }
    throw LogicError("unknown CollectiveKind");
}

CollectiveModel::CollectiveModel(const arch::NpuConfig &cfg,
                                 const Torus &torus)
    : cfg_(cfg), torus_(torus),
      chipBandwidth_(cfg.iciBandwidth() * kLinkEfficiency)
{
}

double
CollectiveModel::seconds(CollectiveKind kind, std::uint64_t bytes) const
{
    const double n = torus_.numChips();
    if (n <= 1.0)
        return 0.0;
    const double frac = (n - 1.0) / n;
    const double b = static_cast<double>(bytes);

    double bw_term = 0.0;
    switch (kind) {
      case CollectiveKind::AllReduce:
        bw_term = 2.0 * frac * b / chipBandwidth_;
        break;
      case CollectiveKind::ReduceScatter:
      case CollectiveKind::AllGather:
        bw_term = frac * b / chipBandwidth_;
        break;
      case CollectiveKind::AllToAll: {
        // All-to-all is bisection-limited on a torus: unlike ring
        // collectives, traffic must cross the bisection, which scales
        // as the per-dimension ring length. This is what makes DLRM
        // ICI-bound (§3, Fig. 8).
        double penalty = std::max(
            1.0, std::pow(n, 1.0 / torus_.rank()));
        bw_term = frac * b / chipBandwidth_ * penalty;
        break;
      }
      case CollectiveKind::P2PSendRecv:
        bw_term = b / (cfg_.iciBandwidthPerLink * kLinkEfficiency);
        break;
    }
    return kLaunchSeconds + torus_.diameterHops() * kHopSeconds + bw_term;
}

double
CollectiveModel::wireBytes(CollectiveKind kind, std::uint64_t bytes) const
{
    const double n = torus_.numChips();
    if (n <= 1.0)
        return 0.0;
    const double frac = (n - 1.0) / n;
    const double b = static_cast<double>(bytes);
    switch (kind) {
      case CollectiveKind::AllReduce:
        return 2.0 * frac * b;
      case CollectiveKind::ReduceScatter:
      case CollectiveKind::AllGather:
      case CollectiveKind::AllToAll:
        return frac * b;
      case CollectiveKind::P2PSendRecv:
        return b;
    }
    throw LogicError("unknown CollectiveKind");
}

}  // namespace ici
}  // namespace regate
