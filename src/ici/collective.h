/**
 * @file
 * Collective-operator cost model over the ICI torus (§2.1, §3).
 *
 * Bandwidth terms follow the standard ring-algorithm bounds, using
 * the chip's aggregate ICI bandwidth (torus rings use every link):
 *   AllReduce:      2 * (n-1)/n * bytes / B
 *   ReduceScatter:  (n-1)/n * bytes / B
 *   AllGather:      (n-1)/n * bytes / B
 *   AllToAll:       (n-1)/n * bytes / B * penalty(topology)
 *   P2P:            bytes / link_bw
 * plus a launch latency and per-hop wire latency; collectives are
 * "typically at least a few us" (§1), which these constants yield.
 */

#ifndef REGATE_ICI_COLLECTIVE_H
#define REGATE_ICI_COLLECTIVE_H

#include <cstdint>
#include <string>

#include "arch/npu_config.h"
#include "ici/topology.h"

namespace regate {
namespace ici {

/** Collective kinds the paper's workloads use (§3). */
enum class CollectiveKind {
    AllReduce,
    ReduceScatter,
    AllGather,
    AllToAll,
    P2PSendRecv,
};

/** Printable name. */
std::string collectiveKindName(CollectiveKind kind);

/** Cost model bound to one chip generation and pod shape. */
class CollectiveModel
{
  public:
    CollectiveModel(const arch::NpuConfig &cfg, const Torus &torus);

    /**
     * Wall-clock seconds for a collective moving @p bytes per chip.
     * Single-chip pods cost 0 (no communication).
     */
    double seconds(CollectiveKind kind, std::uint64_t bytes) const;

    /** Bytes that actually cross this chip's links. */
    double wireBytes(CollectiveKind kind, std::uint64_t bytes) const;

    const Torus &torus() const { return torus_; }

  private:
    const arch::NpuConfig &cfg_;
    Torus torus_;
    double chipBandwidth_;  ///< Aggregate usable ICI bytes/s.
};

}  // namespace ici
}  // namespace regate

#endif  // REGATE_ICI_COLLECTIVE_H
