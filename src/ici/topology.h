/**
 * @file
 * NPU pod topology: chips connected by ICI links in a 2D or 3D torus
 * (§2.1), optimized for all-reduce bandwidth [90].
 */

#ifndef REGATE_ICI_TOPOLOGY_H
#define REGATE_ICI_TOPOLOGY_H

#include <string>
#include <vector>

#include "arch/npu_config.h"

namespace regate {
namespace ici {

/** A torus of NPU chips. */
class Torus
{
  public:
    /** Explicit dimensions, e.g. {4, 4} or {2, 2, 4}. */
    explicit Torus(std::vector<int> dims);

    /**
     * Near-regular factorization of @p chips into the generation's
     * torus rank (2D for NPU-A..C, 3D for NPU-D/E).
     */
    static Torus forChips(const arch::NpuConfig &cfg, int chips);

    int numChips() const;
    const std::vector<int> &dims() const { return dims_; }
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Torus diameter in hops (sum of dim/2). */
    int diameterHops() const;

    /** Printable form, e.g. "4x4x2". */
    std::string toString() const;

  private:
    std::vector<int> dims_;
};

}  // namespace ici
}  // namespace regate

#endif  // REGATE_ICI_TOPOLOGY_H
