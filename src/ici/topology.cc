#include "ici/topology.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace regate {
namespace ici {

Torus::Torus(std::vector<int> dims)
    : dims_(std::move(dims))
{
    REGATE_CHECK(!dims_.empty(), "torus needs at least one dimension");
    for (int d : dims_)
        REGATE_CHECK(d >= 1, "torus dimension must be >= 1, got ", d);
}

Torus
Torus::forChips(const arch::NpuConfig &cfg, int chips)
{
    REGATE_CHECK(chips >= 1, "pod needs at least one chip");
    int rank = cfg.torusDims;

    // Greedy near-regular factorization: repeatedly pull out the
    // largest factor <= the remaining geometric mean.
    std::vector<int> dims(rank, 1);
    int remaining = chips;
    for (int i = 0; i < rank; ++i) {
        int slots = rank - i;
        int target = static_cast<int>(
            std::max(1.0, std::round(std::pow(
                static_cast<double>(remaining), 1.0 / slots))));
        // Find the largest divisor of `remaining` that is <= target+?
        int best = 1;
        for (int f = 1; f <= remaining; ++f) {
            if (remaining % f == 0 && f <= std::max(target, 1))
                best = f;
        }
        if (i == rank - 1)
            best = remaining;
        dims[i] = best;
        remaining /= best;
    }
    std::sort(dims.begin(), dims.end());
    Torus t(dims);
    REGATE_ASSERT(t.numChips() == chips, "factorization lost chips: ",
                  t.numChips(), " != ", chips);
    return t;
}

int
Torus::numChips() const
{
    int n = 1;
    for (int d : dims_)
        n *= d;
    return n;
}

int
Torus::diameterHops() const
{
    int hops = 0;
    for (int d : dims_)
        hops += d / 2;
    return hops;
}

std::string
Torus::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < dims_.size(); ++i)
        os << (i ? "x" : "") << dims_[i];
    return os.str();
}

}  // namespace ici
}  // namespace regate
