/**
 * @file
 * High-level facade: simulate one of the paper's workloads on one NPU
 * generation and expose the quantities the figures need, including
 * the duty-cycle/PUE accounting of §3 (60% duty cycle [84], PUE 1.1
 * [32]) and the per-policy idle power of a powered-on but jobless
 * chip.
 */

#ifndef REGATE_SIM_REPORT_H
#define REGATE_SIM_REPORT_H

#include <memory>
#include <utility>

#include "arch/gating_params.h"
#include "models/workload.h"
#include "sim/engine.h"

namespace regate {
namespace sim {

/** Datacenter accounting constants (§3). */
struct FleetParams
{
    double dutyCycle = 0.6;  ///< Fraction of wall time running jobs.
    double pue = 1.1;        ///< Power usage efficiency.
};

struct ReportSerializeAccess;

/** One simulated workload on one generation. */
struct WorkloadReport
{
    models::Workload workload{};
    arch::NpuGeneration gen{};
    models::RunSetup setup;
    double units = 0;  ///< Work units per run (tokens, images, ...).

    /**
     * Custom-scenario identity: null on the enum workload path (and
     * `workload` is authoritative); set when the report came from
     * simulateScenario over a registry-driven ScenarioSpec (and
     * `workload` is a meaningless default). Shared, immutable — a
     * report copy is still a pointer bump.
     */
    std::shared_ptr<const models::ScenarioSpec> scenario;

    /**
     * The simulated run. Reports hold their run by shared_ptr and
     * alias the immutable entry in the whole-run memo when the
     * simulation was a cache replay, so a warm simulateWorkload hit
     * — and every subsequent WorkloadReport copy — is a pointer
     * bump, never a deep copy of opRecords/timelines. A
     * default-constructed report reads as an empty run.
     */
    const WorkloadRun &run() const;

    /**
     * Shared handle to the run (null only on a default-constructed
     * report). Copying it shares, never deep-copies; tests use it to
     * assert warm hits alias the memoized entry, and long-lived
     * callers can keep the run alive past the report.
     */
    const std::shared_ptr<const WorkloadRun> &
    runShared() const
    {
        return run_;
    }

    /** Busy energy per run across the whole pod, joules. */
    double podBusyEnergy(Policy p) const;

    /**
     * Total energy per run including the idle portion implied by the
     * duty cycle and the PUE multiplier (the Fig. 2 metric).
     */
    double podTotalEnergy(Policy p, const FleetParams &fleet = {}) const;

    /** Energy per work unit (J/iter, J/token, ...), Fig. 2. */
    double energyPerUnit(Policy p, const FleetParams &fleet = {}) const;

    /** Wall-clock idle seconds implied by the duty cycle. */
    double idleSeconds(Policy p, const FleetParams &fleet = {}) const;

    /** Per-chip idle power of a powered-on, jobless chip, watts. */
    double idlePowerW(Policy p) const;

    /** Idle energy share of total (the Fig. 3 "Idle" bar). */
    double idleShare(Policy p, const FleetParams &fleet = {}) const;

    const arch::NpuConfig &config() const;

    /** The gating params this report was simulated under. */
    const arch::GatingParams &gatingParams() const { return params_; }

  private:
    /** Construction backdoor to run_/params_ (serialization, tests). */
    friend struct ReportSerializeAccess;
    friend WorkloadReport simulateWorkload(models::Workload,
                                           arch::NpuGeneration,
                                           const arch::GatingParams &,
                                           const models::RunSetup *);
    friend WorkloadReport simulateWorkloadUncached(
        models::Workload, arch::NpuGeneration,
        const arch::GatingParams &, const models::RunSetup *);
    friend WorkloadReport simulateScenario(
        std::shared_ptr<const models::ScenarioSpec>,
        arch::NpuGeneration, const arch::GatingParams &,
        const models::RunSetup *);
    friend WorkloadReport simulateScenarioUncached(
        std::shared_ptr<const models::ScenarioSpec>,
        arch::NpuGeneration, const arch::GatingParams &,
        const models::RunSetup *);
    std::shared_ptr<const WorkloadRun> run_;
    arch::GatingParams params_;
};

/**
 * Backdoor to WorkloadReport's private run_/params_ for code that
 * constructs reports outside simulateWorkload*: the serializer
 * (sim/serialize.cc), the report facade itself, and tests that need
 * a report around a hand-built run. Not for figure/analysis code —
 * read through run() and gatingParams().
 */
struct ReportSerializeAccess
{
    static const arch::GatingParams &
    params(const WorkloadReport &rep)
    {
        return rep.params_;
    }

    static void
    setParams(WorkloadReport &rep, const arch::GatingParams &p)
    {
        rep.params_ = p;
    }

    static void
    setRun(WorkloadReport &rep,
           std::shared_ptr<const WorkloadRun> run)
    {
        rep.run_ = std::move(run);
    }
};

/**
 * Build, compile, and simulate @p workload on @p gen. Uses
 * defaultSetup unless @p setup_override is given.
 */
WorkloadReport simulateWorkload(models::Workload workload,
                                arch::NpuGeneration gen,
                                const arch::GatingParams &params = {},
                                const models::RunSetup *setup_override =
                                    nullptr);

/**
 * simulateWorkload with all memoization disabled — no shared operator
 * cache and no compiled-graph cache, so the graph is rebuilt,
 * recompiled, and resimulated from scratch. A genuinely independent
 * re-simulation, used by the fig16 validation to check the memoized
 * path against a from-scratch run.
 */
WorkloadReport simulateWorkloadUncached(
    models::Workload workload, arch::NpuGeneration gen,
    const arch::GatingParams &params = {},
    const models::RunSetup *setup_override = nullptr);

/**
 * simulateWorkload for a registry-driven custom scenario: build,
 * compile, and simulate @p spec on @p gen, with defaultScenarioSetup
 * unless @p setup_override is given. Uses the same shared memo caches
 * as the enum path, keyed by the scenario's identity text, so paper
 * workloads and custom scenarios never collide. @p spec must be a
 * validated spec (parseSpecText/validateScenario have run).
 */
WorkloadReport simulateScenario(
    std::shared_ptr<const models::ScenarioSpec> spec,
    arch::NpuGeneration gen, const arch::GatingParams &params = {},
    const models::RunSetup *setup_override = nullptr);

/** simulateScenario with all memoization disabled (see above). */
WorkloadReport simulateScenarioUncached(
    std::shared_ptr<const models::ScenarioSpec> spec,
    arch::NpuGeneration gen, const arch::GatingParams &params = {},
    const models::RunSetup *setup_override = nullptr);

/** Idle power of a jobless chip under a policy (used by Fig. 24). */
double idleStaticPower(const energy::PowerModel &power,
                       const arch::GatingParams &params, Policy policy);

/**
 * The process-wide operator-memoization cache for @p gen, shared by
 * every simulateWorkload call (and safe to share across sweep
 * workers).
 */
OpExecutionCache &sharedOpCache(arch::NpuGeneration gen);

/**
 * Drop every process-wide memoized result: the whole-run memo and
 * compiled-graph cache (sim/graph_cache.h) and the per-generation
 * operator caches. For benches/tests that need a genuinely cold
 * re-simulation; correctness never requires it (entries are immutable
 * and keyed by full content).
 */
void clearSharedCaches();

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_REPORT_H
