/**
 * @file
 * High-level facade: simulate one of the paper's workloads on one NPU
 * generation and expose the quantities the figures need, including
 * the duty-cycle/PUE accounting of §3 (60% duty cycle [84], PUE 1.1
 * [32]) and the per-policy idle power of a powered-on but jobless
 * chip.
 */

#ifndef REGATE_SIM_REPORT_H
#define REGATE_SIM_REPORT_H

#include "arch/gating_params.h"
#include "models/workload.h"
#include "sim/engine.h"

namespace regate {
namespace sim {

/** Datacenter accounting constants (§3). */
struct FleetParams
{
    double dutyCycle = 0.6;  ///< Fraction of wall time running jobs.
    double pue = 1.1;        ///< Power usage efficiency.
};

struct ReportSerializeAccess;

/** One simulated workload on one generation. */
struct WorkloadReport
{
    models::Workload workload{};
    arch::NpuGeneration gen{};
    models::RunSetup setup;
    WorkloadRun run;
    double units = 0;  ///< Work units per run (tokens, images, ...).

    /** Busy energy per run across the whole pod, joules. */
    double podBusyEnergy(Policy p) const;

    /**
     * Total energy per run including the idle portion implied by the
     * duty cycle and the PUE multiplier (the Fig. 2 metric).
     */
    double podTotalEnergy(Policy p, const FleetParams &fleet = {}) const;

    /** Energy per work unit (J/iter, J/token, ...), Fig. 2. */
    double energyPerUnit(Policy p, const FleetParams &fleet = {}) const;

    /** Wall-clock idle seconds implied by the duty cycle. */
    double idleSeconds(Policy p, const FleetParams &fleet = {}) const;

    /** Per-chip idle power of a powered-on, jobless chip, watts. */
    double idlePowerW(Policy p) const;

    /** Idle energy share of total (the Fig. 3 "Idle" bar). */
    double idleShare(Policy p, const FleetParams &fleet = {}) const;

    const arch::NpuConfig &config() const;

    /** The gating params this report was simulated under. */
    const arch::GatingParams &gatingParams() const { return params_; }

  private:
    /** Serialization backdoor to params_ (sim/serialize.cc). */
    friend struct ReportSerializeAccess;
    friend WorkloadReport simulateWorkload(models::Workload,
                                           arch::NpuGeneration,
                                           const arch::GatingParams &,
                                           const models::RunSetup *);
    friend WorkloadReport simulateWorkloadUncached(
        models::Workload, arch::NpuGeneration,
        const arch::GatingParams &, const models::RunSetup *);
    arch::GatingParams params_;
};

/**
 * Build, compile, and simulate @p workload on @p gen. Uses
 * defaultSetup unless @p setup_override is given.
 */
WorkloadReport simulateWorkload(models::Workload workload,
                                arch::NpuGeneration gen,
                                const arch::GatingParams &params = {},
                                const models::RunSetup *setup_override =
                                    nullptr);

/**
 * simulateWorkload with all memoization disabled — no shared operator
 * cache and no compiled-graph cache, so the graph is rebuilt,
 * recompiled, and resimulated from scratch. A genuinely independent
 * re-simulation, used by the fig16 validation to check the memoized
 * path against a from-scratch run.
 */
WorkloadReport simulateWorkloadUncached(
    models::Workload workload, arch::NpuGeneration gen,
    const arch::GatingParams &params = {},
    const models::RunSetup *setup_override = nullptr);

/** Idle power of a jobless chip under a policy (used by Fig. 24). */
double idleStaticPower(const energy::PowerModel &power,
                       const arch::GatingParams &params, Policy policy);

/**
 * The process-wide operator-memoization cache for @p gen, shared by
 * every simulateWorkload call (and safe to share across sweep
 * workers).
 */
OpExecutionCache &sharedOpCache(arch::NpuGeneration gen);

/**
 * Drop every process-wide memoized result: the whole-run memo and
 * compiled-graph cache (sim/graph_cache.h) and the per-generation
 * operator caches. For benches/tests that need a genuinely cold
 * re-simulation; correctness never requires it (entries are immutable
 * and keyed by full content).
 */
void clearSharedCaches();

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_REPORT_H
