#include "sim/report.h"

#include "common/error.h"
#include "compiler/compiler.h"
#include "models/registry.h"
#include "obs/trace.h"
#include "sim/graph_cache.h"

namespace regate {
namespace sim {

using arch::Component;

double
idleStaticPower(const energy::PowerModel &power,
                const arch::GatingParams &params, Policy policy)
{
    const auto &ratios = params.ratios();
    // "Other" (management, control) stays powered even on an idle
    // chip (§3); everything else gates according to the policy.
    double p = power.staticPower(Component::Other);
    double logic = power.staticPower(Component::Sa) +
                   power.staticPower(Component::Vu) +
                   power.staticPower(Component::Hbm) +
                   power.staticPower(Component::Ici);
    double sram = power.staticPower(Component::Sram);
    switch (policy) {
      case Policy::NoPG:
        p += logic + sram;
        break;
      case Policy::Base:
      case Policy::HW:
        p += logic * ratios.logicOff + sram * ratios.sramSleep;
        break;
      case Policy::Full:
        p += logic * ratios.logicOff + sram * ratios.sramOff;
        break;
      case Policy::Ideal:
        break;
    }
    return p;
}

const WorkloadRun &
WorkloadReport::run() const
{
    // A default-constructed report (no simulation attached yet) reads
    // as an empty run rather than dereferencing null.
    static const WorkloadRun kEmptyRun;
    return run_ ? *run_ : kEmptyRun;
}

double
WorkloadReport::podBusyEnergy(Policy p) const
{
    return run().result(p).energy.busyTotal() * setup.chips;
}

double
WorkloadReport::idleSeconds(Policy p, const FleetParams &fleet) const
{
    REGATE_CHECK(fleet.dutyCycle > 0 && fleet.dutyCycle <= 1,
                 "duty cycle out of (0, 1]: ", fleet.dutyCycle);
    return run().result(p).seconds * (1.0 - fleet.dutyCycle) /
           fleet.dutyCycle;
}

double
WorkloadReport::idlePowerW(Policy p) const
{
    energy::PowerModel power(config());
    return idleStaticPower(power, params_, p);
}

double
WorkloadReport::podTotalEnergy(Policy p, const FleetParams &fleet) const
{
    double idle = idlePowerW(p) * idleSeconds(p, fleet) * setup.chips;
    return (podBusyEnergy(p) + idle) * fleet.pue;
}

double
WorkloadReport::energyPerUnit(Policy p, const FleetParams &fleet) const
{
    REGATE_CHECK(units > 0, "report has no work units");
    return podTotalEnergy(p, fleet) / units;
}

double
WorkloadReport::idleShare(Policy p, const FleetParams &fleet) const
{
    double idle =
        idlePowerW(p) * idleSeconds(p, fleet) * setup.chips * fleet.pue;
    return idle / podTotalEnergy(p, fleet);
}

const arch::NpuConfig &
WorkloadReport::config() const
{
    return arch::npuConfig(gen);
}

void
clearSharedCaches()
{
    sharedRunCache().clear();
    sharedGraphCache().clear();
    for (auto gen : arch::allGenerations())
        sharedOpCache(gen).clear();
}

OpExecutionCache &
sharedOpCache(arch::NpuGeneration gen)
{
    // One process-wide cache per chip generation: an operator's
    // execution depends only on (generation, pod size, op shape), and
    // pod size is part of the cache key, so every simulateWorkload
    // call — SLO searches, figure sweeps, parallel sweep workers —
    // reuses the same memoized results. The cache is thread-safe.
    static std::array<OpExecutionCache, arch::kNumGenerations> caches;
    return caches[static_cast<std::size_t>(gen)];
}

namespace {

/**
 * Trace hook for the whole-run memo: a warm hit renders as an
 * instant, a miss as nothing here (the build/compile/engine spans
 * below show where the time went instead).
 */
void
traceRunCacheHit()
{
    auto &trace = obs::TraceRecorder::instance();
    if (trace.enabled())
        trace.instant("run_cache.hit", "sim");
}

WorkloadReport
simulateImpl(models::Workload workload, arch::NpuGeneration gen,
             const arch::GatingParams &params,
             const models::RunSetup *setup_override, bool memoize)
{
    WorkloadReport rep;
    rep.workload = workload;
    rep.gen = gen;
    rep.setup = setup_override ? *setup_override
                               : models::defaultSetup(workload, gen);

    const auto &cfg = arch::npuConfig(gen);

    // Warmest path: this exact (workload, setup, generation, params)
    // point has been simulated before — alias the memoized run (a
    // shared_ptr bump, zero WorkloadRun copies) without building,
    // compiling, or running the engine.
    if (memoize) {
        auto cached = sharedRunCache().lookup(workload, rep.setup,
                                              gen, params);
        if (cached) {
            traceRunCacheHit();
            ReportSerializeAccess::setRun(rep, std::move(cached));
            rep.units = models::unitsPerRun(workload, rep.setup);
            return rep;
        }
    }

    // Warm path: reuse the memoized build + compile for this
    // (workload, setup, generation). Cold path (or memoization off):
    // build and compile from scratch. compileGraph's TilingOptions are
    // defaulted here, so the three key fields cover every input.
    auto buildCompile = [&] {
        obs::TraceRecorder::Span span("graph.build_compile", "sim");
        return compiler::compileGraph(
            models::buildGraph(workload, rep.setup), cfg);
    };
    std::shared_ptr<const compiler::CompileResult> compiled;
    if (memoize) {
        compiled = sharedGraphCache().lookup(workload, rep.setup, gen);
        if (!compiled) {
            compiled = sharedGraphCache().store(
                workload, rep.setup, gen, buildCompile());
        }
    } else {
        compiled = std::make_shared<const compiler::CompileResult>(
            buildCompile());
    }

    Engine engine(cfg, params);
    auto runEngine = [&] {
        obs::TraceRecorder::Span span("engine.run", "sim");
        return engine.run(compiled->graph, rep.setup.chips);
    };
    if (memoize) {
        engine.setOpCache(&sharedOpCache(gen));
        // Move the fresh run into the memo and alias its canonical
        // entry: the report shares the cached run instead of owning
        // a private deep copy.
        ReportSerializeAccess::setRun(
            rep, sharedRunCache().store(workload, rep.setup, gen,
                                        params, runEngine()));
    } else {
        // The uncached path must leave every shared cache untouched
        // (fig16 validates the memo against it), so the run is owned
        // privately, never routed through sharedRunCache().
        engine.setMemoization(false);
        ReportSerializeAccess::setRun(
            rep,
            std::make_shared<const WorkloadRun>(runEngine()));
    }
    rep.units = models::unitsPerRun(workload, rep.setup);
    return rep;
}

/**
 * simulateImpl for a registry-driven scenario. Same cache discipline
 * — the keys carry the scenario's identity text instead of the enum,
 * so enum points and scenario points live side by side in the shared
 * memos without collisions.
 */
WorkloadReport
scenarioImpl(std::shared_ptr<const models::ScenarioSpec> spec,
             arch::NpuGeneration gen,
             const arch::GatingParams &params,
             const models::RunSetup *setup_override, bool memoize)
{
    REGATE_CHECK(spec, "null scenario spec");
    WorkloadReport rep;
    rep.scenario = std::move(spec);
    rep.gen = gen;
    rep.setup = setup_override
                    ? *setup_override
                    : models::defaultScenarioSetup(*rep.scenario, gen);

    const auto &cfg = arch::npuConfig(gen);
    GraphKey graph_key{models::Workload{}, gen, rep.setup,
                       rep.scenario->identityText()};

    if (memoize) {
        auto cached =
            sharedRunCache().lookup(RunKey{graph_key, params});
        if (cached) {
            traceRunCacheHit();
            ReportSerializeAccess::setRun(rep, std::move(cached));
            rep.units = models::scenarioUnitsPerRun(*rep.scenario,
                                                    rep.setup);
            return rep;
        }
    }

    auto buildCompile = [&] {
        obs::TraceRecorder::Span span("graph.build_compile", "sim");
        return compiler::compileGraph(
            models::buildScenarioGraph(*rep.scenario, rep.setup),
            cfg);
    };
    std::shared_ptr<const compiler::CompileResult> compiled;
    if (memoize) {
        compiled = sharedGraphCache().lookup(graph_key);
        if (!compiled) {
            compiled =
                sharedGraphCache().store(graph_key, buildCompile());
        }
    } else {
        compiled = std::make_shared<const compiler::CompileResult>(
            buildCompile());
    }

    Engine engine(cfg, params);
    auto runEngine = [&] {
        obs::TraceRecorder::Span span("engine.run", "sim");
        return engine.run(compiled->graph, rep.setup.chips);
    };
    if (memoize) {
        engine.setOpCache(&sharedOpCache(gen));
        ReportSerializeAccess::setRun(
            rep, sharedRunCache().store(RunKey{graph_key, params},
                                        runEngine()));
    } else {
        engine.setMemoization(false);
        ReportSerializeAccess::setRun(
            rep,
            std::make_shared<const WorkloadRun>(runEngine()));
    }
    rep.units =
        models::scenarioUnitsPerRun(*rep.scenario, rep.setup);
    return rep;
}

}  // namespace

WorkloadReport
simulateWorkload(models::Workload workload, arch::NpuGeneration gen,
                 const arch::GatingParams &params,
                 const models::RunSetup *setup_override)
{
    auto rep = simulateImpl(workload, gen, params, setup_override, true);
    rep.params_ = params;
    return rep;
}

WorkloadReport
simulateWorkloadUncached(models::Workload workload,
                         arch::NpuGeneration gen,
                         const arch::GatingParams &params,
                         const models::RunSetup *setup_override)
{
    auto rep =
        simulateImpl(workload, gen, params, setup_override, false);
    rep.params_ = params;
    return rep;
}

WorkloadReport
simulateScenario(std::shared_ptr<const models::ScenarioSpec> spec,
                 arch::NpuGeneration gen,
                 const arch::GatingParams &params,
                 const models::RunSetup *setup_override)
{
    auto rep = scenarioImpl(std::move(spec), gen, params,
                            setup_override, true);
    rep.params_ = params;
    return rep;
}

WorkloadReport
simulateScenarioUncached(
    std::shared_ptr<const models::ScenarioSpec> spec,
    arch::NpuGeneration gen, const arch::GatingParams &params,
    const models::RunSetup *setup_override)
{
    auto rep = scenarioImpl(std::move(spec), gen, params,
                            setup_override, false);
    rep.params_ = params;
    return rep;
}

}  // namespace sim
}  // namespace regate
