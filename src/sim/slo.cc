#include "sim/slo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace regate {
namespace sim {

namespace {

double
secondsPerUnit(const WorkloadReport &rep)
{
    return rep.run.result(Policy::NoPG).seconds / rep.units;
}

}  // namespace

double
sloTargetSecondsPerUnit(models::Workload workload)
{
    // 1x SLO: 5x the latency of the default configuration on the
    // minimum number of NPU-D chips (§3).
    auto rep = simulateWorkload(workload, arch::NpuGeneration::D);
    return 5.0 * secondsPerUnit(rep);
}

std::vector<models::RunSetup>
candidateSetups(models::Workload workload, arch::NpuGeneration gen)
{
    models::RunSetup base = models::defaultSetup(workload, gen);
    std::vector<models::RunSetup> out;
    for (int chip_mul : {1, 2, 4}) {
        for (int batch_div : {4, 2, 1}) {
            models::RunSetup s = base;
            s.chips = base.chips * chip_mul;
            s.batch = std::max<std::int64_t>(1, base.batch / batch_div);
            // Re-split parallelism for the new chip count.
            if (s.chips != base.chips || s.batch != base.batch) {
                models::RunSetup scaled =
                    models::defaultSetup(workload, gen);
                s.par = scaled.par;
                if (s.chips != scaled.chips) {
                    // Grow dp with the extra chips.
                    s.par.dp = std::max(
                        1, s.chips / (s.par.tp * s.par.pp));
                    s.chips = s.par.chips();
                }
            }
            if (s.par.dp > s.batch)
                continue;  // Idle replicas: skip.
            out.push_back(s);
        }
    }
    return out;
}

SloResult
findBestSetup(models::Workload workload, arch::NpuGeneration gen,
              const arch::GatingParams &params)
{
    double target = sloTargetSecondsPerUnit(workload);
    auto candidates = candidateSetups(workload, gen);
    REGATE_CHECK(!candidates.empty(), "no candidate setups");

    bool have_compliant = false;
    SloResult best;
    SloResult fastest;
    double best_energy = 0;
    double fastest_latency = 0;

    for (const auto &setup : candidates) {
        auto rep = simulateWorkload(workload, gen, params, &setup);
        double spu = secondsPerUnit(rep);
        double epu = rep.energyPerUnit(Policy::NoPG);

        if (!have_compliant || (spu <= target && epu < best_energy) ||
            (!have_compliant && spu <= target)) {
            if (spu <= target &&
                (!have_compliant || epu < best_energy)) {
                best.setup = setup;
                best.secondsPerUnit = spu;
                best.energyPerUnit = epu;
                best.sloRatio = 1.0;
                best.report = rep;
                best_energy = epu;
                have_compliant = true;
            }
        }
        if (fastest_latency == 0 || spu < fastest_latency) {
            fastest.setup = setup;
            fastest.secondsPerUnit = spu;
            fastest.energyPerUnit = epu;
            fastest.report = rep;
            fastest_latency = spu;
        }
    }

    if (have_compliant)
        return best;

    // No compliant configuration: report the fastest with its
    // attained SLO multiple (Fig. 2's "2x" annotations).
    fastest.sloRatio = std::ceil(fastest.secondsPerUnit / target);
    return fastest;
}

}  // namespace sim
}  // namespace regate
