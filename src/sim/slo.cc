#include "sim/slo.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "models/registry.h"

namespace regate {
namespace sim {

namespace {

double
secondsPerUnit(const WorkloadReport &rep)
{
    return rep.run().result(Policy::NoPG).seconds / rep.units;
}

}  // namespace

double
sloTargetSecondsPerUnit(models::Workload workload)
{
    // 1x SLO: 5x the latency of the default configuration on the
    // minimum number of NPU-D chips (§3).
    auto rep = simulateWorkload(workload, arch::NpuGeneration::D);
    return 5.0 * secondsPerUnit(rep);
}

double
sloTargetSecondsPerUnit(
    const std::shared_ptr<const models::ScenarioSpec> &spec)
{
    auto rep = simulateScenario(spec, arch::NpuGeneration::D);
    return 5.0 * secondsPerUnit(rep);
}

std::vector<models::RunSetup>
candidateSetupsFrom(const models::RunSetup &base)
{
    std::vector<models::RunSetup> out;
    for (int chip_mul : {1, 2, 4}) {
        for (int batch_div : {4, 2, 1}) {
            models::RunSetup s = base;
            s.chips = base.chips * chip_mul;
            s.batch = std::max<std::int64_t>(1, base.batch / batch_div);
            // Re-split parallelism for the new chip count.
            if (s.chips != base.chips || s.batch != base.batch) {
                s.par = base.par;
                if (s.chips != base.chips) {
                    // Grow dp with the extra chips.
                    s.par.dp = std::max(
                        1, s.chips / (s.par.tp * s.par.pp));
                    s.chips = s.par.chips();
                }
            }
            if (s.par.dp > s.batch)
                continue;  // Idle replicas: skip.
            out.push_back(s);
        }
    }
    return out;
}

std::vector<models::RunSetup>
candidateSetups(models::Workload workload, arch::NpuGeneration gen)
{
    return candidateSetupsFrom(models::defaultSetup(workload, gen));
}

std::vector<models::RunSetup>
candidateSetups(const models::ScenarioSpec &spec,
                arch::NpuGeneration gen)
{
    return candidateSetupsFrom(models::defaultScenarioSetup(spec, gen));
}

namespace {

/**
 * The pool findBestSetup's candidate evaluations fan out on. Distinct
 * from any SweepRunner pool on purpose: SweepRunner::search workers
 * call findBestSetup, and a nested submit to the caller's own pool
 * would block a worker on futures only that same pool can run.
 */
ThreadPool &
candidatePool()
{
    static ThreadPool pool;
    return pool;
}

/**
 * The serial winner-selection loop over input-ordered candidate
 * reports. Both the serial and the parallel search run exactly this
 * code, so tie-breaking (first strictly-better candidate wins) is
 * identical regardless of thread count or scheduling.
 */
SloResult
selectBest(const std::vector<models::RunSetup> &candidates,
           const std::vector<WorkloadReport> &reports, double target)
{
    bool have_compliant = false;
    SloResult best;
    SloResult fastest;
    double best_energy = 0;
    double fastest_latency = 0;

    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const auto &setup = candidates[i];
        const auto &rep = reports[i];
        double spu = secondsPerUnit(rep);
        double epu = rep.energyPerUnit(Policy::NoPG);

        if (spu <= target && (!have_compliant || epu < best_energy)) {
            best.setup = setup;
            best.secondsPerUnit = spu;
            best.energyPerUnit = epu;
            best.sloRatio = 1.0;
            best.report = rep;
            best_energy = epu;
            have_compliant = true;
        }
        if (fastest_latency == 0 || spu < fastest_latency) {
            fastest.setup = setup;
            fastest.secondsPerUnit = spu;
            fastest.energyPerUnit = epu;
            fastest.report = rep;
            fastest_latency = spu;
        }
    }

    if (have_compliant)
        return best;

    // No compliant configuration: report the fastest with its
    // attained SLO multiple (Fig. 2's "2x" annotations).
    fastest.sloRatio = std::ceil(fastest.secondsPerUnit / target);
    return fastest;
}

}  // namespace

SloResult
findBestSetup(models::Workload workload, arch::NpuGeneration gen,
              const arch::GatingParams &params, ThreadPool *pool)
{
    double target = sloTargetSecondsPerUnit(workload);
    auto candidates = candidateSetups(workload, gen);
    REGATE_CHECK(!candidates.empty(), "no candidate setups");

    // Capture by value: queued tasks may outlive this frame if an
    // earlier future rethrows (see parallelMapOrdered).
    auto reports = parallelMapOrdered(
        pool ? *pool : candidatePool(), candidates,
        [workload, gen, params](const models::RunSetup &setup) {
            return simulateWorkload(workload, gen, params, &setup);
        });
    return selectBest(candidates, reports, target);
}

SloResult
findBestSetupSerial(models::Workload workload, arch::NpuGeneration gen,
                    const arch::GatingParams &params)
{
    double target = sloTargetSecondsPerUnit(workload);
    auto candidates = candidateSetups(workload, gen);
    REGATE_CHECK(!candidates.empty(), "no candidate setups");

    std::vector<WorkloadReport> reports;
    reports.reserve(candidates.size());
    for (const auto &setup : candidates)
        reports.push_back(simulateWorkload(workload, gen, params,
                                           &setup));
    return selectBest(candidates, reports, target);
}

SloResult
findBestSetup(std::shared_ptr<const models::ScenarioSpec> spec,
              arch::NpuGeneration gen,
              const arch::GatingParams &params, ThreadPool *pool)
{
    double target = sloTargetSecondsPerUnit(spec);
    auto candidates = candidateSetups(*spec, gen);
    REGATE_CHECK(!candidates.empty(), "no candidate setups");

    auto reports = parallelMapOrdered(
        pool ? *pool : candidatePool(), candidates,
        [spec, gen, params](const models::RunSetup &setup) {
            return simulateScenario(spec, gen, params, &setup);
        });
    return selectBest(candidates, reports, target);
}

SloResult
findBestSetupSerial(std::shared_ptr<const models::ScenarioSpec> spec,
                    arch::NpuGeneration gen,
                    const arch::GatingParams &params)
{
    double target = sloTargetSecondsPerUnit(spec);
    auto candidates = candidateSetups(*spec, gen);
    REGATE_CHECK(!candidates.empty(), "no candidate setups");

    std::vector<WorkloadReport> reports;
    reports.reserve(candidates.size());
    for (const auto &setup : candidates)
        reports.push_back(simulateScenario(spec, gen, params, &setup));
    return selectBest(candidates, reports, target);
}

}  // namespace sim
}  // namespace regate
