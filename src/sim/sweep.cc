#include "sim/sweep.h"

#include <memory>
#include <mutex>

#include "common/error.h"

namespace regate {
namespace sim {

namespace {

WorkloadReport
simulateCase(const SweepCase &c)
{
    if (c.scenario)
        return simulateScenario(c.scenario, c.gen, c.params,
                                c.hasSetup ? &c.setup : nullptr);
    return simulateWorkload(c.workload, c.gen, c.params,
                            c.hasSetup ? &c.setup : nullptr);
}

/**
 * Wrap @p fn so every completion ticks the progress callback with a
 * monotonically increasing done count. The count advances and the
 * callback runs under one lock, so invocations are serialized and
 * the done counts the callback observes are strictly in order —
 * never "2/n before 1/n" even when two pool threads finish
 * back-to-back. Results (and therefore outputs) stay input-ordered
 * and bitwise identical; only the callback runs in completion
 * order.
 */
template <typename Fn>
auto
withProgress(Fn fn, const SweepProgress &progress,
             std::size_t total)
{
    struct Tick
    {
        std::mutex mutex;
        std::size_t done = 0;
    };
    auto tick = std::make_shared<Tick>();
    return [fn, progress, tick, total](const SweepCase &c) {
        auto result = fn(c);
        {
            std::lock_guard<std::mutex> lock(tick->mutex);
            progress(++tick->done, total);
        }
        return result;
    };
}

}  // namespace

std::vector<SweepCase>
makeGrid(const std::vector<models::Workload> &workloads,
         const std::vector<arch::NpuGeneration> &gens,
         const arch::GatingParams &params)
{
    std::vector<SweepCase> grid;
    grid.reserve(workloads.size() * gens.size());
    for (auto w : workloads) {
        for (auto gen : gens) {
            SweepCase c;
            c.workload = w;
            c.gen = gen;
            c.params = params;
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

void
applyScenarioGating(arch::GatingParams *params,
                    const models::ScenarioSpec &spec)
{
    auto ratios = params->ratios();
    for (const auto &[key, value] : spec.gating) {
        if (key == "logic_off")
            ratios.logicOff = value;
        else if (key == "sram_sleep")
            ratios.sramSleep = value;
        else if (key == "sram_off")
            ratios.sramOff = value;
    }
    params->setRatios(ratios);
    for (const auto &[key, value] : spec.gating) {
        if (key == "delay_scale")
            params->setDelayScale(value);
    }
}

SweepCase
scenarioCase(std::shared_ptr<const models::ScenarioSpec> spec,
             arch::NpuGeneration gen, const arch::GatingParams &params)
{
    REGATE_CHECK(spec, "null scenario spec");
    SweepCase c;
    c.gen = gen;
    c.params = params;
    applyScenarioGating(&c.params, *spec);
    // A spec identical to a paper workload runs as that workload:
    // the serialized case (and therefore any shard, merge, or golden
    // comparison) is byte-identical to the enum-driven grid. Gating
    // overrides ride in c.params either way.
    models::Workload w;
    if (models::builtinWorkloadOf(*spec, &w)) {
        c.workload = w;
        return c;
    }
    c.scenario = std::move(spec);
    return c;
}

std::vector<SweepCase>
scenarioGrid(
    const std::vector<std::shared_ptr<const models::ScenarioSpec>>
        &scenarios,
    const std::vector<arch::NpuGeneration> &gens,
    const arch::GatingParams &params)
{
    std::vector<SweepCase> grid;
    grid.reserve(scenarios.size() * gens.size());
    for (const auto &spec : scenarios) {
        for (auto gen : gens)
            grid.push_back(scenarioCase(spec, gen, params));
    }
    return grid;
}

ShardRange
shardRange(std::size_t total, int index, int count)
{
    REGATE_CHECK(count >= 1, "shard count must be >= 1, got ", count);
    REGATE_CHECK(index >= 0 && index < count, "shard index ", index,
                 " out of range for ", count, " shards");
    // Contiguous split with the remainder spread over the leading
    // shards: floor arithmetic keeps the plan a pure function of
    // (total, index, count), so every process computes the same plan.
    auto i = static_cast<std::size_t>(index);
    auto n = static_cast<std::size_t>(count);
    ShardRange r;
    r.begin = total * i / n;
    r.end = total * (i + 1) / n;
    return r;
}

std::vector<SweepCase>
shardGrid(const std::vector<SweepCase> &cases, int index, int count)
{
    auto r = shardRange(cases.size(), index, count);
    return std::vector<SweepCase>(
        cases.begin() + static_cast<std::ptrdiff_t>(r.begin),
        cases.begin() + static_cast<std::ptrdiff_t>(r.end));
}

std::vector<WorkloadReport>
SweepRunner::run(const std::vector<SweepCase> &cases,
                 const SweepProgress &progress)
{
    if (!progress)
        return parallelMapOrdered(pool_, cases, simulateCase);
    return parallelMapOrdered(
        pool_, cases,
        withProgress(simulateCase, progress, cases.size()));
}

std::vector<SloResult>
SweepRunner::search(const std::vector<SweepCase> &cases,
                    const SweepProgress &progress)
{
    auto searchCase = [](const SweepCase &c) {
        if (c.scenario)
            return findBestSetup(c.scenario, c.gen, c.params);
        return findBestSetup(c.workload, c.gen, c.params);
    };
    if (!progress)
        return parallelMapOrdered(pool_, cases, searchCase);
    return parallelMapOrdered(
        pool_, cases,
        withProgress(searchCase, progress, cases.size()));
}

std::vector<WorkloadReport>
SweepRunner::runSerial(const std::vector<SweepCase> &cases)
{
    std::vector<WorkloadReport> out;
    out.reserve(cases.size());
    for (const auto &c : cases)
        out.push_back(simulateCase(c));
    return out;
}

}  // namespace sim
}  // namespace regate
