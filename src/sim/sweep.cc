#include "sim/sweep.h"

#include "common/error.h"

namespace regate {
namespace sim {

namespace {

WorkloadReport
simulateCase(const SweepCase &c)
{
    return simulateWorkload(c.workload, c.gen, c.params,
                            c.hasSetup ? &c.setup : nullptr);
}

}  // namespace

std::vector<SweepCase>
makeGrid(const std::vector<models::Workload> &workloads,
         const std::vector<arch::NpuGeneration> &gens,
         const arch::GatingParams &params)
{
    std::vector<SweepCase> grid;
    grid.reserve(workloads.size() * gens.size());
    for (auto w : workloads) {
        for (auto gen : gens) {
            SweepCase c;
            c.workload = w;
            c.gen = gen;
            c.params = params;
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

ShardRange
shardRange(std::size_t total, int index, int count)
{
    REGATE_CHECK(count >= 1, "shard count must be >= 1, got ", count);
    REGATE_CHECK(index >= 0 && index < count, "shard index ", index,
                 " out of range for ", count, " shards");
    // Contiguous split with the remainder spread over the leading
    // shards: floor arithmetic keeps the plan a pure function of
    // (total, index, count), so every process computes the same plan.
    auto i = static_cast<std::size_t>(index);
    auto n = static_cast<std::size_t>(count);
    ShardRange r;
    r.begin = total * i / n;
    r.end = total * (i + 1) / n;
    return r;
}

std::vector<SweepCase>
shardGrid(const std::vector<SweepCase> &cases, int index, int count)
{
    auto r = shardRange(cases.size(), index, count);
    return std::vector<SweepCase>(
        cases.begin() + static_cast<std::ptrdiff_t>(r.begin),
        cases.begin() + static_cast<std::ptrdiff_t>(r.end));
}

std::vector<WorkloadReport>
SweepRunner::run(const std::vector<SweepCase> &cases)
{
    return parallelMapOrdered(pool_, cases, simulateCase);
}

std::vector<SloResult>
SweepRunner::search(const std::vector<SweepCase> &cases)
{
    return parallelMapOrdered(pool_, cases, [](const SweepCase &c) {
        return findBestSetup(c.workload, c.gen, c.params);
    });
}

std::vector<WorkloadReport>
SweepRunner::runSerial(const std::vector<SweepCase> &cases)
{
    std::vector<WorkloadReport> out;
    out.reserve(cases.size());
    for (const auto &c : cases)
        out.push_back(simulateCase(c));
    return out;
}

}  // namespace sim
}  // namespace regate
