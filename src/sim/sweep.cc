#include "sim/sweep.h"

namespace regate {
namespace sim {

namespace {

WorkloadReport
simulateCase(const SweepCase &c)
{
    return simulateWorkload(c.workload, c.gen, c.params,
                            c.hasSetup ? &c.setup : nullptr);
}

}  // namespace

std::vector<SweepCase>
makeGrid(const std::vector<models::Workload> &workloads,
         const std::vector<arch::NpuGeneration> &gens,
         const arch::GatingParams &params)
{
    std::vector<SweepCase> grid;
    grid.reserve(workloads.size() * gens.size());
    for (auto w : workloads) {
        for (auto gen : gens) {
            SweepCase c;
            c.workload = w;
            c.gen = gen;
            c.params = params;
            grid.push_back(std::move(c));
        }
    }
    return grid;
}

std::vector<WorkloadReport>
SweepRunner::run(const std::vector<SweepCase> &cases)
{
    return parallelMapOrdered(pool_, cases, simulateCase);
}

std::vector<SloResult>
SweepRunner::search(const std::vector<SweepCase> &cases)
{
    return parallelMapOrdered(pool_, cases, [](const SweepCase &c) {
        return findBestSetup(c.workload, c.gen, c.params);
    });
}

std::vector<WorkloadReport>
SweepRunner::runSerial(const std::vector<SweepCase> &cases)
{
    std::vector<WorkloadReport> out;
    out.reserve(cases.size());
    for (const auto &c : cases)
        out.push_back(simulateCase(c));
    return out;
}

}  // namespace sim
}  // namespace regate
