/**
 * @file
 * Per-operator tile-level simulation (§4.4): derives each component's
 * active time, activity timeline, and work counters for one tensor
 * operator on one chip. Operator latency is the max over overlapped
 * components (the compiler double-buffers DMA against compute).
 */

#ifndef REGATE_SIM_OPERATOR_SIM_H
#define REGATE_SIM_OPERATOR_SIM_H

#include "arch/component.h"
#include "arch/npu_config.h"
#include "core/activity.h"
#include "energy/power_model.h"
#include "graph/operator.h"
#include "ici/collective.h"
#include "mem/hbm.h"
#include "sa/sa_analytical.h"

namespace regate {
namespace sim {

/** Result of simulating one operator instance. */
struct OpExecution
{
    Cycles duration = 0;                  ///< Operator latency, cycles.
    arch::Component bottleneck = arch::Component::Other;

    /** Active cycles per component within the operator. */
    arch::ComponentMap<Cycles> active;

    /** Activity timelines (SA/VU/HBM/ICI; SRAM is capacity-based). */
    arch::ComponentMap<core::ActivityTimeline> timeline;

    /** Dynamic-energy work counters. */
    energy::WorkCounters work;

    /** PE-granularity SA stats (zero for non-SA ops). */
    sa::SaTileStats saStats;

    /** SRAM bytes actually occupied during the op (capped demand). */
    double sramUsedBytes = 0;

    /** Fraction of the op during which component @p c is active. */
    double activeFraction(arch::Component c) const;
};

/** The per-operator simulator. */
class OperatorSimulator
{
  public:
    /**
     * @param cfg   Chip generation.
     * @param coll  Collective model for the pod this chip is part of.
     */
    OperatorSimulator(const arch::NpuConfig &cfg,
                      const ici::CollectiveModel &coll);

    /** Simulate one (compiled) operator. */
    OpExecution simulate(const graph::Operator &op) const;

  private:
    const arch::NpuConfig &cfg_;
    const ici::CollectiveModel &coll_;
    mem::HbmModel hbm_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_OPERATOR_SIM_H
