/**
 * @file
 * Per-operator tile-level simulation (§4.4): derives each component's
 * active time, activity timeline, and work counters for one tensor
 * operator on one chip. Operator latency is the max over overlapped
 * components (the compiler double-buffers DMA against compute).
 */

#ifndef REGATE_SIM_OPERATOR_SIM_H
#define REGATE_SIM_OPERATOR_SIM_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "arch/component.h"
#include "arch/npu_config.h"
#include "core/activity.h"
#include "energy/power_model.h"
#include "graph/operator.h"
#include "ici/collective.h"
#include "mem/hbm.h"
#include "sa/sa_analytical.h"

namespace regate {
namespace sim {

/** Result of simulating one operator instance. */
struct OpExecution
{
    Cycles duration = 0;                  ///< Operator latency, cycles.
    arch::Component bottleneck = arch::Component::Other;

    /** Active cycles per component within the operator. */
    arch::ComponentMap<Cycles> active;

    /** Activity timelines (SA/VU/HBM/ICI; SRAM is capacity-based). */
    arch::ComponentMap<core::ActivityTimeline> timeline;

    /** Dynamic-energy work counters. */
    energy::WorkCounters work;

    /** PE-granularity SA stats (zero for non-SA ops). */
    sa::SaTileStats saStats;

    /** SRAM bytes actually occupied during the op (capped demand). */
    double sramUsedBytes = 0;

    /** Fraction of the op during which component @p c is active. */
    double activeFraction(arch::Component c) const;
};

/**
 * Memoized per-operator results.
 *
 * OperatorSimulator::simulate is a pure function of the operator
 * shape, the chip generation, and the pod size, so the engine caches
 * each distinct (pod, operator-work) pair and replays the stored
 * OpExecution for the hundreds of byte-identical operators an LLM
 * decoder stack emits. One cache belongs to one chip generation (the
 * owning Engine); the pod size is part of the key because collective
 * latencies depend on the torus.
 *
 * Thread-safe: a cache may be shared by sweep-runner workers.
 * Entries are immutable shared_ptrs, so a hit is a pointer bump under
 * the lock (no deep copy of the timelines), and a hit is bitwise
 * identical to a fresh simulation because simulate() is
 * deterministic.
 */
class OpExecutionCache
{
  public:
    /** The cached execution, or nullptr on miss. */
    std::shared_ptr<const OpExecution> lookup(
        int pod_chips, const graph::Operator &op) const;

    /**
     * Store a simulated execution and return the canonical entry
     * (the already-present one if another worker raced this store).
     */
    std::shared_ptr<const OpExecution> store(int pod_chips,
                                             const graph::Operator &op,
                                             OpExecution ex);

    std::size_t size() const;
    void clear();

  private:
    struct Key
    {
        int pod = 0;
        graph::Operator op;
    };
    /** Borrowed view for heterogeneous probes (no Operator copy). */
    struct KeyRef
    {
        int pod = 0;
        const graph::Operator &op;
    };
    struct KeyHash
    {
        using is_transparent = void;

        std::size_t
        hash(int pod, const graph::Operator &op) const
        {
            return op.workHash() * 31 + static_cast<std::size_t>(pod);
        }

        std::size_t
        operator()(const Key &k) const
        {
            return hash(k.pod, k.op);
        }

        std::size_t
        operator()(const KeyRef &k) const
        {
            return hash(k.pod, k.op);
        }
    };
    struct KeyEq
    {
        using is_transparent = void;

        bool
        operator()(const Key &a, const Key &b) const
        {
            return a.pod == b.pod && a.op.sameWork(b.op);
        }

        bool
        operator()(const KeyRef &a, const Key &b) const
        {
            return a.pod == b.pod && a.op.sameWork(b.op);
        }

        bool
        operator()(const Key &a, const KeyRef &b) const
        {
            return a.pod == b.pod && a.op.sameWork(b.op);
        }
    };

    mutable std::mutex mu_;
    std::unordered_map<Key, std::shared_ptr<const OpExecution>, KeyHash,
                       KeyEq>
        map_;
};

/** The per-operator simulator. */
class OperatorSimulator
{
  public:
    /**
     * @param cfg   Chip generation.
     * @param coll  Collective model for the pod this chip is part of.
     */
    OperatorSimulator(const arch::NpuConfig &cfg,
                      const ici::CollectiveModel &coll);

    /** Simulate one (compiled) operator. */
    OpExecution simulate(const graph::Operator &op) const;

  private:
    const arch::NpuConfig &cfg_;
    const ici::CollectiveModel &coll_;
    mem::HbmModel hbm_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_OPERATOR_SIM_H
