#include "sim/operator_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace regate {
namespace sim {

using arch::Component;
using core::ActivityTimeline;
using graph::OpKind;

namespace {

/** Minimum operator latency (issue/control overhead). */
constexpr Cycles kMinOpCycles = 64;

/** Random-access efficiency of embedding gathers. */
constexpr double kGatherEfficiency = 0.5;

/**
 * Build a bursty timeline: ~@p bursts bursts covering ~@p active of
 * @p span cycles. Falls back to all-active / all-idle at the
 * extremes.
 */
ActivityTimeline
burstTimeline(Cycles span, Cycles active, std::uint64_t bursts)
{
    if (span == 0)
        return ActivityTimeline();
    if (active == 0)
        return ActivityTimeline::allIdle(span);
    if (active >= span)
        return ActivityTimeline::allActive(span);
    bursts = std::clamp<std::uint64_t>(bursts, 1, active);
    Cycles burst_len = std::max<Cycles>(1, active / bursts);
    Cycles period = std::max<Cycles>(burst_len + 1, span / bursts);
    return ActivityTimeline::periodic(span, 0, burst_len, period);
}

}  // namespace

std::shared_ptr<const OpExecution>
OpExecutionCache::lookup(int pod_chips, const graph::Operator &op) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(KeyRef{pod_chips, op});
    return it == map_.end() ? nullptr : it->second;
}

std::shared_ptr<const OpExecution>
OpExecutionCache::store(int pod_chips, const graph::Operator &op,
                        OpExecution ex)
{
    auto entry = std::make_shared<const OpExecution>(std::move(ex));
    std::lock_guard<std::mutex> lock(mu_);
    return map_.emplace(Key{pod_chips, op}, entry).first->second;
}

std::size_t
OpExecutionCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
OpExecutionCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
}

double
OpExecution::activeFraction(arch::Component c) const
{
    return duration > 0 ? static_cast<double>(active[c]) /
                              static_cast<double>(duration)
                        : 0.0;
}

OperatorSimulator::OperatorSimulator(const arch::NpuConfig &cfg,
                                     const ici::CollectiveModel &coll)
    : cfg_(cfg), coll_(coll), hbm_(cfg)
{
}

OpExecution
OperatorSimulator::simulate(const graph::Operator &op) const
{
    op.validate();
    OpExecution ex;

    const double lanes_total =
        static_cast<double>(cfg_.numVu) * cfg_.vuLanes();
    std::uint64_t tiles = 1;

    // ---- SA work ----
    if (op.kind == OpKind::MatMul && !op.mapToVu) {
        auto per_gemm = sa::analyzeMatmul(op.m, op.k, op.n, cfg_.saWidth);
        ex.saStats = per_gemm.scaled(static_cast<std::uint64_t>(op.batch));
        // GEMM instances and tiles distribute across the SAs; the
        // first weight load is exposed, later ones are
        // double-buffered behind compute.
        Cycles serial = ex.saStats.computeCycles;
        ex.active[Component::Sa] =
            serial / cfg_.numSa +
            sa::analyzeTile(1, std::min<int>(op.k, cfg_.saWidth), 1,
                            cfg_.saWidth)
                .weightLoadCycles;
        ex.work.macs = ex.saStats.macs;
        // The VUs drain/accumulate SA outputs (Fig. 15).
        ex.work.vuOps += static_cast<double>(op.batch) * op.m * op.n;
        tiles = std::max<std::uint64_t>(
            1, ex.saStats.macs / (static_cast<std::uint64_t>(
                                      cfg_.saWidth) *
                                  cfg_.saWidth * cfg_.saWidth));
    } else if (op.kind == OpKind::MatMul && op.mapToVu) {
        // Small GEMM on the VU: one MAC per lane per cycle.
        ex.work.vuOps += op.macs();
    }

    // ---- VU work ----
    ex.work.vuOps += op.vuOps;
    ex.active[Component::Vu] = static_cast<Cycles>(
        std::ceil(ex.work.vuOps / lanes_total));

    // ---- HBM ----
    double hbm_bytes = op.hbmBytes();
    double hbm_seconds = 0;
    if (op.kind == OpKind::Embedding) {
        hbm_seconds = hbm_.transferSeconds(
                          static_cast<std::uint64_t>(hbm_bytes)) /
                      kGatherEfficiency;
    } else if (hbm_bytes > 0) {
        hbm_seconds = hbm_.transferSeconds(
            static_cast<std::uint64_t>(hbm_bytes));
    }
    ex.active[Component::Hbm] = cfg_.cyclesFor(hbm_seconds);
    ex.work.hbmBytes = hbm_bytes;

    // ---- ICI ----
    if (op.kind == OpKind::Collective) {
        auto kind = [&] {
            switch (op.coll) {
              case graph::CollKind::AllReduce:
                return ici::CollectiveKind::AllReduce;
              case graph::CollKind::ReduceScatter:
                return ici::CollectiveKind::ReduceScatter;
              case graph::CollKind::AllGather:
                return ici::CollectiveKind::AllGather;
              case graph::CollKind::AllToAll:
                return ici::CollectiveKind::AllToAll;
              case graph::CollKind::P2P:
                return ici::CollectiveKind::P2PSendRecv;
              default:
                throw LogicError("collective without kind");
            }
        }();
        double secs = coll_.seconds(
            kind, static_cast<std::uint64_t>(op.collBytes));
        ex.active[Component::Ici] = cfg_.cyclesFor(secs);
        ex.work.iciBytes = coll_.wireBytes(
            kind, static_cast<std::uint64_t>(op.collBytes));
    }

    // ---- Latency: components overlap; the slowest one wins ----
    ex.duration = std::max({kMinOpCycles, ex.active[Component::Sa],
                            ex.active[Component::Vu],
                            ex.active[Component::Hbm],
                            ex.active[Component::Ici]});
    ex.bottleneck = Component::Other;
    Cycles best = 0;
    for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                   Component::Ici}) {
        if (ex.active[c] > best) {
            best = ex.active[c];
            ex.bottleneck = c;
        }
    }

    // ---- SRAM traffic & occupancy ----
    // Streams to/from HBM pass through the scratchpad; SA operands
    // stream once per tile row; VU operands come from vector memory.
    ex.work.sramBytes = 2.0 * hbm_bytes +
                        ex.work.macs / cfg_.saWidth * 4.0 +
                        ex.work.vuOps * 2.0;
    ex.sramUsedBytes = std::min(op.sramDemandBytes,
                                static_cast<double>(cfg_.sramBytes));

    // ---- Activity timelines ----
    std::uint64_t chunks = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(hbm_bytes / (4 << 20)));
    ex.timeline[Component::Sa] =
        burstTimeline(ex.duration, ex.active[Component::Sa], 1);
    ex.timeline[Component::Vu] = burstTimeline(
        ex.duration, ex.active[Component::Vu],
        op.kind == OpKind::MatMul && !op.mapToVu ? tiles : chunks);
    ex.timeline[Component::Hbm] =
        burstTimeline(ex.duration, ex.active[Component::Hbm], chunks);
    ex.timeline[Component::Ici] =
        burstTimeline(ex.duration, ex.active[Component::Ici], 1);
    return ex;
}

}  // namespace sim
}  // namespace regate
