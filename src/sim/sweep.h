/**
 * @file
 * Parallel sweep runner: fans (workload x NPU generation x gating
 * params x pod setup) grids out across a worker pool and returns
 * results in the exact order of the input grid, so a parallel sweep is
 * a drop-in replacement for the serial loop the figure binaries used
 * to run. Each grid point is simulated by its own Engine instance, so
 * points never share mutable state and the results are bitwise
 * identical to the serial path.
 */

#ifndef REGATE_SIM_SWEEP_H
#define REGATE_SIM_SWEEP_H

#include <functional>
#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "sim/report.h"
#include "sim/slo.h"

namespace regate {
namespace sim {

// parallelMapOrdered lives in common/thread_pool.h now; re-exported
// here because the sweep users (figure binaries, tests) spell it
// sim::parallelMapOrdered.
using ::regate::parallelMapOrdered;

/** One grid point of a sweep. */
struct SweepCase
{
    models::Workload workload{};
    arch::NpuGeneration gen{};
    arch::GatingParams params;

    /** Pod/batch override; defaultSetup(workload, gen) when unset. */
    bool hasSetup = false;
    models::RunSetup setup;

    /**
     * Registry-driven custom scenario; null = enum workload path.
     * When set, `workload` is ignored and the case is simulated (or
     * SLO-searched) through simulateScenario/findBestSetup over the
     * spec. scenarioCase() normalizes specs that are identical to a
     * paper workload back onto the enum, so spec-driven grids of
     * built-in scenarios serialize byte-identical to enum grids.
     */
    std::shared_ptr<const models::ScenarioSpec> scenario;
};

/** Dense (workloads x generations) grid in row-major workload order. */
std::vector<SweepCase> makeGrid(
    const std::vector<models::Workload> &workloads,
    const std::vector<arch::NpuGeneration> &gens,
    const arch::GatingParams &params = {});

/**
 * Overlay a scenario's gating overrides (logic_off, sram_sleep,
 * sram_off, delay_scale) onto @p params; keys the spec does not set
 * keep their values from @p params.
 */
void applyScenarioGating(arch::GatingParams *params,
                         const models::ScenarioSpec &spec);

/**
 * One grid point for @p spec on @p gen: @p params plus the spec's
 * gating overrides. A spec whose identity matches a paper workload
 * (models::builtinWorkloadOf) comes back as a plain enum case, so
 * running a built-in spec is bitwise the enum run.
 */
SweepCase scenarioCase(std::shared_ptr<const models::ScenarioSpec> spec,
                       arch::NpuGeneration gen,
                       const arch::GatingParams &params = {});

/** Dense (scenarios x generations) grid, scenario-major. */
std::vector<SweepCase> scenarioGrid(
    const std::vector<std::shared_ptr<const models::ScenarioSpec>>
        &scenarios,
    const std::vector<arch::NpuGeneration> &gens,
    const arch::GatingParams &params = {});

/**
 * Contiguous half-open index range [begin, end) of one shard of a
 * @p total -case grid split @p count ways. The planner is
 * deterministic and stable: shard sizes differ by at most one, shards
 * are contiguous and ordered (shard i's range ends where shard
 * i+1's begins), and the union over i = 0..count-1 is exactly
 * [0, total). Shards beyond the case count come back empty, so a
 * grid may be split more ways than it has cases.
 */
struct ShardRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
    bool empty() const { return begin == end; }
};

/** Plan shard @p index of @p count over a @p total -case grid. */
ShardRange shardRange(std::size_t total, int index, int count);

/**
 * The cases of shard @p index of @p count, in grid order. Pair each
 * returned case with its global index @c shardRange(...).begin + k
 * when serializing shard results for an index-aligned merge.
 */
std::vector<SweepCase> shardGrid(const std::vector<SweepCase> &cases,
                                 int index, int count);

/**
 * Completion callback for run()/search(): invoked once per finished
 * case with (cases completed so far, total cases), on whichever
 * worker thread finished the case. Invocations are serialized by
 * the runner and the done count advances under the same lock, so
 * the callback always observes 1, 2, ..., total in order and needs
 * no locking of its own (it must still not touch thread-unsafe
 * state shared outside the sweep). The sharded `--worker` mode uses
 * it to emit per-case heartbeat lines so a fleet driver can
 * distinguish a straggling-but-alive shard from a wedged one.
 */
using SweepProgress =
    std::function<void(std::size_t done, std::size_t total)>;

/** The runner. One instance owns one worker pool and can be reused. */
class SweepRunner
{
  public:
    /** @param threads 0 = REGATE_THREADS env or hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0) : pool_(threads) {}

    /** Simulate every case; results are index-aligned with @p cases. */
    std::vector<WorkloadReport> run(
        const std::vector<SweepCase> &cases,
        const SweepProgress &progress = {});

    /**
     * SLO-search every case (the Fig. 2 path); results index-aligned
     * with @p cases. The per-case setup override is ignored — the
     * search explores its own candidates.
     */
    std::vector<SloResult> search(
        const std::vector<SweepCase> &cases,
        const SweepProgress &progress = {});

    /** Serial reference implementation of run() for equivalence tests. */
    static std::vector<WorkloadReport> runSerial(
        const std::vector<SweepCase> &cases);

    unsigned threadCount() const { return pool_.threadCount(); }

    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool pool_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_SWEEP_H
