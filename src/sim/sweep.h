/**
 * @file
 * Parallel sweep runner: fans (workload x NPU generation x gating
 * params x pod setup) grids out across a worker pool and returns
 * results in the exact order of the input grid, so a parallel sweep is
 * a drop-in replacement for the serial loop the figure binaries used
 * to run. Each grid point is simulated by its own Engine instance, so
 * points never share mutable state and the results are bitwise
 * identical to the serial path.
 */

#ifndef REGATE_SIM_SWEEP_H
#define REGATE_SIM_SWEEP_H

#include <future>
#include <vector>

#include "common/thread_pool.h"
#include "sim/report.h"
#include "sim/slo.h"

namespace regate {
namespace sim {

// parallelMapOrdered lives in common/thread_pool.h now; re-exported
// here because the sweep users (figure binaries, tests) spell it
// sim::parallelMapOrdered.
using ::regate::parallelMapOrdered;

/** One grid point of a sweep. */
struct SweepCase
{
    models::Workload workload{};
    arch::NpuGeneration gen{};
    arch::GatingParams params;

    /** Pod/batch override; defaultSetup(workload, gen) when unset. */
    bool hasSetup = false;
    models::RunSetup setup;
};

/** Dense (workloads x generations) grid in row-major workload order. */
std::vector<SweepCase> makeGrid(
    const std::vector<models::Workload> &workloads,
    const std::vector<arch::NpuGeneration> &gens,
    const arch::GatingParams &params = {});

/** The runner. One instance owns one worker pool and can be reused. */
class SweepRunner
{
  public:
    /** @param threads 0 = REGATE_THREADS env or hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0) : pool_(threads) {}

    /** Simulate every case; results are index-aligned with @p cases. */
    std::vector<WorkloadReport> run(
        const std::vector<SweepCase> &cases);

    /**
     * SLO-search every case (the Fig. 2 path); results index-aligned
     * with @p cases. The per-case setup override is ignored — the
     * search explores its own candidates.
     */
    std::vector<SloResult> search(const std::vector<SweepCase> &cases);

    /** Serial reference implementation of run() for equivalence tests. */
    static std::vector<WorkloadReport> runSerial(
        const std::vector<SweepCase> &cases);

    unsigned threadCount() const { return pool_.threadCount(); }

    ThreadPool &pool() { return pool_; }

  private:
    ThreadPool pool_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_SWEEP_H
