/**
 * @file
 * The workload engine: runs a compiled operator graph through the
 * per-operator simulator, composes whole-run activity timelines, and
 * evaluates the five §6.1 designs — NoPG, ReGate-Base, ReGate-HW,
 * ReGate-Full, Ideal — on the same execution.
 *
 * Policy -> mechanism mapping (§4):
 *   component | NoPG | Base        | HW          | Full        | Ideal
 *   SA        | none | HwDetect    | HwDetect+PE | HwDetect+PE | Ideal+PE
 *   VU        | none | HwDetect    | HwDetect    | SwExact     | Ideal
 *   HBM       | none | HwDetect    | HwDetect    | HwDetect    | Ideal
 *   ICI       | none | HwDetect    | HwDetect    | HwDetect    | Ideal
 *   SRAM      | none | sleep unused| sleep unused| off unused  | zero
 *   Other     | never gated (§3)
 */

#ifndef REGATE_SIM_ENGINE_H
#define REGATE_SIM_ENGINE_H

#include <array>
#include <string>
#include <vector>

#include "arch/gating_params.h"
#include "arch/npu_config.h"
#include "energy/energy_breakdown.h"
#include "energy/power_model.h"
#include "graph/graph.h"
#include "sim/operator_sim.h"

namespace regate {
namespace sim {

/** The five evaluated designs. */
enum class Policy { NoPG, Base, HW, Full, Ideal };

constexpr std::size_t kNumPolicies = 5;

/** All policies in paper order. */
const std::array<Policy, kNumPolicies> &allPolicies();

/** Printable name ("NoPG", "ReGate-Base", ...). */
std::string policyName(Policy p);

/** Per-operator record kept for figure generation. */
struct OpRecord
{
    std::string name;
    graph::OpKind kind = graph::OpKind::Elementwise;
    std::uint64_t count = 0;   ///< Instances (block repeat).
    Cycles duration = 0;       ///< Cycles per instance.
    double sramDemandBytes = 0;
    double dynamicJ = 0;       ///< Dynamic energy per instance.
    double sramUsedFrac = 0;
    arch::ComponentMap<double> activeFrac;
};

/** Evaluation of one policy over one run (per chip, busy time). */
struct PolicyResult
{
    Policy policy = Policy::NoPG;
    Cycles overheadCycles = 0;   ///< Wake-up cycles added to runtime.
    double seconds = 0;          ///< Runtime including overhead.
    double perfOverhead = 0;     ///< Fractional slowdown vs NoPG.
    energy::EnergyBreakdown energy;  ///< Busy energy per chip.
    double avgPowerW = 0;
    double peakPowerW = 0;       ///< Most power-hungry operator.
    std::uint64_t vuGateEvents = 0;   ///< Gated VU intervals.
    std::uint64_t sramSetpmPairs = 0; ///< SRAM resize setpm pairs.
};

/** One workload execution with all policies evaluated. */
struct WorkloadRun
{
    std::string name;
    Cycles cycles = 0;      ///< Base runtime (no gating overhead).
    double seconds = 0;
    arch::ComponentMap<core::ActivityTimeline> timeline;
    energy::WorkCounters work;
    sa::SaTileStats saStats;
    double sramUsedIntegral = 0;  ///< Sum over time of used fraction.
    std::vector<OpRecord> opRecords;
    std::array<PolicyResult, kNumPolicies> policies;

    /**
     * Operator-memoization counters for this run (diagnostics only).
     * When simulateWorkload replays a run from the whole-run memo
     * (sim/graph_cache.h), these describe the engine pass that
     * originally produced the stored run, not the replaying call.
     */
    std::uint64_t opCacheHits = 0;
    std::uint64_t opCacheMisses = 0;

    const PolicyResult &result(Policy p) const;

    /** Fig. 4/6/8/9 metric. */
    double temporalUtil(arch::Component c) const;

    /** Fig. 5 metric. */
    double saSpatialUtil() const { return saStats.spatialUtilization(); }

    /** Fractional energy saving of @p p vs NoPG. */
    double savingVsNoPg(Policy p) const;
};

/** The engine. */
class Engine
{
  public:
    Engine(const arch::NpuConfig &cfg,
           const arch::GatingParams &params = {});

    /**
     * Run a compiled graph on one chip of a @p pod_chips pod.
     * @p graph must already be compiled (fusion + tiling annotations).
     */
    WorkloadRun run(const graph::OperatorGraph &graph,
                    int pod_chips) const;

    /**
     * Enable/disable operator memoization (default on). Cached and
     * uncached runs produce bitwise-identical results; the switch
     * exists for benchmarking and equivalence tests.
     */
    void setMemoization(bool on) { memoize_ = on; }
    bool memoizationEnabled() const { return memoize_; }

    /**
     * Share an external operator cache (e.g. the per-generation cache
     * simulateWorkload keeps) instead of the engine's own. The cache
     * must outlive the engine and must only be shared between engines
     * built for the same chip generation; pass nullptr to revert.
     */
    void setOpCache(OpExecutionCache *cache) { external_cache_ = cache; }

    /** The active operator cache (persists across run() calls). */
    const OpExecutionCache &
    opCache() const
    {
        return external_cache_ ? *external_cache_ : own_cache_;
    }

    /**
     * Drop every memoized operator result in the active cache (the
     * shared one if setOpCache was used). For callers that want the
     * next run() to be a genuinely cold re-simulation; correctness
     * never requires it. Process-wide caches (the compiled-graph
     * cache, other generations' op caches) are cleared with
     * sim::clearSharedCaches() in sim/report.h.
     */
    void
    clearCaches()
    {
        (external_cache_ ? *external_cache_ : own_cache_).clear();
    }

    const energy::PowerModel &powerModel() const { return power_; }
    const arch::GatingParams &params() const { return params_; }
    const arch::NpuConfig &config() const { return cfg_; }

  private:
    struct BlockOutcome;

    void evaluatePolicy(WorkloadRun &run, Policy policy,
                        const std::array<Cycles, kNumPolicies>
                            &overheads) const;

    const arch::NpuConfig &cfg_;
    arch::GatingParams params_;
    energy::PowerModel power_;
    bool memoize_ = true;
    OpExecutionCache *external_cache_ = nullptr;
    mutable OpExecutionCache own_cache_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_ENGINE_H
