/**
 * @file
 * The workload engine: runs a compiled operator graph through the
 * per-operator simulator, composes whole-run activity timelines, and
 * evaluates the five §6.1 designs — NoPG, ReGate-Base, ReGate-HW,
 * ReGate-Full, Ideal — on the same execution.
 *
 * Policy -> mechanism mapping (§4):
 *   component | NoPG | Base        | HW          | Full        | Ideal
 *   SA        | none | HwDetect    | HwDetect+PE | HwDetect+PE | Ideal+PE
 *   VU        | none | HwDetect    | HwDetect    | SwExact     | Ideal
 *   HBM       | none | HwDetect    | HwDetect    | HwDetect    | Ideal
 *   ICI       | none | HwDetect    | HwDetect    | HwDetect    | Ideal
 *   SRAM      | none | sleep unused| sleep unused| off unused  | zero
 *   Other     | never gated (§3)
 */

#ifndef REGATE_SIM_ENGINE_H
#define REGATE_SIM_ENGINE_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/gating_params.h"
#include "arch/npu_config.h"
#include "energy/energy_breakdown.h"
#include "energy/power_model.h"
#include "graph/graph.h"
#include "sim/operator_sim.h"

namespace regate {
namespace sim {

/** The five evaluated designs. */
enum class Policy { NoPG, Base, HW, Full, Ideal };

constexpr std::size_t kNumPolicies = 5;

/** All policies in paper order. */
const std::array<Policy, kNumPolicies> &allPolicies();

/** Printable name ("NoPG", "ReGate-Base", ...). */
std::string policyName(Policy p);

/** Per-operator record kept for figure generation. */
struct OpRecord
{
    std::string name;
    graph::OpKind kind = graph::OpKind::Elementwise;
    std::uint64_t count = 0;   ///< Instances (block repeat).
    Cycles duration = 0;       ///< Cycles per instance.
    double sramDemandBytes = 0;
    double dynamicJ = 0;       ///< Dynamic energy per instance.
    double sramUsedFrac = 0;
    arch::ComponentMap<double> activeFrac;
};

/**
 * Struct-of-arrays storage for a run's per-operator records, with an
 * interned name table: one parallel vector per field plus a flattened
 * active-fraction matrix, and each distinct operator name stored once
 * (transformer blocks repeat the same few op names hundreds of
 * times). Figure loops touch one or two fields of every record, so
 * the arena is both cache-friendlier and far smaller than the
 * vector<OpRecord> it replaced — which also keeps the whole-run
 * memo's byte accounting honest (heapBytes()).
 *
 * append() takes the familiar OpRecord value; seal() drops the
 * build-time interner and trims capacity once a run is complete.
 * Indexing and iteration yield lightweight Ref proxies with accessor
 * methods (rec.duration(), rec.name(), rec.activeFrac(c), ...).
 */
class OpRecordArena
{
  public:
    /** Cheap view of one record; valid while the arena lives. */
    class Ref
    {
      public:
        const std::string &
        name() const
        {
            return a_->names_[a_->nameId_[i_]];
        }
        graph::OpKind kind() const { return a_->kind_[i_]; }
        std::uint64_t count() const { return a_->count_[i_]; }
        Cycles duration() const { return a_->duration_[i_]; }
        double
        sramDemandBytes() const
        {
            return a_->sramDemandBytes_[i_];
        }
        double dynamicJ() const { return a_->dynamicJ_[i_]; }
        double sramUsedFrac() const { return a_->sramUsedFrac_[i_]; }
        double
        activeFrac(arch::Component c) const
        {
            return a_->activeFrac_[i_ * arch::kNumComponents +
                                   arch::componentIndex(c)];
        }

      private:
        friend class OpRecordArena;
        Ref(const OpRecordArena *a, std::size_t i) : a_(a), i_(i) {}
        const OpRecordArena *a_;
        std::size_t i_;
    };

    /** Forward iterator yielding Ref values (range-for support). */
    class Iterator
    {
      public:
        Ref operator*() const { return Ref(a_, i_); }
        Iterator &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator==(const Iterator &o) const
        {
            return i_ == o.i_;
        }
        bool
        operator!=(const Iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        friend class OpRecordArena;
        Iterator(const OpRecordArena *a, std::size_t i) : a_(a), i_(i)
        {}
        const OpRecordArena *a_;
        std::size_t i_;
    };

    /** Append one record, interning its name. */
    void append(const OpRecord &rec);

    /** Pre-size every column for @p n records. */
    void reserve(std::size_t n);

    /**
     * Drop the build-time interner map and trim every column to its
     * size. Call once the run is complete; append() after seal()
     * stays correct but no longer dedups new names.
     */
    void seal();

    std::size_t size() const { return duration_.size(); }
    bool empty() const { return duration_.empty(); }
    Ref operator[](std::size_t i) const { return Ref(this, i); }
    Iterator begin() const { return Iterator(this, 0); }
    Iterator end() const { return Iterator(this, size()); }

    /** Distinct interned names (diagnostics/tests). */
    std::size_t nameCount() const { return names_.size(); }

    /**
     * Approximate heap footprint in bytes, from column and string
     * capacities. Meaningful after seal() (the interner map is not
     * charged; sealing empties it).
     */
    std::size_t heapBytes() const;

  private:
    std::vector<std::uint32_t> nameId_;
    std::vector<graph::OpKind> kind_;
    std::vector<std::uint64_t> count_;
    std::vector<Cycles> duration_;
    std::vector<double> sramDemandBytes_;
    std::vector<double> dynamicJ_;
    std::vector<double> sramUsedFrac_;
    /** size() * kNumComponents, record-major. */
    std::vector<double> activeFrac_;
    std::vector<std::string> names_;  ///< Interned name table.
    std::unordered_map<std::string, std::uint32_t> interner_;
};

/** Evaluation of one policy over one run (per chip, busy time). */
struct PolicyResult
{
    Policy policy = Policy::NoPG;
    Cycles overheadCycles = 0;   ///< Wake-up cycles added to runtime.
    double seconds = 0;          ///< Runtime including overhead.
    double perfOverhead = 0;     ///< Fractional slowdown vs NoPG.
    energy::EnergyBreakdown energy;  ///< Busy energy per chip.
    double avgPowerW = 0;
    double peakPowerW = 0;       ///< Most power-hungry operator.
    std::uint64_t vuGateEvents = 0;   ///< Gated VU intervals.
    std::uint64_t sramSetpmPairs = 0; ///< SRAM resize setpm pairs.
};

/** One workload execution with all policies evaluated. */
struct WorkloadRun
{
    WorkloadRun() = default;
    WorkloadRun(WorkloadRun &&) = default;
    WorkloadRun &operator=(WorkloadRun &&) = default;
    /** Deep copy; counted process-wide (see copies()). */
    WorkloadRun(const WorkloadRun &);
    WorkloadRun &operator=(const WorkloadRun &);

    std::string name;
    Cycles cycles = 0;      ///< Base runtime (no gating overhead).
    double seconds = 0;
    arch::ComponentMap<core::ActivityTimeline> timeline;
    energy::WorkCounters work;
    sa::SaTileStats saStats;
    double sramUsedIntegral = 0;  ///< Sum over time of used fraction.
    OpRecordArena opRecords;
    std::array<PolicyResult, kNumPolicies> policies;

    /**
     * Operator-memoization counters for this run (diagnostics only).
     * When simulateWorkload replays a run from the whole-run memo
     * (sim/graph_cache.h), these describe the engine pass that
     * originally produced the stored run, not the replaying call.
     */
    std::uint64_t opCacheHits = 0;
    std::uint64_t opCacheMisses = 0;

    const PolicyResult &result(Policy p) const;

    /** Fig. 4/6/8/9 metric. */
    double temporalUtil(arch::Component c) const;

    /** Fig. 5 metric. */
    double saSpatialUtil() const { return saStats.spatialUtilization(); }

    /** Fractional energy saving of @p p vs NoPG. */
    double savingVsNoPg(Policy p) const;

    /**
     * Process-wide count of WorkloadRun deep copies since program
     * start (monotonic, thread-safe). The zero-copy warm-hit
     * guarantee — a memoized simulateWorkload replay performs no
     * WorkloadRun copy at all — is pinned by tests and benches that
     * sample this counter around cache replays.
     */
    static std::uint64_t copies();
};

/** The engine. */
class Engine
{
  public:
    Engine(const arch::NpuConfig &cfg,
           const arch::GatingParams &params = {});

    /**
     * Run a compiled graph on one chip of a @p pod_chips pod.
     * @p graph must already be compiled (fusion + tiling annotations).
     */
    WorkloadRun run(const graph::OperatorGraph &graph,
                    int pod_chips) const;

    /**
     * Enable/disable operator memoization (default on). Cached and
     * uncached runs produce bitwise-identical results; the switch
     * exists for benchmarking and equivalence tests.
     */
    void setMemoization(bool on) { memoize_ = on; }
    bool memoizationEnabled() const { return memoize_; }

    /**
     * Share an external operator cache (e.g. the per-generation cache
     * simulateWorkload keeps) instead of the engine's own. The cache
     * must outlive the engine and must only be shared between engines
     * built for the same chip generation; pass nullptr to revert.
     */
    void setOpCache(OpExecutionCache *cache) { external_cache_ = cache; }

    /** The active operator cache (persists across run() calls). */
    const OpExecutionCache &
    opCache() const
    {
        return external_cache_ ? *external_cache_ : own_cache_;
    }

    /**
     * Drop every memoized operator result in the active cache (the
     * shared one if setOpCache was used). For callers that want the
     * next run() to be a genuinely cold re-simulation; correctness
     * never requires it. Process-wide caches (the compiled-graph
     * cache, other generations' op caches) are cleared with
     * sim::clearSharedCaches() in sim/report.h.
     */
    void
    clearCaches()
    {
        (external_cache_ ? *external_cache_ : own_cache_).clear();
    }

    const energy::PowerModel &powerModel() const { return power_; }
    const arch::GatingParams &params() const { return params_; }
    const arch::NpuConfig &config() const { return cfg_; }

  private:
    struct BlockOutcome;

    void evaluatePolicy(WorkloadRun &run, Policy policy,
                        const std::array<Cycles, kNumPolicies>
                            &overheads) const;

    const arch::NpuConfig &cfg_;
    arch::GatingParams params_;
    energy::PowerModel power_;
    bool memoize_ = true;
    OpExecutionCache *external_cache_ = nullptr;
    mutable OpExecutionCache own_cache_;
};

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_ENGINE_H
