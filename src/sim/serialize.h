/**
 * @file
 * Exact JSON serialization of sweep results, the wire format of the
 * sharded multi-process sweep runner.
 *
 * A shard document carries the index-aligned results of one shard of
 * a SweepCase grid (sim::shardRange): every WorkloadReport or
 * SloResult is stored together with its global grid index, so N
 * shard files reassemble into the exact result vector the unsharded
 * SweepRunner would have produced. Round-tripping is bit-exact:
 *
 *  - doubles are printed with %.17g (every IEEE-754 double
 *    round-trips through 17 significant digits) and parsed with
 *    strtod, both in the C locale;
 *  - 64-bit counters (Cycles can exceed 2^53) are printed as decimal
 *    integers and parsed with strtoull, never routed through a
 *    double;
 *  - the writer is canonical — fixed key order, no locale, one
 *    entry per line — so equal results serialize to equal bytes and
 *    a merged document is deterministic regardless of shard order
 *    or count.
 *
 * The one-entry-per-line layout is load-bearing for
 * tools/merge_shards.py: the merge tool validates coverage by
 * parsing entry indices but reassembles the merged document from the
 * verbatim entry lines, so it can never perturb a number.
 *
 * One field is intentionally NOT round-tripped: WorkloadRun's
 * opCacheHits/opCacheMisses diagnostics depend on in-process cache
 * warmth — the same grid point simulated under different shard
 * partitions reports different counters — so the writer normalizes
 * them to zero. Everything a figure renders is exact.
 *
 * Format version 2 adds content digests so silent artifact
 * corruption in multi-machine runs fails loudly instead of merging
 * wrong numbers:
 *
 *  - every entry line carries "digest": the 64-bit FNV-1a (hex16,
 *    common/hash.h) of the entry's canonical result JSON;
 *  - the document footer carries "file_digest": FNV-1a over the
 *    concatenation of every entry line plus a trailing '\n' each, in
 *    document order — so dropped, duplicated, or reordered entry
 *    lines are caught even when each line is individually intact.
 *
 * Both digests are verified by parseShard on every read (and by
 * tools/merge_shards.py, which implements the same FNV-1a);
 * a mismatch throws ConfigError naming the grid index. Version 1
 * files (no digests) are rejected with a version error.
 */

#ifndef REGATE_SIM_SERIALIZE_H
#define REGATE_SIM_SERIALIZE_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/report.h"
#include "sim/slo.h"

namespace regate {
namespace sim {

/** Canonical JSON of one report (no trailing newline). */
std::string toJson(const WorkloadReport &rep);

/** Canonical JSON of one SLO-search result (no trailing newline). */
std::string toJson(const SloResult &res);

/** Exact inverses of toJson; throw ConfigError on malformed input. */
WorkloadReport reportFromJson(const std::string &text);
SloResult sloResultFromJson(const std::string &text);

/** What a shard file stores: run reports or SLO-search results. */
enum class ShardKind { Run, Search };

/** One parsed shard (or merged) document. */
struct ShardDoc
{
    ShardKind kind = ShardKind::Run;
    std::size_t cases = 0;  ///< Total grid size across all shards.
    int shardIndex = 0;
    int shardCount = 1;

    /**
     * Content digest of the scenario spec file the grid came from
     * (models::SpecFile::digest); empty for enum-driven grids. Every
     * shard of one sweep must carry the same digest — the merge
     * refuses to combine shards computed from different spec files.
     */
    std::string specDigest;

    /** (global grid index, result); exactly one list is non-empty. */
    std::vector<std::pair<std::size_t, WorkloadReport>> runs;
    std::vector<std::pair<std::size_t, SloResult>> searches;

    /**
     * (global grid index, canonical result JSON), aligned with the
     * non-empty list above. parseShard builds these texts anyway to
     * verify the digests; keeping them lets the orchestrator's
     * streaming merger reuse them instead of re-serializing every
     * result.
     */
    std::vector<std::pair<std::size_t, std::string>> entryTexts;
};

/**
 * Serialize one shard's results. @p first_index is the shard's
 * global offset (shardRange(...).begin); entry k gets grid index
 * first_index + k. A merged document is the @p shard_index = 0,
 * @p shard_count = 1 spelling with every entry present.
 */
std::string writeRunShard(const std::vector<WorkloadReport> &results,
                          std::size_t first_index, std::size_t cases,
                          int shard_index, int shard_count,
                          const std::string &spec_digest = {});
std::string writeSearchShard(const std::vector<SloResult> &results,
                             std::size_t first_index,
                             std::size_t cases, int shard_index,
                             int shard_count,
                             const std::string &spec_digest = {});

/**
 * Parse a shard document, verifying both content digests (see the
 * file comment); throws ConfigError on malformed input, a format
 * version other than the current one, or a digest mismatch.
 */
ShardDoc parseShard(const std::string &text);

/**
 * hex16 FNV-1a content digest of a byte string — the digest function
 * of the shard format (entry digests are contentDigest of the
 * canonical result JSON). Exposed so the orchestrator can cross-check
 * artifacts end to end (e.g. a worker's reported whole-file digest
 * against the bytes that actually landed on shared storage).
 */
std::string contentDigest(const std::string &bytes);

/**
 * Assemble a shard document from pre-serialized canonical entry
 * texts ((global grid index, toJson(result)) pairs, in index order).
 * This is the one definition of the document scaffolding: the
 * write*Shard functions and the orchestrator's streaming merger both
 * delegate here, so a merged document is byte-identical to the
 * single-shard document the binary itself would write. The entries
 * must exactly cover shardRange(cases, shard_index, shard_count).
 */
std::string assembleShardDoc(
    ShardKind kind, std::size_t cases, int shard_index,
    int shard_count,
    const std::vector<std::pair<std::size_t, std::string>> &entries,
    const std::string &spec_digest = {});

/**
 * Reassemble the index-aligned result vector from shard documents
 * (any order). Every document must agree on kind and total case
 * count, and the entries must cover every grid index exactly once —
 * a gap, duplicate, or kind mismatch throws ConfigError.
 */
std::vector<WorkloadReport> mergeRunShards(
    const std::vector<ShardDoc> &shards);
std::vector<SloResult> mergeSearchShards(
    const std::vector<ShardDoc> &shards);

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_SERIALIZE_H
