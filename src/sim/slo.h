/**
 * @file
 * SLO-compliant configuration search (§3, Table 4): for each workload
 * and NPU generation, find the most energy-efficient pod
 * configuration whose per-unit latency (or training throughput) meets
 * the SLO. The 1x SLO is defined as 5x the latency (1/5 the
 * throughput) of the default batch on the minimum NPU-D pod [78].
 */

#ifndef REGATE_SIM_SLO_H
#define REGATE_SIM_SLO_H

#include <vector>

#include "common/thread_pool.h"
#include "sim/report.h"

namespace regate {
namespace sim {

/** Outcome of the search for one (workload, generation). */
struct SloResult
{
    models::RunSetup setup;
    double secondsPerUnit = 0;   ///< Achieved latency per work unit.
    double energyPerUnit = 0;    ///< NoPG J/unit (Fig. 2 metric).
    double sloRatio = 1;         ///< Attained SLO multiple (1 = meets
                                 ///< 1x; 2 = needed 2x relaxation).
    WorkloadReport report;       ///< The winning simulation.
};

/** Seconds-per-unit at the 1x SLO for @p workload. */
double sloTargetSecondsPerUnit(models::Workload workload);

/** The 1x SLO of a registry-driven custom scenario (same rule). */
double sloTargetSecondsPerUnit(
    const std::shared_ptr<const models::ScenarioSpec> &spec);

/**
 * Search candidate setups (chip counts around Table 4, halved/doubled
 * batches) on @p gen; returns the most energy-efficient compliant
 * configuration, or the fastest one with its attained (relaxed) SLO
 * ratio if none complies — mirroring the "2x" labels in Fig. 2.
 *
 * The candidate evaluations fan out on @p pool (nullptr picks a
 * process-wide pool sized by REGATE_THREADS / hardware concurrency,
 * separate from the sweep runner's so a SweepRunner::search worker
 * can nest this call without deadlocking). Winner selection replays
 * the serial loop over the input-ordered results, so ties break
 * identically to findBestSetupSerial at any thread count.
 */
SloResult findBestSetup(models::Workload workload,
                        arch::NpuGeneration gen,
                        const arch::GatingParams &params = {},
                        ThreadPool *pool = nullptr);

/** Serial reference implementation (equivalence tests). */
SloResult findBestSetupSerial(models::Workload workload,
                              arch::NpuGeneration gen,
                              const arch::GatingParams &params = {});

/** findBestSetup for a registry-driven custom scenario. */
SloResult findBestSetup(
    std::shared_ptr<const models::ScenarioSpec> spec,
    arch::NpuGeneration gen, const arch::GatingParams &params = {},
    ThreadPool *pool = nullptr);

/** Serial reference implementation of the scenario search. */
SloResult findBestSetupSerial(
    std::shared_ptr<const models::ScenarioSpec> spec,
    arch::NpuGeneration gen, const arch::GatingParams &params = {});

/** Candidate setups the search explores (exposed for tests). */
std::vector<models::RunSetup> candidateSetups(models::Workload workload,
                                              arch::NpuGeneration gen);

/** Scenario-path candidates (around defaultScenarioSetup). */
std::vector<models::RunSetup> candidateSetups(
    const models::ScenarioSpec &spec, arch::NpuGeneration gen);

/**
 * The one candidate enumerator both paths share: chip counts around
 * @p base (1x/2x/4x), batches halved/quartered, parallelism re-split
 * by growing dp with the extra chips, dp > batch candidates skipped.
 */
std::vector<models::RunSetup> candidateSetupsFrom(
    const models::RunSetup &base);

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_SLO_H
