#include "sim/graph_cache.h"

#include <cstdint>
#include <cstdlib>

namespace regate {
namespace sim {

std::size_t
WorkloadRunCache::entryBytes(const WorkloadRun &run)
{
    // Charge the entry's true heap footprint: allocated capacities,
    // not element counts. The old accounting summed sizeof(OpRecord)
    // + name.size() per record, which both missed vector slack and
    // undercounted the record storage itself — the dominant
    // allocation — so the LRU budget (REGATE_RUN_CACHE_MB) could blow
    // far past its configured bytes.
    std::size_t bytes = sizeof(Entry) + sizeof(WorkloadRun);
    bytes += run.name.capacity();
    bytes += run.opRecords.heapBytes();
    for (auto c : arch::kAllComponents)
        bytes += run.timeline[c].gaps().capacity() *
                 sizeof(core::GapGroup);
    return bytes;
}

std::shared_ptr<const WorkloadRun>
WorkloadRunCache::lookup(models::Workload w,
                         const models::RunSetup &setup,
                         arch::NpuGeneration gen,
                         const arch::GatingParams &params) const
{
    return lookup(RunKey{{w, gen, setup, {}}, params});
}

std::shared_ptr<const WorkloadRun>
WorkloadRunCache::lookup(const RunKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        ++misses_;
        REGATE_OBS(if (obsMisses_) obsMisses_->add(1));
        return nullptr;
    }
    ++hits_;
    REGATE_OBS(if (obsHits_) obsHits_->add(1));
    // A hit becomes the most-recently-used entry; splice just
    // relinks list nodes, so the iterator in map_ stays valid.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->run;
}

std::shared_ptr<const WorkloadRun>
WorkloadRunCache::store(models::Workload w,
                        const models::RunSetup &setup,
                        arch::NpuGeneration gen,
                        const arch::GatingParams &params,
                        WorkloadRun run)
{
    return store(RunKey{{w, gen, setup, {}}, params}, std::move(run));
}

std::shared_ptr<const WorkloadRun>
WorkloadRunCache::store(const RunKey &key, WorkloadRun run)
{
    auto entry = std::make_shared<const WorkloadRun>(std::move(run));
    std::size_t bytes = entryBytes(*entry);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // First writer wins (the memoized function is deterministic,
        // so the racing values are identical); refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->run;
    }
    lru_.push_front(Entry{key, entry, bytes});
    map_.emplace(key, lru_.begin());
    totalBytes_ += bytes;
    evictOverBudgetLocked();
    REGATE_OBS(updateObsGaugesLocked());
    return entry;
}

void
WorkloadRunCache::evictOverBudgetLocked()
{
    if (byteBudget_ == 0)
        return;
    // Never evict the most-recently-used entry: a store must survive
    // its own insertion even if one run exceeds the whole budget.
    while (totalBytes_ > byteBudget_ && lru_.size() > 1) {
        const auto &victim = lru_.back();
        totalBytes_ -= victim.bytes;
        map_.erase(victim.key);
        lru_.pop_back();
        ++evictions_;
        REGATE_OBS(if (obsEvictions_) obsEvictions_->add(1));
    }
}

void
WorkloadRunCache::setByteBudget(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    byteBudget_ = bytes;
    evictOverBudgetLocked();
}

std::size_t
WorkloadRunCache::byteBudget() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return byteBudget_;
}

std::size_t
WorkloadRunCache::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalBytes_;
}

std::size_t
WorkloadRunCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

void
WorkloadRunCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    totalBytes_ = 0;
    REGATE_OBS(updateObsGaugesLocked());
}

void
WorkloadRunCache::attachObs(const std::string &prefix)
{
    auto &reg = obs::MetricsRegistry::instance();
    std::lock_guard<std::mutex> lock(mu_);
    obsHits_ = &reg.counter(prefix + ".hits");
    obsMisses_ = &reg.counter(prefix + ".misses");
    obsEvictions_ = &reg.counter(prefix + ".evictions");
    obsBytes_ = &reg.gauge(prefix + ".bytes");
    obsEntries_ = &reg.gauge(prefix + ".entries");
    updateObsGaugesLocked();
}

void
WorkloadRunCache::updateObsGaugesLocked()
{
    if (obsBytes_)
        obsBytes_->set(static_cast<std::int64_t>(totalBytes_));
    if (obsEntries_)
        obsEntries_->set(static_cast<std::int64_t>(map_.size()));
}

std::uint64_t
WorkloadRunCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
WorkloadRunCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

std::uint64_t
WorkloadRunCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

CompiledGraphCache &
sharedGraphCache()
{
    // The process-wide instance is the one whose counting the
    // telemetry registry mirrors ("sim.graph_cache.*"); private
    // instances stay registry-silent.
    static CompiledGraphCache &cache = []() -> CompiledGraphCache & {
        static CompiledGraphCache c;
        c.attachObs("sim.graph_cache");
        return c;
    }();
    return cache;
}

namespace {

/** REGATE_RUN_CACHE_MB in bytes; default on unset/malformed input. */
std::size_t
runCacheBudgetFromEnv()
{
    const char *env = std::getenv("REGATE_RUN_CACHE_MB");
    if (!env || *env == '\0')
        return WorkloadRunCache::kDefaultByteBudget;
    char *end = nullptr;
    double mb = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(mb >= 0))
        return WorkloadRunCache::kDefaultByteBudget;
    // Clamp before the float->integer conversion: casting a value
    // outside size_t's range is undefined behavior.
    constexpr double max_mb =
        static_cast<double>(SIZE_MAX >> 21);
    if (mb >= max_mb)
        return SIZE_MAX;
    return static_cast<std::size_t>(mb * (std::size_t(1) << 20));
}

}  // namespace

WorkloadRunCache &
sharedRunCache()
{
    static WorkloadRunCache &cache = []() -> WorkloadRunCache & {
        static WorkloadRunCache c(runCacheBudgetFromEnv());
        c.attachObs("sim.run_cache");
        return c;
    }();
    return cache;
}

}  // namespace sim
}  // namespace regate
