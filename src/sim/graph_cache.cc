#include "sim/graph_cache.h"

namespace regate {
namespace sim {

CompiledGraphCache &
sharedGraphCache()
{
    static CompiledGraphCache cache;
    return cache;
}

WorkloadRunCache &
sharedRunCache()
{
    static WorkloadRunCache cache;
    return cache;
}

}  // namespace sim
}  // namespace regate
