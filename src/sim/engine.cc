#include "sim/engine.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "obs/metrics.h"
#include "core/gating_engine.h"
#include "ici/topology.h"

namespace regate {
namespace sim {

using arch::Component;
using arch::GatedUnit;
using core::ActivityTimeline;
using core::GatingMode;

const std::array<Policy, kNumPolicies> &
allPolicies()
{
    static const std::array<Policy, kNumPolicies> all = {
        Policy::NoPG, Policy::Base, Policy::HW, Policy::Full,
        Policy::Ideal};
    return all;
}

std::string
policyName(Policy p)
{
    switch (p) {
      case Policy::NoPG:
        return "NoPG";
      case Policy::Base:
        return "ReGate-Base";
      case Policy::HW:
        return "ReGate-HW";
      case Policy::Full:
        return "ReGate-Full";
      case Policy::Ideal:
        return "Ideal";
    }
    throw LogicError("unknown Policy");
}

void
OpRecordArena::append(const OpRecord &rec)
{
    auto [it, inserted] = interner_.emplace(
        rec.name, static_cast<std::uint32_t>(names_.size()));
    if (inserted)
        names_.push_back(rec.name);
    nameId_.push_back(it->second);
    kind_.push_back(rec.kind);
    count_.push_back(rec.count);
    duration_.push_back(rec.duration);
    sramDemandBytes_.push_back(rec.sramDemandBytes);
    dynamicJ_.push_back(rec.dynamicJ);
    sramUsedFrac_.push_back(rec.sramUsedFrac);
    for (auto c : arch::kAllComponents)
        activeFrac_.push_back(rec.activeFrac[c]);
}

void
OpRecordArena::reserve(std::size_t n)
{
    nameId_.reserve(n);
    kind_.reserve(n);
    count_.reserve(n);
    duration_.reserve(n);
    sramDemandBytes_.reserve(n);
    dynamicJ_.reserve(n);
    sramUsedFrac_.reserve(n);
    activeFrac_.reserve(n * arch::kNumComponents);
}

void
OpRecordArena::seal()
{
    interner_ = {};
    nameId_.shrink_to_fit();
    kind_.shrink_to_fit();
    count_.shrink_to_fit();
    duration_.shrink_to_fit();
    sramDemandBytes_.shrink_to_fit();
    dynamicJ_.shrink_to_fit();
    sramUsedFrac_.shrink_to_fit();
    activeFrac_.shrink_to_fit();
    names_.shrink_to_fit();
}

std::size_t
OpRecordArena::heapBytes() const
{
    std::size_t bytes =
        nameId_.capacity() * sizeof(std::uint32_t) +
        kind_.capacity() * sizeof(graph::OpKind) +
        count_.capacity() * sizeof(std::uint64_t) +
        duration_.capacity() * sizeof(Cycles) +
        sramDemandBytes_.capacity() * sizeof(double) +
        dynamicJ_.capacity() * sizeof(double) +
        sramUsedFrac_.capacity() * sizeof(double) +
        activeFrac_.capacity() * sizeof(double) +
        names_.capacity() * sizeof(std::string);
    for (const auto &n : names_)
        bytes += n.capacity();
    return bytes;
}

namespace {

std::atomic<std::uint64_t> g_run_copies{0};

/**
 * Registry mirror of the deep-copy count ("sim.run.copies"); the
 * local atomic stays authoritative for WorkloadRun::copies() so the
 * zero-copy tests are independent of registry state.
 */
void
countRunCopy()
{
    g_run_copies.fetch_add(1, std::memory_order_relaxed);
    REGATE_OBS({
        static obs::Counter &copies =
            obs::MetricsRegistry::instance().counter(
                "sim.run.copies");
        copies.add(1);
    });
}

}  // namespace

WorkloadRun::WorkloadRun(const WorkloadRun &o)
    : name(o.name), cycles(o.cycles), seconds(o.seconds),
      timeline(o.timeline), work(o.work), saStats(o.saStats),
      sramUsedIntegral(o.sramUsedIntegral), opRecords(o.opRecords),
      policies(o.policies), opCacheHits(o.opCacheHits),
      opCacheMisses(o.opCacheMisses)
{
    countRunCopy();
}

WorkloadRun &
WorkloadRun::operator=(const WorkloadRun &o)
{
    if (this != &o) {
        name = o.name;
        cycles = o.cycles;
        seconds = o.seconds;
        timeline = o.timeline;
        work = o.work;
        saStats = o.saStats;
        sramUsedIntegral = o.sramUsedIntegral;
        opRecords = o.opRecords;
        policies = o.policies;
        opCacheHits = o.opCacheHits;
        opCacheMisses = o.opCacheMisses;
    }
    countRunCopy();
    return *this;
}

std::uint64_t
WorkloadRun::copies()
{
    return g_run_copies.load(std::memory_order_relaxed);
}

const PolicyResult &
WorkloadRun::result(Policy p) const
{
    return policies[static_cast<std::size_t>(p)];
}

double
WorkloadRun::temporalUtil(arch::Component c) const
{
    return timeline[c].utilization();
}

double
WorkloadRun::savingVsNoPg(Policy p) const
{
    double base = result(Policy::NoPG).energy.busyTotal();
    return base > 0 ? 1.0 - result(p).energy.busyTotal() / base : 0.0;
}

Engine::Engine(const arch::NpuConfig &cfg,
               const arch::GatingParams &params)
    : cfg_(cfg), params_(params), power_(cfg)
{
}

namespace {

/** Usage window of one component inside a block. */
struct Usage
{
    Cycles start;
    Cycles end;
    Component bottleneck;  ///< Bottleneck of the op that used it.
};

}  // namespace

WorkloadRun
Engine::run(const graph::OperatorGraph &graph, int pod_chips) const
{
    graph.validate();
    ici::Torus torus = ici::Torus::forChips(cfg_, pod_chips);
    ici::CollectiveModel coll(cfg_, torus);
    OperatorSimulator op_sim(cfg_, coll);

    WorkloadRun run;
    run.name = graph.name;
    std::array<Cycles, kNumPolicies> overheads{};

    for (const auto &block : graph.blocks) {
        arch::ComponentMap<ActivityTimeline> block_tl;
        energy::WorkCounters block_work;
        sa::SaTileStats block_sa;
        double block_sram_integral = 0;
        Cycles block_dur = 0;
        arch::ComponentMap<std::vector<Usage>> usage;
        std::uint64_t sram_resizes = 0;
        bool have_prev_used = false;
        std::uint64_t prev_used_bytes = 0;
        Cycles base_vu_stalls = 0;

        OpExecutionCache &cache =
            external_cache_ ? *external_cache_ : own_cache_;
        for (const auto &op : block.ops) {
            std::shared_ptr<const OpExecution> cached;
            OpExecution fresh;
            if (memoize_) {
                cached = cache.lookup(pod_chips, op);
                if (cached) {
                    ++run.opCacheHits;
                } else {
                    cached =
                        cache.store(pod_chips, op, op_sim.simulate(op));
                    ++run.opCacheMisses;
                }
            } else {
                fresh = op_sim.simulate(op);
            }
            const OpExecution &ex = cached ? *cached : fresh;

            // ReGate-Base cannot hide the per-burst VU wake-ups that
            // drain SA output tiles (§6.4): with the idle-detection
            // FSM gating the VU between bursts, a fraction of the
            // 2-cycle wakes stalls the SA pipeline (the output queue
            // absorbs the rest). ReGate-HW/Full pre-wake via the
            // dataflow / setpm and expose nothing.
            if (ex.active[Component::Sa] > 0 &&
                ex.active[Component::Vu] > 0 &&
                ex.bottleneck == Component::Sa) {
                constexpr double kVuStallShare = 0.15;
                double stalls =
                    static_cast<double>(
                        ex.timeline[Component::Vu].activations()) *
                    static_cast<double>(
                        params_.onOffDelay(GatedUnit::Vu)) *
                    kVuStallShare;
                base_vu_stalls += static_cast<Cycles>(stalls);
            }

            for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                           Component::Ici}) {
                block_tl[c].append(ex.timeline[c]);
                if (ex.active[c] > 0) {
                    usage[c].push_back({block_dur,
                                        block_dur + ex.active[c],
                                        ex.bottleneck});
                }
            }
            block_work += ex.work;
            block_sa += ex.saStats;

            double used_frac =
                ex.sramUsedBytes / static_cast<double>(cfg_.sramBytes);
            block_sram_integral +=
                static_cast<double>(ex.duration) * used_frac;
            // Compare whole bytes: sramUsedBytes is a byte count that
            // happens to be carried in a double, and float equality
            // would flag resizes on sub-byte rounding noise.
            auto used_bytes =
                static_cast<std::uint64_t>(ex.sramUsedBytes + 0.5);
            if (have_prev_used && used_bytes != prev_used_bytes)
                ++sram_resizes;
            prev_used_bytes = used_bytes;
            have_prev_used = true;

            OpRecord rec;
            rec.name = op.name;
            rec.kind = op.kind;
            rec.count = block.repeat;
            rec.duration = ex.duration;
            rec.sramDemandBytes = op.sramDemandBytes;
            rec.dynamicJ = power_.dynamicEnergy(ex.work).sum();
            rec.sramUsedFrac = used_frac;
            for (auto c : arch::kAllComponents)
                rec.activeFrac[c] = ex.activeFraction(c);
            run.opRecords.append(rec);

            block_dur += ex.duration;
        }

        // Inter-use wake overhead per policy: count idle gaps (with
        // wrap-around between block repeats) that the hardware
        // idle-detection would have gated before the next use.
        std::array<Cycles, kNumPolicies> block_ov{};
        auto charge = [&](Policy p, Cycles d) {
            block_ov[static_cast<std::size_t>(p)] += d;
        };
        charge(Policy::Base, base_vu_stalls);
        for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                       Component::Ici}) {
            const auto &uses = usage[c];
            if (uses.empty())
                continue;
            GatedUnit unit = c == Component::Sa ? GatedUnit::SaFull
                             : c == Component::Vu ? GatedUnit::Vu
                             : c == Component::Hbm ? GatedUnit::Hbm
                                                   : GatedUnit::Ici;
            Cycles window = params_.detectionWindow(unit);
            for (std::size_t i = 0; i < uses.size(); ++i) {
                Cycles gap =
                    i == 0 ? block_dur - uses.back().end + uses[0].start
                           : uses[i].start - uses[i - 1].end;
                if (gap < window)
                    continue;
                bool is_bottleneck = uses[i].bottleneck == c;
                switch (c) {
                  case Component::Sa:
                    // Base pays the full-SA wake; HW/Full overlap the
                    // diagonal wake and expose one PE delay (§6.4).
                    charge(Policy::Base,
                           params_.onOffDelay(GatedUnit::SaFull));
                    charge(Policy::HW,
                           params_.onOffDelay(GatedUnit::SaPe));
                    charge(Policy::Full,
                           params_.onOffDelay(GatedUnit::SaPe));
                    break;
                  case Component::Vu:
                    // Exposed only when the VU gates the op; Full
                    // pre-wakes via setpm (§4.3).
                    if (is_bottleneck) {
                        charge(Policy::Base,
                               params_.onOffDelay(GatedUnit::Vu));
                        charge(Policy::HW,
                               params_.onOffDelay(GatedUnit::Vu));
                    }
                    break;
                  case Component::Hbm:
                    if (is_bottleneck) {
                        for (Policy p : {Policy::Base, Policy::HW,
                                         Policy::Full}) {
                            charge(p,
                                   params_.onOffDelay(GatedUnit::Hbm));
                        }
                    }
                    break;
                  case Component::Ici:
                    for (Policy p :
                         {Policy::Base, Policy::HW, Policy::Full})
                        charge(p, params_.onOffDelay(GatedUnit::Ici));
                    break;
                  default:
                    break;
                }
            }
        }

        for (std::size_t p = 0; p < kNumPolicies; ++p)
            overheads[p] += block_ov[p] * block.repeat;

        // Scale the block to its repeat count and append to the run.
        for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                       Component::Ici}) {
            run.timeline[c].append(block_tl[c].repeated(block.repeat));
        }
        double rep = static_cast<double>(block.repeat);
        run.work.macs += block_work.macs * rep;
        run.work.vuOps += block_work.vuOps * rep;
        run.work.sramBytes += block_work.sramBytes * rep;
        run.work.hbmBytes += block_work.hbmBytes * rep;
        run.work.iciBytes += block_work.iciBytes * rep;
        run.saStats += block_sa.scaled(block.repeat);
        run.sramUsedIntegral += block_sram_integral * rep;
        run.cycles += block_dur * block.repeat;

        // SRAM resize setpm pairs (Full only; reported in Fig. 20).
        run.policies[static_cast<std::size_t>(Policy::Full)]
            .sramSetpmPairs += sram_resizes * block.repeat;
    }
    run.seconds = static_cast<double>(run.cycles) * cfg_.cycleTime();
    run.opRecords.seal();

    for (auto p : allPolicies())
        evaluatePolicy(run, p, overheads);
    return run;
}

void
Engine::evaluatePolicy(WorkloadRun &run, Policy policy,
                       const std::array<Cycles, kNumPolicies>
                           &overheads) const
{
    auto &res = run.policies[static_cast<std::size_t>(policy)];
    res.policy = policy;
    const double tau = cfg_.cycleTime();
    const auto &ratios = params_.ratios();

    auto modeFor = [&](Component c) -> GatingMode {
        if (policy == Policy::NoPG)
            return GatingMode::None;
        if (policy == Policy::Ideal)
            return GatingMode::Ideal;
        if (c == Component::Vu && policy == Policy::Full)
            return GatingMode::SwExact;
        return GatingMode::HwDetect;
    };

    energy::EnergyBreakdown e;

    // ---- SA ----
    {
        core::UnitSpec spec{GatedUnit::SaFull,
                            power_.staticPower(Component::Sa), tau};
        auto r = core::evaluateTimeline(run.timeline[Component::Sa],
                                        spec, modeFor(Component::Sa),
                                        params_);
        double e_sa = r.staticEnergy;
        if (policy == Policy::HW || policy == Policy::Full ||
            policy == Policy::Ideal) {
            // Replace the flat active-period energy with the
            // PE-granularity split from the analytical SA model.
            double flat = power_.staticPower(Component::Sa) * tau *
                          static_cast<double>(
                              run.timeline[Component::Sa].activeCycles());
            double off_leak =
                policy == Policy::Ideal ? 0.0 : ratios.logicOff;
            // The per-SA analytical totals already cover all PEs of
            // one array; numSa arrays ran the serial tile stream in
            // parallel, so PE-cycle totals are unchanged.
            double gated = power_.peStaticPower() * tau *
                           (static_cast<double>(run.saStats.peOnCycles) +
                            sa::kWOnPowerFraction *
                                static_cast<double>(
                                    run.saStats.peWOnCycles) +
                            off_leak * static_cast<double>(
                                           run.saStats.peOffCycles));
            if (gated < flat)
                e_sa += gated - flat;
        }
        e.staticJ[Component::Sa] = e_sa;
    }

    // ---- VU ----
    {
        core::UnitSpec spec{GatedUnit::Vu,
                            power_.staticPower(Component::Vu), tau};
        auto r = core::evaluateTimeline(run.timeline[Component::Vu],
                                        spec, modeFor(Component::Vu),
                                        params_);
        e.staticJ[Component::Vu] = r.staticEnergy;
        if (policy == Policy::Full)
            res.vuGateEvents = r.gateEvents;
    }

    // ---- HBM ----
    {
        core::UnitSpec spec{GatedUnit::Hbm, power_.hbmStaticPower(),
                            tau};
        auto r = core::evaluateTimeline(run.timeline[Component::Hbm],
                                        spec, modeFor(Component::Hbm),
                                        params_);
        e.staticJ[Component::Hbm] = r.staticEnergy;
    }

    // ---- ICI ----
    {
        core::UnitSpec spec{GatedUnit::Ici, power_.iciStaticPower(),
                            tau};
        auto r = core::evaluateTimeline(run.timeline[Component::Ici],
                                        spec, modeFor(Component::Ici),
                                        params_);
        e.staticJ[Component::Ici] = r.staticEnergy;
    }

    // ---- SRAM: capacity-based (§4.1) ----
    {
        double p_sram = power_.staticPower(Component::Sram);
        double used = run.sramUsedIntegral;
        double unused = static_cast<double>(run.cycles) - used;
        double leak;
        switch (policy) {
          case Policy::NoPG:
            leak = 1.0;
            break;
          case Policy::Base:
          case Policy::HW:
            leak = ratios.sramSleep;
            break;
          case Policy::Full:
            leak = ratios.sramOff;
            break;
          case Policy::Ideal:
            leak = 0.0;
            break;
          default:
            throw LogicError("unknown policy");
        }
        e.staticJ[Component::Sram] = p_sram * tau * (used + leak * unused);
    }

    // ---- Other: never gated ----
    e.staticJ[Component::Other] = power_.staticPower(Component::Other) *
                                  tau *
                                  static_cast<double>(run.cycles);

    // ---- Dynamic energy (identical across policies) ----
    e.dynamicJ = power_.dynamicEnergy(run.work);

    // ---- Performance overhead ----
    res.overheadCycles = overheads[static_cast<std::size_t>(policy)];
    res.perfOverhead =
        run.cycles > 0 ? static_cast<double>(res.overheadCycles) /
                             static_cast<double>(run.cycles)
                       : 0.0;
    res.seconds = static_cast<double>(run.cycles + res.overheadCycles) *
                  tau;
    // The chip burns (policy-reduced) static power during the extra
    // cycles; charge it at the post-gating average static power.
    if (res.overheadCycles > 0 && run.cycles > 0) {
        double avg_static_w =
            e.staticJ.sum() / (static_cast<double>(run.cycles) * tau);
        e.staticJ[Component::Other] +=
            avg_static_w * static_cast<double>(res.overheadCycles) * tau;
    }

    res.energy = e;
    res.avgPowerW = e.busyTotal() / res.seconds;

    // ---- Peak power: most power-hungry operator (Fig. 18) ----
    double peak = 0;
    for (const auto &rec : run.opRecords) {
        double dur_s = static_cast<double>(rec.duration()) * tau;
        double p_static = 0;
        for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                       Component::Ici}) {
            double leak_c =
                policy == Policy::NoPG ? 1.0
                : policy == Policy::Ideal ? 0.0
                                          : ratios.logicOff;
            double pc = power_.staticPower(c);
            p_static += pc * (rec.activeFrac(c) +
                              (1.0 - rec.activeFrac(c)) * leak_c);
        }
        double sram_leak = policy == Policy::NoPG ? 1.0
                           : policy == Policy::Ideal
                               ? 0.0
                               : (policy == Policy::Full
                                      ? ratios.sramOff
                                      : ratios.sramSleep);
        p_static += power_.staticPower(Component::Sram) *
                    (rec.sramUsedFrac() +
                     (1.0 - rec.sramUsedFrac()) * sram_leak);
        p_static += power_.staticPower(Component::Other);
        peak = std::max(peak, p_static + rec.dynamicJ() / dur_s);
    }
    res.peakPowerW = peak;
}

}  // namespace sim
}  // namespace regate
