/**
 * @file
 * Memoized graph build + compile, plus whole-run memoization.
 *
 * Two cache levels, both pure-function memos over one MemoCache
 * template:
 *
 *  1. CompiledGraphCache — buildGraph + compileGraph are pure
 *     functions of (workload, run setup, chip generation): the
 *     workload enum and RunSetup fully determine the emitted operator
 *     graph, and the generation's NpuConfig fully determines the
 *     fusion/tiling annotations. A warm simulateWorkload call skips
 *     graph construction entirely.
 *
 *  2. WorkloadRunCache — Engine::run over a compiled graph is itself
 *     a pure function of (workload, setup, generation, gating
 *     params), so the whole WorkloadRun is memoized one level up.
 *     Sweeps that revisit a grid point (SLO searches re-simulating
 *     the NPU-D anchor per call, overlapping candidate setups, figure
 *     binaries sharing cases) replay the stored run without touching
 *     the engine at all.
 *
 * Thread-safe, same shape as OpExecutionCache: entries are immutable
 * shared_ptrs, so a hit is a pointer bump under the lock and the
 * compiled graph is shared read-only by every engine run (Engine::run
 * takes the graph const). A hit is bitwise identical to a cold
 * compile/simulation because every pass is deterministic — with one
 * documented exception: a replayed WorkloadRun carries the
 * opCacheHits/opCacheMisses diagnostics of the run that was stored
 * (the replay itself runs no engine, so it has no counters of its
 * own; see WorkloadRun in sim/engine.h).
 */

#ifndef REGATE_SIM_GRAPH_CACHE_H
#define REGATE_SIM_GRAPH_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "arch/gating_params.h"
#include "arch/npu_config.h"
#include "common/hash.h"
#include "compiler/compiler.h"
#include "models/workload.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace regate {
namespace sim {

/**
 * Thread-safe content-keyed memo: immutable shared_ptr entries,
 * first-writer-wins stores, hit/miss counters, clear() invalidation.
 * Key must provide operator== and Hash must hash it.
 */
template <typename Key, typename Value, typename Hash>
class MemoCache
{
  public:
    /** The cached value, or nullptr on miss. Counts hits/misses. */
    std::shared_ptr<const Value>
    lookup(const Key &key) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            REGATE_OBS(if (obsMisses_) obsMisses_->add(1));
            return nullptr;
        }
        ++hits_;
        REGATE_OBS(if (obsHits_) obsHits_->add(1));
        return it->second;
    }

    /**
     * Store a value and return the canonical entry (the already-
     * present one if another worker raced this store: the first
     * writer wins, so every reader shares one entry — the values are
     * identical either way because the memoized functions are
     * deterministic).
     */
    std::shared_ptr<const Value>
    store(const Key &key, Value value)
    {
        auto entry = std::make_shared<const Value>(std::move(value));
        std::lock_guard<std::mutex> lock(mu_);
        return map_.emplace(key, entry).first->second;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return map_.size();
    }

    /** Invalidate every entry (memoized code changed, tests). */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.clear();
    }

    /** Lifetime lookup counters (diagnostics; monotonic). */
    std::uint64_t
    hits() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return hits_;
    }

    std::uint64_t
    misses() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return misses_;
    }

    /**
     * Mirror this cache's hit/miss counting onto registry counters
     * (obs::MetricsRegistry). Only the process-wide shared instances
     * attach; private instances (tests, scratch caches) stay local,
     * so their exact per-instance counts never mix with another
     * cache's under the same registry name. The local counters keep
     * per-instance lifetime semantics either way.
     */
    void
    attachObs(obs::Counter &hits, obs::Counter &misses)
    {
        std::lock_guard<std::mutex> lock(mu_);
        obsHits_ = &hits;
        obsMisses_ = &misses;
    }

  private:
    mutable std::mutex mu_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    obs::Counter *obsHits_ = nullptr;
    obs::Counter *obsMisses_ = nullptr;
    std::unordered_map<Key, std::shared_ptr<const Value>, Hash> map_;
};

/** Shared key prefix of both cache levels. */
struct GraphKey
{
    models::Workload w{};
    arch::NpuGeneration gen{};
    models::RunSetup setup;

    /**
     * Scenario identity (ScenarioSpec::identityText) for
     * registry-driven custom scenarios; empty for the enum workload
     * path. Two scenarios with equal identity build identical graphs
     * (the display name is excluded), so the text is exactly the
     * cache key the spec path needs.
     */
    std::string scen;

    bool
    operator==(const GraphKey &o) const
    {
        return w == o.w && gen == o.gen && setup == o.setup &&
               scen == o.scen;
    }
};

struct GraphKeyHash
{
    std::size_t
    operator()(const GraphKey &k) const
    {
        std::size_t seed = k.setup.contentHash();
        hashCombine(seed, static_cast<std::size_t>(k.w));
        hashCombine(seed, static_cast<std::size_t>(k.gen));
        if (!k.scen.empty())
            hashCombine(seed, static_cast<std::size_t>(fnv1a64(
                                  k.scen.data(), k.scen.size())));
        return seed;
    }
};

/** GraphKey plus the gating params the engine evaluated under. */
struct RunKey
{
    GraphKey graph;
    arch::GatingParams params;

    bool
    operator==(const RunKey &o) const
    {
        return graph == o.graph && params == o.params;
    }
};

struct RunKeyHash
{
    std::size_t
    operator()(const RunKey &k) const
    {
        std::size_t seed = GraphKeyHash{}(k.graph);
        hashCombine(seed, k.params.contentHash());
        return seed;
    }
};

/** Memoized (workload, setup, generation) -> CompileResult. */
class CompiledGraphCache
{
  public:
    std::shared_ptr<const compiler::CompileResult>
    lookup(models::Workload w, const models::RunSetup &setup,
           arch::NpuGeneration gen) const
    {
        return cache_.lookup({w, gen, setup, {}});
    }

    std::shared_ptr<const compiler::CompileResult>
    store(models::Workload w, const models::RunSetup &setup,
          arch::NpuGeneration gen, compiler::CompileResult result)
    {
        return cache_.store({w, gen, setup, {}}, std::move(result));
    }

    /** Full-key forms (the scenario path sets GraphKey::scen). */
    std::shared_ptr<const compiler::CompileResult>
    lookup(const GraphKey &key) const
    {
        return cache_.lookup(key);
    }

    std::shared_ptr<const compiler::CompileResult>
    store(const GraphKey &key, compiler::CompileResult result)
    {
        return cache_.store(key, std::move(result));
    }

    std::size_t size() const { return cache_.size(); }
    void clear() { cache_.clear(); }
    std::uint64_t hits() const { return cache_.hits(); }
    std::uint64_t misses() const { return cache_.misses(); }

    /** Mirror counting onto "<prefix>.hits"/"<prefix>.misses". */
    void
    attachObs(const std::string &prefix)
    {
        auto &reg = obs::MetricsRegistry::instance();
        cache_.attachObs(reg.counter(prefix + ".hits"),
                         reg.counter(prefix + ".misses"));
    }

  private:
    MemoCache<GraphKey, compiler::CompileResult, GraphKeyHash> cache_;
};

/**
 * Memoized whole-run simulation results:
 * (workload, setup, generation, gating params) -> WorkloadRun.
 *
 * Unlike the build/compile memo this cache is LRU-bounded: a
 * long-lived sweep service revisits an unbounded stream of grid
 * points, and each WorkloadRun carries opRecords/timeline vectors
 * that make entries kilobytes each. Every entry is charged its
 * approximate heap footprint (entryBytes) against a byte budget;
 * storing past the budget evicts least-recently-used entries.
 * Eviction never affects results — an evicted point is simply
 * re-simulated on its next visit — and a budget of 0 disables the
 * bound. The process-wide instance (sharedRunCache) takes its budget
 * from the REGATE_RUN_CACHE_MB environment variable.
 */
class WorkloadRunCache
{
  public:
    /** Default byte budget of the process-wide cache, 512 MiB. */
    static constexpr std::size_t kDefaultByteBudget =
        std::size_t(512) << 20;

    explicit WorkloadRunCache(
        std::size_t byte_budget = kDefaultByteBudget)
        : byteBudget_(byte_budget)
    {}

    /** Approximate heap footprint of one cached run, bytes. */
    static std::size_t entryBytes(const WorkloadRun &run);

    std::shared_ptr<const WorkloadRun>
    lookup(models::Workload w, const models::RunSetup &setup,
           arch::NpuGeneration gen,
           const arch::GatingParams &params) const;

    std::shared_ptr<const WorkloadRun>
    store(models::Workload w, const models::RunSetup &setup,
          arch::NpuGeneration gen, const arch::GatingParams &params,
          WorkloadRun run);

    /** Full-key forms (the scenario path sets GraphKey::scen). */
    std::shared_ptr<const WorkloadRun> lookup(const RunKey &key) const;

    std::shared_ptr<const WorkloadRun> store(const RunKey &key,
                                             WorkloadRun run);

    /**
     * Change the byte budget (0 = unbounded), evicting immediately
     * if the cache is already over the new bound.
     */
    void setByteBudget(std::size_t bytes);

    std::size_t byteBudget() const;

    /** Total bytes currently charged against the budget. */
    std::size_t totalBytes() const;

    std::size_t size() const;
    void clear();
    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** Lifetime count of LRU evictions (diagnostics; monotonic). */
    std::uint64_t evictions() const;

    /**
     * Mirror counting onto registry instruments "<prefix>.hits",
     * ".misses", ".evictions" (counters) and ".bytes", ".entries"
     * (gauges). Shared-instance only, like MemoCache::attachObs.
     */
    void attachObs(const std::string &prefix);

  private:
    struct Entry
    {
        RunKey key;
        std::shared_ptr<const WorkloadRun> run;
        std::size_t bytes = 0;
    };

    using LruList = std::list<Entry>;

    /** Drop LRU entries until the budget is met. Caller holds mu_. */
    void evictOverBudgetLocked();

    /** Push current bytes/entries to the gauges. Caller holds mu_. */
    void updateObsGaugesLocked();

    mutable std::mutex mu_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    obs::Counter *obsHits_ = nullptr;
    obs::Counter *obsMisses_ = nullptr;
    obs::Counter *obsEvictions_ = nullptr;
    obs::Gauge *obsBytes_ = nullptr;
    obs::Gauge *obsEntries_ = nullptr;
    std::size_t byteBudget_ = kDefaultByteBudget;
    std::size_t totalBytes_ = 0;
    mutable LruList lru_;  ///< Front = most recently used.
    mutable std::unordered_map<RunKey, LruList::iterator, RunKeyHash>
        map_;
};

/**
 * The process-wide compiled-graph cache shared by every
 * simulateWorkload call (and safe to share across sweep workers).
 * One cache for all generations: the generation is part of the key.
 */
CompiledGraphCache &sharedGraphCache();

/**
 * The process-wide whole-run memo shared by every simulateWorkload
 * call; same sharing/thread-safety story as sharedGraphCache().
 * Its byte budget defaults to WorkloadRunCache::kDefaultByteBudget
 * and can be overridden with the REGATE_RUN_CACHE_MB environment
 * variable (a non-negative number of MiB; 0 = unbounded; malformed
 * values fall back to the default, like REGATE_THREADS).
 */
WorkloadRunCache &sharedRunCache();

}  // namespace sim
}  // namespace regate

#endif  // REGATE_SIM_GRAPH_CACHE_H
