#include "sim/serialize.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/error.h"
#include "common/hash.h"
#include "sim/sweep.h"

namespace regate {
namespace sim {

// WorkloadReport's private run_/params_ are reached through the
// ReportSerializeAccess backdoor defined next to the struct in
// sim/report.h.

namespace {

// ---------------------------------------------------------------
// Canonical writer: fixed key order, C-locale numbers, bit-exact
// doubles. Everything appends into one output string.
// ---------------------------------------------------------------

void
appendDouble(std::string &out, double v)
{
    REGATE_CHECK(std::isfinite(v),
                 "cannot serialize non-finite double");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendI64(std::string &out, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    out += buf;
}

void
appendString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendComponentDoubles(std::string &out,
                       const arch::ComponentMap<double> &map)
{
    out += '[';
    bool first = true;
    for (auto c : arch::kAllComponents) {
        if (!first)
            out += ',';
        first = false;
        appendDouble(out, map[c]);
    }
    out += ']';
}

void
appendSetup(std::string &out, const models::RunSetup &setup)
{
    out += "{\"chips\":";
    appendI64(out, setup.chips);
    out += ",\"batch\":";
    appendI64(out, setup.batch);
    out += ",\"dp\":";
    appendI64(out, setup.par.dp);
    out += ",\"tp\":";
    appendI64(out, setup.par.tp);
    out += ",\"pp\":";
    appendI64(out, setup.par.pp);
    out += '}';
}

void
appendParams(std::string &out, const arch::GatingParams &params)
{
    out += "{\"logic_off\":";
    appendDouble(out, params.ratios().logicOff);
    out += ",\"sram_sleep\":";
    appendDouble(out, params.ratios().sramSleep);
    out += ",\"sram_off\":";
    appendDouble(out, params.ratios().sramOff);
    out += ",\"delay_scale\":";
    appendDouble(out, params.delayScale());
    out += '}';
}

void
appendTimeline(std::string &out, const core::ActivityTimeline &t)
{
    out += "{\"span\":";
    appendU64(out, t.span());
    out += ",\"active\":";
    appendU64(out, t.activeCycles());
    out += ",\"activations\":";
    appendU64(out, t.activations());
    out += ",\"gaps\":[";
    bool first = true;
    for (const auto &g : t.gaps()) {
        if (!first)
            out += ',';
        first = false;
        out += '[';
        appendU64(out, g.length);
        out += ',';
        appendU64(out, g.count);
        out += ']';
    }
    out += "],\"leading_idle\":";
    appendU64(out, t.leadingIdle());
    out += ",\"trailing_idle\":";
    appendU64(out, t.trailingIdle());
    out += '}';
}

void
appendEnergy(std::string &out, const energy::EnergyBreakdown &e)
{
    out += "{\"static_j\":";
    appendComponentDoubles(out, e.staticJ);
    out += ",\"dynamic_j\":";
    appendComponentDoubles(out, e.dynamicJ);
    out += ",\"idle_j\":";
    appendDouble(out, e.idleJ);
    out += '}';
}

void
appendPolicyResult(std::string &out, const PolicyResult &r)
{
    out += "{\"policy\":";
    appendI64(out, static_cast<int>(r.policy));
    out += ",\"overhead_cycles\":";
    appendU64(out, r.overheadCycles);
    out += ",\"seconds\":";
    appendDouble(out, r.seconds);
    out += ",\"perf_overhead\":";
    appendDouble(out, r.perfOverhead);
    out += ",\"energy\":";
    appendEnergy(out, r.energy);
    out += ",\"avg_power_w\":";
    appendDouble(out, r.avgPowerW);
    out += ",\"peak_power_w\":";
    appendDouble(out, r.peakPowerW);
    out += ",\"vu_gate_events\":";
    appendU64(out, r.vuGateEvents);
    out += ",\"sram_setpm_pairs\":";
    appendU64(out, r.sramSetpmPairs);
    out += '}';
}

void
appendOpRecord(std::string &out, OpRecordArena::Ref op)
{
    // Written field by field straight from the struct-of-arrays
    // arena — no intermediate OpRecord materialization. The byte
    // layout is identical to the pre-arena writer.
    out += "{\"name\":";
    appendString(out, op.name());
    out += ",\"kind\":";
    appendI64(out, static_cast<int>(op.kind()));
    out += ",\"count\":";
    appendU64(out, op.count());
    out += ",\"duration\":";
    appendU64(out, op.duration());
    out += ",\"sram_demand_bytes\":";
    appendDouble(out, op.sramDemandBytes());
    out += ",\"dynamic_j\":";
    appendDouble(out, op.dynamicJ());
    out += ",\"sram_used_frac\":";
    appendDouble(out, op.sramUsedFrac());
    out += ",\"active_frac\":[";
    bool first = true;
    for (auto c : arch::kAllComponents) {
        if (!first)
            out += ',';
        first = false;
        appendDouble(out, op.activeFrac(c));
    }
    out += "]}";
}

void
appendRun(std::string &out, const WorkloadRun &run)
{
    out += "{\"name\":";
    appendString(out, run.name);
    out += ",\"cycles\":";
    appendU64(out, run.cycles);
    out += ",\"seconds\":";
    appendDouble(out, run.seconds);
    out += ",\"timeline\":[";
    bool first = true;
    for (auto c : arch::kAllComponents) {
        if (!first)
            out += ',';
        first = false;
        appendTimeline(out, run.timeline[c]);
    }
    out += "],\"work\":{\"macs\":";
    appendDouble(out, run.work.macs);
    out += ",\"vu_ops\":";
    appendDouble(out, run.work.vuOps);
    out += ",\"sram_bytes\":";
    appendDouble(out, run.work.sramBytes);
    out += ",\"hbm_bytes\":";
    appendDouble(out, run.work.hbmBytes);
    out += ",\"ici_bytes\":";
    appendDouble(out, run.work.iciBytes);
    out += "},\"sa_stats\":{\"compute_cycles\":";
    appendU64(out, run.saStats.computeCycles);
    out += ",\"weight_load_cycles\":";
    appendU64(out, run.saStats.weightLoadCycles);
    out += ",\"pe_on_cycles\":";
    appendU64(out, run.saStats.peOnCycles);
    out += ",\"pe_w_on_cycles\":";
    appendU64(out, run.saStats.peWOnCycles);
    out += ",\"pe_off_cycles\":";
    appendU64(out, run.saStats.peOffCycles);
    out += ",\"macs\":";
    appendU64(out, run.saStats.macs);
    out += "},\"sram_used_integral\":";
    appendDouble(out, run.sramUsedIntegral);
    out += ",\"op_records\":[";
    first = true;
    for (auto op : run.opRecords) {
        if (!first)
            out += ',';
        first = false;
        appendOpRecord(out, op);
    }
    out += "],\"policies\":[";
    first = true;
    for (const auto &p : run.policies) {
        if (!first)
            out += ',';
        first = false;
        appendPolicyResult(out, p);
    }
    // The op-cache counters are in-process diagnostics: they depend
    // on what happened to be warm when this grid point ran, so the
    // same case simulated under different shard partitions reports
    // different values (sim/engine.h documents the same caveat for
    // whole-run-cache replays). Serialized runs normalize them to
    // zero so equal results always serialize to equal bytes.
    out += "],\"op_cache_hits\":0,\"op_cache_misses\":0}";
}

void
appendScenario(std::string &out, const models::ScenarioSpec &spec)
{
    out += "{\"name\":";
    appendString(out, spec.name);
    out += ",\"family\":";
    appendString(out, spec.family);
    out += ",\"model\":";
    appendString(out, spec.model);
    out += ",\"batch\":";
    appendI64(out, spec.batch);
    out += ",\"chips\":";
    appendI64(out, spec.chips);
    out += ",\"seq_len\":";
    appendI64(out, spec.seqLen);
    out += ",\"out_len\":";
    appendI64(out, spec.outLen);
    out += ",\"par\":";
    if (spec.parSet) {
        out += "{\"dp\":";
        appendI64(out, spec.par.dp);
        out += ",\"tp\":";
        appendI64(out, spec.par.tp);
        out += ",\"pp\":";
        appendI64(out, spec.par.pp);
        out += '}';
    } else {
        out += "null";
    }
    out += ",\"unit\":";
    appendString(out, spec.unit);
    out += ",\"extra\":[";
    bool first = true;
    for (const auto &[key, value] : spec.extra) {
        if (!first)
            out += ',';
        first = false;
        out += '[';
        appendString(out, key);
        out += ',';
        appendI64(out, value);
        out += ']';
    }
    out += "],\"gating\":[";
    first = true;
    for (const auto &[key, value] : spec.gating) {
        if (!first)
            out += ',';
        first = false;
        out += '[';
        appendString(out, key);
        out += ',';
        appendDouble(out, value);
        out += ']';
    }
    out += "]}";
}

void
appendReport(std::string &out, const WorkloadReport &rep)
{
    out += "{\"workload\":";
    appendI64(out, static_cast<int>(rep.workload));
    out += ",\"gen\":";
    appendI64(out, static_cast<int>(rep.gen));
    out += ",\"setup\":";
    appendSetup(out, rep.setup);
    out += ",\"units\":";
    appendDouble(out, rep.units);
    // Custom-scenario reports carry their full spec; the field is
    // absent on the enum path, so every pre-existing document (and
    // golden) keeps its exact bytes.
    if (rep.scenario) {
        out += ",\"scenario\":";
        appendScenario(out, *rep.scenario);
    }
    out += ",\"params\":";
    appendParams(out, ReportSerializeAccess::params(rep));
    out += ",\"run\":";
    appendRun(out, rep.run());
    out += '}';
}

void
appendSloResult(std::string &out, const SloResult &res)
{
    out += "{\"setup\":";
    appendSetup(out, res.setup);
    out += ",\"seconds_per_unit\":";
    appendDouble(out, res.secondsPerUnit);
    out += ",\"energy_per_unit\":";
    appendDouble(out, res.energyPerUnit);
    out += ",\"slo_ratio\":";
    appendDouble(out, res.sloRatio);
    out += ",\"report\":";
    appendReport(out, res.report);
    out += '}';
}

// ---------------------------------------------------------------
// Minimal JSON parser. Number literals are kept as raw text so
// 64-bit counters never pass through a double on the way back in.
// ---------------------------------------------------------------

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    std::string text;  ///< Raw literal (Number) or decoded (String).
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue &
    at(const std::string &key) const
    {
        REGATE_CHECK(type == Type::Object,
                     "expected JSON object looking up \"", key, "\"");
        for (const auto &m : members) {
            if (m.first == key)
                return m.second;
        }
        throw ConfigError("missing JSON key \"" + key + "\"");
    }

    /** The member, or nullptr when absent (optional fields). */
    const JsonValue *
    find(const std::string &key) const
    {
        REGATE_CHECK(type == Type::Object,
                     "expected JSON object looking up \"", key, "\"");
        for (const auto &m : members) {
            if (m.first == key)
                return &m.second;
        }
        return nullptr;
    }

    // The as*() readers reject out-of-range literals (ERANGE /
    // non-finite / narrowing), not just malformed ones: a corrupted
    // shard file must fail loudly, never load clamped values.

    double
    asDouble() const
    {
        REGATE_CHECK(type == Type::Number, "expected JSON number");
        char *end = nullptr;
        errno = 0;
        double v = std::strtod(text.c_str(), &end);
        REGATE_CHECK(end && *end == '\0', "bad number literal: ",
                     text);
        REGATE_CHECK(errno != ERANGE && std::isfinite(v),
                     "number out of double range: ", text);
        return v;
    }

    std::uint64_t
    asU64() const
    {
        REGATE_CHECK(type == Type::Number, "expected JSON number");
        REGATE_CHECK(!text.empty() && text[0] != '-',
                     "expected unsigned integer, got: ", text);
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(text.c_str(), &end, 10);
        REGATE_CHECK(end && *end == '\0',
                     "bad integer literal: ", text);
        REGATE_CHECK(errno != ERANGE && v <= UINT64_MAX,
                     "integer out of uint64 range: ", text);
        return v;
    }

    std::int64_t
    asI64() const
    {
        REGATE_CHECK(type == Type::Number, "expected JSON number");
        char *end = nullptr;
        errno = 0;
        long long v = std::strtoll(text.c_str(), &end, 10);
        REGATE_CHECK(end && *end == '\0',
                     "bad integer literal: ", text);
        REGATE_CHECK(errno != ERANGE,
                     "integer out of int64 range: ", text);
        return v;
    }

    int
    asInt() const
    {
        std::int64_t v = asI64();
        REGATE_CHECK(v >= INT_MIN && v <= INT_MAX,
                     "integer out of int range: ", text);
        return static_cast<int>(v);
    }

    const std::string &
    asString() const
    {
        REGATE_CHECK(type == Type::String, "expected JSON string");
        return text;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        auto v = parseValue();
        skipWs();
        REGATE_CHECK(pos_ == text_.size(),
                     "trailing bytes after JSON document at offset ",
                     pos_);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        REGATE_CHECK(pos_ < text_.size(),
                     "unexpected end of JSON input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        REGATE_CHECK(pos_ < text_.size() && text_[pos_] == c,
                     "expected '", c, "' at offset ", pos_);
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue{};
          default:
            return parseNumber();
        }
    }

    void
    parseLiteral(const char *lit)
    {
        for (const char *p = lit; *p; ++p)
            expect(*p);
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (peek() == 't') {
            parseLiteral("true");
            v.boolean = true;
        } else {
            parseLiteral("false");
            v.boolean = false;
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.type = JsonValue::Type::Number;
        std::size_t start = pos_;
        if (consumeIf('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        REGATE_CHECK(pos_ > start, "malformed number at offset ",
                     start);
        v.text = text_.substr(start, pos_ - start);
        return v;
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (true) {
            REGATE_CHECK(pos_ < text_.size(),
                         "unterminated JSON string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                v.text += c;
                continue;
            }
            REGATE_CHECK(pos_ < text_.size(),
                         "unterminated escape in JSON string");
            char e = text_[pos_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                v.text += e;
                break;
              case 'n':
                v.text += '\n';
                break;
              case 't':
                v.text += '\t';
                break;
              case 'r':
                v.text += '\r';
                break;
              case 'b':
                v.text += '\b';
                break;
              case 'f':
                v.text += '\f';
                break;
              case 'u': {
                REGATE_CHECK(pos_ + 4 <= text_.size(),
                             "truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        throw ConfigError("bad \\u escape digit");
                }
                // The writer only emits \u00xx for control bytes.
                REGATE_CHECK(code < 0x80,
                             "non-ASCII \\u escape unsupported");
                v.text += static_cast<char>(code);
                break;
              }
              default:
                throw ConfigError("unknown JSON escape");
            }
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (consumeIf(']'))
            return v;
        while (true) {
            v.items.push_back(parseValue());
            skipWs();
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (consumeIf('}'))
            return v;
        while (true) {
            skipWs();
            auto key = parseString();
            skipWs();
            expect(':');
            v.members.emplace_back(key.text, parseValue());
            skipWs();
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------
// Readers: exact inverses of the appenders above.
// ---------------------------------------------------------------

arch::ComponentMap<double>
readComponentDoubles(const JsonValue &v)
{
    REGATE_CHECK(v.type == JsonValue::Type::Array &&
                     v.items.size() == arch::kNumComponents,
                 "expected ", arch::kNumComponents,
                 "-element component array");
    arch::ComponentMap<double> map;
    std::size_t i = 0;
    for (auto c : arch::kAllComponents)
        map[c] = v.items[i++].asDouble();
    return map;
}

models::RunSetup
readSetup(const JsonValue &v)
{
    models::RunSetup setup;
    setup.chips = v.at("chips").asInt();
    setup.batch = v.at("batch").asI64();
    setup.par.dp = v.at("dp").asInt();
    setup.par.tp = v.at("tp").asInt();
    setup.par.pp = v.at("pp").asInt();
    setup.par.validate();
    return setup;
}

arch::GatingParams
readParams(const JsonValue &v)
{
    arch::LeakageRatios r;
    r.logicOff = v.at("logic_off").asDouble();
    r.sramSleep = v.at("sram_sleep").asDouble();
    r.sramOff = v.at("sram_off").asDouble();
    arch::GatingParams params(r);
    params.setDelayScale(v.at("delay_scale").asDouble());
    return params;
}

core::ActivityTimeline
readTimeline(const JsonValue &v)
{
    std::vector<core::GapGroup> gaps;
    const auto &raw = v.at("gaps");
    REGATE_CHECK(raw.type == JsonValue::Type::Array,
                 "expected gap array");
    gaps.reserve(raw.items.size());
    for (const auto &g : raw.items) {
        REGATE_CHECK(g.type == JsonValue::Type::Array &&
                         g.items.size() == 2,
                     "expected [length, count] gap pair");
        gaps.push_back({g.items[0].asU64(), g.items[1].asU64()});
    }
    return core::ActivityTimeline::fromParts(
        v.at("span").asU64(), v.at("active").asU64(),
        v.at("activations").asU64(), std::move(gaps),
        v.at("leading_idle").asU64(), v.at("trailing_idle").asU64());
}

energy::EnergyBreakdown
readEnergy(const JsonValue &v)
{
    energy::EnergyBreakdown e;
    e.staticJ = readComponentDoubles(v.at("static_j"));
    e.dynamicJ = readComponentDoubles(v.at("dynamic_j"));
    e.idleJ = v.at("idle_j").asDouble();
    return e;
}

PolicyResult
readPolicyResult(const JsonValue &v)
{
    PolicyResult r;
    int policy = v.at("policy").asInt();
    REGATE_CHECK(policy >= 0 &&
                     policy < static_cast<int>(kNumPolicies),
                 "policy index out of range: ", policy);
    r.policy = static_cast<Policy>(policy);
    r.overheadCycles = v.at("overhead_cycles").asU64();
    r.seconds = v.at("seconds").asDouble();
    r.perfOverhead = v.at("perf_overhead").asDouble();
    r.energy = readEnergy(v.at("energy"));
    r.avgPowerW = v.at("avg_power_w").asDouble();
    r.peakPowerW = v.at("peak_power_w").asDouble();
    r.vuGateEvents = v.at("vu_gate_events").asU64();
    r.sramSetpmPairs = v.at("sram_setpm_pairs").asU64();
    return r;
}

OpRecord
readOpRecord(const JsonValue &v)
{
    OpRecord op;
    op.name = v.at("name").asString();
    int kind = v.at("kind").asInt();
    REGATE_CHECK(kind >= 0 &&
                     kind <= static_cast<int>(
                         graph::OpKind::Transfer),
                 "op kind out of range: ", kind);
    op.kind = static_cast<graph::OpKind>(kind);
    op.count = v.at("count").asU64();
    op.duration = v.at("duration").asU64();
    op.sramDemandBytes = v.at("sram_demand_bytes").asDouble();
    op.dynamicJ = v.at("dynamic_j").asDouble();
    op.sramUsedFrac = v.at("sram_used_frac").asDouble();
    op.activeFrac = readComponentDoubles(v.at("active_frac"));
    return op;
}

WorkloadRun
readRun(const JsonValue &v)
{
    WorkloadRun run;
    run.name = v.at("name").asString();
    run.cycles = v.at("cycles").asU64();
    run.seconds = v.at("seconds").asDouble();

    const auto &timelines = v.at("timeline");
    REGATE_CHECK(timelines.type == JsonValue::Type::Array &&
                     timelines.items.size() == arch::kNumComponents,
                 "expected ", arch::kNumComponents,
                 " component timelines");
    std::size_t ti = 0;
    for (auto c : arch::kAllComponents)
        run.timeline[c] = readTimeline(timelines.items[ti++]);

    const auto &work = v.at("work");
    run.work.macs = work.at("macs").asDouble();
    run.work.vuOps = work.at("vu_ops").asDouble();
    run.work.sramBytes = work.at("sram_bytes").asDouble();
    run.work.hbmBytes = work.at("hbm_bytes").asDouble();
    run.work.iciBytes = work.at("ici_bytes").asDouble();

    const auto &sa = v.at("sa_stats");
    run.saStats.computeCycles = sa.at("compute_cycles").asU64();
    run.saStats.weightLoadCycles =
        sa.at("weight_load_cycles").asU64();
    run.saStats.peOnCycles = sa.at("pe_on_cycles").asU64();
    run.saStats.peWOnCycles = sa.at("pe_w_on_cycles").asU64();
    run.saStats.peOffCycles = sa.at("pe_off_cycles").asU64();
    run.saStats.macs = sa.at("macs").asU64();

    run.sramUsedIntegral = v.at("sram_used_integral").asDouble();

    const auto &ops = v.at("op_records");
    REGATE_CHECK(ops.type == JsonValue::Type::Array,
                 "expected op_records array");
    run.opRecords.reserve(ops.items.size());
    for (const auto &op : ops.items)
        run.opRecords.append(readOpRecord(op));
    run.opRecords.seal();

    const auto &policies = v.at("policies");
    REGATE_CHECK(policies.type == JsonValue::Type::Array &&
                     policies.items.size() == kNumPolicies,
                 "expected ", kNumPolicies, " policy results");
    for (std::size_t i = 0; i < kNumPolicies; ++i)
        run.policies[i] = readPolicyResult(policies.items[i]);

    run.opCacheHits = v.at("op_cache_hits").asU64();
    run.opCacheMisses = v.at("op_cache_misses").asU64();
    return run;
}

models::ScenarioSpec
readScenario(const JsonValue &v)
{
    models::ScenarioSpec spec;
    spec.name = v.at("name").asString();
    spec.family = v.at("family").asString();
    spec.model = v.at("model").asString();
    spec.batch = v.at("batch").asI64();
    spec.chips = v.at("chips").asInt();
    spec.seqLen = v.at("seq_len").asI64();
    spec.outLen = v.at("out_len").asI64();
    const auto &par = v.at("par");
    if (par.type != JsonValue::Type::Null) {
        spec.parSet = true;
        spec.par.dp = par.at("dp").asInt();
        spec.par.tp = par.at("tp").asInt();
        spec.par.pp = par.at("pp").asInt();
        spec.par.validate();
    }
    spec.unit = v.at("unit").asString();
    const auto &extra = v.at("extra");
    REGATE_CHECK(extra.type == JsonValue::Type::Array,
                 "expected extra array");
    for (const auto &kv : extra.items) {
        REGATE_CHECK(kv.type == JsonValue::Type::Array &&
                         kv.items.size() == 2,
                     "expected [key, value] extra pair");
        spec.extra.emplace_back(kv.items[0].asString(),
                                kv.items[1].asI64());
    }
    const auto &gating = v.at("gating");
    REGATE_CHECK(gating.type == JsonValue::Type::Array,
                 "expected gating array");
    for (const auto &kv : gating.items) {
        REGATE_CHECK(kv.type == JsonValue::Type::Array &&
                         kv.items.size() == 2,
                     "expected [key, value] gating pair");
        spec.gating.emplace_back(kv.items[0].asString(),
                                 kv.items[1].asDouble());
    }
    return spec;
}

WorkloadReport
readReport(const JsonValue &v)
{
    WorkloadReport rep;
    int w = v.at("workload").asInt();
    REGATE_CHECK(w >= 0 && w <= static_cast<int>(
                               models::Workload::Gligen),
                 "workload index out of range: ", w);
    rep.workload = static_cast<models::Workload>(w);
    int gen = v.at("gen").asInt();
    REGATE_CHECK(gen >= 0 &&
                     gen < static_cast<int>(arch::kNumGenerations),
                 "generation index out of range: ", gen);
    rep.gen = static_cast<arch::NpuGeneration>(gen);
    rep.setup = readSetup(v.at("setup"));
    rep.units = v.at("units").asDouble();
    if (const auto *scenario = v.find("scenario"))
        rep.scenario = std::make_shared<const models::ScenarioSpec>(
            readScenario(*scenario));
    ReportSerializeAccess::setParams(rep, readParams(v.at("params")));
    ReportSerializeAccess::setRun(
        rep,
        std::make_shared<const WorkloadRun>(readRun(v.at("run"))));
    return rep;
}

SloResult
readSloResult(const JsonValue &v)
{
    SloResult res;
    res.setup = readSetup(v.at("setup"));
    res.secondsPerUnit = v.at("seconds_per_unit").asDouble();
    res.energyPerUnit = v.at("energy_per_unit").asDouble();
    res.sloRatio = v.at("slo_ratio").asDouble();
    res.report = readReport(v.at("report"));
    return res;
}

/** The shard-file format version this writer/reader implements. */
constexpr int kShardFormatVersion = 2;

std::string
kindName(ShardKind kind)
{
    return kind == ShardKind::Run ? "run" : "search";
}

/**
 * One canonical entry line (no separator comma, no newline).
 * @p digest must be contentDigest(result_json) — passed in so
 * callers that already computed it don't hash the payload twice.
 */
std::string
entryLine(std::size_t index, const std::string &result_json,
          const std::string &digest)
{
    std::string line;
    line += "{\"index\":";
    appendU64(line, index);
    line += ",\"digest\":\"";
    line += digest;
    line += "\",\"result\":";
    line += result_json;
    line += '}';
    return line;
}

template <typename T, typename AppendFn>
std::string
writeShardImpl(ShardKind kind, const std::vector<T> &results,
               std::size_t first_index, std::size_t cases,
               int shard_index, int shard_count, AppendFn &&append,
               const std::string &spec_digest)
{
    std::vector<std::pair<std::size_t, std::string>> entries;
    entries.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::string json;
        append(json, results[i]);
        entries.emplace_back(first_index + i, std::move(json));
    }
    return assembleShardDoc(kind, cases, shard_index, shard_count,
                            entries, spec_digest);
}

template <typename T>
std::vector<T>
mergeShardsImpl(
    const std::vector<ShardDoc> &shards, ShardKind kind,
    const std::vector<std::pair<std::size_t, T>> ShardDoc::*entries)
{
    REGATE_CHECK(!shards.empty(), "no shard documents to merge");
    std::size_t cases = shards.front().cases;
    std::map<std::size_t, const T *> by_index;
    for (const auto &doc : shards) {
        REGATE_CHECK(doc.kind == kind,
                     "shard kind mismatch: expected ",
                     kindName(kind), " document");
        REGATE_CHECK(doc.cases == cases,
                     "shard case-count mismatch: ", doc.cases,
                     " vs ", cases);
        REGATE_CHECK(doc.specDigest == shards.front().specDigest,
                     "shard spec-digest mismatch: \"", doc.specDigest,
                     "\" vs \"", shards.front().specDigest,
                     "\" — shards computed from different spec files "
                     "cannot be merged");
        for (const auto &[index, result] : doc.*entries) {
            REGATE_CHECK(index < cases, "entry index ", index,
                         " out of range for ", cases, " cases");
            auto [it, inserted] =
                by_index.emplace(index, &result);
            (void)it;
            REGATE_CHECK(inserted, "duplicate entry for grid index ",
                         index);
        }
    }
    REGATE_CHECK(by_index.size() == cases,
                 "merged shards cover ", by_index.size(), " of ",
                 cases, " grid cases");
    std::vector<T> merged;
    merged.reserve(cases);
    for (const auto &[index, result] : by_index) {
        (void)index;
        merged.push_back(*result);
    }
    return merged;
}

}  // namespace

std::string
toJson(const WorkloadReport &rep)
{
    std::string out;
    appendReport(out, rep);
    return out;
}

std::string
toJson(const SloResult &res)
{
    std::string out;
    appendSloResult(out, res);
    return out;
}

WorkloadReport
reportFromJson(const std::string &text)
{
    return readReport(JsonParser(text).parse());
}

SloResult
sloResultFromJson(const std::string &text)
{
    return readSloResult(JsonParser(text).parse());
}

std::string
writeRunShard(const std::vector<WorkloadReport> &results,
              std::size_t first_index, std::size_t cases,
              int shard_index, int shard_count,
              const std::string &spec_digest)
{
    return writeShardImpl(ShardKind::Run, results, first_index, cases,
                          shard_index, shard_count, appendReport,
                          spec_digest);
}

std::string
writeSearchShard(const std::vector<SloResult> &results,
                 std::size_t first_index, std::size_t cases,
                 int shard_index, int shard_count,
                 const std::string &spec_digest)
{
    return writeShardImpl(ShardKind::Search, results, first_index,
                          cases, shard_index, shard_count,
                          appendSloResult, spec_digest);
}

std::string
contentDigest(const std::string &bytes)
{
    return hexDigest64(fnv1a64(bytes.data(), bytes.size()));
}

std::string
assembleShardDoc(
    ShardKind kind, std::size_t cases, int shard_index,
    int shard_count,
    const std::vector<std::pair<std::size_t, std::string>> &entries,
    const std::string &spec_digest)
{
    auto range = shardRange(cases, shard_index, shard_count);
    REGATE_CHECK(entries.size() == range.size(),
                 "shard payload does not match its planned range: ",
                 entries.size(), " entries, planned [", range.begin,
                 ", ", range.end, ")");

    std::string out;
    out += "{\"regate_shard\":";
    appendI64(out, kShardFormatVersion);
    out += ",\"kind\":\"";
    out += kindName(kind);
    out += "\",\"cases\":";
    appendU64(out, cases);
    // Spec-driven sweeps stamp the spec file's content digest; the
    // field is absent on enum-driven sweeps so their documents keep
    // their exact pre-spec bytes.
    if (!spec_digest.empty()) {
        out += ",\"spec_digest\":\"";
        out += spec_digest;
        out += '"';
    }
    out += ",\"shard\":{\"index\":";
    appendI64(out, shard_index);
    out += ",\"count\":";
    appendI64(out, shard_count);
    out += "},\"entries\":[";
    std::uint64_t file_digest = fnv1a64(nullptr, 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        REGATE_CHECK(entries[i].first == range.begin + i,
                     "entry ", i, " carries grid index ",
                     entries[i].first, ", expected ",
                     range.begin + i);
        auto line = entryLine(entries[i].first, entries[i].second,
                              contentDigest(entries[i].second));
        out += i == 0 ? "\n" : ",\n";
        out += line;
        line += '\n';
        file_digest =
            fnv1a64Extend(file_digest, line.data(), line.size());
    }
    out += "\n],\"file_digest\":\"";
    out += hexDigest64(file_digest);
    out += "\"}\n";
    return out;
}

ShardDoc
parseShard(const std::string &text)
{
    auto v = JsonParser(text).parse();
    int version = v.at("regate_shard").asInt();
    REGATE_CHECK(version == kShardFormatVersion,
                 "unsupported shard format version ", version,
                 " (this build reads version ", kShardFormatVersion,
                 "); regenerate every shard with one binary build");
    ShardDoc doc;
    const auto &kind = v.at("kind").asString();
    if (kind == "run")
        doc.kind = ShardKind::Run;
    else if (kind == "search")
        doc.kind = ShardKind::Search;
    else
        throw ConfigError("unknown shard kind \"" + kind + "\"");
    doc.cases = v.at("cases").asU64();
    if (const auto *spec_digest = v.find("spec_digest"))
        doc.specDigest = spec_digest->asString();
    doc.shardIndex = v.at("shard").at("index").asInt();
    doc.shardCount = v.at("shard").at("count").asInt();
    const auto &entries = v.at("entries");
    REGATE_CHECK(entries.type == JsonValue::Type::Array,
                 "expected entries array");
    // Verify both digest layers while reading: each entry's stored
    // digest against the canonical reserialization of its parsed
    // result (bit-exact round trip makes that the original bytes),
    // and the footer digest against the reassembled entry lines.
    std::uint64_t file_digest = fnv1a64(nullptr, 0);
    for (const auto &entry : entries.items) {
        std::size_t index = entry.at("index").asU64();
        const auto &stored = entry.at("digest").asString();
        std::string json;
        if (doc.kind == ShardKind::Run) {
            auto rep = readReport(entry.at("result"));
            appendReport(json, rep);
            doc.runs.emplace_back(index, std::move(rep));
        } else {
            auto res = readSloResult(entry.at("result"));
            appendSloResult(json, res);
            doc.searches.emplace_back(index, std::move(res));
        }
        auto computed = contentDigest(json);
        REGATE_CHECK(stored == computed,
                     "entry for grid index ", index,
                     ": content digest mismatch (stored ", stored,
                     ", computed ", computed,
                     ") — corrupted shard file?");
        auto line = entryLine(index, json, computed);
        line += '\n';
        file_digest =
            fnv1a64Extend(file_digest, line.data(), line.size());
        doc.entryTexts.emplace_back(index, std::move(json));
    }
    const auto &stored_file = v.at("file_digest").asString();
    REGATE_CHECK(stored_file == hexDigest64(file_digest),
                 "whole-file digest mismatch (stored ", stored_file,
                 ", computed ", hexDigest64(file_digest),
                 ") — entries dropped, duplicated, or reordered?");
    return doc;
}

std::vector<WorkloadReport>
mergeRunShards(const std::vector<ShardDoc> &shards)
{
    return mergeShardsImpl(shards, ShardKind::Run, &ShardDoc::runs);
}

std::vector<SloResult>
mergeSearchShards(const std::vector<ShardDoc> &shards)
{
    return mergeShardsImpl(shards, ShardKind::Search,
                           &ShardDoc::searches);
}

}  // namespace sim
}  // namespace regate
