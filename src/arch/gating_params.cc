#include "arch/gating_params.h"

#include <array>
#include <cmath>

#include "common/error.h"
#include "common/hash.h"

namespace regate {
namespace arch {

std::string
gatedUnitName(GatedUnit unit)
{
    switch (unit) {
      case GatedUnit::SaPe:
        return "SA (PE)";
      case GatedUnit::SaFull:
        return "SA (full)";
      case GatedUnit::Vu:
        return "VU";
      case GatedUnit::Hbm:
        return "HBM";
      case GatedUnit::Ici:
        return "ICI";
      case GatedUnit::SramSleep:
        return "SRAM (sleep)";
      case GatedUnit::SramOff:
        return "SRAM (off)";
    }
    throw LogicError("unknown GatedUnit");
}

namespace {

// Table 3 of the paper: power on/off delay and break-even time, cycles.
const std::array<UnitGatingParams, 7> kTable3 = {{
    /* SaPe      */ {1, 47},
    /* SaFull    */ {10, 469},
    /* Vu        */ {2, 32},
    /* Hbm       */ {60, 412},
    /* Ici       */ {60, 459},
    /* SramSleep */ {4, 41},
    /* SramOff   */ {10, 82},
}};

const UnitGatingParams &
table3(GatedUnit unit)
{
    return kTable3[static_cast<std::size_t>(unit)];
}

Cycles
scaleCycles(Cycles c, double s)
{
    double v = static_cast<double>(c) * s;
    auto w = static_cast<Cycles>(v);
    return v > static_cast<double>(w) ? w + 1 : w;
}

}  // namespace

Cycles
GatingParams::onOffDelay(GatedUnit unit) const
{
    return scaleCycles(table3(unit).onOffDelay, delayScale_);
}

Cycles
GatingParams::breakEven(GatedUnit unit) const
{
    return scaleCycles(table3(unit).breakEven, delayScale_);
}

Cycles
GatingParams::detectionWindow(GatedUnit unit) const
{
    Cycles w = breakEven(unit) / 3;
    return w > 0 ? w : 1;
}

double
GatingParams::gatedLeakage(GatedUnit unit) const
{
    switch (unit) {
      case GatedUnit::SramSleep:
        return ratios_.sramSleep;
      case GatedUnit::SramOff:
        return ratios_.sramOff;
      default:
        return ratios_.logicOff;
    }
}

std::size_t
GatingParams::contentHash() const
{
    std::size_t seed = 0;
    hashField(seed, ratios_.logicOff);
    hashField(seed, ratios_.sramSleep);
    hashField(seed, ratios_.sramOff);
    hashField(seed, delayScale_);
    return seed;
}

void
GatingParams::setDelayScale(double scale)
{
    REGATE_CHECK(scale > 0.0 && std::isfinite(scale),
                 "delay scale must be positive, got ", scale);
    delayScale_ = scale;
}

}  // namespace arch
}  // namespace regate
