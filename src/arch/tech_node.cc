#include "arch/tech_node.h"

#include "common/error.h"
#include "common/units.h"

namespace regate {
namespace arch {

std::string
techNodeName(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return "16nm";
      case TechNode::N7:
        return "7nm";
      case TechNode::N4:
        return "4nm";
    }
    throw LogicError("unknown TechNode");
}

namespace {

using units::pJ;

// Calibrated per-node parameters. Leakage densities rise with density
// (thinner oxides, lower Vth) while per-event switching energies fall;
// this reproduces the paper's observation that static power becomes a
// relatively larger share at newer nodes (§1, §3).
const TechParams kN16{
    /*densityScale=*/1.0,
    /*leakageDensityLogic=*/0.18,     // W/mm^2
    /*leakageDensitySram=*/0.35,
    /*energyPerMac=*/pJ(2.0),
    /*energyPerSramByte=*/pJ(1.5),
    /*energyPerHbmByte=*/pJ(56.0),    // ~7 pJ/bit, HBM2 era
    /*energyPerIciByte=*/pJ(40.0),
    /*energyPerVuOp=*/pJ(2.5),
    /*vdd=*/0.80,
};

const TechParams kN7{
    /*densityScale=*/3.0,
    /*leakageDensityLogic=*/0.35,
    /*leakageDensitySram=*/0.65,
    /*energyPerMac=*/pJ(0.6),
    /*energyPerSramByte=*/pJ(0.8),
    /*energyPerHbmByte=*/pJ(32.0),    // ~4 pJ/bit, HBM2e era
    /*energyPerIciByte=*/pJ(24.0),
    /*energyPerVuOp=*/pJ(1.2),
    /*vdd=*/0.75,
};

const TechParams kN4{
    /*densityScale=*/5.5,
    /*leakageDensityLogic=*/0.50,
    /*leakageDensitySram=*/0.90,
    /*energyPerMac=*/pJ(0.45),
    /*energyPerSramByte=*/pJ(0.6),
    /*energyPerHbmByte=*/pJ(28.0),    // ~3.5 pJ/bit, HBM3e era
    /*energyPerIciByte=*/pJ(18.0),
    /*energyPerVuOp=*/pJ(0.9),
    /*vdd=*/0.70,
};

}  // namespace

const TechParams &
techParams(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return kN16;
      case TechNode::N7:
        return kN7;
      case TechNode::N4:
        return kN4;
    }
    throw LogicError("unknown TechNode");
}

}  // namespace arch
}  // namespace regate
