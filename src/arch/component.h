/**
 * @file
 * The core chip components tracked by the study (§3): systolic arrays,
 * vector units, on-chip SRAM, HBM controller & PHY, ICI controller &
 * PHY, and "other" (chip management, control, PCIe, misc datapaths,
 * which the paper explicitly does not power-gate).
 */

#ifndef REGATE_ARCH_COMPONENT_H
#define REGATE_ARCH_COMPONENT_H

#include <array>
#include <cstddef>
#include <string>

namespace regate {
namespace arch {

/** Core components of an NPU chip. */
enum class Component { Sa, Vu, Sram, Hbm, Ici, Other };

/** Number of Component values. */
constexpr std::size_t kNumComponents = 6;

/** All components, in display order. */
constexpr std::array<Component, kNumComponents> kAllComponents = {
    Component::Sa,  Component::Vu,  Component::Sram,
    Component::Hbm, Component::Ici, Component::Other,
};

/** Printable component name. */
inline std::string
componentName(Component c)
{
    switch (c) {
      case Component::Sa:
        return "SA";
      case Component::Vu:
        return "VU";
      case Component::Sram:
        return "SRAM";
      case Component::Hbm:
        return "HBM";
      case Component::Ici:
        return "ICI";
      case Component::Other:
        return "Other";
    }
    return "?";
}

/** Index of a component, for array storage. */
constexpr std::size_t
componentIndex(Component c)
{
    return static_cast<std::size_t>(c);
}

/**
 * Fixed-size map from Component to T; zero-initialized. Convenience
 * container used by the power/energy bookkeeping.
 */
template <typename T>
class ComponentMap
{
  public:
    T &operator[](Component c) { return data_[componentIndex(c)]; }

    const T &
    operator[](Component c) const
    {
        return data_[componentIndex(c)];
    }

    /** Sum over all components (requires T to support +). */
    T
    sum() const
    {
        T s{};
        for (const auto &v : data_)
            s = s + v;
        return s;
    }

    ComponentMap &
    operator+=(const ComponentMap &o)
    {
        for (std::size_t i = 0; i < kNumComponents; ++i)
            data_[i] = data_[i] + o.data_[i];
        return *this;
    }

  private:
    std::array<T, kNumComponents> data_{};
};

}  // namespace arch
}  // namespace regate

#endif  // REGATE_ARCH_COMPONENT_H
