/**
 * @file
 * Power-gating circuit parameters (the paper's Table 3) and the
 * leakage-ratio settings used in the evaluation (§6.1) and in the
 * sensitivity analysis (§6.5, Fig. 21/22).
 */

#ifndef REGATE_ARCH_GATING_PARAMS_H
#define REGATE_ARCH_GATING_PARAMS_H

#include <cstddef>
#include <string>

#include "common/units.h"

namespace regate {
namespace arch {

/**
 * Everything on the chip that ReGate can power-gate. SA appears twice
 * because a single PE and the full array have very different wake-up
 * costs; SRAM appears twice for its SLEEP (data-retaining) and OFF
 * (gated-Vdd) modes.
 */
enum class GatedUnit {
    SaPe,       ///< One processing element of a systolic array.
    SaFull,     ///< An entire systolic array.
    Vu,         ///< One vector unit.
    Hbm,        ///< HBM controller & PHY (+ DMA engine).
    Ici,        ///< ICI controller & PHY.
    SramSleep,  ///< A 4 KB SRAM segment entering drowsy/sleep mode.
    SramOff,    ///< A 4 KB SRAM segment fully power-gated (data lost).
};

/** Printable unit name. */
std::string gatedUnitName(GatedUnit unit);

/** Per-unit circuit timing from the synthesized prototype (Table 3). */
struct UnitGatingParams
{
    Cycles onOffDelay;   ///< Power on/off delay, cycles.
    Cycles breakEven;    ///< Break-even time (BET), cycles.
};

/**
 * Leakage power in low-power states, expressed as a fraction of the
 * active-state static power. Defaults are the paper's §6.1 settings;
 * Fig. 21 sweeps these.
 */
struct LeakageRatios
{
    double logicOff = 0.03;   ///< Power-gated logic.
    double sramSleep = 0.25;  ///< Drowsy SRAM cells.
    double sramOff = 0.002;   ///< Power-gated SRAM cells.

    bool
    operator==(const LeakageRatios &o) const
    {
        return logicOff == o.logicOff && sramSleep == o.sramSleep &&
               sramOff == o.sramOff;
    }
    bool operator!=(const LeakageRatios &o) const { return !(*this == o); }
};

/**
 * Full set of gating parameters used by the gating engine. delayScale
 * implements the Fig. 22 sweep (1x..4x on both on/off delays and BETs).
 */
class GatingParams
{
  public:
    /** Default parameters: Table 3 delays/BETs, §6.1 leakage ratios. */
    GatingParams() = default;

    /** Parameters with custom leakage ratios (Fig. 21). */
    explicit GatingParams(const LeakageRatios &ratios)
        : ratios_(ratios)
    {}

    /** On/off delay of a unit in cycles, after delay scaling. */
    Cycles onOffDelay(GatedUnit unit) const;

    /** Break-even time of a unit in cycles, after delay scaling. */
    Cycles breakEven(GatedUnit unit) const;

    /**
     * Idle-detection window used by hardware-managed policies before
     * gating a unit: BET/3 following Warped Gates [7] (§6.1).
     */
    Cycles detectionWindow(GatedUnit unit) const;

    /** Leakage fraction that remains when @p unit is gated. */
    double gatedLeakage(GatedUnit unit) const;

    const LeakageRatios &ratios() const { return ratios_; }

    double delayScale() const { return delayScale_; }

    /** Scale all delays and BETs (Fig. 22: 1x, 1.5x, 2x, 3x, 4x). */
    void setDelayScale(double scale);

    void setRatios(const LeakageRatios &r) { ratios_ = r; }

    /**
     * Content equality/hash over everything that influences gating
     * behaviour (ratios + delay scale), so params can be part of the
     * simulation-memo cache key: equal params evaluate identically.
     */
    bool
    operator==(const GatingParams &o) const
    {
        return ratios_ == o.ratios_ && delayScale_ == o.delayScale_;
    }
    bool operator!=(const GatingParams &o) const { return !(*this == o); }

    std::size_t contentHash() const;

  private:
    LeakageRatios ratios_;
    double delayScale_ = 1.0;
};

}  // namespace arch
}  // namespace regate

#endif  // REGATE_ARCH_GATING_PARAMS_H
