/**
 * @file
 * Technology-node parameters for the area/power model.
 *
 * The paper's power model (§4.4) follows McPAT/NeuroMeter: component
 * area is derived from microarchitectural parameters and the feature
 * size, then static power comes from area x leakage density and dynamic
 * power from per-event switching energies. Feature-size scaling below
 * is calibrated so that (a) newer nodes improve FLOPs/W and (b) the
 * static share of busy-chip energy stays in the 30%-72% band the paper
 * reports across generations (§3, Fig. 3).
 */

#ifndef REGATE_ARCH_TECH_NODE_H
#define REGATE_ARCH_TECH_NODE_H

#include <string>

namespace regate {
namespace arch {

/** Process nodes used across NPU-A..E (Table 2). */
enum class TechNode { N16, N7, N4 };

/** Printable node name ("16nm", "7nm", "4nm"). */
std::string techNodeName(TechNode node);

/**
 * Per-node physical parameters. All densities are for the nominal
 * operating voltage of the node.
 */
struct TechParams
{
    /** Logic transistor density relative to 16 nm (area scaling). */
    double densityScale;

    /** Leakage power density of active logic, W per mm^2 (nominal). */
    double leakageDensityLogic;

    /** Leakage power density of SRAM arrays, W per mm^2 (nominal). */
    double leakageDensitySram;

    /** Energy per bf16 MAC, joules. */
    double energyPerMac;

    /** Energy per byte of SRAM access, joules. */
    double energyPerSramByte;

    /** Energy per byte moved over HBM (controller+PHY+DRAM IO), J. */
    double energyPerHbmByte;

    /** Energy per byte moved over one ICI link (SerDes+ctrl), J. */
    double energyPerIciByte;

    /** Energy per VU lane operation (fp32 ALU + regfile), J. */
    double energyPerVuOp;

    /** Nominal supply voltage, volts (reported, used by docs/benches). */
    double vdd;
};

/** Look up the calibrated parameters of a node. */
const TechParams &techParams(TechNode node);

}  // namespace arch
}  // namespace regate

#endif  // REGATE_ARCH_TECH_NODE_H
