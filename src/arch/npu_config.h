/**
 * @file
 * NPU chip specifications (the paper's Table 2).
 *
 * NPU-A/B/C/D are derived from TPUv2/3/4/5p; NPU-E is the projected
 * TPUv6p-class part. Values marked with (*) in the paper are inferred
 * from public data; we carry the paper's numbers verbatim.
 */

#ifndef REGATE_ARCH_NPU_CONFIG_H
#define REGATE_ARCH_NPU_CONFIG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/tech_node.h"
#include "common/units.h"

namespace regate {
namespace arch {

/** The five NPU generations studied in the paper. */
enum class NpuGeneration { A, B, C, D, E };

/** Number of NpuGeneration values (for per-generation tables). */
constexpr std::size_t kNumGenerations = 5;
static_assert(kNumGenerations ==
                  static_cast<std::size_t>(NpuGeneration::E) + 1,
              "update kNumGenerations when adding a generation");

/** All generations in order, for sweeps. */
const std::vector<NpuGeneration> &allGenerations();

/** Single-letter name ("A".."E"). */
std::string generationName(NpuGeneration gen);

/**
 * Full specification of one NPU chip generation, plus derived
 * quantities the simulator needs.
 */
struct NpuConfig
{
    std::string name;          ///< "NPU-A" .. "NPU-E".
    NpuGeneration generation;  ///< Which generation this is.
    int deploymentYear;        ///< 2017..2023; 0 for projected parts.
    TechNode node;             ///< Process node.
    double frequencyHz;        ///< Core clock.

    int saWidth;               ///< Systolic array is saWidth x saWidth.
    int numSa;                 ///< Number of systolic arrays.
    int numVu;                 ///< Number of vector units.
    int vuSublanes;            ///< SIMD rows per VU (8 on TPU).
    int vuLaneWidth;           ///< SIMD columns per VU (128 on TPU).

    std::uint64_t sramBytes;   ///< On-chip scratchpad capacity.
    std::uint64_t sramSegmentBytes;  ///< Power-gating granule (4 KB).

    std::string hbmType;       ///< "HBM2", "HBM2e", "HBM3e".
    double hbmBandwidth;       ///< Bytes/s.
    std::uint64_t hbmBytes;    ///< HBM capacity.

    int iciLinks;              ///< Links per chip (4 or 6).
    double iciBandwidthPerLink;///< Bytes/s per link per direction.
    int torusDims;             ///< 2 => 2D torus, 3 => 3D torus.

    /** Lanes per VU (sublanes x lane width). */
    int vuLanes() const { return vuSublanes * vuLaneWidth; }

    /** Seconds per core cycle. */
    double cycleTime() const { return 1.0 / frequencyHz; }

    /** Cycles for a given duration, rounded up. */
    Cycles
    cyclesFor(double seconds) const
    {
        double c = seconds * frequencyHz;
        auto w = static_cast<Cycles>(c);
        return c > static_cast<double>(w) ? w + 1 : w;
    }

    /** Peak bf16 FLOP/s across all SAs (2 flops per MAC). */
    double
    peakFlops() const
    {
        return 2.0 * static_cast<double>(numSa) * saWidth * saWidth *
               frequencyHz;
    }

    /** Peak MAC/s across all SAs. */
    double peakMacs() const { return peakFlops() / 2.0; }

    /** Peak VU elementwise op/s across all VUs. */
    double
    peakVuOps() const
    {
        return static_cast<double>(numVu) * vuLanes() * frequencyHz;
    }

    /** Number of 4 KB power-gating segments in the scratchpad. */
    std::uint64_t
    sramSegments() const
    {
        return sramBytes / sramSegmentBytes;
    }

    /** Aggregate ICI bandwidth (all links), bytes/s. */
    double
    iciBandwidth() const
    {
        return static_cast<double>(iciLinks) * iciBandwidthPerLink;
    }

    /** Throw ConfigError if any field is inconsistent. */
    void validate() const;
};

/** Table 2 configuration for one generation. */
const NpuConfig &npuConfig(NpuGeneration gen);

/** Look up by name ("NPU-A", "A", case-insensitive); throws if unknown. */
const NpuConfig &npuConfigByName(const std::string &name);

}  // namespace arch
}  // namespace regate

#endif  // REGATE_ARCH_NPU_CONFIG_H
