#include "arch/npu_config.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "common/error.h"

namespace regate {
namespace arch {

using units::GBps;
using units::GiB;
using units::KiB;
using units::MHz;
using units::MiB;

const std::vector<NpuGeneration> &
allGenerations()
{
    static const std::vector<NpuGeneration> gens = {
        NpuGeneration::A, NpuGeneration::B, NpuGeneration::C,
        NpuGeneration::D, NpuGeneration::E,
    };
    return gens;
}

std::string
generationName(NpuGeneration gen)
{
    switch (gen) {
      case NpuGeneration::A:
        return "A";
      case NpuGeneration::B:
        return "B";
      case NpuGeneration::C:
        return "C";
      case NpuGeneration::D:
        return "D";
      case NpuGeneration::E:
        return "E";
    }
    throw LogicError("unknown NpuGeneration");
}

void
NpuConfig::validate() const
{
    REGATE_CHECK(frequencyHz > 0, name, ": frequency must be positive");
    REGATE_CHECK(saWidth > 0 && numSa > 0, name, ": bad SA config");
    REGATE_CHECK(numVu > 0 && vuSublanes > 0 && vuLaneWidth > 0, name,
                 ": bad VU config");
    REGATE_CHECK(sramBytes > 0 && sramSegmentBytes > 0, name,
                 ": bad SRAM config");
    REGATE_CHECK(sramBytes % sramSegmentBytes == 0, name,
                 ": SRAM size must be a multiple of the segment size");
    REGATE_CHECK(hbmBandwidth > 0 && hbmBytes > 0, name, ": bad HBM");
    REGATE_CHECK(iciLinks > 0 && iciBandwidthPerLink > 0, name,
                 ": bad ICI");
    REGATE_CHECK(torusDims == 2 || torusDims == 3, name,
                 ": torus must be 2D or 3D");
}

namespace {

// Table 2 of the paper, verbatim.
const std::array<NpuConfig, 5> kConfigs = {{
    {
        "NPU-A", NpuGeneration::A, 2017, TechNode::N16, MHz(700),
        /*saWidth=*/128, /*numSa=*/2, /*numVu=*/4,
        /*vuSublanes=*/8, /*vuLaneWidth=*/128,
        MiB(32), KiB(4),
        "HBM2", GBps(600), GiB(16),
        /*iciLinks=*/4, GBps(62), /*torusDims=*/2,
    },
    {
        "NPU-B", NpuGeneration::B, 2018, TechNode::N16, MHz(940),
        128, 4, 4, 8, 128,
        MiB(32), KiB(4),
        "HBM2", GBps(900), GiB(32),
        4, GBps(70), 2,
    },
    {
        "NPU-C", NpuGeneration::C, 2020, TechNode::N7, MHz(1050),
        128, 8, 4, 8, 128,
        MiB(128), KiB(4),
        "HBM2", GBps(1200), GiB(32),
        4, GBps(50), 2,
    },
    {
        "NPU-D", NpuGeneration::D, 2023, TechNode::N7, MHz(1750),
        128, 8, 6, 8, 128,
        MiB(128), KiB(4),
        "HBM2e", GBps(2765), GiB(95),
        6, GBps(100), 3,
    },
    {
        "NPU-E", NpuGeneration::E, 0, TechNode::N4, MHz(2000),
        256, 8, 8, 8, 128,
        MiB(256), KiB(4),
        "HBM3e", GBps(7400), GiB(192),
        6, GBps(150), 3,
    },
}};

}  // namespace

const NpuConfig &
npuConfig(NpuGeneration gen)
{
    const auto &cfg = kConfigs[static_cast<std::size_t>(gen)];
    REGATE_ASSERT(cfg.generation == gen, "config table out of order");
    return cfg;
}

const NpuConfig &
npuConfigByName(const std::string &name)
{
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const auto &cfg : kConfigs) {
        if (upper == cfg.name || (upper.size() == 1 &&
                                  upper[0] == cfg.name.back())) {
            return cfg;
        }
    }
    throw ConfigError("unknown NPU generation: " + name);
}

}  // namespace arch
}  // namespace regate
