#include "mem/sram.h"

#include "common/error.h"

namespace regate {
namespace mem {

SramScratchpad::SramScratchpad(std::uint64_t capacity_bytes,
                               std::uint64_t segment_bytes,
                               const arch::GatingParams &params)
    : capacity_(capacity_bytes), segmentBytes_(segment_bytes),
      sleepWake_(params.onOffDelay(arch::GatedUnit::SramSleep)),
      offWake_(params.onOffDelay(arch::GatedUnit::SramOff))
{
    REGATE_CHECK(segment_bytes > 0, "segment size must be positive");
    REGATE_CHECK(capacity_bytes > 0 && capacity_bytes % segment_bytes == 0,
                 "capacity must be a positive multiple of the segment "
                 "size");
    states_.assign(capacity_bytes / segment_bytes, SegmentState::On);
    dataValid_.assign(states_.size(), true);
}

SegmentState
SramScratchpad::segmentState(std::uint64_t seg) const
{
    REGATE_CHECK(seg < states_.size(), "segment ", seg, " out of range");
    return states_[seg];
}

std::uint64_t
SramScratchpad::segOf(std::uint64_t addr) const
{
    REGATE_CHECK(addr < capacity_, "address ", addr,
                 " beyond SRAM capacity ", capacity_);
    return addr / segmentBytes_;
}

std::uint64_t
SramScratchpad::setRange(std::uint64_t start, std::uint64_t end,
                         core::PowerMode mode, Cycles now)
{
    (void)now;
    REGATE_CHECK(start <= end && end <= capacity_,
                 "bad setpm range [", start, ", ", end, ")");
    // Only segments fully inside the range change state; partial
    // segments keep their data usable.
    std::uint64_t first = (start + segmentBytes_ - 1) / segmentBytes_;
    std::uint64_t last = end / segmentBytes_;
    std::uint64_t n = 0;
    for (std::uint64_t s = first; s < last; ++s) {
        switch (mode) {
          case core::PowerMode::Off:
            if (states_[s] != SegmentState::Off) {
                states_[s] = SegmentState::Off;
                dataValid_[s] = false;  // Gated-Vdd loses data.
                ++n;
            }
            break;
          case core::PowerMode::Sleep:
            if (states_[s] == SegmentState::On) {
                states_[s] = SegmentState::Sleep;
                ++n;
            }
            break;
          case core::PowerMode::On:
          case core::PowerMode::Auto:
            if (states_[s] != SegmentState::On) {
                states_[s] = SegmentState::On;
                ++stats_.wakeEvents;
                ++n;
            }
            break;
        }
    }
    return n;
}

Cycles
SramScratchpad::wakeSegment(std::uint64_t seg, bool for_read)
{
    Cycles stall = 0;
    switch (states_[seg]) {
      case SegmentState::On:
        break;
      case SegmentState::Sleep:
        stall = sleepWake_;
        states_[seg] = SegmentState::On;
        ++stats_.wakeEvents;
        break;
      case SegmentState::Off:
        stall = offWake_;
        states_[seg] = SegmentState::On;
        ++stats_.wakeEvents;
        break;
    }
    if (for_read && !dataValid_[seg])
        ++stats_.dataLossReads;
    return stall;
}

Cycles
SramScratchpad::write(std::uint64_t addr, std::uint64_t len, Cycles now)
{
    (void)now;
    REGATE_CHECK(len > 0 && addr + len <= capacity_, "bad write [",
                 addr, ", +", len, ")");
    Cycles stall = 0;
    for (std::uint64_t s = segOf(addr); s <= segOf(addr + len - 1); ++s) {
        stall = std::max(stall, wakeSegment(s, /*for_read=*/false));
        dataValid_[s] = true;
    }
    stats_.wakeStallCycles += stall;
    return stall;
}

Cycles
SramScratchpad::read(std::uint64_t addr, std::uint64_t len, Cycles now)
{
    (void)now;
    REGATE_CHECK(len > 0 && addr + len <= capacity_, "bad read [",
                 addr, ", +", len, ")");
    Cycles stall = 0;
    for (std::uint64_t s = segOf(addr); s <= segOf(addr + len - 1); ++s)
        stall = std::max(stall, wakeSegment(s, /*for_read=*/true));
    stats_.wakeStallCycles += stall;
    return stall;
}

std::uint64_t
SramScratchpad::countInState(SegmentState st) const
{
    std::uint64_t n = 0;
    for (auto s : states_)
        n += s == st ? 1 : 0;
    return n;
}

double
SramScratchpad::leakageFraction(const arch::GatingParams &params) const
{
    double on = static_cast<double>(countInState(SegmentState::On));
    double sleep = static_cast<double>(countInState(SegmentState::Sleep));
    double off = static_cast<double>(countInState(SegmentState::Off));
    double total = static_cast<double>(states_.size());
    return (on + sleep * params.ratios().sramSleep +
            off * params.ratios().sramOff) /
           total;
}

}  // namespace mem
}  // namespace regate
