#include "mem/dma.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace mem {

DmaEngine::DmaEngine(const HbmModel &hbm, int channels)
    : hbm_(hbm)
{
    REGATE_CHECK(channels >= 1, "DMA engine needs >= 1 channel");
    channelFree_.assign(channels, 0);
}

Cycles
DmaEngine::issue(std::uint64_t bytes, DmaTarget src, DmaTarget dst,
                 Cycles now)
{
    REGATE_CHECK(bytes > 0, "zero-byte DMA");
    REGATE_CHECK(src != dst || src == DmaTarget::Sram,
                 "DMA source and destination both ", int(src));

    // Least-loaded channel.
    auto it = std::min_element(channelFree_.begin(), channelFree_.end());
    Cycles start = std::max(now, *it);
    Cycles duration = hbm_.transferCycles(bytes);
    Cycles complete = start + duration;
    *it = complete;

    records_.push_back({bytes, src, dst, now, start, complete});
    return complete;
}

std::vector<core::Interval>
DmaEngine::hbmBusyIntervals() const
{
    std::vector<core::Interval> ivs;
    for (const auto &r : records_) {
        if (r.src == DmaTarget::Hbm || r.dst == DmaTarget::Hbm)
            ivs.push_back({r.start, r.complete});
    }
    return core::normalize(std::move(ivs));
}

Cycles
DmaEngine::drainCycle() const
{
    Cycles t = 0;
    for (auto c : channelFree_)
        t = std::max(t, c);
    return t;
}

}  // namespace mem
}  // namespace regate
