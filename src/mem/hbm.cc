#include "mem/hbm.h"

#include "common/error.h"

namespace regate {
namespace mem {

namespace {

// Effective HBM access latency (row activation + channel + on-chip
// network), a few hundred nanoseconds on TPUs (§4.3).
constexpr double kHbmLatencySeconds = 400e-9;

// Fraction of peak bandwidth sustainable by large DMA bursts.
constexpr double kBandwidthEfficiency = 0.9;

}  // namespace

HbmModel::HbmModel(const arch::NpuConfig &cfg)
    : cfg_(cfg), bandwidth_(cfg.hbmBandwidth * kBandwidthEfficiency),
      latency_(kHbmLatencySeconds)
{
    REGATE_CHECK(bandwidth_ > 0, "HBM bandwidth must be positive");
}

double
HbmModel::transferSeconds(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0.0;
    return latency_ + static_cast<double>(bytes) / bandwidth_;
}

Cycles
HbmModel::transferCycles(std::uint64_t bytes) const
{
    return cfg_.cyclesFor(transferSeconds(bytes));
}

}  // namespace mem
}  // namespace regate
