/**
 * @file
 * Software-managed SRAM scratchpad with per-segment power gating
 * (§4.1 "Segment-wise power-gated SRAM").
 *
 * The scratchpad is divided into 4 KB segments (the vector register
 * size). Each segment is ON, SLEEP (drowsy: reduced Vdd, data
 * retained, 25% leakage) or OFF (gated-Vdd: 0.2% leakage, data lost).
 * Software shrinks the usable capacity with `setpm %start,%end,sram`
 * (§4.2); hardware may also put idle segments to sleep.
 *
 * The model tracks data validity so that tests can verify the safety
 * property the paper relies on: only the compiler, which knows the
 * allocation map, may use OFF mode — reading a segment whose data was
 * lost is reported as a correctness violation.
 */

#ifndef REGATE_MEM_SRAM_H
#define REGATE_MEM_SRAM_H

#include <cstdint>
#include <vector>

#include "arch/gating_params.h"
#include "core/power_state.h"

namespace regate {
namespace mem {

/** Physical state of one segment. */
enum class SegmentState : std::uint8_t { On, Sleep, Off };

/** Statistics of one scratchpad instance. */
struct SramStats
{
    std::uint64_t wakeEvents = 0;   ///< Sleep/Off -> On transitions.
    Cycles wakeStallCycles = 0;     ///< Stalls waiting for wake-ups.
    std::uint64_t dataLossReads = 0;///< Reads of lost (OFF) data.
};

/** The scratchpad model. */
class SramScratchpad
{
  public:
    /**
     * @param capacity_bytes Total size.
     * @param segment_bytes  Gating granule (4 KB on our NPU).
     * @param params         Wake delays for sleep/off modes.
     */
    SramScratchpad(std::uint64_t capacity_bytes,
                   std::uint64_t segment_bytes,
                   const arch::GatingParams &params);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t segmentBytes() const { return segmentBytes_; }
    std::uint64_t numSegments() const { return states_.size(); }

    SegmentState segmentState(std::uint64_t seg) const;

    /**
     * setpm over a byte range [start, end): segments fully inside the
     * range change state. On/Off/Sleep map to the §4.2 modes; Auto
     * returns segments to hardware control (treated as On here).
     * Returns the number of segments affected.
     */
    std::uint64_t setRange(std::uint64_t start, std::uint64_t end,
                           core::PowerMode mode, Cycles now);

    /**
     * Write @p len bytes at @p addr at time @p now. Sleeping segments
     * wake (stall); OFF segments wake and become valid again.
     * @return cycles of stall exposed by wake-ups.
     */
    Cycles write(std::uint64_t addr, std::uint64_t len, Cycles now);

    /**
     * Read @p len bytes at @p addr. Reading a segment that lost its
     * data (was OFF since the last write) counts a dataLossRead.
     * @return cycles of stall exposed by wake-ups.
     */
    Cycles read(std::uint64_t addr, std::uint64_t len, Cycles now);

    /** Number of segments currently in each state. */
    std::uint64_t countInState(SegmentState s) const;

    /**
     * Leakage power of the whole scratchpad right now, as a fraction
     * of the all-ON leakage (for energy integration).
     */
    double leakageFraction(const arch::GatingParams &params) const;

    const SramStats &stats() const { return stats_; }

  private:
    std::uint64_t segOf(std::uint64_t addr) const;
    Cycles wakeSegment(std::uint64_t seg, bool for_read);

    std::uint64_t capacity_;
    std::uint64_t segmentBytes_;
    Cycles sleepWake_;
    Cycles offWake_;
    std::vector<SegmentState> states_;
    std::vector<bool> dataValid_;
    SramStats stats_;
};

}  // namespace mem
}  // namespace regate

#endif  // REGATE_MEM_SRAM_H
