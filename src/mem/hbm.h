/**
 * @file
 * HBM timing model: DMA transfer latency and the low-power
 * auto-refresh mode the HBM controller enters when gated (§4.1).
 *
 * NPU DMA requests are large, so a simple bandwidth + fixed-latency
 * model captures the timing: t = latency + bytes / bandwidth. When the
 * controller is idle long enough, ReGate powers off the DMA engine
 * and switches the controller to auto-refresh; refreshes still fire
 * every tREFI (3.9 us [11]) and their energy is charged to the gated
 * state via the logicOff leakage ratio.
 */

#ifndef REGATE_MEM_HBM_H
#define REGATE_MEM_HBM_H

#include <cstdint>

#include "arch/npu_config.h"
#include "common/units.h"

namespace regate {
namespace mem {

/** HBM channel/controller timing model. */
class HbmModel
{
  public:
    explicit HbmModel(const arch::NpuConfig &cfg);

    /** Seconds to move @p bytes (one direction). */
    double transferSeconds(std::uint64_t bytes) const;

    /** Same, in core cycles (rounded up). */
    Cycles transferCycles(std::uint64_t bytes) const;

    /** Sustained bandwidth, bytes/s. */
    double bandwidth() const { return bandwidth_; }

    /** Fixed access latency, seconds. */
    double latency() const { return latency_; }

    /** Refresh interval tREFI, seconds (auto-refresh cadence). */
    static constexpr double kRefreshInterval = 3.9e-6;

  private:
    const arch::NpuConfig &cfg_;
    double bandwidth_;
    double latency_;
};

}  // namespace mem
}  // namespace regate

#endif  // REGATE_MEM_HBM_H
