#include "mem/sram_allocator.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace mem {

SramAllocator::SramAllocator(std::uint64_t capacity,
                             std::uint64_t segment_bytes)
    : capacity_(capacity), segmentBytes_(segment_bytes)
{
    REGATE_CHECK(capacity > 0 && segment_bytes > 0 &&
                     capacity % segment_bytes == 0,
                 "capacity must be a positive multiple of segment size");
}

SramBuffer
SramAllocator::allocate(std::uint64_t size, std::uint64_t start,
                        std::uint64_t end, const std::string &name)
{
    REGATE_CHECK(size > 0, "cannot allocate empty buffer '", name, "'");
    REGATE_CHECK(start < end, "buffer '", name, "' has empty lifetime [",
                 start, ", ", end, ")");
    REGATE_CHECK(size <= capacity_, "buffer '", name, "' of ", size,
                 " bytes exceeds scratchpad capacity ", capacity_);

    // Collect buffers whose lifetimes overlap [start, end), sorted by
    // offset, and first-fit into the gaps between them.
    std::vector<const SramBuffer *> live;
    for (const auto &b : buffers_) {
        if (b.start < end && start < b.end)
            live.push_back(&b);
    }
    std::sort(live.begin(), live.end(),
              [](const SramBuffer *a, const SramBuffer *b) {
                  return a->offset < b->offset;
              });

    std::uint64_t cursor = 0;
    for (const auto *b : live) {
        if (b->offset >= cursor + size)
            break;  // Gap [cursor, b->offset) fits.
        cursor = std::max(cursor, b->offset + b->size);
    }
    REGATE_CHECK(cursor + size <= capacity_,
                 "scratchpad exhausted allocating '", name, "' (", size,
                 " bytes live over [", start, ", ", end, "))");

    SramBuffer buf;
    buf.id = nextId_++;
    buf.name = name;
    buf.offset = cursor;
    buf.size = size;
    buf.start = start;
    buf.end = end;
    buffers_.push_back(buf);
    peak_ = std::max(peak_, cursor + size);
    return buffers_.back();
}

std::vector<std::vector<core::Interval>>
SramAllocator::segmentOccupancy(std::uint64_t horizon) const
{
    std::vector<std::vector<core::Interval>> per_seg(
        capacity_ / segmentBytes_);
    for (const auto &b : buffers_) {
        std::uint64_t first = b.offset / segmentBytes_;
        std::uint64_t last = (b.offset + b.size - 1) / segmentBytes_;
        Cycles end = std::min<std::uint64_t>(b.end, horizon);
        if (b.start >= end)
            continue;
        for (std::uint64_t s = first; s <= last; ++s)
            per_seg[s].push_back({b.start, end});
    }
    for (auto &ivs : per_seg)
        ivs = core::normalize(std::move(ivs));
    return per_seg;
}

}  // namespace mem
}  // namespace regate
