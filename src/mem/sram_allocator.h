/**
 * @file
 * Lifetime-based SRAM allocation pass (§4.3).
 *
 * The compiler's SRAM allocation pass assigns each buffer a start
 * address and a [start, end) instruction-index lifetime. ReGate's
 * idleness analysis consumes this output to derive, per 4 KB segment,
 * the intervals where the segment holds no live data and can be fully
 * powered off.
 *
 * The allocator is a first-fit over live buffers at the allocation's
 * start index — the classic linear-scan scratchpad allocator used by
 * production ML compilers.
 */

#ifndef REGATE_MEM_SRAM_ALLOCATOR_H
#define REGATE_MEM_SRAM_ALLOCATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/interval.h"

namespace regate {
namespace mem {

/** One allocated buffer. */
struct SramBuffer
{
    std::uint64_t id = 0;
    std::string name;
    std::uint64_t offset = 0;  ///< Assigned start address.
    std::uint64_t size = 0;    ///< Bytes.
    std::uint64_t start = 0;   ///< First instruction index alive.
    std::uint64_t end = 0;     ///< One past the last index alive.
};

/** The allocation pass. */
class SramAllocator
{
  public:
    /** @param capacity Scratchpad bytes.
     *  @param segment_bytes Power-gating granule. */
    SramAllocator(std::uint64_t capacity, std::uint64_t segment_bytes);

    /**
     * Allocate @p size bytes live over instruction indices
     * [start, end). Throws ConfigError if no space is available.
     * @return a copy of the assigned buffer — by value, because a
     *         reference into buffers_ would dangle on the vector's
     *         next growth (the next allocate call).
     */
    SramBuffer allocate(std::uint64_t size, std::uint64_t start,
                        std::uint64_t end,
                        const std::string &name = "");

    const std::vector<SramBuffer> &buffers() const { return buffers_; }

    /** Highest address ever occupied (peak footprint). */
    std::uint64_t peakBytes() const { return peak_; }

    /**
     * Per-segment occupancy timeline over instruction indices
     * [0, horizon): the intervals during which the segment holds at
     * least one live byte. Segments with empty timelines are never
     * used and can be OFF for the entire program.
     */
    std::vector<std::vector<core::Interval>>
    segmentOccupancy(std::uint64_t horizon) const;

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t segmentBytes() const { return segmentBytes_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t segmentBytes_;
    std::uint64_t peak_ = 0;
    std::uint64_t nextId_ = 0;
    std::vector<SramBuffer> buffers_;
};

}  // namespace mem
}  // namespace regate

#endif  // REGATE_MEM_SRAM_ALLOCATOR_H
