/**
 * @file
 * Asynchronous DMA engine model: queued copies between HBM and SRAM
 * (or remote chips over ICI), with completion times and the busy
 * intervals the gating analysis needs.
 */

#ifndef REGATE_MEM_DMA_H
#define REGATE_MEM_DMA_H

#include <cstdint>
#include <vector>

#include "core/interval.h"
#include "mem/hbm.h"

namespace regate {
namespace mem {

/** Where a DMA endpoint lives. */
enum class DmaTarget { Hbm, Sram, RemoteIci };

/** One completed DMA descriptor. */
struct DmaRecord
{
    std::uint64_t bytes = 0;
    DmaTarget src = DmaTarget::Hbm;
    DmaTarget dst = DmaTarget::Sram;
    Cycles issued = 0;
    Cycles start = 0;    ///< When the engine began the copy.
    Cycles complete = 0; ///< When the data landed.
};

/**
 * In-order DMA engine with a configurable number of outstanding
 * channels; copies on different channels overlap, copies on one
 * channel serialize.
 */
class DmaEngine
{
  public:
    /**
     * @param hbm      Timing model for HBM-side transfers.
     * @param channels Parallel DMA channels (>= 1).
     */
    DmaEngine(const HbmModel &hbm, int channels);

    /**
     * Queue a copy of @p bytes issued at @p now.
     * @return completion cycle.
     */
    Cycles issue(std::uint64_t bytes, DmaTarget src, DmaTarget dst,
                 Cycles now);

    const std::vector<DmaRecord> &records() const { return records_; }

    /** Busy intervals of the HBM interface (for gating analysis). */
    std::vector<core::Interval> hbmBusyIntervals() const;

    /** Cycle when every queued copy has completed. */
    Cycles drainCycle() const;

  private:
    const HbmModel &hbm_;
    std::vector<Cycles> channelFree_;
    std::vector<DmaRecord> records_;
};

}  // namespace mem
}  // namespace regate

#endif  // REGATE_MEM_DMA_H
