#include "models/spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"
#include "common/hash.h"
#include "models/registry.h"

namespace regate {
namespace models {

namespace {

constexpr const char *kHeader = "@regate-spec v1";

/** Expansion guard: a runaway range is a spec bug, not a sweep. */
constexpr std::size_t kMaxScenarios = 4096;

[[noreturn]] void
fail(const std::string &source, int line, const std::string &msg)
{
    throw ConfigError(source + ":" + std::to_string(line) + ": " +
                      msg);
}

std::string
trim(const std::string &s)
{
    auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

bool
parseInt(const std::string &s, std::int64_t *out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (!end || end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = v;
    return true;
}

/**
 * One integer value, a comma list, or a range distribution
 * `lo..hi:*K` (geometric) / `lo..hi:+K` (arithmetic). Every reject
 * names the offending line.
 */
std::vector<std::int64_t>
parseIntValues(const std::string &key, const std::string &text,
               const std::string &source, int line)
{
    std::vector<std::int64_t> out;
    auto range_at = text.find("..");
    if (range_at != std::string::npos) {
        std::int64_t lo = 0, hi = 0, step = 0;
        auto colon = text.find(':', range_at);
        if (colon == std::string::npos)
            fail(source, line, "bad distribution for '" + key + "': '" +
                 text + "' has no step (want lo..hi:*K or lo..hi:+K)");
        char op = colon + 1 < text.size() ? text[colon + 1] : '\0';
        if (!parseInt(trim(text.substr(0, range_at)), &lo) ||
            !parseInt(trim(text.substr(range_at + 2,
                                       colon - range_at - 2)), &hi) ||
            (op != '*' && op != '+') ||
            !parseInt(trim(text.substr(colon + 2)), &step))
            fail(source, line, "bad distribution for '" + key + "': '" +
                 text + "' (want lo..hi:*K or lo..hi:+K)");
        if (hi < lo)
            fail(source, line, "bad distribution for '" + key +
                 "': upper bound " + std::to_string(hi) +
                 " below lower bound " + std::to_string(lo));
        if (op == '*' && step <= 1)
            fail(source, line, "bad distribution for '" + key +
                 "': geometric step must be > 1");
        if (op == '+' && step <= 0)
            fail(source, line, "bad distribution for '" + key +
                 "': arithmetic step must be > 0");
        for (std::int64_t v = lo; v <= hi;
             v = op == '*' ? v * step : v + step) {
            out.push_back(v);
            if (out.size() > kMaxScenarios)
                fail(source, line, "distribution for '" + key +
                     "' expands to more than " +
                     std::to_string(kMaxScenarios) + " values");
            if (op == '*' && v > hi / step)
                break;  // Next multiply would overflow past hi.
        }
        return out;
    }

    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        std::int64_t v = 0;
        if (!parseInt(trim(item), &v))
            fail(source, line, "malformed value for '" + key + "': '" +
                 text + "' (want an integer, a comma list, or "
                 "lo..hi:*K / lo..hi:+K)");
        out.push_back(v);
    }
    if (out.empty())
        fail(source, line, "malformed value for '" + key +
             "': empty value");
    return out;
}

double
parseDoubleValue(const std::string &key, const std::string &text,
                 const std::string &source, int line)
{
    if (!text.empty()) {
        errno = 0;
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end && end != text.c_str() && *end == '\0' &&
            errno != ERANGE && std::isfinite(v))
            return v;
    }
    fail(source, line, "malformed value for '" + key + "': '" + text +
         "' (want a single finite number)");
}

std::string
canonicalDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
isGatingKey(const std::string &key)
{
    return key == "logic_off" || key == "sram_sleep" ||
           key == "sram_off" || key == "delay_scale";
}

bool
isStringKey(const std::string &key)
{
    return key == "family" || key == "model" || key == "unit";
}

struct Entry
{
    std::string key;
    std::string value;
    int line = 0;
};

struct Section
{
    std::string name;
    int line = 0;
    std::vector<Entry> entries;

    const Entry *find(const std::string &key) const
    {
        for (const auto &e : entries)
            if (e.key == key)
                return &e;
        return nullptr;
    }
};

/** Split the text into header-checked sections of raw entries. */
std::vector<Section>
splitSections(const std::string &text, const std::string &source)
{
    std::vector<Section> sections;
    std::set<std::string> names;
    bool have_header = false;
    int line_no = 0;
    std::stringstream ss(text);
    std::string raw;
    while (std::getline(ss, raw)) {
        ++line_no;
        auto comment = raw.find('#');
        if (comment != std::string::npos)
            raw.resize(comment);
        auto line = trim(raw);
        if (line.empty())
            continue;
        if (!have_header) {
            if (line != kHeader)
                fail(source, line_no, "expected '" +
                     std::string(kHeader) + "' header, got '" + line +
                     "'");
            have_header = true;
            continue;
        }
        if (line.front() == '[') {
            if (line.back() != ']' ||
                line.rfind("[scenario ", 0) != 0)
                fail(source, line_no, "malformed section '" + line +
                     "' (want [scenario NAME])");
            Section section;
            section.name =
                trim(line.substr(10, line.size() - 11));
            section.line = line_no;
            if (section.name.empty())
                fail(source, line_no, "scenario section has no name");
            if (!names.insert(section.name).second)
                fail(source, line_no, "duplicate scenario section '" +
                     section.name + "'");
            if (!sections.empty() && sections.back().entries.empty())
                fail(source, sections.back().line, "scenario '" +
                     sections.back().name + "' is empty");
            sections.push_back(std::move(section));
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fail(source, line_no, "malformed line '" + line +
                 "' (want 'key = value')");
        Entry entry;
        entry.key = trim(line.substr(0, eq));
        entry.value = trim(line.substr(eq + 1));
        entry.line = line_no;
        if (entry.key.empty() || entry.value.empty())
            fail(source, line_no, "malformed line '" + line +
                 "' (want 'key = value')");
        if (sections.empty())
            fail(source, line_no, "key '" + entry.key +
                 "' outside any [scenario NAME] section");
        for (const auto &prev : sections.back().entries)
            if (prev.key == entry.key)
                fail(source, line_no, "duplicate key '" + entry.key +
                     "' in scenario '" + sections.back().name +
                     "' (first set on line " +
                     std::to_string(prev.line) + ")");
        sections.back().entries.push_back(std::move(entry));
    }
    if (!have_header)
        fail(source, 1, "expected '" + std::string(kHeader) +
             "' header in an empty spec");
    if (!sections.empty() && sections.back().entries.empty())
        fail(source, sections.back().line, "scenario '" +
             sections.back().name + "' is empty");
    if (sections.empty())
        fail(source, line_no > 0 ? line_no : 1,
             "spec defines no [scenario NAME] sections");
    return sections;
}

/** Expand one section into validated scenarios. */
void
expandSection(const Section &section, const std::string &source,
              std::vector<std::shared_ptr<const ScenarioSpec>> *out)
{
    const auto *family_entry = section.find("family");
    if (!family_entry)
        fail(source, section.line, "scenario '" + section.name +
             "' has no 'family' key");
    const auto *generator =
        GeneratorRegistry::instance().find(family_entry->value);
    if (!generator) {
        std::string known;
        for (const auto &f :
             GeneratorRegistry::instance().families())
            known += known.empty() ? f : ", " + f;
        fail(source, family_entry->line, "unknown workload family '" +
             family_entry->value + "' (registered: " + known + ")");
    }

    // Every key must be one the family documents.
    auto keys = generator->specKeys();
    for (const auto &entry : section.entries) {
        bool known = std::any_of(keys.begin(), keys.end(),
                                 [&](const SpecKeyInfo &k) {
                                     return k.key == entry.key;
                                 });
        if (!known) {
            std::string accepted;
            for (const auto &k : keys)
                accepted += accepted.empty() ? k.key : ", " + k.key;
            fail(source, entry.line, "unknown key '" + entry.key +
                 "' for family '" + family_entry->value +
                 "' (accepted: " + accepted + ")");
        }
    }

    // Multi-valued integer keys drive the expansion odometer
    // (declaration order; first key varies slowest).
    struct Axis
    {
        std::string key;
        std::vector<std::int64_t> values;
        int line = 0;
    };
    std::vector<Axis> axes;
    for (const auto &entry : section.entries) {
        if (isStringKey(entry.key)) {
            continue;
        } else if (isGatingKey(entry.key)) {
            parseDoubleValue(entry.key, entry.value, source,
                             entry.line);
        } else {
            axes.push_back({entry.key,
                            parseIntValues(entry.key, entry.value,
                                           source, entry.line),
                            entry.line});
        }
    }

    std::size_t combos = 1;
    for (const auto &axis : axes) {
        combos *= axis.values.size();
        if (combos > kMaxScenarios)
            fail(source, section.line, "scenario '" + section.name +
                 "' expands to more than " +
                 std::to_string(kMaxScenarios) + " combinations");
    }

    for (std::size_t combo = 0; combo < combos; ++combo) {
        ScenarioSpec spec;
        spec.name = section.name;
        spec.family = family_entry->value;
        if (const auto *e = section.find("model"))
            spec.model = e->value;
        if (const auto *e = section.find("unit"))
            spec.unit = e->value;
        for (const auto &entry : section.entries)
            if (isGatingKey(entry.key))
                spec.gating.emplace_back(
                    entry.key, parseDoubleValue(entry.key, entry.value,
                                                source, entry.line));
        std::sort(spec.gating.begin(), spec.gating.end());

        // Walk the odometer (last axis fastest) and assign.
        std::size_t rest = combo;
        std::vector<std::pair<std::string, std::int64_t>> picked;
        for (auto it = axes.rbegin(); it != axes.rend(); ++it) {
            std::size_t at = rest % it->values.size();
            rest /= it->values.size();
            picked.emplace_back(it->key, it->values[at]);
        }
        std::reverse(picked.begin(), picked.end());

        bool par_given = false;
        Parallelism par;
        int chips_line = section.line;
        for (const auto &[key, value] : picked) {
            if (key == "batch") {
                spec.batch = value;
            } else if (key == "chips") {
                if (value < 1 || value > 1 << 24)
                    fail(source, section.find("chips")->line,
                         "malformed value for 'chips': " +
                         std::to_string(value));
                spec.chips = static_cast<int>(value);
                chips_line = section.find("chips")->line;
            } else if (key == "seq_len") {
                spec.seqLen = value;
            } else if (key == "out_len") {
                spec.outLen = value;
            } else if (key == "dp" || key == "tp" || key == "pp") {
                par_given = true;
                int v = static_cast<int>(value);
                (key == "dp" ? par.dp : key == "tp" ? par.tp
                                                    : par.pp) = v;
            } else {
                spec.extra.emplace_back(key, value);
            }
        }
        std::sort(spec.extra.begin(), spec.extra.end());
        if (par_given) {
            spec.parSet = true;
            spec.par = par;
            if (spec.chips != par.dp * par.tp * par.pp)
                fail(source, chips_line, "scenario '" + section.name +
                     "': inconsistent parallelism: chips (" +
                     std::to_string(spec.chips) + ") != tp*dp*pp (" +
                     std::to_string(par.tp) + "*" +
                     std::to_string(par.dp) + "*" +
                     std::to_string(par.pp) + " = " +
                     std::to_string(par.dp * par.tp * par.pp) + ")");
        }

        // Multi-valued keys tag the expanded name so every grid row
        // stays identifiable.
        for (std::size_t a = 0; a < axes.size(); ++a)
            if (axes[a].values.size() > 1)
                spec.name += "@" + picked[a].first + "=" +
                             std::to_string(picked[a].second);

        try {
            validateScenario(spec);
        } catch (const ConfigError &e) {
            fail(source, section.line, e.what());
        }
        out->push_back(
            std::make_shared<const ScenarioSpec>(std::move(spec)));
    }
}

}  // namespace

std::string
canonicalSpecText(
    const std::vector<std::shared_ptr<const ScenarioSpec>> &scenarios)
{
    std::string out = kHeader;
    out += "\n";
    for (const auto &spec : scenarios) {
        out += "\n[scenario " + spec->name + "]\n";
        out += "family = " + spec->family + "\n";
        if (!spec->model.empty())
            out += "model = " + spec->model + "\n";
        out += "batch = " + std::to_string(spec->batch) + "\n";
        out += "chips = " + std::to_string(spec->chips) + "\n";
        if (spec->seqLen != 0)
            out += "seq_len = " + std::to_string(spec->seqLen) + "\n";
        if (spec->outLen != 0)
            out += "out_len = " + std::to_string(spec->outLen) + "\n";
        if (spec->parSet) {
            out += "dp = " + std::to_string(spec->par.dp) + "\n";
            out += "tp = " + std::to_string(spec->par.tp) + "\n";
            out += "pp = " + std::to_string(spec->par.pp) + "\n";
        }
        out += "unit = " + spec->unit + "\n";
        for (const auto &[key, value] : spec->extra)
            out += key + " = " + std::to_string(value) + "\n";
        for (const auto &[key, value] : spec->gating)
            out += key + " = " + canonicalDouble(value) + "\n";
    }
    return out;
}

SpecFile
parseSpecText(const std::string &text, const std::string &source)
{
    SpecFile file;
    auto sections = splitSections(text, source);
    for (const auto &section : sections) {
        expandSection(section, source, &file.scenarios);
        if (file.scenarios.size() > kMaxScenarios)
            fail(source, section.line, "spec expands to more than " +
                 std::to_string(kMaxScenarios) + " scenarios");
    }
    file.canonicalText = canonicalSpecText(file.scenarios);
    file.digest = hexDigest64(fnv1a64(file.canonicalText.data(),
                                      file.canonicalText.size()));
    return file;
}

SpecFile
parseSpecFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    REGATE_CHECK(in, "cannot open spec file ", path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseSpecText(buffer.str(), path);
}

}  // namespace models
}  // namespace regate
