#include "models/llama.h"

#include <array>

#include "common/error.h"

namespace regate {
namespace models {

using graph::Block;
using graph::CollKind;
using graph::Operator;
using graph::OperatorGraph;
using graph::OpKind;

double
LlamaConfig::params() const
{
    double h = static_cast<double>(hidden);
    double qkv = h * (heads + 2.0 * kvHeads) * headDim;
    double out = static_cast<double>(heads) * headDim * h;
    double ffn = 3.0 * h * static_cast<double>(ffnHidden);
    double embed = 2.0 * static_cast<double>(vocab) * h;
    return layers * (qkv + out + ffn) + embed;
}

double
LlamaConfig::kvBytesPerToken() const
{
    return 2.0 * layers * kvHeads * headDim * 2.0;  // K+V, bf16.
}

namespace {

const std::array<LlamaConfig, 4> kLlamaConfigs = {{
    // name, layers, hidden, heads, kvHeads, headDim, ffn, vocab
    {"Llama3-8B", 32, 4096, 32, 8, 128, 14336, 128256},
    {"Llama2-13B", 40, 5120, 40, 40, 128, 13824, 32000},
    {"Llama3-70B", 80, 8192, 64, 8, 128, 28672, 128256},
    {"Llama3.1-405B", 126, 16384, 128, 8, 128, 53248, 128256},
}};

/** VU lane-op costs per element for the vector operators. */
constexpr double kOpsSoftmax = 6;   // max, sub, exp, sum, div.
constexpr double kOpsNorm = 8;      // mean/var or rms + scale.
constexpr double kOpsRotary = 6;    // sin/cos rotate.
constexpr double kOpsSwiGlu = 4;    // silu(gate) * up.
constexpr double kOpsOptimizer = 10;// Adam update per parameter.
constexpr int kBf16 = 2;

/**
 * Emit one transformer layer into @p ops. @p s is the number of
 * query positions per request (seq_len in prefill/training, 1 in
 * decode); @p ctx the number of attended key positions.
 * @p b_local is the per-replica batch.
 */
void
emitLayer(std::vector<Operator> &ops, const LlamaConfig &cfg,
          std::int64_t b_local, std::int64_t s, std::int64_t ctx,
          const Parallelism &par, bool decode)
{
    const std::int64_t t = par.tp;
    const std::int64_t h = cfg.hidden;
    const std::int64_t heads_l = std::max<std::int64_t>(1, cfg.heads / t);
    const std::int64_t kv_l = std::max<std::int64_t>(1, cfg.kvHeads / t);
    const std::int64_t hd = cfg.headDim;
    const std::int64_t ffn_l =
        std::max<std::int64_t>(1, cfg.ffnHidden / t);
    const double act_bytes =
        static_cast<double>(b_local) * s * h * kBf16;

    auto add = [&ops](Operator op) {
        op.validate();
        ops.push_back(std::move(op));
    };

    // Pre-attention RMSNorm.
    {
        Operator op;
        op.kind = OpKind::Normalization;
        op.name = "rmsnorm.attn";
        op.vuOps = static_cast<double>(b_local) * s * h * kOpsNorm;
        op.hbmReadBytes = act_bytes;
        op.hbmWriteBytes = act_bytes;
        add(op);
    }
    // Fused QKV projection.
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "qkv_proj";
        op.m = b_local * s;
        op.k = h;
        op.n = (heads_l + 2 * kv_l) * hd;
        op.hbmReadBytes =
            act_bytes + static_cast<double>(op.k) * op.n * kBf16;
        op.hbmWriteBytes = static_cast<double>(op.m) * op.n * kBf16;
        add(op);
    }
    // Rotary embedding on Q/K.
    {
        Operator op;
        op.kind = OpKind::Elementwise;
        op.name = "rotary";
        op.vuOps = static_cast<double>(b_local) * s *
                   (heads_l + kv_l) * hd * kOpsRotary;
        add(op);
    }
    // Attention scores: Q x K^T per head.
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "attn.scores";
        op.batch = b_local * heads_l;
        op.m = s;
        op.k = hd;
        op.n = ctx;
        if (decode) {
            // KV-cache K read from HBM.
            op.hbmReadBytes = static_cast<double>(b_local) * kv_l * hd *
                              ctx * kBf16;
        }
        add(op);
    }
    // Softmax over scores (kept on chip; fuses with the GEMMs).
    {
        Operator op;
        op.kind = OpKind::Softmax;
        op.name = "attn.softmax";
        op.vuOps = static_cast<double>(b_local) * heads_l * s * ctx *
                   kOpsSoftmax;
        add(op);
    }
    // Attention value GEMM.
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "attn.value";
        op.batch = b_local * heads_l;
        op.m = s;
        op.k = ctx;
        op.n = hd;
        if (decode) {
            op.hbmReadBytes = static_cast<double>(b_local) * kv_l * hd *
                              ctx * kBf16;
        }
        add(op);
    }
    // Output projection (row-parallel).
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "attn.out_proj";
        op.m = b_local * s;
        op.k = heads_l * hd;
        op.n = h;
        op.hbmReadBytes = static_cast<double>(op.k) * op.n * kBf16;
        op.hbmWriteBytes = act_bytes;
        add(op);
    }
    // Tensor-parallel AllReduce of attention output.
    if (t > 1) {
        Operator op;
        op.kind = OpKind::Collective;
        op.name = "attn.allreduce";
        op.coll = CollKind::AllReduce;
        op.collBytes = act_bytes;
        add(op);
    }
    // Pre-FFN RMSNorm.
    {
        Operator op;
        op.kind = OpKind::Normalization;
        op.name = "rmsnorm.ffn";
        op.vuOps = static_cast<double>(b_local) * s * h * kOpsNorm;
        op.hbmReadBytes = act_bytes;
        op.hbmWriteBytes = act_bytes;
        add(op);
    }
    // FFN gate+up projection (fused GEMM).
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "ffn.gate_up";
        op.m = b_local * s;
        op.k = h;
        op.n = 2 * ffn_l;
        op.hbmReadBytes =
            act_bytes + static_cast<double>(op.k) * op.n * kBf16;
        add(op);
    }
    // SwiGLU activation.
    {
        Operator op;
        op.kind = OpKind::Elementwise;
        op.name = "ffn.swiglu";
        op.vuOps =
            static_cast<double>(b_local) * s * ffn_l * kOpsSwiGlu;
        add(op);
    }
    // FFN down projection.
    {
        Operator op;
        op.kind = OpKind::MatMul;
        op.name = "ffn.down";
        op.m = b_local * s;
        op.k = ffn_l;
        op.n = h;
        op.hbmReadBytes = static_cast<double>(op.k) * op.n * kBf16;
        op.hbmWriteBytes = act_bytes;
        add(op);
    }
    // Tensor-parallel AllReduce of FFN output.
    if (t > 1) {
        Operator op;
        op.kind = OpKind::Collective;
        op.name = "ffn.allreduce";
        op.coll = CollKind::AllReduce;
        op.collBytes = act_bytes;
        add(op);
    }
}

/** Pipeline boundary transfer block (pp > 1). */
void
maybeAddPipelineBlock(OperatorGraph &g, const LlamaConfig &cfg,
                      std::int64_t b_local, std::int64_t s,
                      const Parallelism &par)
{
    if (par.pp <= 1)
        return;
    Block blk;
    blk.name = "pipeline-xfer";
    blk.repeat = 1;
    Operator op;
    op.kind = OpKind::Collective;
    op.name = "pp.send_recv";
    op.coll = CollKind::P2P;
    op.collBytes =
        static_cast<double>(b_local) * s * cfg.hidden * kBf16;
    op.validate();
    blk.ops.push_back(op);
    g.blocks.push_back(std::move(blk));
}

std::int64_t
localBatch(std::int64_t batch, const Parallelism &par,
           const std::string &what)
{
    par.validate();
    std::int64_t b = batch / par.dp;
    REGATE_CHECK(b >= 1, what, ": batch ", batch,
                 " too small for dp=", par.dp);
    return b;
}

}  // namespace

const LlamaConfig &
llamaConfig(LlamaModel model)
{
    return kLlamaConfigs[static_cast<std::size_t>(model)];
}

const std::vector<LlamaModel> &
allLlamaModels()
{
    static const std::vector<LlamaModel> all = {
        LlamaModel::L8B, LlamaModel::L13B, LlamaModel::L70B,
        LlamaModel::L405B};
    return all;
}

graph::OperatorGraph
llamaPrefill(const LlamaConfig &cfg, std::int64_t batch,
             std::int64_t seq_len, const Parallelism &par)
{
    std::int64_t b_local = localBatch(batch, par, cfg.name + " prefill");
    OperatorGraph g;
    g.name = cfg.name + "-prefill";

    Block layer;
    layer.name = "layer";
    layer.repeat = static_cast<std::uint64_t>(
        std::max(1, cfg.layers / par.pp));
    emitLayer(layer.ops, cfg, b_local, seq_len, seq_len, par,
              /*decode=*/false);
    g.blocks.push_back(std::move(layer));

    // LM head over the last position of each request.
    Block head;
    head.name = "lm-head";
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "lm_head";
    op.m = b_local;
    op.k = cfg.hidden;
    op.n = std::max<std::int64_t>(1, cfg.vocab / par.tp);
    op.hbmReadBytes = static_cast<double>(op.k) * op.n * kBf16;
    op.validate();
    head.ops.push_back(op);
    g.blocks.push_back(std::move(head));

    maybeAddPipelineBlock(g, cfg, b_local, seq_len, par);
    g.validate();
    return g;
}

graph::OperatorGraph
llamaDecode(const LlamaConfig &cfg, std::int64_t batch,
            std::int64_t in_len, std::int64_t out_len,
            const Parallelism &par)
{
    REGATE_CHECK(out_len >= 1, "decode needs at least one output token");
    std::int64_t b_local = localBatch(batch, par, cfg.name + " decode");
    std::int64_t ctx = in_len + out_len / 2;

    OperatorGraph g;
    g.name = cfg.name + "-decode";

    Block step;
    step.name = "decode-step";
    step.repeat = static_cast<std::uint64_t>(out_len) *
                  static_cast<std::uint64_t>(
                      std::max(1, cfg.layers / par.pp));
    emitLayer(step.ops, cfg, b_local, /*s=*/1, ctx, par, /*decode=*/true);
    g.blocks.push_back(std::move(step));

    Block head;
    head.name = "lm-head";
    head.repeat = static_cast<std::uint64_t>(out_len);
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "lm_head";
    op.m = b_local;
    op.k = cfg.hidden;
    op.n = std::max<std::int64_t>(1, cfg.vocab / par.tp);
    op.hbmReadBytes = static_cast<double>(op.k) * op.n * kBf16;
    op.validate();
    head.ops.push_back(op);
    g.blocks.push_back(std::move(head));

    maybeAddPipelineBlock(g, cfg, b_local, 1, par);
    g.validate();
    return g;
}

graph::OperatorGraph
llamaTraining(const LlamaConfig &cfg, std::int64_t batch,
              std::int64_t seq_len, const Parallelism &par)
{
    std::int64_t b_local = localBatch(batch, par, cfg.name + " training");
    OperatorGraph g;
    g.name = cfg.name + "-training";

    // Forward + backward: backward re-runs each GEMM twice (dgrad +
    // wgrad), so emit the layer three times with the backward copies
    // carrying the same shapes. Vector work also roughly triples.
    Block layer;
    layer.name = "layer-fwd-bwd";
    layer.repeat = static_cast<std::uint64_t>(
                       std::max(1, cfg.layers / par.pp)) * 3;
    emitLayer(layer.ops, cfg, b_local, seq_len, seq_len, par,
              /*decode=*/false);
    g.blocks.push_back(std::move(layer));

    // Optimizer update (Adam) over local parameter shard.
    Block opt;
    opt.name = "optimizer";
    double params_local =
        cfg.params() / (par.tp * par.pp);
    {
        Operator op;
        op.kind = OpKind::Elementwise;
        op.name = "adam.update";
        op.vuOps = params_local * kOpsOptimizer;
        // Read weights+grads+2 moments (fp32), write weights+moments.
        op.hbmReadBytes = params_local * 4.0 * 4;
        op.hbmWriteBytes = params_local * 4.0 * 3;
        op.validate();
        opt.ops.push_back(op);
    }
    // Data-parallel gradient AllReduce.
    if (par.dp > 1) {
        Operator op;
        op.kind = OpKind::Collective;
        op.name = "grad.allreduce";
        op.coll = CollKind::AllReduce;
        op.collBytes = params_local * kBf16;
        op.validate();
        opt.ops.push_back(op);
    }
    g.blocks.push_back(std::move(opt));

    maybeAddPipelineBlock(g, cfg, b_local, seq_len, par);
    g.validate();
    return g;
}

}  // namespace models
}  // namespace regate
