/**
 * @file
 * The structured scenario description every workload generator
 * consumes: family, model size, sequence lengths, batch, chips,
 * parallelism split, gating-parameter overrides, and work unit.
 *
 * A ScenarioSpec is the registry-era replacement for the Workload
 * enum's baked-in constructor arguments: the 17 paper workloads are
 * canonical built-in specs (models/workload.h builtinSpec()), and
 * user-defined scenarios arrive through the text parser
 * (models/spec.h) without recompiling anything.
 *
 * Identity: the `name` is display-only. Everything else — the
 * canonical `identityText()` — keys caches, builtin matching, and
 * fleet digests, so two specs that build the same graphs compare
 * equal no matter what their sections were called.
 */

#ifndef REGATE_MODELS_SCENARIO_H
#define REGATE_MODELS_SCENARIO_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "models/parallelism.h"

namespace regate {
namespace models {

struct ScenarioSpec
{
    /** Section name from the spec file; display-only, NOT identity. */
    std::string name;

    std::string family;  ///< Generator key ("llama-train", "dlrm"...).
    std::string model;   ///< Model size within the family ("8b", "l").

    std::int64_t batch = 0;  ///< Global batch size (required).
    int chips = 0;           ///< Pod size (required).

    /** Sequence lengths; 0 = family default (fillDefaults fills). */
    std::int64_t seqLen = 0;
    std::int64_t outLen = 0;

    /** Explicit parallelism split; unset = the family's heuristic. */
    bool parSet = false;
    Parallelism par;

    /** Work-unit name ("iteration", "token", "request", "image");
     *  empty = family default (fillDefaults fills). */
    std::string unit;

    /** Generator-specific integer keys (e.g. MoE "experts"), sorted
     *  by key. */
    std::vector<std::pair<std::string, std::int64_t>> extra;

    /** Gating-parameter overrides ("logic_off", "sram_sleep",
     *  "sram_off", "delay_scale"), sorted by key. Applied on top of
     *  whatever base GatingParams a grid sweeps. */
    std::vector<std::pair<std::string, double>> gating;

    /** Value of an extra key, or @p fallback when absent. */
    std::int64_t extraOr(const std::string &key,
                         std::int64_t fallback) const;

    /**
     * Canonical single-line spelling of every identity field (all
     * but `name`). Keys the scenario-aware caches and the fleet's
     * spec digest; equal text means interchangeable scenarios.
     */
    std::string identityText() const;

    /** Identity comparison (name excluded). */
    bool sameScenario(const ScenarioSpec &o) const;

    /** Content hash over identityText(). */
    std::size_t contentHash() const;
};

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_SCENARIO_H
