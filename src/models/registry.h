/**
 * @file
 * The pluggable workload-generator API (in the spirit of CODES's
 * codes-workload-method table): each workload family registers one
 * WorkloadGenerator behind the GeneratorRegistry, and everything
 * downstream — the Workload enum shims, the text-spec parser, the
 * figure binaries, the fleet — constructs graphs exclusively through
 * this interface. Adding a scenario family means registering a
 * generator in the library; no figure binary changes.
 *
 * The 17 paper workloads are canonical built-in specs replayed
 * through the same generators (models/workload.h), so the enum path
 * and the spec path are one code path, byte-identical by
 * construction.
 */

#ifndef REGATE_MODELS_REGISTRY_H
#define REGATE_MODELS_REGISTRY_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/npu_config.h"
#include "graph/graph.h"
#include "models/scenario.h"
#include "models/workload.h"

namespace regate {
namespace models {

/** One accepted spec key with its one-line doc (--list-generators). */
struct SpecKeyInfo
{
    std::string key;
    std::string doc;
};

/**
 * One workload family's construction logic. Implementations are
 * stateless: every method is a pure function of the spec (already
 * validated + defaults filled) and the setup.
 */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Registry key ("llama-train", "dlrm", "moe", ...). */
    virtual std::string family() const = 0;

    /** Display label for figure grouping ("LLM Training", ...). */
    virtual std::string familyLabel() const = 0;

    /** Every spec key this family accepts, with docs. */
    virtual std::vector<SpecKeyInfo> specKeys() const = 0;

    /**
     * Reject invalid specs with a named ConfigError: unknown model,
     * missing batch/chips, inconsistent parallelism
     * (chips != dp*tp*pp), bad extra values.
     */
    virtual void validate(const ScenarioSpec &spec) const = 0;

    /** Fill family defaults (seq lens, unit) in place; idempotent. */
    virtual void fillDefaults(ScenarioSpec &spec) const = 0;

    /** Work unit of the (defaults-filled) spec. */
    virtual WorkUnit workUnit(const ScenarioSpec &spec) const = 0;

    /** Per-chip model-state bytes that must fit in HBM. */
    virtual double modelStateBytes(const ScenarioSpec &spec) const = 0;

    /**
     * The spec's anchor configuration (the Table-4 equivalent):
     * explicit parallelism if the spec set one, else the family's
     * heuristic split.
     */
    virtual RunSetup anchorSetup(const ScenarioSpec &spec) const = 0;

    /**
     * Re-split parallelism after an HBM capacity refit grew the pod
     * to @p chips (defaultScenarioSetup). Families without tensor
     * parallelism go all-dp.
     */
    virtual Parallelism scaleSplit(const ScenarioSpec &spec,
                                   int chips) const = 0;

    /** Build the per-chip operator graph for one run. */
    virtual graph::OperatorGraph build(const ScenarioSpec &spec,
                                       const RunSetup &setup) const = 0;

    /** Work units produced by one run. */
    virtual double unitsPerRun(const ScenarioSpec &spec,
                               const RunSetup &setup) const = 0;
};

/**
 * Process-wide generator table. The built-in families self-register
 * on first access (registerBuiltinGenerators), so a static-lib link
 * can never dead-strip them.
 */
class GeneratorRegistry
{
  public:
    static GeneratorRegistry &instance();

    /** Register a generator; throws ConfigError on a duplicate. */
    void add(std::unique_ptr<WorkloadGenerator> gen);

    /** Generator for @p family, or nullptr. */
    const WorkloadGenerator *find(const std::string &family) const;

    /** Generator for @p family; ConfigError listing the registered
     *  families when unknown. */
    const WorkloadGenerator &require(const std::string &family) const;

    /** Registered family keys, sorted. */
    std::vector<std::string> families() const;

  private:
    GeneratorRegistry() = default;
    std::map<std::string, std::unique_ptr<WorkloadGenerator>> gens_;
};

/** Register the built-in families (idempotent; generators.cc). */
void registerBuiltinGenerators(GeneratorRegistry &registry);

/** Shared tp-first parallelism split used by the LLM setups. */
Parallelism splitChips(int chips, int max_tp);

/** Canonical spec spelling of a work unit ("iteration", "token"...). */
std::string workUnitKey(WorkUnit unit);

/** Parse a spec unit key; false (out untouched) when unknown. */
bool parseWorkUnitKey(const std::string &key, WorkUnit *out);

/** validate() + fillDefaults() through the spec's generator. */
void validateScenario(ScenarioSpec &spec);

/** Anchor configuration of a validated spec (Table-4 equivalent). */
RunSetup scenarioSetup(const ScenarioSpec &spec);

/**
 * Anchor configuration scaled up when the model state does not fit
 * @p gen's HBM — the scenario-path spelling of defaultSetup().
 */
RunSetup defaultScenarioSetup(const ScenarioSpec &spec,
                              arch::NpuGeneration gen);

/** Build the per-chip operator graph through the registry. */
graph::OperatorGraph buildScenarioGraph(const ScenarioSpec &spec,
                                        const RunSetup &setup);

/** Work units produced by one run of the scenario. */
double scenarioUnitsPerRun(const ScenarioSpec &spec,
                           const RunSetup &setup);

/** Per-chip model-state bytes of the scenario. */
double scenarioModelStateBytes(const ScenarioSpec &spec);

/** Work unit of the scenario. */
WorkUnit scenarioWorkUnit(const ScenarioSpec &spec);

/** Figure-grouping label of the scenario's family. */
std::string scenarioFamilyLabel(const ScenarioSpec &spec);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_REGISTRY_H
