/**
 * @file
 * DLRM recommendation-model workload generator (Table 1: DLRM-S/M/L
 * with 20/45/98 GB embedding tables [57, 5, 70]).
 *
 * Deployment follows production practice: embedding tables are
 * model-parallel (sharded by table across the pod) while the MLPs are
 * data-parallel; an AllToAll redistributes pooled embeddings from the
 * table shards to the batch shards every iteration. This makes DLRM
 * ICI-bound (§3 Fig. 8: 98-99% ICI temporal utilization) with near-zero
 * SA utilization.
 */

#ifndef REGATE_MODELS_DLRM_H
#define REGATE_MODELS_DLRM_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace regate {
namespace models {

/** The three sizes studied. */
enum class DlrmModel { S, M, L };

/** Architecture parameters. */
struct DlrmConfig
{
    std::string name;
    int tables = 0;             ///< Number of embedding tables.
    std::int64_t embDim = 0;    ///< Embedding vector width.
    int pooling = 0;            ///< Lookups pooled per table access.
    double tableBytes = 0;      ///< Total embedding storage, bytes.
    std::vector<std::int64_t> bottomMlp;  ///< Dense-feature MLP dims.
    std::vector<std::int64_t> topMlp;     ///< Interaction MLP dims.
};

/** Model card. */
const DlrmConfig &dlrmConfig(DlrmModel model);

/** All sizes in order. */
const std::vector<DlrmModel> &allDlrmModels();

/**
 * One inference batch on @p chips chips (table-parallel embeddings +
 * data-parallel MLPs), per chip.
 */
graph::OperatorGraph dlrmInference(const DlrmConfig &cfg,
                                   std::int64_t batch, int chips);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_DLRM_H
