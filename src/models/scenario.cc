#include "models/scenario.h"

#include <cstdio>

#include "common/hash.h"

namespace regate {
namespace models {

namespace {

/** Canonical double spelling shared with sim/serialize.cc. */
std::string
canonicalDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::int64_t
ScenarioSpec::extraOr(const std::string &key,
                      std::int64_t fallback) const
{
    for (const auto &[k, v] : extra)
        if (k == key)
            return v;
    return fallback;
}

std::string
ScenarioSpec::identityText() const
{
    std::string out;
    out += "family=" + family;
    out += ";model=" + model;
    out += ";batch=" + std::to_string(batch);
    out += ";chips=" + std::to_string(chips);
    out += ";seq_len=" + std::to_string(seqLen);
    out += ";out_len=" + std::to_string(outLen);
    out += ";par=";
    if (parSet)
        out += std::to_string(par.dp) + "/" + std::to_string(par.tp) +
               "/" + std::to_string(par.pp);
    else
        out += "-";
    out += ";unit=" + unit;
    out += ";extra=";
    for (const auto &[k, v] : extra)
        out += k + ":" + std::to_string(v) + ",";
    out += ";gating=";
    for (const auto &[k, v] : gating)
        out += k + ":" + canonicalDouble(v) + ",";
    return out;
}

bool
ScenarioSpec::sameScenario(const ScenarioSpec &o) const
{
    return identityText() == o.identityText();
}

std::size_t
ScenarioSpec::contentHash() const
{
    auto text = identityText();
    return static_cast<std::size_t>(
        fnv1a64(text.data(), text.size()));
}

}  // namespace models
}  // namespace regate
