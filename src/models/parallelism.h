/**
 * @file
 * Data/tensor/pipeline parallelism configuration shared by the
 * workload generators. The paper's artifact sweeps all (dp, tp, pp)
 * combinations; our SLO search (sim/slo.h) does the same on a coarser
 * grid.
 */

#ifndef REGATE_MODELS_PARALLELISM_H
#define REGATE_MODELS_PARALLELISM_H

#include <string>

#include "common/error.h"

namespace regate {
namespace models {

/** (dp, tp, pp) split of a pod. */
struct Parallelism
{
    int dp = 1;  ///< Data-parallel replicas.
    int tp = 1;  ///< Tensor-parallel shards.
    int pp = 1;  ///< Pipeline stages.

    int chips() const { return dp * tp * pp; }

    bool
    operator==(const Parallelism &o) const
    {
        return dp == o.dp && tp == o.tp && pp == o.pp;
    }
    bool operator!=(const Parallelism &o) const { return !(*this == o); }

    std::string
    toString() const
    {
        return "dp" + std::to_string(dp) + "/tp" + std::to_string(tp) +
               "/pp" + std::to_string(pp);
    }

    void
    validate() const
    {
        REGATE_CHECK(dp >= 1 && tp >= 1 && pp >= 1,
                     "parallelism degrees must be >= 1 (",
                     toString(), ")");
    }
};

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_PARALLELISM_H
