/**
 * @file
 * Llama-family workload generators (Table 1): Llama3-8B, Llama2-13B,
 * Llama3-70B, Llama3.1-405B, for training, inference prefill, and
 * inference decode. Architecture parameters come from the public
 * model cards [33, 82].
 *
 * Graphs are emitted per chip under a (dp, tp, pp) parallelism split:
 * tensor parallelism shards heads and FFN columns and inserts two
 * AllReduces per layer; data parallelism shards the batch and (for
 * training) adds the gradient AllReduce; pipeline parallelism shards
 * layers and adds P2P boundary transfers.
 */

#ifndef REGATE_MODELS_LLAMA_H
#define REGATE_MODELS_LLAMA_H

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "models/parallelism.h"

namespace regate {
namespace models {

/** The four Llama variants studied in the paper. */
enum class LlamaModel { L8B, L13B, L70B, L405B };

/** Architecture parameters of one variant. */
struct LlamaConfig
{
    std::string name;
    int layers = 0;
    std::int64_t hidden = 0;
    int heads = 0;
    int kvHeads = 0;
    std::int64_t headDim = 0;
    std::int64_t ffnHidden = 0;
    std::int64_t vocab = 0;

    /** Parameter count (weights only). */
    double params() const;

    /** Weight bytes in bf16. */
    double weightBytes() const { return params() * 2.0; }

    /** KV-cache bytes per token (all layers, bf16, K and V). */
    double kvBytesPerToken() const;
};

/** Model card for a variant. */
const LlamaConfig &llamaConfig(LlamaModel model);

/** All variants in paper order. */
const std::vector<LlamaModel> &allLlamaModels();

/**
 * One training iteration (forward + backward + optimizer + gradient
 * AllReduce), per chip. @p batch is the global batch size.
 */
graph::OperatorGraph llamaTraining(const LlamaConfig &cfg,
                                   std::int64_t batch,
                                   std::int64_t seq_len,
                                   const Parallelism &par);

/** Prefill of @p seq_len input tokens for @p batch requests. */
graph::OperatorGraph llamaPrefill(const LlamaConfig &cfg,
                                  std::int64_t batch,
                                  std::int64_t seq_len,
                                  const Parallelism &par);

/**
 * Auto-regressive decode of @p out_len tokens following @p in_len
 * context tokens. The per-step context length is approximated by its
 * average (in_len + out_len / 2), so one decode step is analyzed and
 * repeated out_len times.
 */
graph::OperatorGraph llamaDecode(const LlamaConfig &cfg,
                                 std::int64_t batch,
                                 std::int64_t in_len,
                                 std::int64_t out_len,
                                 const Parallelism &par);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_LLAMA_H
