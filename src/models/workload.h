/**
 * @file
 * The paper's benchmark suite (Table 1) as a flat registry of 17
 * workload instances, with the Table 4 most-energy-efficient
 * SLO-compliant configurations for NPU-D and heuristic scaling for
 * the other generations (larger HBM -> fewer chips, §3).
 */

#ifndef REGATE_MODELS_WORKLOAD_H
#define REGATE_MODELS_WORKLOAD_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/npu_config.h"
#include "graph/graph.h"
#include "models/parallelism.h"
#include "models/scenario.h"

namespace regate {
namespace models {

/** All workload instances evaluated in the paper. */
enum class Workload {
    Train8B, Train13B, Train70B, Train405B,
    Prefill8B, Prefill13B, Prefill70B, Prefill405B,
    Decode8B, Decode13B, Decode70B, Decode405B,
    DlrmS, DlrmM, DlrmL,
    DiTXL, Gligen,
};

/** Workload families for grouping in figures. */
enum class WorkloadFamily {
    LlmTraining,
    LlmPrefill,
    LlmDecode,
    DlrmInference,
    StableDiffusion,
};

/** How one run is normalized in Fig. 2 (J/iter, J/token, ...). */
enum class WorkUnit { Iteration, Token, Request, Image };

/** Pod/batch configuration for one run. */
struct RunSetup
{
    int chips = 1;
    std::int64_t batch = 1;
    Parallelism par;

    /**
     * Content equality over every field that influences graph
     * construction, so a RunSetup can key the compiled-graph cache:
     * equal setups build and compile to identical graphs.
     */
    bool
    operator==(const RunSetup &o) const
    {
        return chips == o.chips && batch == o.batch && par == o.par;
    }
    bool operator!=(const RunSetup &o) const { return !(*this == o); }

    /** Content hash over the fields operator== compares. */
    std::size_t contentHash() const;
};

/** Default sequence lengths (Table 1). */
constexpr std::int64_t kTrainSeqLen = 4096;
constexpr std::int64_t kPrefillSeqLen = 4096;
constexpr std::int64_t kDecodeOutLen = 512;

/** All 17 workloads in paper order. */
const std::vector<Workload> &allWorkloads();

/** Workloads of one family, in paper order. */
std::vector<Workload> workloadsOf(WorkloadFamily family);

std::string workloadName(Workload w);
std::string workloadFamilyName(WorkloadFamily family);
WorkloadFamily familyOf(Workload w);
WorkUnit workUnitOf(Workload w);
std::string workUnitName(WorkUnit unit);

/**
 * The canonical built-in ScenarioSpec of a paper workload (Table 1
 * identity + Table 4 chips/batch, defaults filled). Every enum-keyed
 * function below is a thin shim replaying this spec through the
 * GeneratorRegistry — the enum path and the spec path are one code
 * path.
 */
const ScenarioSpec &builtinSpec(Workload w);

/**
 * True (and *out set) when @p spec is identical to a paper workload:
 * grid construction normalizes such specs onto the enum identity so
 * spec-driven runs serialize and render byte-identical to
 * enum-driven ones. Display name and gating overrides are ignored
 * (gating rides in the grid's params, not the workload identity).
 */
bool builtinWorkloadOf(const ScenarioSpec &spec, Workload *out);

/** Table 4 configuration (defined for NPU-D). */
RunSetup table4Setup(Workload w);

/**
 * Configuration for an arbitrary generation: Table 4 chips scaled up
 * if the model (weights + optimizer state + KV cache) does not fit
 * the generation's HBM.
 */
RunSetup defaultSetup(Workload w, arch::NpuGeneration gen);

/** Build the per-chip operator graph for one run. */
graph::OperatorGraph buildGraph(Workload w, const RunSetup &setup);

/** Work units produced by one run (tokens, requests, ...). */
double unitsPerRun(Workload w, const RunSetup &setup);

/** Per-chip model-state bytes that must fit in HBM. */
double modelStateBytes(Workload w);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_WORKLOAD_H
