/**
 * @file
 * Stable-diffusion workload generators (Table 1): DiT-XL [64] and
 * GLIGEN [50], 512x512 images.
 *
 * DiT-XL: a transformer over 1024 latent tokens with head size 72 —
 * smaller than the 128-wide SA, which is exactly the spatial
 * underutilization the paper highlights (Fig. 5).
 *
 * GLIGEN: a U-Net (SD-1.5 backbone + gated attention) whose deeper
 * levels shrink both the image and the attention head count/size.
 * Convolutions are lowered to im2col GEMMs.
 */

#ifndef REGATE_MODELS_DIFFUSION_H
#define REGATE_MODELS_DIFFUSION_H

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "models/parallelism.h"

namespace regate {
namespace models {

/** The two diffusion models. */
enum class DiffusionModel { DiTXL, GLIGEN };

/** Denoising steps per image (standard sampler setting). */
constexpr int kDiffusionSteps = 50;

/**
 * DiT-XL/2 inference for @p batch images on a data-parallel pod, per
 * chip.
 */
graph::OperatorGraph ditInference(std::int64_t batch,
                                  const Parallelism &par);

/** GLIGEN (U-Net) inference for @p batch images, per chip. */
graph::OperatorGraph gligenInference(std::int64_t batch,
                                     const Parallelism &par);

/** Dispatch on model. */
graph::OperatorGraph diffusionInference(DiffusionModel model,
                                        std::int64_t batch,
                                        const Parallelism &par);

/** Printable name. */
std::string diffusionModelName(DiffusionModel model);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_DIFFUSION_H
