/**
 * @file
 * Dependency-free text parser for workload scenario specs, in the
 * style of the `@regate-worker v1` line protocol: a version header,
 * `[scenario NAME]` sections, and strict `key = value` lines.
 *
 *     @regate-spec v1
 *     # one scenario per section; '#' starts a comment
 *     [scenario moe-mixtral]
 *     family = moe
 *     model = 70b
 *     experts = 8
 *     batch = 16,32          # lists and ranges expand the grid
 *     chips = 8..64:*2       # geometric range; +N is arithmetic
 *     tp = 8
 *     dp = 1                 # with tp/pp: chips must equal dp*tp*pp
 *     pp = 1
 *
 * Integer keys accept multi-values (`a,b,c`, `lo..hi:*k`,
 * `lo..hi:+k`); a section expands to the deterministic cross-product
 * in key order, suffixing names (`moe-mixtral@batch=16`). Every
 * violation — unknown family, unknown key, malformed value, bad
 * distribution, `chips != tp*dp*pp`, empty or duplicate sections —
 * is a ConfigError naming the offending file:line.
 *
 * The canonical dump (defaults filled, keys in fixed order)
 * round-trips through the parser to identical scenarios, and its
 * digest is the spec identity the fleet cross-checks so one sweep
 * can never mix mismatched spec files.
 */

#ifndef REGATE_MODELS_SPEC_H
#define REGATE_MODELS_SPEC_H

#include <memory>
#include <string>
#include <vector>

#include "models/scenario.h"

namespace regate {
namespace models {

/** A parsed, expanded, validated spec file. */
struct SpecFile
{
    /** Expanded scenarios, defaults filled, in declaration order. */
    std::vector<std::shared_ptr<const ScenarioSpec>> scenarios;

    /** Canonical dump; reparses to identical scenarios. */
    std::string canonicalText;

    /**
     * FNV-1a digest (hex16) of canonicalText — the spec identity
     * carried in shard headers and the fleet's hello cross-check.
     * Textual variants of the same scenarios share a digest.
     */
    std::string digest;
};

/** Parse spec text; @p source names it in errors ("file:line: ..."). */
SpecFile parseSpecText(const std::string &text,
                       const std::string &source = "<spec>");

/** Read and parse a spec file; ConfigError on any failure. */
SpecFile parseSpecFile(const std::string &path);

/** Canonical dump of validated scenarios (see SpecFile). */
std::string canonicalSpecText(
    const std::vector<std::shared_ptr<const ScenarioSpec>> &scenarios);

}  // namespace models
}  // namespace regate

#endif  // REGATE_MODELS_SPEC_H
