#include "models/diffusion.h"

#include "common/error.h"

namespace regate {
namespace models {

using graph::Block;
using graph::Operator;
using graph::OperatorGraph;
using graph::OpKind;

namespace {

constexpr int kBf16 = 2;
constexpr double kOpsSoftmax = 6;
constexpr double kOpsNorm = 8;
constexpr double kOpsGelu = 4;

/** Attention over @p tokens tokens with @p heads heads of @p hd dims. */
void
emitAttention(std::vector<Operator> &ops, const std::string &prefix,
              std::int64_t b, std::int64_t tokens, std::int64_t heads,
              std::int64_t hd)
{
    std::int64_t model_dim = heads * hd;
    double act = static_cast<double>(b) * tokens * model_dim * kBf16;

    auto add = [&ops](Operator op) {
        op.validate();
        ops.push_back(std::move(op));
    };

    Operator norm;
    norm.kind = OpKind::Normalization;
    norm.name = prefix + ".norm";
    norm.vuOps = static_cast<double>(b) * tokens * model_dim * kOpsNorm;
    norm.hbmReadBytes = act;
    norm.hbmWriteBytes = act;
    add(norm);

    Operator qkv;
    qkv.kind = OpKind::MatMul;
    qkv.name = prefix + ".qkv";
    qkv.m = b * tokens;
    qkv.k = model_dim;
    qkv.n = 3 * model_dim;
    qkv.hbmReadBytes =
        act + static_cast<double>(qkv.k) * qkv.n * kBf16;
    add(qkv);

    Operator scores;
    scores.kind = OpKind::MatMul;
    scores.name = prefix + ".scores";
    scores.batch = b * heads;
    scores.m = tokens;
    scores.k = hd;   // Head size < SA width -> spatial underutil.
    scores.n = tokens;
    add(scores);

    Operator soft;
    soft.kind = OpKind::Softmax;
    soft.name = prefix + ".softmax";
    soft.vuOps = static_cast<double>(b) * heads * tokens * tokens *
                 kOpsSoftmax;
    add(soft);

    Operator value;
    value.kind = OpKind::MatMul;
    value.name = prefix + ".value";
    value.batch = b * heads;
    value.m = tokens;
    value.k = tokens;
    value.n = hd;    // Small N -> column gating opportunity.
    add(value);

    Operator out;
    out.kind = OpKind::MatMul;
    out.name = prefix + ".out";
    out.m = b * tokens;
    out.k = model_dim;
    out.n = model_dim;
    out.hbmReadBytes = static_cast<double>(out.k) * out.n * kBf16;
    out.hbmWriteBytes = act;
    add(out);
}

/** Transformer MLP with expansion factor 4 and GELU. */
void
emitMlp(std::vector<Operator> &ops, const std::string &prefix,
        std::int64_t b, std::int64_t tokens, std::int64_t dim)
{
    double act = static_cast<double>(b) * tokens * dim * kBf16;

    Operator up;
    up.kind = OpKind::MatMul;
    up.name = prefix + ".mlp.up";
    up.m = b * tokens;
    up.k = dim;
    up.n = 4 * dim;
    up.hbmReadBytes = act + static_cast<double>(up.k) * up.n * kBf16;
    up.validate();
    ops.push_back(up);

    Operator gelu;
    gelu.kind = OpKind::Elementwise;
    gelu.name = prefix + ".mlp.gelu";
    gelu.vuOps = static_cast<double>(b) * tokens * 4 * dim * kOpsGelu;
    gelu.validate();
    ops.push_back(gelu);

    Operator down;
    down.kind = OpKind::MatMul;
    down.name = prefix + ".mlp.down";
    down.m = b * tokens;
    down.k = 4 * dim;
    down.n = dim;
    down.hbmReadBytes = static_cast<double>(down.k) * down.n * kBf16;
    down.hbmWriteBytes = act;
    down.validate();
    ops.push_back(down);
}

/** 3x3 conv lowered to im2col GEMM. */
void
emitConv(std::vector<Operator> &ops, const std::string &prefix,
         std::int64_t b, std::int64_t res, std::int64_t cin,
         std::int64_t cout)
{
    Operator conv;
    conv.kind = OpKind::MatMul;
    conv.name = prefix + ".conv3x3";
    conv.m = b * res * res;
    conv.k = cin * 9;
    conv.n = cout;
    conv.hbmReadBytes =
        static_cast<double>(conv.k) * conv.n * kBf16 +
        static_cast<double>(b) * res * res * cin * kBf16;
    conv.hbmWriteBytes = static_cast<double>(b) * res * res * cout *
                         kBf16;
    conv.validate();
    ops.push_back(conv);

    Operator act;
    act.kind = OpKind::Elementwise;
    act.name = prefix + ".silu";
    act.vuOps = static_cast<double>(b) * res * res * cout * kOpsGelu;
    act.validate();
    ops.push_back(act);
}

std::int64_t
localBatch(std::int64_t batch, const Parallelism &par)
{
    par.validate();
    REGATE_CHECK(par.tp == 1 && par.pp == 1,
                 "diffusion models deploy data-parallel only");
    return std::max<std::int64_t>(1, batch / par.dp);
}

}  // namespace

std::string
diffusionModelName(DiffusionModel model)
{
    return model == DiffusionModel::DiTXL ? "DiT-XL" : "GLIGEN";
}

graph::OperatorGraph
ditInference(std::int64_t batch, const Parallelism &par)
{
    std::int64_t b = localBatch(batch, par);
    // DiT-XL/2 @ 512x512: 64x64 latent, patch 2 -> 32x32 = 1024
    // tokens; 28 blocks, hidden 1152, 16 heads of size 72.
    const std::int64_t tokens = 1024;
    const std::int64_t heads = 16;
    const std::int64_t hd = 72;
    const int blocks = 28;

    OperatorGraph g;
    g.name = "DiT-XL-inference";
    Block blk;
    blk.name = "dit-block";
    blk.repeat =
        static_cast<std::uint64_t>(blocks) * kDiffusionSteps;
    emitAttention(blk.ops, "attn", b, tokens, heads, hd);
    emitMlp(blk.ops, "block", b, tokens, heads * hd);
    g.blocks.push_back(std::move(blk));
    g.validate();
    return g;
}

graph::OperatorGraph
gligenInference(std::int64_t batch, const Parallelism &par)
{
    std::int64_t b = localBatch(batch, par);

    OperatorGraph g;
    g.name = "GLIGEN-inference";

    // SD-1.5 U-Net levels at 512x512 (64x64 latent): resolution,
    // channels, attention head size; deeper levels shrink both the
    // image and the head size (§3). Each level appears on the down
    // and up paths; the mid block runs once.
    struct Level
    {
        std::int64_t res, ch, heads, hd;
        int visits;
    };
    const Level levels[] = {
        {64, 320, 8, 40, 2},
        {32, 640, 8, 80, 2},
        {16, 1280, 8, 160, 2},
        {8, 1280, 8, 160, 1},
    };

    for (const auto &lv : levels) {
        Block blk;
        blk.name = "unet-res" + std::to_string(lv.res);
        blk.repeat = static_cast<std::uint64_t>(lv.visits) * 2 *
                     kDiffusionSteps;  // 2 resnet+attn units per visit.
        emitConv(blk.ops, blk.name, b, lv.res, lv.ch, lv.ch);
        std::int64_t tokens = lv.res * lv.res;
        emitAttention(blk.ops, blk.name + ".self", b, tokens, lv.heads,
                      lv.hd);
        // GLIGEN's gated attention adds a second attention unit.
        emitAttention(blk.ops, blk.name + ".gated", b, tokens, lv.heads,
                      lv.hd);
        emitMlp(blk.ops, blk.name, b, tokens, lv.heads * lv.hd);
        g.blocks.push_back(std::move(blk));
    }
    g.validate();
    return g;
}

graph::OperatorGraph
diffusionInference(DiffusionModel model, std::int64_t batch,
                   const Parallelism &par)
{
    return model == DiffusionModel::DiTXL ? ditInference(batch, par)
                                          : gligenInference(batch, par);
}

}  // namespace models
}  // namespace regate
