#include "models/workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/hash.h"
#include "models/diffusion.h"
#include "models/dlrm.h"
#include "models/llama.h"

namespace regate {
namespace models {

namespace {

/** Llama variant behind an LLM workload. */
LlamaModel
llamaOf(Workload w)
{
    switch (w) {
      case Workload::Train8B:
      case Workload::Prefill8B:
      case Workload::Decode8B:
        return LlamaModel::L8B;
      case Workload::Train13B:
      case Workload::Prefill13B:
      case Workload::Decode13B:
        return LlamaModel::L13B;
      case Workload::Train70B:
      case Workload::Prefill70B:
      case Workload::Decode70B:
        return LlamaModel::L70B;
      case Workload::Train405B:
      case Workload::Prefill405B:
      case Workload::Decode405B:
        return LlamaModel::L405B;
      default:
        throw LogicError("not an LLM workload");
    }
}

DlrmModel
dlrmOf(Workload w)
{
    switch (w) {
      case Workload::DlrmS:
        return DlrmModel::S;
      case Workload::DlrmM:
        return DlrmModel::M;
      case Workload::DlrmL:
        return DlrmModel::L;
      default:
        throw LogicError("not a DLRM workload");
    }
}

/** Standard tp-first parallelism split used by our setups. */
Parallelism
splitChips(int chips, int max_tp)
{
    Parallelism par;
    par.tp = std::min(chips, max_tp);
    while (par.tp > 1 && chips % par.tp != 0)
        --par.tp;
    par.dp = chips / par.tp;
    return par;
}

int
roundUpPow2(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

}  // namespace

std::size_t
RunSetup::contentHash() const
{
    std::size_t seed = 0;
    hashField(seed, chips);
    hashField(seed, batch);
    hashField(seed, par.dp);
    hashField(seed, par.tp);
    hashField(seed, par.pp);
    return seed;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = {
        Workload::Train8B,    Workload::Train13B,  Workload::Train70B,
        Workload::Train405B,  Workload::Prefill8B, Workload::Prefill13B,
        Workload::Prefill70B, Workload::Prefill405B, Workload::Decode8B,
        Workload::Decode13B,  Workload::Decode70B, Workload::Decode405B,
        Workload::DlrmS,      Workload::DlrmM,     Workload::DlrmL,
        Workload::DiTXL,      Workload::Gligen,
    };
    return all;
}

std::vector<Workload>
workloadsOf(WorkloadFamily family)
{
    std::vector<Workload> out;
    for (auto w : allWorkloads()) {
        if (familyOf(w) == family)
            out.push_back(w);
    }
    return out;
}

WorkloadFamily
familyOf(Workload w)
{
    switch (w) {
      case Workload::Train8B:
      case Workload::Train13B:
      case Workload::Train70B:
      case Workload::Train405B:
        return WorkloadFamily::LlmTraining;
      case Workload::Prefill8B:
      case Workload::Prefill13B:
      case Workload::Prefill70B:
      case Workload::Prefill405B:
        return WorkloadFamily::LlmPrefill;
      case Workload::Decode8B:
      case Workload::Decode13B:
      case Workload::Decode70B:
      case Workload::Decode405B:
        return WorkloadFamily::LlmDecode;
      case Workload::DlrmS:
      case Workload::DlrmM:
      case Workload::DlrmL:
        return WorkloadFamily::DlrmInference;
      case Workload::DiTXL:
      case Workload::Gligen:
        return WorkloadFamily::StableDiffusion;
    }
    throw LogicError("unknown workload");
}

std::string
workloadName(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        return llamaConfig(llamaOf(w)).name + "-Train";
      case WorkloadFamily::LlmPrefill:
        return llamaConfig(llamaOf(w)).name + "-Prefill";
      case WorkloadFamily::LlmDecode:
        return llamaConfig(llamaOf(w)).name + "-Decode";
      case WorkloadFamily::DlrmInference:
        return dlrmConfig(dlrmOf(w)).name;
      case WorkloadFamily::StableDiffusion:
        return diffusionModelName(w == Workload::DiTXL
                                      ? DiffusionModel::DiTXL
                                      : DiffusionModel::GLIGEN);
    }
    throw LogicError("unknown workload");
}

std::string
workloadFamilyName(WorkloadFamily family)
{
    switch (family) {
      case WorkloadFamily::LlmTraining:
        return "LLM Training";
      case WorkloadFamily::LlmPrefill:
        return "LLM Prefill";
      case WorkloadFamily::LlmDecode:
        return "LLM Decode";
      case WorkloadFamily::DlrmInference:
        return "DLRM Inference";
      case WorkloadFamily::StableDiffusion:
        return "Stable Diffusion";
    }
    throw LogicError("unknown family");
}

WorkUnit
workUnitOf(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        return WorkUnit::Iteration;
      case WorkloadFamily::LlmPrefill:
      case WorkloadFamily::LlmDecode:
        return WorkUnit::Token;
      case WorkloadFamily::DlrmInference:
        return WorkUnit::Request;
      case WorkloadFamily::StableDiffusion:
        return WorkUnit::Image;
    }
    throw LogicError("unknown workload");
}

std::string
workUnitName(WorkUnit unit)
{
    switch (unit) {
      case WorkUnit::Iteration:
        return "Iter";
      case WorkUnit::Token:
        return "Token";
      case WorkUnit::Request:
        return "Request";
      case WorkUnit::Image:
        return "Image";
    }
    throw LogicError("unknown unit");
}

RunSetup
table4Setup(Workload w)
{
    // Table 4 of the paper: chips / batch per workload on NPU-D.
    RunSetup s;
    switch (w) {
      case Workload::Train8B:    s = {4, 32, {}}; break;
      case Workload::Train13B:   s = {4, 32, {}}; break;
      case Workload::Train70B:   s = {8, 32, {}}; break;
      case Workload::Train405B:  s = {16, 32, {}}; break;
      case Workload::Prefill8B:  s = {1, 4, {}}; break;
      case Workload::Prefill13B: s = {1, 4, {}}; break;
      case Workload::Prefill70B: s = {4096, 8192, {}}; break;
      case Workload::Prefill405B:s = {256, 64, {}}; break;
      case Workload::Decode8B:   s = {1, 8, {}}; break;
      case Workload::Decode13B:  s = {1, 4, {}}; break;
      case Workload::Decode70B:  s = {128, 4096, {}}; break;
      case Workload::Decode405B: s = {64, 2048, {}}; break;
      case Workload::DlrmS:      s = {8, 4096, {}}; break;
      case Workload::DlrmM:      s = {8, 4096, {}}; break;
      case Workload::DlrmL:      s = {8, 4096, {}}; break;
      case Workload::DiTXL:      s = {64, 8192, {}}; break;
      case Workload::Gligen:     s = {64, 256, {}}; break;
      default:
        throw LogicError("unknown workload");
    }
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
      case WorkloadFamily::LlmPrefill:
      case WorkloadFamily::LlmDecode:
        s.par = splitChips(s.chips, 8);
        // Keep dp <= batch so every replica has work.
        while (s.par.dp > s.batch && s.par.tp < s.chips) {
            s.par.tp *= 2;
            s.par.dp = s.chips / s.par.tp;
        }
        break;
      case WorkloadFamily::DlrmInference:
        s.par = {s.chips, 1, 1};
        break;
      case WorkloadFamily::StableDiffusion:
        s.par = {s.chips, 1, 1};
        break;
    }
    return s;
}

double
modelStateBytes(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        // bf16 weights + dp-sharded (ZeRO) optimizer state; Table 4
        // fits 405B training on 16 NPU-D chips, implying ~2.5 B/param
        // resident per chip.
        return llamaConfig(llamaOf(w)).params() * 2.5;
      case WorkloadFamily::LlmPrefill:
        return llamaConfig(llamaOf(w)).weightBytes();
      case WorkloadFamily::LlmDecode: {
        const auto &cfg = llamaConfig(llamaOf(w));
        RunSetup t4 = table4Setup(w);
        double kv = cfg.kvBytesPerToken() *
                    (kPrefillSeqLen + kDecodeOutLen) *
                    static_cast<double>(t4.batch);
        return cfg.weightBytes() + kv;
      }
      case WorkloadFamily::DlrmInference:
        return dlrmConfig(dlrmOf(w)).tableBytes;
      case WorkloadFamily::StableDiffusion:
        return 3e9;  // ~1.5B params in bf16 plus activations.
    }
    throw LogicError("unknown workload");
}

RunSetup
defaultSetup(Workload w, arch::NpuGeneration gen)
{
    RunSetup s = table4Setup(w);
    const auto &cfg = arch::npuConfig(gen);
    double per_chip_hbm = static_cast<double>(cfg.hbmBytes) * 0.85;
    int min_chips = static_cast<int>(
        std::ceil(modelStateBytes(w) / per_chip_hbm));
    if (min_chips > s.chips) {
        s.chips = roundUpPow2(min_chips);
        switch (familyOf(w)) {
          case WorkloadFamily::LlmTraining:
          case WorkloadFamily::LlmPrefill:
          case WorkloadFamily::LlmDecode:
            s.par = splitChips(s.chips, 8);
            break;
          default:
            s.par = {s.chips, 1, 1};
            break;
        }
    }
    return s;
}

graph::OperatorGraph
buildGraph(Workload w, const RunSetup &setup)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        return llamaTraining(llamaConfig(llamaOf(w)), setup.batch,
                             kTrainSeqLen, setup.par);
      case WorkloadFamily::LlmPrefill:
        return llamaPrefill(llamaConfig(llamaOf(w)), setup.batch,
                            kPrefillSeqLen, setup.par);
      case WorkloadFamily::LlmDecode:
        return llamaDecode(llamaConfig(llamaOf(w)), setup.batch,
                           kPrefillSeqLen, kDecodeOutLen, setup.par);
      case WorkloadFamily::DlrmInference:
        return dlrmInference(dlrmConfig(dlrmOf(w)), setup.batch,
                             setup.chips);
      case WorkloadFamily::StableDiffusion:
        return diffusionInference(w == Workload::DiTXL
                                      ? DiffusionModel::DiTXL
                                      : DiffusionModel::GLIGEN,
                                  setup.batch, setup.par);
    }
    throw LogicError("unknown workload");
}

double
unitsPerRun(Workload w, const RunSetup &setup)
{
    switch (workUnitOf(w)) {
      case WorkUnit::Iteration:
        return 1.0;
      case WorkUnit::Token:
        return static_cast<double>(setup.batch) *
               (familyOf(w) == WorkloadFamily::LlmPrefill
                    ? kPrefillSeqLen
                    : kDecodeOutLen);
      case WorkUnit::Request:
      case WorkUnit::Image:
        return static_cast<double>(setup.batch);
    }
    throw LogicError("unknown unit");
}

}  // namespace models
}  // namespace regate
