#include "models/workload.h"

#include <array>

#include "common/error.h"
#include "common/hash.h"
#include "models/diffusion.h"
#include "models/dlrm.h"
#include "models/llama.h"
#include "models/registry.h"

namespace regate {
namespace models {

namespace {

/** Llama variant behind an LLM workload. */
LlamaModel
llamaOf(Workload w)
{
    switch (w) {
      case Workload::Train8B:
      case Workload::Prefill8B:
      case Workload::Decode8B:
        return LlamaModel::L8B;
      case Workload::Train13B:
      case Workload::Prefill13B:
      case Workload::Decode13B:
        return LlamaModel::L13B;
      case Workload::Train70B:
      case Workload::Prefill70B:
      case Workload::Decode70B:
        return LlamaModel::L70B;
      case Workload::Train405B:
      case Workload::Prefill405B:
      case Workload::Decode405B:
        return LlamaModel::L405B;
      default:
        throw LogicError("not an LLM workload");
    }
}

DlrmModel
dlrmOf(Workload w)
{
    switch (w) {
      case Workload::DlrmS:
        return DlrmModel::S;
      case Workload::DlrmM:
        return DlrmModel::M;
      case Workload::DlrmL:
        return DlrmModel::L;
      default:
        throw LogicError("not a DLRM workload");
    }
}

/** Registry family key of a paper workload. */
std::string
familyKeyOf(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        return "llama-train";
      case WorkloadFamily::LlmPrefill:
        return "llama-prefill";
      case WorkloadFamily::LlmDecode:
        return "llama-decode";
      case WorkloadFamily::DlrmInference:
        return "dlrm";
      case WorkloadFamily::StableDiffusion:
        return "diffusion";
    }
    throw LogicError("unknown workload");
}

/** Spec model key of a paper workload. */
std::string
modelKeyOf(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
      case WorkloadFamily::LlmPrefill:
      case WorkloadFamily::LlmDecode:
        switch (llamaOf(w)) {
          case LlamaModel::L8B:
            return "8b";
          case LlamaModel::L13B:
            return "13b";
          case LlamaModel::L70B:
            return "70b";
          case LlamaModel::L405B:
            return "405b";
        }
        break;
      case WorkloadFamily::DlrmInference:
        switch (dlrmOf(w)) {
          case DlrmModel::S:
            return "s";
          case DlrmModel::M:
            return "m";
          case DlrmModel::L:
            return "l";
        }
        break;
      case WorkloadFamily::StableDiffusion:
        return w == Workload::DiTXL ? "dit-xl" : "gligen";
    }
    throw LogicError("unknown workload");
}

/** Table 4 of the paper: chips / batch per workload on NPU-D. */
void
table4ChipsBatch(Workload w, int *chips, std::int64_t *batch)
{
    switch (w) {
      case Workload::Train8B:    *chips = 4;    *batch = 32;   return;
      case Workload::Train13B:   *chips = 4;    *batch = 32;   return;
      case Workload::Train70B:   *chips = 8;    *batch = 32;   return;
      case Workload::Train405B:  *chips = 16;   *batch = 32;   return;
      case Workload::Prefill8B:  *chips = 1;    *batch = 4;    return;
      case Workload::Prefill13B: *chips = 1;    *batch = 4;    return;
      case Workload::Prefill70B: *chips = 4096; *batch = 8192; return;
      case Workload::Prefill405B:*chips = 256;  *batch = 64;   return;
      case Workload::Decode8B:   *chips = 1;    *batch = 8;    return;
      case Workload::Decode13B:  *chips = 1;    *batch = 4;    return;
      case Workload::Decode70B:  *chips = 128;  *batch = 4096; return;
      case Workload::Decode405B: *chips = 64;   *batch = 2048; return;
      case Workload::DlrmS:      *chips = 8;    *batch = 4096; return;
      case Workload::DlrmM:      *chips = 8;    *batch = 4096; return;
      case Workload::DlrmL:      *chips = 8;    *batch = 4096; return;
      case Workload::DiTXL:      *chips = 64;   *batch = 8192; return;
      case Workload::Gligen:     *chips = 64;   *batch = 256;  return;
    }
    throw LogicError("unknown workload");
}

}  // namespace

std::size_t
RunSetup::contentHash() const
{
    std::size_t seed = 0;
    hashField(seed, chips);
    hashField(seed, batch);
    hashField(seed, par.dp);
    hashField(seed, par.tp);
    hashField(seed, par.pp);
    return seed;
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = {
        Workload::Train8B,    Workload::Train13B,  Workload::Train70B,
        Workload::Train405B,  Workload::Prefill8B, Workload::Prefill13B,
        Workload::Prefill70B, Workload::Prefill405B, Workload::Decode8B,
        Workload::Decode13B,  Workload::Decode70B, Workload::Decode405B,
        Workload::DlrmS,      Workload::DlrmM,     Workload::DlrmL,
        Workload::DiTXL,      Workload::Gligen,
    };
    return all;
}

std::vector<Workload>
workloadsOf(WorkloadFamily family)
{
    std::vector<Workload> out;
    for (auto w : allWorkloads()) {
        if (familyOf(w) == family)
            out.push_back(w);
    }
    return out;
}

WorkloadFamily
familyOf(Workload w)
{
    switch (w) {
      case Workload::Train8B:
      case Workload::Train13B:
      case Workload::Train70B:
      case Workload::Train405B:
        return WorkloadFamily::LlmTraining;
      case Workload::Prefill8B:
      case Workload::Prefill13B:
      case Workload::Prefill70B:
      case Workload::Prefill405B:
        return WorkloadFamily::LlmPrefill;
      case Workload::Decode8B:
      case Workload::Decode13B:
      case Workload::Decode70B:
      case Workload::Decode405B:
        return WorkloadFamily::LlmDecode;
      case Workload::DlrmS:
      case Workload::DlrmM:
      case Workload::DlrmL:
        return WorkloadFamily::DlrmInference;
      case Workload::DiTXL:
      case Workload::Gligen:
        return WorkloadFamily::StableDiffusion;
    }
    throw LogicError("unknown workload");
}

std::string
workloadName(Workload w)
{
    switch (familyOf(w)) {
      case WorkloadFamily::LlmTraining:
        return llamaConfig(llamaOf(w)).name + "-Train";
      case WorkloadFamily::LlmPrefill:
        return llamaConfig(llamaOf(w)).name + "-Prefill";
      case WorkloadFamily::LlmDecode:
        return llamaConfig(llamaOf(w)).name + "-Decode";
      case WorkloadFamily::DlrmInference:
        return dlrmConfig(dlrmOf(w)).name;
      case WorkloadFamily::StableDiffusion:
        return diffusionModelName(w == Workload::DiTXL
                                      ? DiffusionModel::DiTXL
                                      : DiffusionModel::GLIGEN);
    }
    throw LogicError("unknown workload");
}

std::string
workloadFamilyName(WorkloadFamily family)
{
    switch (family) {
      case WorkloadFamily::LlmTraining:
        return "LLM Training";
      case WorkloadFamily::LlmPrefill:
        return "LLM Prefill";
      case WorkloadFamily::LlmDecode:
        return "LLM Decode";
      case WorkloadFamily::DlrmInference:
        return "DLRM Inference";
      case WorkloadFamily::StableDiffusion:
        return "Stable Diffusion";
    }
    throw LogicError("unknown family");
}

WorkUnit
workUnitOf(Workload w)
{
    return scenarioWorkUnit(builtinSpec(w));
}

std::string
workUnitName(WorkUnit unit)
{
    switch (unit) {
      case WorkUnit::Iteration:
        return "Iter";
      case WorkUnit::Token:
        return "Token";
      case WorkUnit::Request:
        return "Request";
      case WorkUnit::Image:
        return "Image";
    }
    throw LogicError("unknown unit");
}

const ScenarioSpec &
builtinSpec(Workload w)
{
    static const std::array<ScenarioSpec, 17> specs = [] {
        std::array<ScenarioSpec, 17> out;
        for (auto workload : allWorkloads()) {
            ScenarioSpec s;
            s.name = workloadName(workload);
            s.family = familyKeyOf(workload);
            s.model = modelKeyOf(workload);
            table4ChipsBatch(workload, &s.chips, &s.batch);
            validateScenario(s);
            out[static_cast<std::size_t>(workload)] = std::move(s);
        }
        return out;
    }();
    auto index = static_cast<std::size_t>(w);
    REGATE_CHECK(index < specs.size(), "unknown workload");
    return specs[index];
}

bool
builtinWorkloadOf(const ScenarioSpec &spec, Workload *out)
{
    // An explicit parallelism split, extra keys, or gating overrides
    // always mean a custom scenario, even if the spec happens to
    // reproduce a paper configuration: the overrides are part of its
    // identity and its grid rows must keep the scenario's own name.
    if (spec.parSet || !spec.extra.empty() || !spec.gating.empty())
        return false;
    for (auto w : allWorkloads()) {
        const auto &b = builtinSpec(w);
        if (spec.family == b.family && spec.model == b.model &&
            spec.batch == b.batch && spec.chips == b.chips &&
            spec.seqLen == b.seqLen && spec.outLen == b.outLen &&
            spec.unit == b.unit) {
            *out = w;
            return true;
        }
    }
    return false;
}

RunSetup
table4Setup(Workload w)
{
    return scenarioSetup(builtinSpec(w));
}

double
modelStateBytes(Workload w)
{
    return scenarioModelStateBytes(builtinSpec(w));
}

RunSetup
defaultSetup(Workload w, arch::NpuGeneration gen)
{
    return defaultScenarioSetup(builtinSpec(w), gen);
}

graph::OperatorGraph
buildGraph(Workload w, const RunSetup &setup)
{
    return buildScenarioGraph(builtinSpec(w), setup);
}

double
unitsPerRun(Workload w, const RunSetup &setup)
{
    return scenarioUnitsPerRun(builtinSpec(w), setup);
}

}  // namespace models
}  // namespace regate
