/**
 * @file
 * The built-in workload generators behind GeneratorRegistry: the
 * paper's llama-train/prefill/decode, dlrm, and diffusion families
 * (whose 17 Table-1 instances are the canonical built-in specs), and
 * an MoE inference family as the first registry-only scenario — it
 * exists to prove a new family needs a generator in the library and
 * a spec file, never a figure-binary edit.
 */

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "models/diffusion.h"
#include "models/dlrm.h"
#include "models/llama.h"
#include "models/registry.h"

namespace regate {
namespace models {

namespace {

/** The spec keys every family understands. */
std::vector<SpecKeyInfo>
commonSpecKeys(const std::string &models)
{
    return {
        {"family", "workload family (this generator)"},
        {"model", "model size: " + models},
        {"batch", "global batch size (required; int list/range ok)"},
        {"chips", "pod size (required; int list/range ok)"},
        {"seq_len", "input sequence length (family default if unset)"},
        {"out_len", "generated length (family default if unset)"},
        {"dp", "data-parallel replicas (with tp/pp: chips = dp*tp*pp)"},
        {"tp", "tensor-parallel shards"},
        {"pp", "pipeline-parallel stages"},
        {"unit", "work unit: iteration | token | request | image"},
        {"logic_off", "gated-logic leakage ratio override"},
        {"sram_sleep", "SRAM sleep leakage ratio override"},
        {"sram_off", "SRAM off leakage ratio override"},
        {"delay_scale", "gating delay/BET scale override"},
    };
}

/** Fig.2-style normalization shared by every family: the unit the
 *  spec asked for, over the setup's batch. */
double
defaultUnitsPerRun(const ScenarioSpec &spec, const RunSetup &setup)
{
    switch (scenarioWorkUnit(spec)) {
      case WorkUnit::Iteration:
        return 1.0;
      case WorkUnit::Token:
        return static_cast<double>(setup.batch) *
               static_cast<double>(spec.outLen > 0 ? spec.outLen
                                                   : spec.seqLen);
      case WorkUnit::Request:
      case WorkUnit::Image:
        return static_cast<double>(setup.batch);
    }
    throw LogicError("unknown unit");
}

/** Anchor setup shared by every family: explicit split if the spec
 *  set one, else the family's heuristic via @p heuristic. */
template <typename HeuristicFn>
RunSetup
anchorFrom(const ScenarioSpec &spec, HeuristicFn &&heuristic)
{
    RunSetup s;
    s.chips = spec.chips;
    s.batch = spec.batch;
    s.par = spec.parSet ? spec.par : heuristic();
    return s;
}

/** Reject extras outside @p allowed (parser-independent safety for
 *  programmatically built specs). */
void
checkExtras(const ScenarioSpec &spec,
            const std::vector<std::string> &allowed)
{
    for (const auto &[key, value] : spec.extra) {
        (void)value;
        REGATE_CHECK(std::find(allowed.begin(), allowed.end(), key) !=
                         allowed.end(),
                     "scenario '", spec.name, "': family '",
                     spec.family, "' does not accept key '", key, "'");
    }
}

/** The llama tp-first split with the Table-4 dp<=batch fixup. */
Parallelism
llamaAnchorSplit(int chips, std::int64_t batch)
{
    Parallelism par = splitChips(chips, 8);
    // Keep dp <= batch so every replica has work.
    while (par.dp > batch && par.tp < chips) {
        par.tp *= 2;
        par.dp = chips / par.tp;
    }
    return par;
}

// ---- Llama train / prefill / decode ----

class LlamaGeneratorBase : public WorkloadGenerator
{
  public:
    std::vector<SpecKeyInfo> specKeys() const override
    {
        return commonSpecKeys("8b | 13b | 70b | 405b");
    }

    void validate(const ScenarioSpec &spec) const override
    {
        cardOf(spec);
        checkExtras(spec, {});
    }

    void fillDefaults(ScenarioSpec &spec) const override
    {
        if (spec.seqLen == 0)
            spec.seqLen = kPrefillSeqLen;
        if (decode() && spec.outLen == 0)
            spec.outLen = kDecodeOutLen;
        if (spec.unit.empty())
            spec.unit = workUnitKey(defaultUnit());
    }

    WorkUnit workUnit(const ScenarioSpec &spec) const override
    {
        return scenarioWorkUnitOf(spec);
    }

    RunSetup anchorSetup(const ScenarioSpec &spec) const override
    {
        return anchorFrom(spec, [&] {
            return llamaAnchorSplit(spec.chips, spec.batch);
        });
    }

    Parallelism scaleSplit(const ScenarioSpec &spec,
                           int chips) const override
    {
        (void)spec;
        return splitChips(chips, 8);
    }

    double unitsPerRun(const ScenarioSpec &spec,
                       const RunSetup &setup) const override
    {
        return defaultUnitsPerRun(spec, setup);
    }

  protected:
    virtual bool decode() const { return false; }
    virtual WorkUnit defaultUnit() const = 0;

    static const LlamaConfig &cardOf(const ScenarioSpec &spec)
    {
        if (spec.model == "8b")
            return llamaConfig(LlamaModel::L8B);
        if (spec.model == "13b")
            return llamaConfig(LlamaModel::L13B);
        if (spec.model == "70b")
            return llamaConfig(LlamaModel::L70B);
        if (spec.model == "405b")
            return llamaConfig(LlamaModel::L405B);
        throw ConfigError("scenario '" + spec.name +
                          "': unknown llama model '" + spec.model +
                          "' (want 8b, 13b, 70b, or 405b)");
    }

    static WorkUnit scenarioWorkUnitOf(const ScenarioSpec &spec)
    {
        WorkUnit unit;
        REGATE_CHECK(parseWorkUnitKey(spec.unit, &unit), "scenario '",
                     spec.name, "': unknown unit '", spec.unit, "'");
        return unit;
    }
};

class LlamaTrainGenerator : public LlamaGeneratorBase
{
  public:
    std::string family() const override { return "llama-train"; }
    std::string familyLabel() const override { return "LLM Training"; }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        // bf16 weights + dp-sharded (ZeRO) optimizer state; Table 4
        // fits 405B training on 16 NPU-D chips, implying ~2.5 B/param
        // resident per chip.
        return cardOf(spec).params() * 2.5;
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        return llamaTraining(cardOf(spec), setup.batch, spec.seqLen,
                             setup.par);
    }

  protected:
    WorkUnit defaultUnit() const override { return WorkUnit::Iteration; }
};

class LlamaPrefillGenerator : public LlamaGeneratorBase
{
  public:
    std::string family() const override { return "llama-prefill"; }
    std::string familyLabel() const override { return "LLM Prefill"; }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        return cardOf(spec).weightBytes();
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        return llamaPrefill(cardOf(spec), setup.batch, spec.seqLen,
                            setup.par);
    }

  protected:
    WorkUnit defaultUnit() const override { return WorkUnit::Token; }
};

class LlamaDecodeGenerator : public LlamaGeneratorBase
{
  public:
    std::string family() const override { return "llama-decode"; }
    std::string familyLabel() const override { return "LLM Decode"; }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        const auto &cfg = cardOf(spec);
        double kv = cfg.kvBytesPerToken() *
                    static_cast<double>(spec.seqLen + spec.outLen) *
                    static_cast<double>(spec.batch);
        return cfg.weightBytes() + kv;
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        return llamaDecode(cardOf(spec), setup.batch, spec.seqLen,
                           spec.outLen, setup.par);
    }

  protected:
    bool decode() const override { return true; }
    WorkUnit defaultUnit() const override { return WorkUnit::Token; }
};

// ---- DLRM inference ----

class DlrmGenerator : public WorkloadGenerator
{
  public:
    std::string family() const override { return "dlrm"; }
    std::string familyLabel() const override { return "DLRM Inference"; }

    std::vector<SpecKeyInfo> specKeys() const override
    {
        return commonSpecKeys("s | m | l");
    }

    void validate(const ScenarioSpec &spec) const override
    {
        cardOf(spec);
        checkExtras(spec, {});
    }

    void fillDefaults(ScenarioSpec &spec) const override
    {
        if (spec.unit.empty())
            spec.unit = workUnitKey(WorkUnit::Request);
    }

    WorkUnit workUnit(const ScenarioSpec &spec) const override
    {
        WorkUnit unit;
        REGATE_CHECK(parseWorkUnitKey(spec.unit, &unit), "scenario '",
                     spec.name, "': unknown unit '", spec.unit, "'");
        return unit;
    }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        return cardOf(spec).tableBytes;
    }

    RunSetup anchorSetup(const ScenarioSpec &spec) const override
    {
        return anchorFrom(spec, [&] {
            return Parallelism{spec.chips, 1, 1};
        });
    }

    Parallelism scaleSplit(const ScenarioSpec &spec,
                           int chips) const override
    {
        (void)spec;
        return {chips, 1, 1};
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        return dlrmInference(cardOf(spec), setup.batch, setup.chips);
    }

    double unitsPerRun(const ScenarioSpec &spec,
                       const RunSetup &setup) const override
    {
        return defaultUnitsPerRun(spec, setup);
    }

  private:
    static const DlrmConfig &cardOf(const ScenarioSpec &spec)
    {
        if (spec.model == "s")
            return dlrmConfig(DlrmModel::S);
        if (spec.model == "m")
            return dlrmConfig(DlrmModel::M);
        if (spec.model == "l")
            return dlrmConfig(DlrmModel::L);
        throw ConfigError("scenario '" + spec.name +
                          "': unknown dlrm model '" + spec.model +
                          "' (want s, m, or l)");
    }
};

// ---- Stable diffusion ----

class DiffusionGenerator : public WorkloadGenerator
{
  public:
    std::string family() const override { return "diffusion"; }
    std::string familyLabel() const override
    {
        return "Stable Diffusion";
    }

    std::vector<SpecKeyInfo> specKeys() const override
    {
        return commonSpecKeys("dit-xl | gligen");
    }

    void validate(const ScenarioSpec &spec) const override
    {
        modelOf(spec);
        checkExtras(spec, {});
    }

    void fillDefaults(ScenarioSpec &spec) const override
    {
        if (spec.unit.empty())
            spec.unit = workUnitKey(WorkUnit::Image);
    }

    WorkUnit workUnit(const ScenarioSpec &spec) const override
    {
        WorkUnit unit;
        REGATE_CHECK(parseWorkUnitKey(spec.unit, &unit), "scenario '",
                     spec.name, "': unknown unit '", spec.unit, "'");
        return unit;
    }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        (void)spec;
        return 3e9;  // ~1.5B params in bf16 plus activations.
    }

    RunSetup anchorSetup(const ScenarioSpec &spec) const override
    {
        return anchorFrom(spec, [&] {
            return Parallelism{spec.chips, 1, 1};
        });
    }

    Parallelism scaleSplit(const ScenarioSpec &spec,
                           int chips) const override
    {
        (void)spec;
        return {chips, 1, 1};
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        return diffusionInference(modelOf(spec), setup.batch,
                                  setup.par);
    }

    double unitsPerRun(const ScenarioSpec &spec,
                       const RunSetup &setup) const override
    {
        return defaultUnitsPerRun(spec, setup);
    }

  private:
    static DiffusionModel modelOf(const ScenarioSpec &spec)
    {
        if (spec.model == "dit-xl")
            return DiffusionModel::DiTXL;
        if (spec.model == "gligen")
            return DiffusionModel::GLIGEN;
        throw ConfigError("scenario '" + spec.name +
                          "': unknown diffusion model '" + spec.model +
                          "' (want dit-xl or gligen)");
    }
};

// ---- MoE inference (registry-only; no enum equivalent) ----

/**
 * Sparse mixture-of-experts inference on a llama-architecture base:
 * compute routes each token through top_k expert FFNs (the prefill
 * graph with a top_k-wide FFN), while every expert's weights stay
 * HBM-resident (the capacity model scales the FFN by `experts`).
 */
class MoeGenerator : public LlamaGeneratorBase
{
  public:
    std::string family() const override { return "moe"; }
    std::string familyLabel() const override { return "MoE Inference"; }

    std::vector<SpecKeyInfo> specKeys() const override
    {
        auto keys = commonSpecKeys("8b | 13b | 70b | 405b (dense base)");
        keys.push_back({"experts",
                        "expert FFNs per layer (required, >= 2)"});
        keys.push_back({"top_k",
                        "experts active per token (default 2)"});
        return keys;
    }

    void validate(const ScenarioSpec &spec) const override
    {
        cardOf(spec);
        checkExtras(spec, {"experts", "top_k"});
        std::int64_t experts = spec.extraOr("experts", 0);
        REGATE_CHECK(experts >= 2, "scenario '", spec.name,
                     "': moe requires experts >= 2 (got ", experts,
                     ")");
        std::int64_t top_k = spec.extraOr("top_k", 2);
        REGATE_CHECK(top_k >= 1 && top_k <= experts, "scenario '",
                     spec.name, "': top_k must be in [1, experts] "
                     "(got ", top_k, " of ", experts, ")");
    }

    void fillDefaults(ScenarioSpec &spec) const override
    {
        LlamaGeneratorBase::fillDefaults(spec);
        if (spec.extraOr("top_k", 0) == 0) {
            spec.extra.emplace_back("top_k", 2);
            std::sort(spec.extra.begin(), spec.extra.end());
        }
    }

    double modelStateBytes(const ScenarioSpec &spec) const override
    {
        // All experts resident: the dense card with its FFN widened
        // by the expert count.
        LlamaConfig all = cardOf(spec);
        all.ffnHidden *= spec.extraOr("experts", 2);
        return all.weightBytes();
    }

    graph::OperatorGraph build(const ScenarioSpec &spec,
                               const RunSetup &setup) const override
    {
        // Active compute: top_k expert FFNs per token.
        LlamaConfig active = cardOf(spec);
        active.ffnHidden *= spec.extraOr("top_k", 2);
        return llamaPrefill(active, setup.batch, spec.seqLen,
                            setup.par);
    }

  protected:
    WorkUnit defaultUnit() const override { return WorkUnit::Token; }
};

}  // namespace

std::string
workUnitKey(WorkUnit unit)
{
    switch (unit) {
      case WorkUnit::Iteration:
        return "iteration";
      case WorkUnit::Token:
        return "token";
      case WorkUnit::Request:
        return "request";
      case WorkUnit::Image:
        return "image";
    }
    throw LogicError("unknown unit");
}

bool
parseWorkUnitKey(const std::string &key, WorkUnit *out)
{
    if (key == "iteration")
        *out = WorkUnit::Iteration;
    else if (key == "token")
        *out = WorkUnit::Token;
    else if (key == "request")
        *out = WorkUnit::Request;
    else if (key == "image")
        *out = WorkUnit::Image;
    else
        return false;
    return true;
}

void
registerBuiltinGenerators(GeneratorRegistry &registry)
{
    registry.add(std::make_unique<LlamaTrainGenerator>());
    registry.add(std::make_unique<LlamaPrefillGenerator>());
    registry.add(std::make_unique<LlamaDecodeGenerator>());
    registry.add(std::make_unique<DlrmGenerator>());
    registry.add(std::make_unique<DiffusionGenerator>());
    registry.add(std::make_unique<MoeGenerator>());
}

}  // namespace models
}  // namespace regate
