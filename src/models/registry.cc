#include "models/registry.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/error.h"

namespace regate {
namespace models {

namespace {

int
roundUpPow2(int v)
{
    int p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

}  // namespace

Parallelism
splitChips(int chips, int max_tp)
{
    Parallelism par;
    par.tp = std::min(chips, max_tp);
    while (par.tp > 1 && chips % par.tp != 0)
        --par.tp;
    par.dp = chips / par.tp;
    return par;
}

GeneratorRegistry &
GeneratorRegistry::instance()
{
    static GeneratorRegistry registry;
    static std::once_flag builtins;
    std::call_once(builtins,
                   [] { registerBuiltinGenerators(registry); });
    return registry;
}

void
GeneratorRegistry::add(std::unique_ptr<WorkloadGenerator> gen)
{
    REGATE_CHECK(gen, "null generator");
    auto family = gen->family();
    REGATE_CHECK(!gens_.count(family), "workload generator '", family,
                 "' is already registered");
    gens_.emplace(std::move(family), std::move(gen));
}

const WorkloadGenerator *
GeneratorRegistry::find(const std::string &family) const
{
    auto it = gens_.find(family);
    return it == gens_.end() ? nullptr : it->second.get();
}

const WorkloadGenerator &
GeneratorRegistry::require(const std::string &family) const
{
    const auto *gen = find(family);
    if (gen)
        return *gen;
    std::string known;
    for (const auto &[key, value] : gens_) {
        (void)value;
        known += known.empty() ? key : ", " + key;
    }
    throw ConfigError("unknown workload family '" + family +
                      "' (registered: " + known + ")");
}

std::vector<std::string>
GeneratorRegistry::families() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : gens_) {
        (void)value;
        out.push_back(key);
    }
    return out;  // std::map iteration is already sorted.
}

void
validateScenario(ScenarioSpec &spec)
{
    const auto &gen =
        GeneratorRegistry::instance().require(spec.family);

    // Family-independent invariants first, so every generator gets a
    // structurally sound spec.
    REGATE_CHECK(spec.batch >= 1, "scenario '", spec.name,
                 "': batch is required (>= 1; got ", spec.batch, ")");
    REGATE_CHECK(spec.chips >= 1, "scenario '", spec.name,
                 "': chips is required (>= 1; got ", spec.chips, ")");
    REGATE_CHECK(spec.seqLen >= 0 && spec.outLen >= 0, "scenario '",
                 spec.name, "': negative sequence length");
    if (spec.parSet) {
        spec.par.validate();
        REGATE_CHECK(
            spec.chips == spec.par.chips(), "scenario '", spec.name,
            "': inconsistent parallelism: chips (", spec.chips,
            ") != tp*dp*pp (", spec.par.tp, "*", spec.par.dp, "*",
            spec.par.pp, " = ", spec.par.chips(), ")");
    }
    for (const auto &[key, value] : spec.gating) {
        REGATE_CHECK(key == "logic_off" || key == "sram_sleep" ||
                         key == "sram_off" || key == "delay_scale",
                     "scenario '", spec.name, "': unknown gating key '",
                     key, "'");
        REGATE_CHECK(std::isfinite(value) && value >= 0, "scenario '",
                     spec.name, "': bad ", key, " value");
        REGATE_CHECK(key != "delay_scale" || value > 0, "scenario '",
                     spec.name, "': delay_scale must be > 0");
    }

    gen.validate(spec);
    gen.fillDefaults(spec);

    // A token-normalized scenario must have a token count.
    REGATE_CHECK(gen.workUnit(spec) != WorkUnit::Token ||
                     spec.seqLen > 0 || spec.outLen > 0,
                 "scenario '", spec.name,
                 "': unit=token needs seq_len or out_len");
}

RunSetup
scenarioSetup(const ScenarioSpec &spec)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .anchorSetup(spec);
}

RunSetup
defaultScenarioSetup(const ScenarioSpec &spec, arch::NpuGeneration g)
{
    const auto &gen =
        GeneratorRegistry::instance().require(spec.family);
    RunSetup s = gen.anchorSetup(spec);
    const auto &cfg = arch::npuConfig(g);
    double per_chip_hbm = static_cast<double>(cfg.hbmBytes) * 0.85;
    int min_chips = static_cast<int>(
        std::ceil(gen.modelStateBytes(spec) / per_chip_hbm));
    if (min_chips > s.chips) {
        s.chips = roundUpPow2(min_chips);
        s.par = gen.scaleSplit(spec, s.chips);
    }
    return s;
}

graph::OperatorGraph
buildScenarioGraph(const ScenarioSpec &spec, const RunSetup &setup)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .build(spec, setup);
}

double
scenarioUnitsPerRun(const ScenarioSpec &spec, const RunSetup &setup)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .unitsPerRun(spec, setup);
}

double
scenarioModelStateBytes(const ScenarioSpec &spec)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .modelStateBytes(spec);
}

WorkUnit
scenarioWorkUnit(const ScenarioSpec &spec)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .workUnit(spec);
}

std::string
scenarioFamilyLabel(const ScenarioSpec &spec)
{
    return GeneratorRegistry::instance()
        .require(spec.family)
        .familyLabel();
}

}  // namespace models
}  // namespace regate
