#include "models/dlrm.h"

#include <array>

#include "common/error.h"
#include "common/units.h"

namespace regate {
namespace models {

using graph::Block;
using graph::CollKind;
using graph::Operator;
using graph::OperatorGraph;
using graph::OpKind;

namespace {

constexpr int kFp32 = 4;
constexpr double kOpsRelu = 1;
constexpr double kOpsInteraction = 3;  // mul + add + gather shuffle.

// Pooling factors are small (most production tables are one-hot or
// lightly multi-hot), which keeps the HBM gather traffic comparable
// to the AllToAll payload; the torus-penalized AllToAll then
// dominates, matching the paper's 98-99% ICI utilization (Fig. 8).
const std::array<DlrmConfig, 3> kConfigs = {{
    {"DLRM-S", 26, 64, 1, 20.0 * 1e9, {13, 512, 256, 64},
     {512, 1024, 1024, 512, 256, 1}},
    {"DLRM-M", 40, 128, 1, 45.0 * 1e9, {13, 512, 256, 128},
     {1024, 1024, 1024, 512, 256, 1}},
    {"DLRM-L", 64, 128, 2, 98.0 * 1e9, {13, 512, 256, 128},
     {2048, 2048, 1024, 512, 256, 1}},
}};

/** Emit an MLP stack as per-layer GEMM + ReLU. */
void
emitMlp(std::vector<Operator> &ops, const std::string &prefix,
        const std::vector<std::int64_t> &dims, std::int64_t rows)
{
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        Operator gemm;
        gemm.kind = OpKind::MatMul;
        gemm.name = prefix + ".fc" + std::to_string(i);
        gemm.m = rows;
        gemm.k = dims[i];
        gemm.n = dims[i + 1];
        gemm.hbmReadBytes =
            static_cast<double>(gemm.k) * gemm.n * kFp32 +
            static_cast<double>(rows) * dims[i] * kFp32;
        gemm.hbmWriteBytes = static_cast<double>(rows) * dims[i + 1] *
                             kFp32;
        gemm.validate();
        ops.push_back(gemm);

        Operator relu;
        relu.kind = OpKind::Elementwise;
        relu.name = prefix + ".relu" + std::to_string(i);
        relu.vuOps = static_cast<double>(rows) * dims[i + 1] * kOpsRelu;
        relu.validate();
        ops.push_back(relu);
    }
}

}  // namespace

const DlrmConfig &
dlrmConfig(DlrmModel model)
{
    return kConfigs[static_cast<std::size_t>(model)];
}

const std::vector<DlrmModel> &
allDlrmModels()
{
    static const std::vector<DlrmModel> all = {DlrmModel::S, DlrmModel::M,
                                               DlrmModel::L};
    return all;
}

graph::OperatorGraph
dlrmInference(const DlrmConfig &cfg, std::int64_t batch, int chips)
{
    REGATE_CHECK(chips >= 1, "need at least one chip");
    std::int64_t b_local = std::max<std::int64_t>(1, batch / chips);
    double tables_local =
        static_cast<double>(cfg.tables) / chips;

    OperatorGraph g;
    g.name = cfg.name + "-inference";
    Block blk;
    blk.name = "request-batch";

    // Bottom MLP on the local batch shard.
    emitMlp(blk.ops, "bottom", cfg.bottomMlp, b_local);

    // Embedding lookups for this chip's table shard: the shard serves
    // lookups for the *global* batch.
    {
        Operator op;
        op.kind = OpKind::Embedding;
        op.name = "embedding.lookup";
        op.lookups = static_cast<double>(batch) * tables_local *
                     cfg.pooling;
        op.bytesPerLookup = static_cast<double>(cfg.embDim) * kFp32;
        op.hbmReadBytes = op.lookups * op.bytesPerLookup;
        // Pooling reduction on the VU.
        op.vuOps = op.lookups * cfg.embDim;
        op.validate();
        blk.ops.push_back(op);
    }

    // AllToAll: pooled embeddings from table shards to batch shards.
    if (chips > 1) {
        Operator op;
        op.kind = OpKind::Collective;
        op.name = "embedding.alltoall";
        op.coll = CollKind::AllToAll;
        op.collBytes = static_cast<double>(batch) * tables_local *
                       cfg.embDim * kFp32;
        op.validate();
        blk.ops.push_back(op);
    }

    // Feature interaction (pairwise dots) on the local batch shard.
    {
        Operator op;
        op.kind = OpKind::Elementwise;
        op.name = "interaction";
        double pairs = 0.5 * cfg.tables * (cfg.tables + 1);
        op.vuOps = static_cast<double>(b_local) * pairs * cfg.embDim *
                   kOpsInteraction;
        op.validate();
        blk.ops.push_back(op);
    }

    // Top MLP.
    emitMlp(blk.ops, "top", cfg.topMlp, b_local);

    g.blocks.push_back(std::move(blk));
    g.validate();
    return g;
}

}  // namespace models
}  // namespace regate
