#include "isa/program.h"

#include "common/error.h"

namespace regate {
namespace isa {

Program::BundleBuilder &
Program::BundleBuilder::saPush(int unit, Cycles cycles)
{
    b_.ops.push_back({SlotOp::Kind::SaPush, unit, cycles});
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::saPop(int unit, Cycles cycles)
{
    b_.ops.push_back({SlotOp::Kind::SaPop, unit, cycles});
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::vuOp(int unit, Cycles cycles)
{
    b_.ops.push_back({SlotOp::Kind::VuOp, unit, cycles});
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::dmaOp(int unit, Cycles cycles)
{
    b_.ops.push_back({SlotOp::Kind::DmaOp, unit, cycles});
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::setpm(std::uint8_t bitmap, FuType type,
                              core::PowerMode mode)
{
    REGATE_CHECK(!b_.misc.has_value(),
                 "bundle already has a misc-slot instruction; only one "
                 "setpm can issue per cycle (§4.2)");
    SetpmInstr instr;
    instr.fuType = type;
    instr.mode = mode;
    instr.bitmap = bitmap;
    instr.immediate = true;
    // Round-trip through the encoder to validate the instruction.
    b_.misc = decodeSetpm(encodeSetpm(instr));
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::setpmSram(std::uint8_t start_reg,
                                  std::uint8_t end_reg,
                                  core::PowerMode mode)
{
    REGATE_CHECK(!b_.misc.has_value(),
                 "bundle already has a misc-slot instruction");
    SetpmInstr instr;
    instr.fuType = FuType::Sram;
    instr.mode = mode;
    instr.startAddrReg = start_reg;
    instr.endAddrReg = end_reg;
    b_.misc = decodeSetpm(encodeSetpm(instr));
    return *this;
}

Program::BundleBuilder &
Program::BundleBuilder::nop(Cycles cycles)
{
    b_.nopCycles = cycles;
    return *this;
}

Program::BundleBuilder
Program::bundle()
{
    bundles_.emplace_back();
    return BundleBuilder(bundles_.back());
}

std::size_t
Program::setpmCount() const
{
    std::size_t n = 0;
    for (const auto &b : bundles_)
        n += b.misc.has_value() ? 1 : 0;
    return n;
}

}  // namespace isa
}  // namespace regate
