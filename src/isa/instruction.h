/**
 * @file
 * The NPU VLIW ISA subset needed by ReGate, including the setpm
 * power-management instruction (§4.2, Fig. 14).
 *
 * A VLIW bundle has one slot per functional-unit class (SA, VU, DMA)
 * plus a miscellaneous slot. setpm lives in the misc slot and comes in
 * three variants:
 *   1. SRAM: two scalar registers give the [start, end) address range
 *      whose segments change power mode.
 *   2. Functional units, bitmap in a scalar register.
 *   3. Functional units, bitmap as an 8-bit immediate.
 */

#ifndef REGATE_ISA_INSTRUCTION_H
#define REGATE_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "common/units.h"
#include "core/power_state.h"

namespace regate {
namespace isa {

/** Functional-unit classes addressable by setpm (3-bit field). */
enum class FuType : std::uint8_t { Sa = 0, Vu = 1, Sram = 2, Dma = 3 };

/** Printable name. */
std::string fuTypeName(FuType t);

/** Decoded setpm instruction. */
struct SetpmInstr
{
    FuType fuType = FuType::Vu;
    core::PowerMode mode = core::PowerMode::Auto;

    /** Unit bitmap (variants 2/3); bit i targets unit i. */
    std::uint8_t bitmap = 0;

    /** True if the bitmap is an immediate (variant 3). */
    bool immediate = true;

    /** Scalar register holding the bitmap (variant 2). */
    std::uint8_t bitmapReg = 0;

    /** SRAM variant: scalar registers with start/end addresses. */
    std::uint8_t startAddrReg = 0;
    std::uint8_t endAddrReg = 0;

    bool operator==(const SetpmInstr &o) const;

    /** Human-readable form, e.g. "setpm 0b1011,vu,off". */
    std::string toString() const;
};

/**
 * Encode to the 32-bit misc-slot word. Layout (LSB first):
 *   [2:0]   fu_type
 *   [4:3]   power mode (0=auto, 1=on, 2=off, 3=sleep)
 *   [5]     immediate flag
 *   [13:6]  bitmap immediate or bitmap register
 *   [21:14] start address register (SRAM variant)
 *   [29:22] end address register (SRAM variant)
 *   [31:30] reserved, must be zero
 * Throws ConfigError for unencodable instructions (e.g. sleep mode on
 * a non-SRAM unit).
 */
std::uint32_t encodeSetpm(const SetpmInstr &instr);

/** Decode a misc-slot word; throws ConfigError on malformed input. */
SetpmInstr decodeSetpm(std::uint32_t word);

}  // namespace isa
}  // namespace regate

#endif  // REGATE_ISA_INSTRUCTION_H
