#include "isa/vliw_core.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace isa {

Cycles
UnitTrace::gatedCycles() const
{
    Cycles total = 0;
    for (const auto &iv : gated)
        total += iv.length();
    return total;
}

VliwCore::VliwCore(const VliwCoreConfig &cfg)
    : cfg_(cfg)
{
    REGATE_CHECK(cfg.numSa > 0 && cfg.numVu > 0 && cfg.numDma > 0,
                 "core needs at least one of each unit class");
    auto make = [](int n, Cycles wake, Cycles window) {
        std::vector<Unit> v(n);
        for (auto &u : v) {
            u.wakeDelay = wake;
            u.idleWindow = window;
        }
        return v;
    };
    sa_ = make(cfg.numSa, cfg.saWakeDelay, cfg.saIdleWindow);
    vu_ = make(cfg.numVu, cfg.vuWakeDelay, cfg.vuIdleWindow);
    dma_ = make(cfg.numDma, cfg.dmaWakeDelay, Cycles{1000});
}

VliwCore::Unit &
VliwCore::unitFor(const SlotOp &op)
{
    switch (op.kind) {
      case SlotOp::Kind::SaPush:
      case SlotOp::Kind::SaPop:
        REGATE_CHECK(op.unit >= 0 && op.unit < cfg_.numSa,
                     "SA index ", op.unit, " out of range");
        return sa_[op.unit];
      case SlotOp::Kind::VuOp:
        REGATE_CHECK(op.unit >= 0 && op.unit < cfg_.numVu,
                     "VU index ", op.unit, " out of range");
        return vu_[op.unit];
      case SlotOp::Kind::DmaOp:
        REGATE_CHECK(op.unit >= 0 && op.unit < cfg_.numDma,
                     "DMA index ", op.unit, " out of range");
        return dma_[op.unit];
    }
    throw LogicError("unknown SlotOp kind");
}

Cycles
VliwCore::resolveReady(Unit &unit, Cycles t)
{
    Cycles avail = std::max(t, unit.busyUntil);

    // Lazy hardware idle-detection: if the unit sat idle in auto mode
    // long enough, the FSM gated it at lastBusyEnd + window and this
    // op now pays the wake-up.
    if (!unit.gatedNow && cfg_.autoIdleDetect &&
        unit.mode == core::PowerMode::Auto &&
        avail >= unit.lastBusyEnd + unit.idleWindow &&
        avail > unit.lastBusyEnd) {
        unit.gatedNow = true;
        unit.gateStart = unit.lastBusyEnd + unit.idleWindow +
                         unit.wakeDelay;  // power-off transition
    }

    if (unit.gatedNow) {
        // The op triggers the wake at `avail`.
        if (unit.gateStart < avail)
            unit.trace.gated.push_back({unit.gateStart, avail});
        unit.gatedNow = false;
        ++unit.trace.wakeEvents;
        avail += unit.wakeDelay;
    }
    return avail;
}

void
VliwCore::applySetpm(const SetpmInstr &instr, Cycles now)
{
    ++setpmExecuted_;
    REGATE_CHECK(instr.fuType == FuType::Sa ||
                     instr.fuType == FuType::Vu ||
                     instr.fuType == FuType::Dma,
                 "core model handles SA/VU/DMA setpm; SRAM setpm is "
                 "modeled by the memory subsystem");

    std::vector<Unit> *units = nullptr;
    switch (instr.fuType) {
      case FuType::Sa:
        units = &sa_;
        break;
      case FuType::Vu:
        units = &vu_;
        break;
      case FuType::Dma:
        units = &dma_;
        break;
      default:
        throw LogicError("unreachable");
    }

    for (std::size_t i = 0; i < units->size() && i < 8; ++i) {
        if (!((instr.bitmap >> i) & 1))
            continue;
        Unit &u = (*units)[i];
        switch (instr.mode) {
          case core::PowerMode::Off:
            if (!u.gatedNow) {
                u.gatedNow = true;
                // Powering off starts once the unit drains and takes
                // one on/off delay before leakage actually stops.
                u.gateStart = std::max(now, u.busyUntil) + u.wakeDelay;
            }
            u.mode = core::PowerMode::Off;
            break;
          case core::PowerMode::On:
            if (u.gatedNow) {
                if (u.gateStart < now)
                    u.trace.gated.push_back({u.gateStart, now});
                u.gatedNow = false;
                ++u.trace.wakeEvents;
                u.busyUntil = std::max(u.busyUntil, now + u.wakeDelay);
            }
            u.mode = core::PowerMode::On;
            break;
          case core::PowerMode::Auto:
            u.mode = core::PowerMode::Auto;
            break;
          case core::PowerMode::Sleep:
            throw ConfigError("sleep mode is SRAM-only");
        }
    }
}

void
VliwCore::run(const Program &program)
{
    REGATE_CHECK(!ran_, "VliwCore::run can only be called once");
    ran_ = true;

    for (std::size_t bi = 0; bi < program.bundles().size(); ++bi) {
        const auto &bundle = program.bundles()[bi];
        // Dispatch when every required unit is ready; gated units are
        // structural hazards whose wake this dispatch triggers.
        Cycles t = nextIssue_;
        for (const auto &op : bundle.ops)
            t = std::max(t, unitFor(op).busyUntil);
        Cycles dispatch = t;
        for (const auto &op : bundle.ops)
            dispatch = std::max(dispatch, resolveReady(unitFor(op), t));
        wakeStallCycles_ += dispatch - t;
        bundleDispatch_.push_back(dispatch);

        for (const auto &op : bundle.ops) {
            Unit &u = unitFor(op);
            Cycles end = dispatch + op.cycles;
            u.trace.busy.push_back({dispatch, end});
            u.trace.busyBundle.push_back(bi);
            u.busyUntil = end;
            u.lastBusyEnd = end;
        }
        if (bundle.misc.has_value())
            applySetpm(*bundle.misc, dispatch);

        nextIssue_ = dispatch + std::max<Cycles>(1, bundle.nopCycles);
        totalCycles_ = std::max(totalCycles_, nextIssue_);
        for (const auto &op : bundle.ops)
            totalCycles_ =
                std::max(totalCycles_, unitFor(op).busyUntil);
    }

    // Close any still-open gated intervals at end of execution.
    auto close = [this](std::vector<Unit> &units) {
        for (auto &u : units) {
            if (u.gatedNow && u.gateStart < totalCycles_) {
                u.trace.gated.push_back({u.gateStart, totalCycles_});
                u.gatedNow = false;
            }
        }
    };
    close(sa_);
    close(vu_);
    close(dma_);
}

const UnitTrace &
VliwCore::saTrace(int unit) const
{
    REGATE_CHECK(unit >= 0 && unit < cfg_.numSa, "bad SA index");
    return sa_[unit].trace;
}

const UnitTrace &
VliwCore::vuTrace(int unit) const
{
    REGATE_CHECK(unit >= 0 && unit < cfg_.numVu, "bad VU index");
    return vu_[unit].trace;
}

const UnitTrace &
VliwCore::dmaTrace(int unit) const
{
    REGATE_CHECK(unit >= 0 && unit < cfg_.numDma, "bad DMA index");
    return dma_[unit].trace;
}

core::ActivityTimeline
VliwCore::vuActivity(int unit) const
{
    return core::ActivityTimeline::fromIntervals(totalCycles_,
                                                 vuTrace(unit).busy);
}

core::ActivityTimeline
VliwCore::saActivity(int unit) const
{
    return core::ActivityTimeline::fromIntervals(totalCycles_,
                                                 saTrace(unit).busy);
}

}  // namespace isa
}  // namespace regate
