/**
 * @file
 * In-order VLIW NPU core timing model with power-state structural
 * hazards (§4.1 "Power state management in NPU core pipeline").
 *
 * The core issues one bundle per cycle unless a required functional
 * unit is busy, powering off, or waking up. A power-gated unit is
 * simply "not ready": dispatching an operation to it triggers a
 * wake-up and the bundle stalls until the wake completes. setpm in the
 * misc slot changes unit power modes; `setpm ... on` wakes units ahead
 * of their next use so no stall is exposed (the Fig. 15 pattern).
 *
 * Optionally the core emulates the hardware auto-gating policy: a unit
 * in `auto` mode that stays idle for the detection window is gated,
 * and the next operation pays the exposed wake-up delay (ReGate-Base
 * behaviour on VUs/SAs).
 */

#ifndef REGATE_ISA_VLIW_CORE_H
#define REGATE_ISA_VLIW_CORE_H

#include <cstdint>
#include <vector>

#include "core/activity.h"
#include "core/interval.h"
#include "core/power_state.h"
#include "isa/program.h"

namespace regate {
namespace isa {

/** Core configuration. */
struct VliwCoreConfig
{
    int numSa = 2;
    int numVu = 2;
    int numDma = 1;

    Cycles saWakeDelay = 10;  ///< Full-SA on/off delay (Table 3).
    Cycles vuWakeDelay = 2;   ///< VU on/off delay (Table 3).
    Cycles dmaWakeDelay = 60; ///< HBM/DMA on/off delay (Table 3).

    /** Emulate hardware idle-detection on auto-mode units. */
    bool autoIdleDetect = false;
    Cycles saIdleWindow = 156;  ///< BET(SA full)/3.
    Cycles vuIdleWindow = 10;   ///< max(BET(VU)/3, 8) (§4.1).
};

/** Per-unit results after a run. */
struct UnitTrace
{
    std::vector<core::Interval> busy;   ///< Dispatch occupancy.
    std::vector<std::size_t> busyBundle;///< Bundle index per interval.
    std::vector<core::Interval> gated;  ///< Fully-off intervals.
    std::uint64_t wakeEvents = 0;       ///< Wake-ups triggered.
    Cycles gatedCycles() const;
};

/** The core model. */
class VliwCore
{
  public:
    explicit VliwCore(const VliwCoreConfig &cfg);

    /** Execute @p program to completion; can be called once. */
    void run(const Program &program);

    /** Total execution cycles. */
    Cycles totalCycles() const { return totalCycles_; }

    const UnitTrace &saTrace(int unit) const;
    const UnitTrace &vuTrace(int unit) const;
    const UnitTrace &dmaTrace(int unit) const;

    /** setpm instructions executed. */
    std::uint64_t setpmExecuted() const { return setpmExecuted_; }

    /** Dispatch cycle of each bundle, in program order. */
    const std::vector<Cycles> &
    bundleDispatch() const
    {
        return bundleDispatch_;
    }

    /** Cycles bundles spent stalled on wake-ups. */
    Cycles wakeStallCycles() const { return wakeStallCycles_; }

    /** Activity timeline of a unit over the whole run. */
    core::ActivityTimeline vuActivity(int unit) const;
    core::ActivityTimeline saActivity(int unit) const;

  private:
    struct Unit
    {
        Cycles busyUntil = 0;
        Cycles lastBusyEnd = 0;
        core::PowerMode mode = core::PowerMode::Auto;
        bool gatedNow = false;
        Cycles gateStart = 0;
        Cycles wakeDelay = 0;
        Cycles idleWindow = 0;
        UnitTrace trace;
    };

    Unit &unitFor(const SlotOp &op);
    void applySetpm(const SetpmInstr &instr, Cycles now);

    /**
     * Resolve readiness of @p unit for an op arriving at @p t,
     * triggering wakes / lazy auto-gating; returns the cycle the unit
     * becomes usable.
     */
    Cycles resolveReady(Unit &unit, Cycles t);

    VliwCoreConfig cfg_;
    std::vector<Unit> sa_, vu_, dma_;
    std::vector<Cycles> bundleDispatch_;
    Cycles nextIssue_ = 0;
    Cycles totalCycles_ = 0;
    Cycles wakeStallCycles_ = 0;
    std::uint64_t setpmExecuted_ = 0;
    bool ran_ = false;
};

}  // namespace isa
}  // namespace regate

#endif  // REGATE_ISA_VLIW_CORE_H
