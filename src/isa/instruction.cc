#include "isa/instruction.h"

#include <sstream>

#include "common/error.h"

namespace regate {
namespace isa {

std::string
fuTypeName(FuType t)
{
    switch (t) {
      case FuType::Sa:
        return "sa";
      case FuType::Vu:
        return "vu";
      case FuType::Sram:
        return "sram";
      case FuType::Dma:
        return "dma";
    }
    throw LogicError("unknown FuType");
}

bool
SetpmInstr::operator==(const SetpmInstr &o) const
{
    if (fuType != o.fuType || mode != o.mode)
        return false;
    if (fuType == FuType::Sram)
        return startAddrReg == o.startAddrReg &&
               endAddrReg == o.endAddrReg;
    if (immediate != o.immediate)
        return false;
    return immediate ? bitmap == o.bitmap : bitmapReg == o.bitmapReg;
}

std::string
SetpmInstr::toString() const
{
    std::ostringstream os;
    os << "setpm ";
    if (fuType == FuType::Sram) {
        os << "%r" << int{startAddrReg} << ",%r" << int{endAddrReg};
    } else if (immediate) {
        os << "0b";
        for (int b = 7; b >= 0; --b)
            os << ((bitmap >> b) & 1);
    } else {
        os << "%r" << int{bitmapReg};
    }
    os << "," << fuTypeName(fuType) << ","
       << core::powerModeName(mode);
    return os.str();
}

namespace {

void
validate(const SetpmInstr &instr)
{
    REGATE_CHECK(instr.mode != core::PowerMode::Sleep ||
                     instr.fuType == FuType::Sram,
                 "sleep mode is only defined for SRAM (§4.2)");
    if (instr.fuType != FuType::Sram && instr.immediate) {
        REGATE_CHECK(instr.bitmap != 0,
                     "setpm with empty unit bitmap has no effect; "
                     "the encoder rejects it");
    }
}

}  // namespace

std::uint32_t
encodeSetpm(const SetpmInstr &instr)
{
    validate(instr);
    std::uint32_t word = 0;
    word |= static_cast<std::uint32_t>(instr.fuType) & 0x7u;
    word |= (static_cast<std::uint32_t>(instr.mode) & 0x3u) << 3;
    if (instr.fuType == FuType::Sram) {
        word |= 1u << 5;  // SRAM variant always register-addressed.
        word |= static_cast<std::uint32_t>(instr.startAddrReg) << 14;
        word |= static_cast<std::uint32_t>(instr.endAddrReg) << 22;
    } else if (instr.immediate) {
        word |= 1u << 5;
        word |= static_cast<std::uint32_t>(instr.bitmap) << 6;
    } else {
        word |= static_cast<std::uint32_t>(instr.bitmapReg) << 6;
    }
    return word;
}

SetpmInstr
decodeSetpm(std::uint32_t word)
{
    REGATE_CHECK((word >> 30) == 0,
                 "malformed setpm: reserved bits set");
    SetpmInstr instr;
    std::uint32_t fu = word & 0x7u;
    REGATE_CHECK(fu <= static_cast<std::uint32_t>(FuType::Dma),
                 "malformed setpm: unknown functional unit type ", fu);
    instr.fuType = static_cast<FuType>(fu);
    instr.mode = static_cast<core::PowerMode>((word >> 3) & 0x3u);
    bool imm = (word >> 5) & 1u;
    if (instr.fuType == FuType::Sram) {
        instr.startAddrReg = static_cast<std::uint8_t>((word >> 14) & 0xffu);
        instr.endAddrReg = static_cast<std::uint8_t>((word >> 22) & 0xffu);
    } else if (imm) {
        instr.immediate = true;
        instr.bitmap = static_cast<std::uint8_t>((word >> 6) & 0xffu);
    } else {
        instr.immediate = false;
        instr.bitmapReg = static_cast<std::uint8_t>((word >> 6) & 0xffu);
    }
    validate(instr);
    return instr;
}

}  // namespace isa
}  // namespace regate
