/**
 * @file
 * VLIW bundles and programs for the NPU core model, with a small
 * builder API so tests and examples can write kernels the way the
 * paper's Fig. 15 does:
 *
 *   Program p;
 *   p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
 *   p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu, PowerMode::Off);
 */

#ifndef REGATE_ISA_PROGRAM_H
#define REGATE_ISA_PROGRAM_H

#include <optional>
#include <vector>

#include "isa/instruction.h"

namespace regate {
namespace isa {

/** One operation in a bundle slot. */
struct SlotOp
{
    enum class Kind { SaPush, SaPop, VuOp, DmaOp };

    Kind kind = Kind::VuOp;
    int unit = 0;       ///< Functional unit index.
    Cycles cycles = 1;  ///< Occupancy of the unit.
};

/** One VLIW instruction bundle. */
struct Bundle
{
    std::vector<SlotOp> ops;         ///< SA/VU/DMA slots in use.
    std::optional<SetpmInstr> misc;  ///< setpm in the misc slot.
    Cycles nopCycles = 0;            ///< `nop N`: delay the next issue.
};

/** A straight-line VLIW program. */
class Program
{
  public:
    /** Fluent builder for one bundle. */
    class BundleBuilder
    {
      public:
        explicit BundleBuilder(Bundle &b) : b_(b) {}

        /** push: feed a tile into SA @p unit (default 8 cycles). */
        BundleBuilder &saPush(int unit, Cycles cycles = 8);

        /** pop: drain a tile from SA @p unit (default 8 cycles). */
        BundleBuilder &saPop(int unit, Cycles cycles = 8);

        /** A vector op on VU @p unit (default 1 cycle). */
        BundleBuilder &vuOp(int unit, Cycles cycles = 1);

        /** A DMA operation (default 1 cycle of issue occupancy). */
        BundleBuilder &dmaOp(int unit, Cycles cycles = 1);

        /** setpm with an immediate unit bitmap. */
        BundleBuilder &setpm(std::uint8_t bitmap, FuType type,
                             core::PowerMode mode);

        /** setpm for an SRAM address range. */
        BundleBuilder &setpmSram(std::uint8_t start_reg,
                                 std::uint8_t end_reg,
                                 core::PowerMode mode);

        /** `nop N`: hold issue for @p cycles after this bundle. */
        BundleBuilder &nop(Cycles cycles);

      private:
        Bundle &b_;
    };

    /** Append an empty bundle and return its builder. */
    BundleBuilder bundle();

    const std::vector<Bundle> &bundles() const { return bundles_; }
    std::size_t size() const { return bundles_.size(); }

    /** Count setpm instructions in the program. */
    std::size_t setpmCount() const;

  private:
    std::vector<Bundle> bundles_;
};

}  // namespace isa
}  // namespace regate

#endif  // REGATE_ISA_PROGRAM_H
