#include "common/sha256.h"

#include <cstring>

namespace regate {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline std::uint32_t
rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

void
compress(std::uint32_t state[8], const std::uint8_t block[64])
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    for (int i = 16; i < 64; ++i) {
        std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                           (w[i - 15] >> 3);
        std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                           (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2],
                  d = state[3], e = state[4], f = state[5],
                  g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        std::uint32_t s1 =
            rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        std::uint32_t ch = (e & f) ^ (~e & g);
        std::uint32_t t1 = h + s1 + ch + kRound[i] + w[i];
        std::uint32_t s0 =
            rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        std::uint32_t t2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
}

std::string
toHex(const std::array<std::uint8_t, 32> &digest)
{
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (std::uint8_t byte : digest) {
        out.push_back(hex[byte >> 4]);
        out.push_back(hex[byte & 0xf]);
    }
    return out;
}

}  // namespace

std::array<std::uint8_t, 32>
sha256(const void *data, std::size_t len)
{
    std::uint32_t state[8];
    std::memcpy(state, kInit, sizeof(state));

    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::size_t at = 0;
    for (; at + 64 <= len; at += 64)
        compress(state, bytes + at);

    // Final block(s): 0x80 pad, zeros, 64-bit big-endian bit length.
    std::uint8_t tail[128] = {};
    std::size_t rest = len - at;
    if (rest > 0)
        std::memcpy(tail, bytes + at, rest);
    tail[rest] = 0x80;
    std::size_t tail_len = rest + 1 + 8 <= 64 ? 64 : 128;
    std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
    for (int i = 0; i < 8; ++i)
        tail[tail_len - 1 - i] =
            static_cast<std::uint8_t>(bits >> (8 * i));
    compress(state, tail);
    if (tail_len == 128)
        compress(state, tail + 64);

    std::array<std::uint8_t, 32> digest;
    for (int i = 0; i < 8; ++i) {
        digest[static_cast<std::size_t>(4 * i)] =
            static_cast<std::uint8_t>(state[i] >> 24);
        digest[static_cast<std::size_t>(4 * i + 1)] =
            static_cast<std::uint8_t>(state[i] >> 16);
        digest[static_cast<std::size_t>(4 * i + 2)] =
            static_cast<std::uint8_t>(state[i] >> 8);
        digest[static_cast<std::size_t>(4 * i + 3)] =
            static_cast<std::uint8_t>(state[i]);
    }
    return digest;
}

std::string
sha256Hex(const std::string &bytes)
{
    return toHex(sha256(bytes.data(), bytes.size()));
}

std::string
hmacSha256Hex(const std::string &key, const std::string &msg)
{
    // RFC 2104: K' = key hashed down to / padded up to one block.
    std::uint8_t k[64] = {};
    if (key.size() > 64) {
        auto hashed = sha256(key.data(), key.size());
        std::memcpy(k, hashed.data(), hashed.size());
    } else if (!key.empty()) {
        std::memcpy(k, key.data(), key.size());
    }

    std::string inner;
    inner.reserve(64 + msg.size());
    for (std::uint8_t byte : k)
        inner.push_back(static_cast<char>(byte ^ 0x36));
    inner += msg;
    auto inner_digest = sha256(inner.data(), inner.size());

    std::string outer;
    outer.reserve(64 + inner_digest.size());
    for (std::uint8_t byte : k)
        outer.push_back(static_cast<char>(byte ^ 0x5c));
    outer.append(
        reinterpret_cast<const char *>(inner_digest.data()),
        inner_digest.size());
    return toHex(sha256(outer.data(), outer.size()));
}

}  // namespace regate
