/**
 * @file
 * Error-reporting helpers.
 *
 * Following the gem5 convention: configuration or usage errors that the
 * caller can cause raise ConfigError (fatal-style); internal invariant
 * violations raise LogicError (panic-style). Both carry a formatted
 * message. We use exceptions rather than abort() so unit tests can
 * assert on failure paths.
 */

#ifndef REGATE_COMMON_ERROR_H
#define REGATE_COMMON_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace regate {

/** Raised for invalid user-supplied configuration or arguments. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("config error: " + msg)
    {}
};

/** Raised for broken internal invariants (simulator bugs). */
class LogicError : public std::logic_error
{
  public:
    explicit LogicError(const std::string &msg)
        : std::logic_error("internal error: " + msg)
    {}
};

namespace detail {

inline void
streamInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

}  // namespace detail
}  // namespace regate

/** Check a user-facing precondition; throws ConfigError on failure. */
#define REGATE_CHECK(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::regate::ConfigError(                                    \
                ::regate::detail::concat(__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

/** Check an internal invariant; throws LogicError on failure. */
#define REGATE_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::regate::LogicError(                                     \
                ::regate::detail::concat(__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

#endif  // REGATE_COMMON_ERROR_H
