/**
 * @file
 * Whole-file read/write helpers shared by the bench CLI and the
 * orchestration subsystem. Shard documents and plan files are small
 * and line-oriented, so whole-file IO is the right granularity;
 * errors surface as ConfigError with the offending path.
 */

#ifndef REGATE_COMMON_FSIO_H
#define REGATE_COMMON_FSIO_H

#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"

namespace regate {

inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    REGATE_CHECK(in.good(), "cannot open ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    REGATE_CHECK(in.good() || in.eof(), "error reading ", path);
    return buf.str();
}

inline void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    REGATE_CHECK(out.good(), "cannot write ", path);
    out << content;
    out.flush();
    REGATE_CHECK(out.good(), "error writing ", path);
}

}  // namespace regate

#endif  // REGATE_COMMON_FSIO_H
