/**
 * @file
 * Unit helpers and physical constants used across the simulator.
 *
 * The simulator keeps time in seconds (double) or cycles (uint64_t),
 * energy in joules, power in watts, capacity in bytes, and bandwidth in
 * bytes/second. These helpers make call sites read like the paper text
 * ("128 MB SRAM", "2765 GB/s HBM").
 */

#ifndef REGATE_COMMON_UNITS_H
#define REGATE_COMMON_UNITS_H

#include <cstdint>

namespace regate {

/** Cycle count type used by all timing models. */
using Cycles = std::uint64_t;

namespace units {

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;

/** Bytes from KiB/MiB/GiB (the paper uses binary sizes for SRAM/HBM). */
constexpr std::uint64_t KiB(std::uint64_t n) { return n << 10; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n << 20; }
constexpr std::uint64_t GiB(std::uint64_t n) { return n << 30; }

/** Bandwidths are decimal, matching vendor GB/s figures. */
constexpr double GBps(double n) { return n * kGiga; }

/** Frequency in Hz from MHz. */
constexpr double MHz(double n) { return n * kMega; }

/** Seconds from microseconds / nanoseconds. */
constexpr double usec(double n) { return n * kMicro; }
constexpr double nsec(double n) { return n * kNano; }

/** Energy from picojoules. */
constexpr double pJ(double n) { return n * kPico; }

/** Joules -> kilowatt-hours (used by the carbon model). */
constexpr double joulesToKWh(double j) { return j / 3.6e6; }

}  // namespace units
}  // namespace regate

#endif  // REGATE_COMMON_UNITS_H
