/**
 * @file
 * Shared hash utilities for content-keyed caches. One definition of
 * the mixing recipe so every subsystem's keys (operator work hashes,
 * run setups, gating params, cache keys) stay consistent.
 */

#ifndef REGATE_COMMON_HASH_H
#define REGATE_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace regate {

/** FNV-1a streaming step: fold more bytes into a running digest. */
inline std::uint64_t
fnv1a64Extend(std::uint64_t h, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * 64-bit FNV-1a over a byte range. Used for the content digests of
 * serialized artifacts (shard files, worker handshakes), where the
 * digest must be reproducible across processes, platforms, and the
 * Python tooling (tools/merge_shards.py implements the same
 * function) — unlike std::hash, whose value is unspecified.
 */
inline std::uint64_t
fnv1a64(const void *data, std::size_t len)
{
    return fnv1a64Extend(0xcbf29ce484222325ull, data, len);
}

/** Fixed-width (16 char) lowercase hex spelling of a 64-bit digest. */
inline std::string
hexDigest64(std::uint64_t h)
{
    static const char *digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[h & 0xf];
        h >>= 4;
    }
    return out;
}

/** boost::hash_combine-style mixing. */
inline void
hashCombine(std::size_t &seed, std::size_t v)
{
    seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/** Combine a value's std::hash into @p seed. */
template <typename T>
inline void
hashField(std::size_t &seed, const T &v)
{
    hashCombine(seed, std::hash<T>{}(v));
}

}  // namespace regate

#endif  // REGATE_COMMON_HASH_H
