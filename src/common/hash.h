/**
 * @file
 * Shared hash utilities for content-keyed caches. One definition of
 * the mixing recipe so every subsystem's keys (operator work hashes,
 * run setups, gating params, cache keys) stay consistent.
 */

#ifndef REGATE_COMMON_HASH_H
#define REGATE_COMMON_HASH_H

#include <cstddef>
#include <functional>

namespace regate {

/** boost::hash_combine-style mixing. */
inline void
hashCombine(std::size_t &seed, std::size_t v)
{
    seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/** Combine a value's std::hash into @p seed. */
template <typename T>
inline void
hashField(std::size_t &seed, const T &v)
{
    hashCombine(seed, std::hash<T>{}(v));
}

}  // namespace regate

#endif  // REGATE_COMMON_HASH_H
