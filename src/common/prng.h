/**
 * @file
 * Deterministic xorshift128+ PRNG.
 *
 * Tests and property sweeps need reproducible randomness independent of
 * the standard library implementation, so we carry our own tiny
 * generator.
 */

#ifndef REGATE_COMMON_PRNG_H
#define REGATE_COMMON_PRNG_H

#include <cstdint>

namespace regate {

/** xorshift128+ generator; not cryptographic, just fast and portable. */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding to avoid weak all-zero-ish states.
        std::uint64_t z = seed;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
            *s = t ^ (t >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        return static_cast<double>(next() >> 11) * (1.0 / (1ull << 53));
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

}  // namespace regate

#endif  // REGATE_COMMON_PRNG_H
