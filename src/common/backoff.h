/**
 * @file
 * Capped exponential backoff with deterministic jitter, for
 * re-dialing lost fleet peers (net::ReconnectingTransport, the
 * agent's --join re-dial loop). Header-only and built on
 * common/prng.h so the jitter sequence is reproducible under a
 * fixed seed — the unit tests pin it exactly.
 */

#ifndef REGATE_COMMON_BACKOFF_H
#define REGATE_COMMON_BACKOFF_H

#include <algorithm>
#include <cstdint>

#include "common/error.h"
#include "common/prng.h"
#include "obs/metrics.h"

namespace regate {

/** Knobs for one backoff sequence. */
struct BackoffPolicy
{
    double initialDelaySec = 0.5;  ///< First retry delay.
    double maxDelaySec = 30.0;     ///< Exponential growth cap.
    double multiplier = 2.0;       ///< Per-attempt growth factor.
    /**
     * Jitter as a fraction of the base delay: each delay is scaled
     * by a uniform factor in [1 - jitterFrac, 1 + jitterFrac], so a
     * fleet of agents re-dialing one driver does not thunder in
     * lockstep. 0 disables.
     */
    double jitterFrac = 0.25;
    /** Consecutive attempts before exhausted(); 0 = unbounded. */
    int maxAttempts = 8;
};

/**
 * One retry sequence: nextDelaySec() yields the wait before each
 * successive attempt, reset() rearms after a success, exhausted()
 * reports when the policy's attempt budget is spent.
 */
class Backoff
{
  public:
    Backoff(BackoffPolicy policy, std::uint64_t seed)
        : policy_(policy), prng_(seed)
    {
        REGATE_CHECK(policy_.initialDelaySec > 0 &&
                         policy_.maxDelaySec >=
                             policy_.initialDelaySec,
                     "backoff delays must satisfy 0 < initial <= "
                     "max, got initial=",
                     policy_.initialDelaySec, " max=",
                     policy_.maxDelaySec);
        REGATE_CHECK(policy_.multiplier >= 1,
                     "backoff multiplier must be >= 1, got ",
                     policy_.multiplier);
        REGATE_CHECK(policy_.jitterFrac >= 0 &&
                         policy_.jitterFrac < 1,
                     "backoff jitter fraction must be in [0, 1), "
                     "got ", policy_.jitterFrac);
        REGATE_CHECK(policy_.maxAttempts >= 0,
                     "backoff attempt bound must be >= 0, got ",
                     policy_.maxAttempts);
    }

    /** Delay (seconds) to wait before the next attempt. */
    double
    nextDelaySec()
    {
        double base = policy_.initialDelaySec;
        // Multiply up rather than pow(): attempt counts are small,
        // and stopping at the cap cannot overflow no matter how
        // long an outage lasts.
        for (int i = 0; i < attempts_ && base < policy_.maxDelaySec;
             ++i)
            base *= policy_.multiplier;
        base = std::min(base, policy_.maxDelaySec);
        ++attempts_;
        // Every backoff consumer (agent re-dials, driver
        // reconnects) counts into one fleet-wide retry-pressure
        // counter; per-site counters stay with the call sites.
        REGATE_OBS({
            static obs::Counter &attempts =
                obs::MetricsRegistry::instance().counter(
                    "net.backoff.attempts");
            attempts.add(1);
        });
        double factor =
            1.0 +
            policy_.jitterFrac * (2.0 * prng_.uniform01() - 1.0);
        return base * factor;
    }

    /** Rearm after a success: the next failure starts small again. */
    void reset() { attempts_ = 0; }

    /** Attempts handed out since construction / the last reset(). */
    int attempts() const { return attempts_; }

    /** Has the policy's attempt budget been spent? */
    bool
    exhausted() const
    {
        return policy_.maxAttempts > 0 &&
               attempts_ >= policy_.maxAttempts;
    }

  private:
    BackoffPolicy policy_;
    Prng prng_;
    int attempts_ = 0;
};

}  // namespace regate

#endif  // REGATE_COMMON_BACKOFF_H
