/**
 * @file
 * Self-contained SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104)
 * for the fleet protocol's challenge–response authentication
 * (net/agent_protocol.h v2). No external crypto dependency: the
 * fleet secret authenticates hellos on a LAN, it does not encrypt
 * the stream, and the unit tests pin the NIST/RFC 4231 vectors.
 *
 * Not for hashing artifacts — content integrity stays on
 * common/hash.h fnv1a64, which is cheaper and byte-compatible with
 * every digest already on disk.
 */

#ifndef REGATE_COMMON_SHA256_H
#define REGATE_COMMON_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace regate {

/** SHA-256 digest of @p len bytes at @p data. */
std::array<std::uint8_t, 32> sha256(const void *data,
                                    std::size_t len);

/** SHA-256 of @p bytes as 64 lowercase hex characters. */
std::string sha256Hex(const std::string &bytes);

/** HMAC-SHA256(@p key, @p msg) as 64 lowercase hex characters. */
std::string hmacSha256Hex(const std::string &key,
                          const std::string &msg);

}  // namespace regate

#endif  // REGATE_COMMON_SHA256_H
