/**
 * @file
 * Small statistics helpers: summaries, CDFs, weighted CDFs, and the
 * coefficient of determination (R^2) used by the Fig. 16 validation
 * bench.
 */

#ifndef REGATE_COMMON_STATS_H
#define REGATE_COMMON_STATS_H

#include <cstddef>
#include <utility>
#include <vector>

namespace regate {
namespace stats {

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Population geometric mean; requires all values > 0. */
double geomean(const std::vector<double> &xs);

/** Minimum / maximum; throw on empty input. */
double minOf(const std::vector<double> &xs);
double maxOf(const std::vector<double> &xs);

/**
 * Percentile via linear interpolation on the sorted sample,
 * p in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/**
 * Pearson correlation coefficient squared (R^2) between two equal-length
 * samples, as used for simulator validation in the paper's Fig. 16.
 */
double r2(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Weighted empirical CDF: given (value, weight) samples, returns the
 * sorted list of (value, cumulative weight fraction) points. Used for
 * the Fig. 7 SRAM-demand CDF where the weight is operator execution
 * time.
 */
std::vector<std::pair<double, double>>
weightedCdf(std::vector<std::pair<double, double>> samples);

/**
 * Evaluate a weighted CDF (as returned by weightedCdf) at @p value:
 * fraction of weight at or below the value.
 */
double cdfAt(const std::vector<std::pair<double, double>> &cdf,
             double value);

}  // namespace stats
}  // namespace regate

#endif  // REGATE_COMMON_STATS_H
