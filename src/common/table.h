/**
 * @file
 * Aligned plain-text table printer used by the bench harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures as
 * a set of labelled rows; TablePrinter renders them with aligned columns
 * so the output can be compared side-by-side with the paper.
 */

#ifndef REGATE_COMMON_TABLE_H
#define REGATE_COMMON_TABLE_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace regate {

/**
 * Collects rows of string cells and prints them with per-column
 * alignment. Numeric cells are right-aligned, text cells left-aligned.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; missing cells render empty, extras are an error. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with @p precision digits after the point. */
    static std::string fmt(double v, int precision = 2);

    /** Format a value as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Format with engineering suffix (1.2K, 3.4M, 5.6G). */
    static std::string eng(double v, int precision = 2);

  private:
    static constexpr const char *kSeparatorTag = "\x01--";

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace regate

#endif  // REGATE_COMMON_TABLE_H
