#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace regate {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    REGATE_CHECK(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    REGATE_CHECK(cells.size() <= headers_.size(),
                 "row has ", cells.size(), " cells but table has ",
                 headers_.size(), " columns");
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char c = s.front();
    return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
           c == '+' || c == '.';
}

}  // namespace

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            continue;
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells,
                          bool numeric_align) {
        os << "|";
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            std::size_t pad = widths[i] - cell.size();
            bool right = numeric_align && looksNumeric(cell);
            os << ' ';
            if (right)
                os << std::string(pad, ' ') << cell;
            else
                os << cell << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    auto print_sep = [&]() {
        os << "|";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "|";
        os << '\n';
    };

    print_line(headers_, false);
    print_sep();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            print_sep();
        else
            print_line(row, true);
    }
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
TablePrinter::eng(double v, int precision)
{
    const char *suffix = "";
    double a = std::fabs(v);
    if (a >= 1e12) {
        v /= 1e12;
        suffix = "T";
    } else if (a >= 1e9) {
        v /= 1e9;
        suffix = "G";
    } else if (a >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (a >= 1e3) {
        v /= 1e3;
        suffix = "K";
    } else if (a > 0 && a < 1e-6) {
        v *= 1e9;
        suffix = "n";
    } else if (a > 0 && a < 1e-3) {
        v *= 1e6;
        suffix = "u";
    } else if (a > 0 && a < 1.0) {
        v *= 1e3;
        suffix = "m";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", precision, v, suffix);
    return buf;
}

}  // namespace regate
