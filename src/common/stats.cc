#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace regate {
namespace stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    REGATE_CHECK(!xs.empty(), "geomean of empty sample");
    double s = 0.0;
    for (double x : xs) {
        REGATE_CHECK(x > 0.0, "geomean requires positive values, got ", x);
        s += std::log(x);
    }
    return std::exp(s / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    REGATE_CHECK(!xs.empty(), "min of empty sample");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    REGATE_CHECK(!xs.empty(), "max of empty sample");
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    REGATE_CHECK(!xs.empty(), "percentile of empty sample");
    REGATE_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
r2(const std::vector<double> &xs, const std::vector<double> &ys)
{
    REGATE_CHECK(xs.size() == ys.size(), "r2: size mismatch ", xs.size(),
                 " vs ", ys.size());
    REGATE_CHECK(xs.size() >= 2, "r2 needs at least two samples");
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 1.0;
    double r = sxy / std::sqrt(sxx * syy);
    return r * r;
}

std::vector<std::pair<double, double>>
weightedCdf(std::vector<std::pair<double, double>> samples)
{
    REGATE_CHECK(!samples.empty(), "weightedCdf of empty sample");
    std::sort(samples.begin(), samples.end());
    double total = 0.0;
    for (const auto &[v, w] : samples) {
        REGATE_CHECK(w >= 0.0, "weightedCdf: negative weight ", w);
        total += w;
    }
    REGATE_CHECK(total > 0.0, "weightedCdf: zero total weight");

    std::vector<std::pair<double, double>> out;
    double acc = 0.0;
    for (const auto &[v, w] : samples) {
        acc += w;
        // Merge duplicate values, keeping the last cumulative point.
        if (!out.empty() && out.back().first == v)
            out.back().second = acc / total;
        else
            out.emplace_back(v, acc / total);
    }
    return out;
}

double
cdfAt(const std::vector<std::pair<double, double>> &cdf, double value)
{
    double best = 0.0;
    for (const auto &[v, f] : cdf) {
        if (v <= value)
            best = f;
        else
            break;
    }
    return best;
}

}  // namespace stats
}  // namespace regate
