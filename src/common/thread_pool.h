/**
 * @file
 * A minimal fixed-size worker pool for fan-out over sweep grids.
 *
 * Tasks are arbitrary callables submitted through submit(), which
 * returns a std::future for the callable's result. Work is executed
 * FIFO; result *ordering* is the caller's job (parallelMapOrdered in
 * sim/sweep.h collects futures in input order, which is what makes
 * parallel sweeps deterministic). Exceptions thrown by a task are
 * captured in its future and rethrown at get().
 */

#ifndef REGATE_COMMON_THREAD_POOL_H
#define REGATE_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace regate {

class ThreadPool
{
  public:
    /**
     * @param threads  Worker count; 0 picks the REGATE_THREADS
     *                 environment variable if set, otherwise the
     *                 hardware concurrency (min 1).
     */
    explicit ThreadPool(unsigned threads = 0)
    {
        if (threads == 0)
            threads = defaultThreadCount();
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p fn; the returned future yields its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Worker count an argument of 0 resolves to. */
    static unsigned
    defaultThreadCount()
    {
        if (const char *env = std::getenv("REGATE_THREADS")) {
            int n = std::atoi(env);
            if (n > 0)
                return static_cast<unsigned>(n);
        }
        unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 1;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty())
                    return;
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * Apply @p fn to every item, running tasks on @p pool, and return the
 * results in input order. Deterministic regardless of worker count or
 * scheduling; exceptions from @p fn propagate to the caller. Each
 * task owns copies of @p fn and its item, so an exception that
 * unwinds this frame early never leaves queued tasks with dangling
 * references (the pool may outlive the call).
 *
 * Do not call this from a task already running on @p pool: the outer
 * task would block on futures that need the same workers (give nested
 * fan-outs their own pool instead).
 */
template <typename T, typename Fn>
auto
parallelMapOrdered(ThreadPool &pool, const std::vector<T> &items, Fn fn)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    std::vector<std::future<R>> futures;
    futures.reserve(items.size());
    for (const T &item : items) {
        futures.push_back(
            pool.submit([fn, item] { return fn(item); }));
    }
    std::vector<R> out;
    out.reserve(items.size());
    for (auto &fut : futures)
        out.push_back(fut.get());
    return out;
}

}  // namespace regate

#endif  // REGATE_COMMON_THREAD_POOL_H
