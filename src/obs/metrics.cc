#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "common/fsio.h"
#include "common/hash.h"

namespace regate {
namespace obs {

namespace {

// -----------------------------------------------------------------
// Canonical JSON appenders, mirroring sim/serialize.cc: C-locale,
// %.17g doubles, decimal 64-bit integers, escaped strings. The
// snapshot must be byte-stable and diffable, exactly like a shard
// document.
// -----------------------------------------------------------------

void
appendDouble(std::string &out, double v)
{
    REGATE_CHECK(std::isfinite(v),
                 "cannot serialize non-finite double");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendI64(std::string &out, std::int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    out += buf;
}

void
appendString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

}  // namespace

// ---------------------------- Histogram ---------------------------

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds))
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        REGATE_CHECK(bounds_[i - 1] < bounds_[i],
                     "histogram bucket bounds must be strictly "
                     "ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::record(std::uint64_t v, std::uint64_t n)
{
    if (!recordingEnabled() || n == 0)
        return;
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    auto idx = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(v * n, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    auto c = count();
    return c == 0 ? 0.0
                  : static_cast<double>(sum()) /
                        static_cast<double>(c);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
Histogram::percentile(double q) const
{
    auto buckets = bucketCounts();
    // Recompute count from the captured buckets rather than racing
    // count_ against concurrent record()s.
    std::uint64_t count = 0;
    for (auto b : buckets)
        count += b;
    return histogramPercentile(bounds_, buckets, count, q);
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

const std::vector<std::uint64_t> &
durationUsBounds()
{
    // 100us .. 100s in decade thirds (1, 2, 5), microseconds. Wide
    // enough that a whole fleet's case durations land in-range on
    // both fast CI machines and injected-slow test shards.
    static const std::vector<std::uint64_t> bounds = {
        100,      200,      500,       1000,      2000,
        5000,     10000,    20000,     50000,     100000,
        200000,   500000,   1000000,   2000000,   5000000,
        10000000, 20000000, 50000000,  100000000};
    return bounds;
}

std::uint64_t
histogramPercentile(const std::vector<std::uint64_t> &bounds,
                    const std::vector<std::uint64_t> &buckets,
                    std::uint64_t count, double q)
{
    if (count == 0 || bounds.empty() || buckets.empty())
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum >= rank)
            // Overflow bucket (i == bounds.size()) reports the
            // largest finite bound: a documented lower bound.
            return bounds[std::min(i, bounds.size() - 1)];
    }
    return bounds.back();
}

// ------------------------- MetricsRegistry ------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

void
MetricsRegistry::setEnabled(bool on)
{
    detail::enabledFlag().store(on, std::memory_order_relaxed);
}

namespace {

template <typename Entry, typename Make>
auto &
findOrCreate(std::vector<Entry> &list, const std::string &name,
             Make make)
{
    for (auto &e : list)
        if (e.name == name)
            return *e.value;
    list.push_back({name, make()});
    return *list.back().value;
}

}  // namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return findOrCreate(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return findOrCreate(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    return findOrCreate(histograms_, name, [&] {
        return std::make_unique<Histogram>(
            bounds.empty() ? durationUsBounds()
                           : std::move(bounds));
    });
}

void
MetricsRegistry::addCounter(const std::string &name,
                            std::uint64_t delta)
{
    counter(name).add(delta);
}

void
MetricsRegistry::recordHistogram(const std::string &name,
                                 std::uint64_t value,
                                 std::uint64_t n)
{
    histogram(name).record(value, n);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counterValues() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.reserve(counters_.size());
        for (const auto &e : counters_)
            out.emplace_back(e.name, e.value->value());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
MetricsRegistry::snapshotJson() const
{
    // Take a stable view under the lock, then serialize sorted by
    // name so the document is canonical regardless of registration
    // order.
    struct CounterRow
    {
        std::string name;
        std::uint64_t value;
    };
    struct GaugeRow
    {
        std::string name;
        std::int64_t value;
    };
    struct HistRow
    {
        std::string name;
        std::uint64_t count;
        std::uint64_t sum;
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> buckets;
    };
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistRow> hists;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &e : counters_)
            counters.push_back({e.name, e.value->value()});
        for (const auto &e : gauges_)
            gauges.push_back({e.name, e.value->value()});
        for (const auto &e : histograms_)
            hists.push_back({e.name, e.value->count(),
                             e.value->sum(), e.value->bounds(),
                             e.value->bucketCounts()});
    }
    auto byName = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(counters.begin(), counters.end(), byName);
    std::sort(gauges.begin(), gauges.end(), byName);
    std::sort(hists.begin(), hists.end(), byName);

    std::string body;
    body += "{\n\"obs\": \"regate-metrics\",\n\"version\": 1,\n";
    body += "\"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        body += i ? ",\n" : "\n";
        appendString(body, counters[i].name);
        body += ": ";
        appendU64(body, counters[i].value);
    }
    body += "\n},\n\"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        body += i ? ",\n" : "\n";
        appendString(body, gauges[i].name);
        body += ": ";
        appendI64(body, gauges[i].value);
    }
    body += "\n},\n\"histograms\": {";
    for (std::size_t i = 0; i < hists.size(); ++i) {
        const auto &h = hists[i];
        body += i ? ",\n" : "\n";
        appendString(body, h.name);
        body += ": {\"count\": ";
        appendU64(body, h.count);
        body += ", \"sum\": ";
        appendU64(body, h.sum);
        body += ", \"mean\": ";
        appendDouble(body, h.count == 0
                               ? 0.0
                               : static_cast<double>(h.sum) /
                                     static_cast<double>(h.count));
        // Derived quantiles from the same captured buckets the row
        // serializes — fixed decimal formatting keeps the document
        // byte-stable.
        body += ", \"p50\": ";
        appendU64(body, histogramPercentile(h.bounds, h.buckets,
                                            h.count, 0.50));
        body += ", \"p95\": ";
        appendU64(body, histogramPercentile(h.bounds, h.buckets,
                                            h.count, 0.95));
        body += ", \"p99\": ";
        appendU64(body, histogramPercentile(h.bounds, h.buckets,
                                            h.count, 0.99));
        body += ", \"bounds\": [";
        for (std::size_t j = 0; j < h.bounds.size(); ++j) {
            if (j)
                body += ", ";
            appendU64(body, h.bounds[j]);
        }
        body += "], \"buckets\": [";
        for (std::size_t j = 0; j < h.buckets.size(); ++j) {
            if (j)
                body += ", ";
            appendU64(body, h.buckets[j]);
        }
        body += "]}";
    }
    body += "\n},\n";

    std::string out = std::move(body);
    out += "\"digest\": \"";
    out += hexDigest64(fnv1a64(out.data(), out.size()));
    out += "\"\n}\n";
    return out;
}

std::string
MetricsRegistry::writeSnapshot(const std::string &path) const
{
    auto snapshot = snapshotJson();
    // .part + rename, like every other canonical artifact: readers
    // never observe a torn snapshot.
    auto part = path + ".part";
    writeFile(part, snapshot);
    REGATE_CHECK(std::rename(part.c_str(), path.c_str()) == 0,
                 "cannot rename ", part, " to ", path);
    return snapshot;
}

void
MetricsRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &e : counters_)
        e.value->reset();
    for (auto &e : gauges_)
        e.value->reset();
    for (auto &e : histograms_)
        e.value->reset();
}

}  // namespace obs
}  // namespace regate
