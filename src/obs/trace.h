/**
 * @file
 * obs::TraceRecorder — scoped spans and instant events emitted as
 * Chrome/Perfetto `trace_event` JSON, so a simulation run, a sweep,
 * or a whole orchestrated fleet renders as one openable timeline
 * (chrome://tracing or https://ui.perfetto.dev).
 *
 * Off by default: recording is gated on one relaxed atomic flag, so
 * binaries run without `--trace-out` pay a single predictable branch
 * per instrumentation point (and nothing at all under
 * -DREGATE_OBS_DISABLED, via the REGATE_OBS macro of obs/metrics.h).
 * With `--trace-out FILE`, events buffer in memory — a span is two
 * timestamps and a name, recorded as one complete ("ph":"X") event
 * when its scope closes — and flush() writes the whole array sorted
 * by timestamp, which keeps the output well-formed even though spans
 * complete out of start order.
 *
 * Lanes: by default an event's tid is a small stable integer per
 * OS thread (allocated on first use). Single-threaded drivers that
 * multiplex many logical lanes (the orchestrator's fleet slots) pass
 * an explicit lane instead, so every slot renders as its own row.
 *
 * Timestamps are microseconds on std::chrono::steady_clock, origin
 * at recorder start — monotone by construction, which
 * tools/trace_check.py verifies along with span nesting.
 */

#ifndef REGATE_OBS_TRACE_H
#define REGATE_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"

namespace regate {
namespace obs {

class TraceRecorder
{
  public:
    /** One "key":"value" pair rendered into an event's args. */
    using Arg = std::pair<std::string, std::string>;

    /** The process-wide recorder. */
    static TraceRecorder &instance();

    /**
     * Enable recording and remember the output path; flush() (or
     * process exit via the caller's atexit hook) writes the file.
     */
    void start(const std::string &path);

    /** Is recording enabled? One relaxed load. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since recorder start (0 when disabled). */
    std::uint64_t nowUs() const;

    /** Instant event ("ph":"i") on the calling thread's lane. */
    void instant(const std::string &name, const std::string &cat,
                 std::vector<Arg> args = {});

    /** Instant event on an explicit lane. */
    void instantLane(const std::string &name, const std::string &cat,
                     int lane, std::vector<Arg> args = {});

    /**
     * Complete span ("ph":"X") on the calling thread's lane, from
     * @p start_us (a prior nowUs()) to now.
     */
    void complete(const std::string &name, const std::string &cat,
                  std::uint64_t start_us, std::vector<Arg> args = {});

    /** Complete span on an explicit lane, explicit end time. */
    void completeLane(const std::string &name, const std::string &cat,
                      int lane, std::uint64_t start_us,
                      std::uint64_t end_us,
                      std::vector<Arg> args = {});

    /**
     * Write every buffered event (sorted by timestamp) as a JSON
     * array to the start() path and clear the buffer. Safe to call
     * when disabled (no-op) or repeatedly (rewrites the file with
     * all events recorded so far — events are retained so a crash
     * after an intermediate flush still leaves a complete file).
     */
    void flush();

    /**
     * Best-effort salvage of the buffered trace from a fatal-signal
     * handler: writes every event recorded so far to the start()
     * path using only fd writes and preallocated scratch — no
     * allocation, no blocking lock (gives up if another thread holds
     * the recorder mid-push). Without --trace-out it is a no-op.
     * This is how a partial trace survives an abnormal exit.
     */
    void crashDump();

    /** RAII span: records one complete event when it goes out of
     *  scope, and mirrors begin/end markers into the flight
     *  recorder so a crash mid-span leaves an open 'B' in the
     *  postmortem. Cheap when both recorders are disabled. */
    class Span
    {
      public:
        Span(const char *name, const char *cat)
            : name_(name), cat_(cat),
              start_(TraceRecorder::instance().enabled()
                         ? TraceRecorder::instance().nowUs()
                         : kOff),
              flight_(FlightRecorder::instance().enabled())
        {
            if (flight_)
                FlightRecorder::instance().begin(name_);
        }

        ~Span()
        {
            if (start_ != kOff)
                TraceRecorder::instance().complete(name_, cat_,
                                                   start_);
            if (flight_)
                FlightRecorder::instance().end(name_);
        }

        Span(const Span &) = delete;
        Span &operator=(const Span &) = delete;

      private:
        static constexpr std::uint64_t kOff = ~std::uint64_t{0};
        const char *name_;
        const char *cat_;
        std::uint64_t start_;
        bool flight_;
    };

  private:
    TraceRecorder() = default;

    struct Event
    {
        std::string name;
        std::string cat;
        char ph = 'i';
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        int tid = 0;
        std::vector<Arg> args;
    };

    int threadLaneLocked();
    void push(Event ev);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::string path_;
    std::uint64_t originNs_ = 0;
    std::vector<Event> events_;
    std::vector<std::uint64_t> threadLanes_;
    /** crashDump() sort scratch; push() keeps its capacity ahead of
     *  events_.size() so the handler never allocates. */
    std::vector<const Event *> crashScratch_;
};

}  // namespace obs
}  // namespace regate

#endif  // REGATE_OBS_TRACE_H
