#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/trace.h"

namespace regate {
namespace obs {

namespace {

std::uint64_t
steadyNs()
{
    // clock_gettime is async-signal-safe (POSIX), unlike the
    // std::chrono wrappers, which may not be on every libstdc++.
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

/** Bounded NUL-terminated copy (no strncpy padding cost). */
void
copyBounded(char *dst, std::size_t cap, const char *src)
{
    if (!src) {
        dst[0] = '\0';
        return;
    }
    std::size_t i = 0;
    for (; i + 1 < cap && src[i]; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

bool
validPh(char ph)
{
    return ph == 'B' || ph == 'E' || ph == 'i' || ph == 'X';
}

}  // namespace

std::uint64_t
monotonicOriginNs()
{
    // Magic-static init is NOT signal-safe; installCrashHandlers()
    // forces this pin in normal context before any handler can run.
    static const std::uint64_t origin = steadyNs();
    return origin;
}

std::uint64_t
monotonicUs()
{
    auto origin = monotonicOriginNs();
    auto now = steadyNs();
    return now > origin ? (now - origin) / 1000 : 0;
}

FlightRecorder &
FlightRecorder::instance()
{
    static FlightRecorder recorder;
    return recorder;
}

FlightRecorder::FlightRecorder()
{
    std::size_t kb = 256;
    if (const char *env = std::getenv("REGATE_FLIGHT_KB"))
        kb = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (kb == 0)
        return;  // Disabled: no rings, setEnabled(true) is a no-op.
    std::size_t total = kb * 1024 / sizeof(Event);
    if (total < static_cast<std::size_t>(kMaxRings))
        total = static_cast<std::size_t>(kMaxRings);
    ringCap_ = total / kMaxRings;
    // The whole budget is allocated up front so neither recording
    // nor the dump path ever touches the allocator.
    storage_.reset(new Event[ringCap_ * kMaxRings]());
    scratch_.reset(new const Event *[ringCap_ * kMaxRings]);
    for (int i = 0; i < kMaxRings; ++i) {
        rings_[i].events = storage_.get() + ringCap_ * i;
        rings_[i].lane = i;
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::setEnabled(bool on)
{
    auto &fr = instance();
    if (on && !fr.storage_)
        return;  // REGATE_FLIGHT_KB=0: nothing to enable.
    fr.enabled_.store(on, std::memory_order_relaxed);
}

FlightRecorder::Ring *
FlightRecorder::threadRing()
{
    thread_local Ring *ring = nullptr;
    if (ring)
        return ring;
    int idx = ringsUsed_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxRings)
        idx = kMaxRings - 1;
    ring = &rings_[idx];
    return ring;
}

void
FlightRecorder::record(char ph, const char *name, std::uint64_t ts,
                       std::uint64_t dur, int lane,
                       const char *detail)
{
    if (!enabled())
        return;
    Ring *r = threadRing();
    auto slot = r->next.fetch_add(1, std::memory_order_relaxed);
    Event &e = r->events[slot % ringCap_];
    // Clear the phase first and publish it last: a dump that lands
    // mid-record (same thread via signal, or another thread's
    // explicit dump) sees ph==0 and skips the torn slot.
    e.ph = 0;
    std::atomic_signal_fence(std::memory_order_release);
    e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    e.ts = ts;
    e.dur = dur;
    e.lane = lane >= 0 ? lane : r->lane;
    copyBounded(e.name, sizeof e.name, name);
    copyBounded(e.detail, sizeof e.detail, detail);
    std::atomic_signal_fence(std::memory_order_release);
    e.ph = ph;
}

void
FlightRecorder::instant(const char *name, const char *detail,
                        int lane)
{
    if (!enabled())
        return;
    record('i', name, monotonicUs(), 0, lane, detail);
}

void
FlightRecorder::begin(const char *name, const char *detail, int lane)
{
    if (!enabled())
        return;
    record('B', name, monotonicUs(), 0, lane, detail);
}

void
FlightRecorder::end(const char *name, int lane)
{
    if (!enabled())
        return;
    record('E', name, monotonicUs(), 0, lane, nullptr);
}

void
FlightRecorder::complete(const char *name, std::uint64_t start_us,
                         std::uint64_t end_us, const char *detail,
                         int lane)
{
    if (!enabled())
        return;
    record('X', name, start_us,
           end_us > start_us ? end_us - start_us : 0, lane, detail);
}

bool
FlightRecorder::dumpTo(int fd)
{
    if (!storage_)
        return false;
    // Collect live slots in place (no snapshot — the budget bounds
    // the scan) and sort by (ts, seq) so file order is monotone and
    // deterministic, which trace_check.py --postmortem pins.
    std::size_t n = 0;
    for (int ri = 0; ri < kMaxRings; ++ri) {
        const Ring &r = rings_[ri];
        std::uint64_t produced =
            r.next.load(std::memory_order_relaxed);
        std::size_t live = produced < ringCap_
                               ? static_cast<std::size_t>(produced)
                               : ringCap_;
        for (std::size_t i = 0; i < live; ++i)
            if (validPh(r.events[i].ph))
                scratch_[n++] = &r.events[i];
    }
    detail::signalSafeSort(
        scratch_.get(), n, [](const Event *a, const Event *b) {
            return a->ts != b->ts ? a->ts < b->ts : a->seq < b->seq;
        });

    if (!detail::writeAllFd(fd, "[\n", 2))
        return false;
    auto pid = static_cast<std::uint64_t>(::getpid());
    bool first = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Event &e = *scratch_[i];
        char buf[512];
        detail::SigsafeBuf b(buf, sizeof buf);
        if (!first)
            b.str(",\n");
        b.str("{\"name\": ");
        b.jsonStr(e.name, std::strlen(e.name));
        b.str(", \"cat\": \"flight\", \"ph\": \"");
        b.ch(e.ph);
        b.str("\", \"ts\": ");
        b.u64(e.ts);
        if (e.ph == 'X') {
            b.str(", \"dur\": ");
            b.u64(e.dur);
        }
        if (e.ph == 'i')
            b.str(", \"s\": \"t\"");
        b.str(", \"pid\": ");
        b.u64(pid);
        b.str(", \"tid\": ");
        b.u64(static_cast<std::uint64_t>(
            e.lane < 0 ? 0 : e.lane));
        if (e.detail[0]) {
            b.str(", \"args\": {\"detail\": ");
            b.jsonStr(e.detail, std::strlen(e.detail));
            b.str("}");
        }
        b.str("}");
        if (b.overflowed())
            continue;  // Drop whole records, never emit broken JSON.
        if (!detail::writeAllFd(fd, buf, b.size()))
            return false;
        first = false;
    }
    return detail::writeAllFd(fd, "\n]\n", 3);
}

bool
FlightRecorder::dump(const std::string &path)
{
    if (!storage_)
        return false;
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0)
        return false;
    bool ok = dumpTo(fd);
    ::close(fd);
    return ok;
}

void
FlightRecorder::resetForTest()
{
    if (!storage_)
        return;
    for (int i = 0; i < kMaxRings; ++i) {
        rings_[i].next.store(0, std::memory_order_relaxed);
        for (std::size_t j = 0; j < ringCap_; ++j)
            rings_[i].events[j] = Event{};
    }
    seq_.store(1, std::memory_order_relaxed);
}

namespace {

char g_crashPath[4096] = {0};
std::atomic<int> g_crashDumped{0};

extern "C" void
onFatalSignal(int sig)
{
    // One dump per process: a second fatal signal (e.g. raised by
    // the dump itself) falls straight through to the re-raise.
    if (g_crashDumped.exchange(1, std::memory_order_relaxed) == 0) {
        auto &fr = FlightRecorder::instance();
        const char *name = sig == SIGSEGV   ? "signal.SIGSEGV"
                           : sig == SIGABRT ? "signal.SIGABRT"
                           : sig == SIGTERM ? "signal.SIGTERM"
                                            : "signal";
        fr.instant(name);
        if (g_crashPath[0])
            fr.dump(g_crashPath);
        // Salvage whatever --trace-out buffered (no-op when tracing
        // is off; best-effort if another thread holds the lock).
        TraceRecorder::instance().crashDump();
    }
    struct sigaction dfl;
    std::memset(&dfl, 0, sizeof dfl);
    dfl.sa_handler = SIG_DFL;
    ::sigemptyset(&dfl.sa_mask);
    ::sigaction(sig, &dfl, nullptr);
    ::raise(sig);
}

}  // namespace

void
FlightRecorder::installCrashHandlers(const std::string &path)
{
    auto &fr = instance();      // Construct rings in normal context.
    (void)monotonicOriginNs();  // Pin the clock origin pre-signal.
    copyBounded(g_crashPath, sizeof g_crashPath, path.c_str());
    // Register the installing thread's ring and leave a marker the
    // postmortem always opens with.
    fr.instant("flight.armed", g_crashPath);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onFatalSignal;
    ::sigemptyset(&sa.sa_mask);
    for (int sig : {SIGSEGV, SIGABRT, SIGTERM})
        ::sigaction(sig, &sa, nullptr);
}

const char *
FlightRecorder::crashDumpPath()
{
    return g_crashPath;
}

namespace detail {

bool
writeAllFd(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        auto wrote = ::write(fd, data, n);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        n -= static_cast<std::size_t>(wrote);
    }
    return true;
}

void
SigsafeBuf::u64(std::uint64_t v)
{
    char digits[24];
    int n = 0;
    do {
        digits[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v > 0);
    while (n > 0)
        ch(digits[--n]);
}

void
SigsafeBuf::jsonStr(const char *s, std::size_t len,
                    std::size_t max_content)
{
    ch('"');
    if (len > max_content)
        len = max_content;
    for (std::size_t i = 0; i < len; ++i) {
        char c = s[i];
        bool plain = c >= 0x20 && c <= 0x7e && c != '"' && c != '\\';
        ch(plain ? c : '_');
    }
    ch('"');
}

}  // namespace detail

}  // namespace obs
}  // namespace regate
