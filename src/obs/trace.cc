#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "common/error.h"

namespace regate {
namespace obs {

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Minimal JSON string escaping (names/categories/arg values). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

}  // namespace

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::start(const std::string &path)
{
    REGATE_CHECK(!path.empty(), "trace output path is empty");
    {
        std::lock_guard<std::mutex> lock(mu_);
        path_ = path;
        if (originNs_ == 0)
            originNs_ = steadyNowNs();
    }
    enabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t
TraceRecorder::nowUs() const
{
    if (!enabled())
        return 0;
    std::uint64_t origin;
    {
        std::lock_guard<std::mutex> lock(mu_);
        origin = originNs_;
    }
    auto now = steadyNowNs();
    return now > origin ? (now - origin) / 1000 : 0;
}

int
TraceRecorder::threadLaneLocked()
{
    // Small stable per-thread lane ids: lane 0 is the first thread
    // seen (normally main). Explicit lanes from completeLane() use
    // the same space; the orchestrator offsets its slot lanes so
    // they read naturally (slot i -> lane i) in a single-threaded
    // driver.
    auto id = std::hash<std::thread::id>{}(
        std::this_thread::get_id());
    for (std::size_t i = 0; i < threadLanes_.size(); ++i)
        if (threadLanes_[i] == id)
            return static_cast<int>(i);
    threadLanes_.push_back(id);
    return static_cast<int>(threadLanes_.size() - 1);
}

void
TraceRecorder::push(Event ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ev.tid < 0)
        ev.tid = threadLaneLocked();
    events_.push_back(std::move(ev));
}

void
TraceRecorder::instant(const std::string &name,
                       const std::string &cat,
                       std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'i';
    ev.ts = nowUs();
    ev.tid = -1;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::instantLane(const std::string &name,
                           const std::string &cat, int lane,
                           std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'i';
    ev.ts = nowUs();
    ev.tid = lane;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::complete(const std::string &name,
                        const std::string &cat,
                        std::uint64_t start_us,
                        std::vector<Arg> args)
{
    if (!enabled())
        return;
    auto end = nowUs();
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.ts = start_us;
    ev.dur = end > start_us ? end - start_us : 0;
    ev.tid = -1;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::completeLane(const std::string &name,
                            const std::string &cat, int lane,
                            std::uint64_t start_us,
                            std::uint64_t end_us,
                            std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.ts = start_us;
    ev.dur = end_us > start_us ? end_us - start_us : 0;
    ev.tid = lane;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::flush()
{
    if (!enabled())
        return;
    std::string path;
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = path_;
        events = events_;  // Retain for later flushes.
    }
    // Sorted by timestamp so the file's event order is monotone —
    // a property tools/trace_check.py pins. stable_sort keeps
    // same-microsecond events in record order.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    std::string out;
    out.reserve(events.size() * 96 + 16);
    out += "[\n";
    auto pid = static_cast<std::uint64_t>(::getpid());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        out += "{\"name\": ";
        appendJsonString(out, ev.name);
        out += ", \"cat\": ";
        appendJsonString(out, ev.cat);
        out += ", \"ph\": \"";
        out += ev.ph;
        out += "\", \"ts\": ";
        out += std::to_string(ev.ts);
        if (ev.ph == 'X') {
            out += ", \"dur\": ";
            out += std::to_string(ev.dur);
        }
        if (ev.ph == 'i')
            out += ", \"s\": \"t\"";
        out += ", \"pid\": ";
        out += std::to_string(pid);
        out += ", \"tid\": ";
        out += std::to_string(ev.tid);
        if (!ev.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t j = 0; j < ev.args.size(); ++j) {
                if (j)
                    out += ", ";
                appendJsonString(out, ev.args[j].first);
                out += ": ";
                appendJsonString(out, ev.args[j].second);
            }
            out += "}";
        }
        out += i + 1 < events.size() ? "},\n" : "}\n";
    }
    out += "]\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    REGATE_CHECK(file.good(), "cannot write trace file ", path);
    file.write(out.data(),
               static_cast<std::streamsize>(out.size()));
    file.flush();
    REGATE_CHECK(file.good(), "short write to trace file ", path);
}

}  // namespace obs
}  // namespace regate
