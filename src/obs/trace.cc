#include "obs/trace.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <thread>

#include "common/error.h"
#include "obs/flight_recorder.h"

namespace regate {
namespace obs {

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Minimal JSON string escaping (names/categories/arg values). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

}  // namespace

TraceRecorder &
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::start(const std::string &path)
{
    REGATE_CHECK(!path.empty(), "trace output path is empty");
    {
        std::lock_guard<std::mutex> lock(mu_);
        path_ = path;
        // Share the flight recorder's origin so flight events and
        // trace events land on one timeline (pinned at whichever
        // recorder woke first).
        if (originNs_ == 0)
            originNs_ = monotonicOriginNs();
    }
    enabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t
TraceRecorder::nowUs() const
{
    if (!enabled())
        return 0;
    std::uint64_t origin;
    {
        std::lock_guard<std::mutex> lock(mu_);
        origin = originNs_;
    }
    auto now = steadyNowNs();
    return now > origin ? (now - origin) / 1000 : 0;
}

int
TraceRecorder::threadLaneLocked()
{
    // Small stable per-thread lane ids: lane 0 is the first thread
    // seen (normally main). Explicit lanes from completeLane() use
    // the same space; the orchestrator offsets its slot lanes so
    // they read naturally (slot i -> lane i) in a single-threaded
    // driver.
    auto id = std::hash<std::thread::id>{}(
        std::this_thread::get_id());
    for (std::size_t i = 0; i < threadLanes_.size(); ++i)
        if (threadLanes_[i] == id)
            return static_cast<int>(i);
    threadLanes_.push_back(id);
    return static_cast<int>(threadLanes_.size() - 1);
}

void
TraceRecorder::push(Event ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ev.tid < 0)
        ev.tid = threadLaneLocked();
    events_.push_back(std::move(ev));
    // Keep the crash-dump scratch sized here, in normal context, so
    // crashDump() never has to allocate inside a signal handler.
    if (crashScratch_.capacity() < events_.size())
        crashScratch_.reserve(events_.size() * 2);
}

void
TraceRecorder::instant(const std::string &name,
                       const std::string &cat,
                       std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'i';
    ev.ts = nowUs();
    ev.tid = -1;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::instantLane(const std::string &name,
                           const std::string &cat, int lane,
                           std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'i';
    ev.ts = nowUs();
    ev.tid = lane;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::complete(const std::string &name,
                        const std::string &cat,
                        std::uint64_t start_us,
                        std::vector<Arg> args)
{
    if (!enabled())
        return;
    auto end = nowUs();
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.ts = start_us;
    ev.dur = end > start_us ? end - start_us : 0;
    ev.tid = -1;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::completeLane(const std::string &name,
                            const std::string &cat, int lane,
                            std::uint64_t start_us,
                            std::uint64_t end_us,
                            std::vector<Arg> args)
{
    if (!enabled())
        return;
    Event ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.ts = start_us;
    ev.dur = end_us > start_us ? end_us - start_us : 0;
    ev.tid = lane;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::flush()
{
    if (!enabled())
        return;
    std::string path;
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = path_;
        events = events_;  // Retain for later flushes.
    }
    // Sorted by timestamp so the file's event order is monotone —
    // a property tools/trace_check.py pins. stable_sort keeps
    // same-microsecond events in record order.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    std::string out;
    out.reserve(events.size() * 96 + 16);
    out += "[\n";
    auto pid = static_cast<std::uint64_t>(::getpid());
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        out += "{\"name\": ";
        appendJsonString(out, ev.name);
        out += ", \"cat\": ";
        appendJsonString(out, ev.cat);
        out += ", \"ph\": \"";
        out += ev.ph;
        out += "\", \"ts\": ";
        out += std::to_string(ev.ts);
        if (ev.ph == 'X') {
            out += ", \"dur\": ";
            out += std::to_string(ev.dur);
        }
        if (ev.ph == 'i')
            out += ", \"s\": \"t\"";
        out += ", \"pid\": ";
        out += std::to_string(pid);
        out += ", \"tid\": ";
        out += std::to_string(ev.tid);
        if (!ev.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t j = 0; j < ev.args.size(); ++j) {
                if (j)
                    out += ", ";
                appendJsonString(out, ev.args[j].first);
                out += ": ";
                appendJsonString(out, ev.args[j].second);
            }
            out += "}";
        }
        out += i + 1 < events.size() ? "},\n" : "}\n";
    }
    out += "]\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    REGATE_CHECK(file.good(), "cannot write trace file ", path);
    file.write(out.data(),
               static_cast<std::streamsize>(out.size()));
    file.flush();
    REGATE_CHECK(file.good(), "short write to trace file ", path);
}

void
TraceRecorder::crashDump()
{
    if (!enabled())
        return;
    // try_lock, not lock: the fatal signal may have interrupted a
    // thread mid-push on this very mutex. Losing the partial trace
    // in that window beats deadlocking the handler.
    if (!mu_.try_lock())
        return;
    // Sort pointers in the preallocated scratch (events_ itself
    // holds std::strings — moving those could free() in a handler).
    crashScratch_.clear();
    std::size_t limit =
        std::min(events_.size(), crashScratch_.capacity());
    for (std::size_t i = 0; i < limit; ++i)
        crashScratch_.push_back(&events_[i]);
    detail::signalSafeSort(
        crashScratch_.data(), crashScratch_.size(),
        [](const Event *a, const Event *b) {
            return a->ts != b->ts ? a->ts < b->ts : a < b;
        });

    int fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0) {
        mu_.unlock();
        return;
    }
    detail::writeAllFd(fd, "[\n", 2);
    auto pid = static_cast<std::uint64_t>(::getpid());
    bool first = true;
    for (const Event *evp : crashScratch_) {
        const Event &ev = *evp;
        char buf[4096];
        detail::SigsafeBuf b(buf, sizeof buf);
        if (!first)
            b.str(",\n");
        b.str("{\"name\": ");
        b.jsonStr(ev.name.data(), ev.name.size());
        b.str(", \"cat\": ");
        b.jsonStr(ev.cat.data(), ev.cat.size());
        b.str(", \"ph\": \"");
        b.ch(ev.ph);
        b.str("\", \"ts\": ");
        b.u64(ev.ts);
        if (ev.ph == 'X') {
            b.str(", \"dur\": ");
            b.u64(ev.dur);
        }
        if (ev.ph == 'i')
            b.str(", \"s\": \"t\"");
        b.str(", \"pid\": ");
        b.u64(pid);
        b.str(", \"tid\": ");
        b.u64(static_cast<std::uint64_t>(
            ev.tid < 0 ? 0 : ev.tid));
        if (!ev.args.empty()) {
            b.str(", \"args\": {");
            for (std::size_t j = 0; j < ev.args.size(); ++j) {
                if (j)
                    b.str(", ");
                b.jsonStr(ev.args[j].first.data(),
                          ev.args[j].first.size());
                b.str(": ");
                b.jsonStr(ev.args[j].second.data(),
                          ev.args[j].second.size());
            }
            b.str("}");
        }
        b.str("}");
        if (b.overflowed())
            continue;  // Drop the record rather than break the JSON.
        if (!detail::writeAllFd(fd, buf, b.size()))
            break;
        first = false;
    }
    detail::writeAllFd(fd, "\n]\n", 3);
    ::close(fd);
    mu_.unlock();
}

}  // namespace obs
}  // namespace regate
