/**
 * @file
 * obs::MetricsRegistry — one process-wide, thread-safe registry of
 * named counters, gauges, and fixed-bucket histograms, replacing the
 * ad-hoc per-subsystem counters (cache hits/misses, run copies,
 * reconnect attempts, steal wins) with a single introspection
 * surface.
 *
 * Design goals, in order:
 *
 *  - ~zero overhead on the simulation hot path. Recording is one
 *    relaxed atomic RMW guarded by one relaxed flag load; call sites
 *    resolve their instrument once (a static reference) so steady
 *    state never touches the registry map or its mutex. Building
 *    with -DREGATE_OBS_DISABLED compiles the REGATE_OBS(...) macro —
 *    and with it every recording statement routed through it — out
 *    entirely.
 *  - dependency-free: <atomic>, <mutex>, std containers only, so
 *    every layer (common/, sim/, net/, orch/, bench/) can record
 *    without dependency cycles.
 *  - byte-stable snapshots: snapshotJson() is a canonical writer in
 *    the sim/serialize mold (fixed key order, sorted names, C-locale
 *    %.17g doubles, one entry per line, FNV-1a content digest
 *    footer), so two snapshots of equal state are equal bytes and a
 *    sweep-wide aggregate is diffable across runs.
 *
 * Instruments are created on first use and never destroyed
 * (references stay valid for the process lifetime); resetForTest()
 * zeroes every value but keeps the registrations, giving tests a
 * clean slate without invalidating cached references.
 *
 * The registry also doubles as the fleet aggregation point: the
 * orchestrator folds metric samples streamed by remote agents into
 * the same named instruments via addCounter()/recordHistogram(), so
 * the --metrics-out snapshot covers the whole sweep.
 */

#ifndef REGATE_OBS_METRICS_H
#define REGATE_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/**
 * Compile-out guard for hot-path recording statements. Wrap the
 * recording (not the instrument lookup) so a disabled build reduces
 * to nothing:
 *
 *     static auto &hits = obs::MetricsRegistry::instance()
 *                             .counter("sim.graph_cache.hits");
 *     REGATE_OBS(hits.add(1));
 */
#ifdef REGATE_OBS_DISABLED
#define REGATE_OBS(stmt) ((void)0)
#else
#define REGATE_OBS(stmt) stmt
#endif

namespace regate {
namespace obs {

namespace detail {
/** Process-wide runtime enable flag (relaxed; default on). */
inline std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{true};
    return flag;
}
}  // namespace detail

/** Is runtime recording enabled? One relaxed load. */
inline bool
recordingEnabled()
{
    return detail::enabledFlag().load(std::memory_order_relaxed);
}

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (recordingEnabled())
            v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-writer-wins signed level (queue depths, byte budgets). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (recordingEnabled())
            v_.store(v, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Fixed-bucket histogram of non-negative integer samples (durations
 * in microseconds, byte sizes). Bucket bounds are upper bounds,
 * strictly ascending; one implicit overflow bucket catches the rest.
 * count/sum are exact regardless of bucketing, so mean() is exact —
 * the straggler picker's ETA feeds on it.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<std::uint64_t> bounds);

    /** Record @p n samples of value @p v (relaxed atomics). */
    void record(std::uint64_t v, std::uint64_t n = 1);

    std::uint64_t count() const;
    std::uint64_t sum() const;

    /** Exact mean of recorded samples; 0 when empty. */
    double mean() const;

    const std::vector<std::uint64_t> &bounds() const
    {
        return bounds_;
    }

    /** Per-bucket counts, bounds-aligned plus the overflow bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Quantile estimate from the bucket counts: the upper bound of
     * the first bucket whose cumulative count reaches ceil(q*count)
     * (Prometheus-style, so p50 <= p95 <= p99 by construction and
     * the value is deterministic for equal state). Samples in the
     * overflow bucket report the largest finite bound — a lower
     * bound on the true quantile. 0 when empty.
     */
    std::uint64_t percentile(double q) const;

    void reset();

  private:
    std::vector<std::uint64_t> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Canonical duration buckets (microseconds) shared by every process
 * in a fleet, so agent-side and driver-side case-duration histograms
 * aggregate bucket-for-bucket: 100us .. 100s, decade thirds.
 */
const std::vector<std::uint64_t> &durationUsBounds();

/**
 * Histogram::percentile() on captured state — the snapshot writer
 * and status endpoint compute quantiles from the same bucket vector
 * they serialize, so the numbers in one document are consistent.
 */
std::uint64_t histogramPercentile(
    const std::vector<std::uint64_t> &bounds,
    const std::vector<std::uint64_t> &buckets, std::uint64_t count,
    double q);

class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &instance();

    /**
     * Runtime enable switch for every instrument's recording path
     * (snapshot/value reads always work). Default on.
     */
    static void setEnabled(bool on);
    static bool enabled() { return recordingEnabled(); }

    /**
     * Find-or-create by name. References remain valid forever.
     * Names are dotted identifiers ("sim.graph_cache.hits");
     * anything serializable is accepted.
     */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create; @p bounds applies on creation only (a later
     * call with different bounds returns the existing histogram
     * unchanged). Empty bounds default to durationUsBounds().
     */
    Histogram &histogram(const std::string &name,
                         std::vector<std::uint64_t> bounds = {});

    /** Fleet aggregation entry points (find-or-create by name). */
    void addCounter(const std::string &name, std::uint64_t delta);
    void recordHistogram(const std::string &name, std::uint64_t value,
                         std::uint64_t n = 1);

    /**
     * Every counter's (name, value), sorted by name. The agent's
     * delta streamer diffs two of these to report only what moved.
     */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /**
     * Canonical-JSON snapshot of every instrument (see file
     * comment). Byte-stable: equal registry state serializes to
     * equal bytes, with a FNV-1a digest footer over the body.
     */
    std::string snapshotJson() const;

    /**
     * Write snapshotJson() to @p path atomically (.part + rename) —
     * the canonical writer shared by `regate_orch --metrics-out`
     * and every grid binary's `--metrics-out`. Returns the snapshot
     * that was written (for digest reporting). Throws ConfigError
     * when the file cannot be written.
     */
    std::string writeSnapshot(const std::string &path) const;

    /**
     * Zero every instrument but keep registrations (and thus every
     * cached reference) alive. For tests — between-case counter
     * bleed was the bug this replaces.
     */
    void resetForTest();

  private:
    MetricsRegistry() = default;

    template <typename T>
    struct Named
    {
        std::string name;
        std::unique_ptr<T> value;
    };

    mutable std::mutex mu_;
    std::vector<Named<Counter>> counters_;
    std::vector<Named<Gauge>> gauges_;
    std::vector<Named<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace regate

#endif  // REGATE_OBS_METRICS_H
