/**
 * @file
 * obs::FlightRecorder — the always-on half of the telemetry stack:
 * bounded per-thread ring buffers of recent events with an
 * async-signal-safe dump path, so a crash, a stall, or a killed
 * speculative twin leaves a postmortem timeline
 * (`<out>.postmortem.json`, Chrome trace-event JSON) instead of
 * nothing.
 *
 * Contrast with obs::TraceRecorder: the trace recorder is opt-in
 * (`--trace-out`), unbounded, and flushes through ofstream at
 * orderly shutdown; the flight recorder is on by default, holds only
 * the last `REGATE_FLIGHT_KB` kilobytes of events (default 256, 0
 * disables), and can write its buffer from a fatal-signal handler
 * using nothing but write(2).
 *
 * Recording is lock-free: each thread claims one of a fixed pool of
 * rings on first use (a single relaxed fetch_add; threads beyond the
 * pool share the last ring, where slot claims stay atomic), and an
 * event is a fixed-size POD slot — no allocation, no locks, one
 * clock read. A slot's phase byte is cleared before the body is
 * written and published last, so a dump that interrupts a record in
 * progress skips the torn slot instead of emitting garbage.
 *
 * Timestamps are microseconds on a process-wide steady-clock origin
 * (`obs::monotonicUs()`); TraceRecorder shares the same origin, so
 * flight events and trace events line up on one timeline. Dumps are
 * sorted by (timestamp, global sequence) with an alloc-free
 * heapsort, so file order is monotone — `tools/trace_check.py
 * --postmortem` pins that, while accepting the open 'B' spans a
 * crash mid-span leaves behind.
 *
 * installCrashHandlers() wires SIGSEGV/SIGABRT/SIGTERM to: record a
 * `signal.*` instant, dump the rings, salvage the partial
 * `--trace-out` buffer (TraceRecorder::crashDump), then re-raise
 * with the default disposition so the process still dies with the
 * real signal status (the orchestrator's waitpid classification and
 * ASan's own reporting are unaffected).
 */

#ifndef REGATE_OBS_FLIGHT_RECORDER_H
#define REGATE_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace regate {
namespace obs {

/**
 * Nanosecond steady-clock origin shared by the flight and trace
 * recorders, pinned on first call. Callers that may run inside a
 * signal handler must have forced the pin earlier in normal context
 * (installCrashHandlers does).
 */
std::uint64_t monotonicOriginNs();

/** Microseconds since the process-wide monotonic origin. */
std::uint64_t monotonicUs();

class FlightRecorder
{
  public:
    /** Fixed per-event name capacity (NUL-terminated, truncating). */
    static constexpr std::size_t kNameBytes = 48;
    /** Fixed per-event free-text detail capacity. */
    static constexpr std::size_t kDetailBytes = 56;

    /** One ring slot. POD on purpose: recorded with stores and
     *  memcpy only, validated (not trusted) at dump time. */
    struct Event
    {
        std::uint64_t seq = 0;  ///< Global record order (ts tie-break).
        std::uint64_t ts = 0;   ///< monotonicUs() at record time.
        std::uint64_t dur = 0;  ///< 'X' events only.
        std::int32_t lane = 0;  ///< Rendered as tid.
        char ph = 0;            ///< 'B','E','i','X'; 0 = empty/torn.
        char name[kNameBytes] = {};
        char detail[kDetailBytes] = {};
    };

    /** The process-wide recorder (rings allocated on first use). */
    static FlightRecorder &instance();

    /** Is recording enabled? One relaxed load. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Runtime toggle (the overhead benchmark alternates it). Cannot
     * enable a recorder built with REGATE_FLIGHT_KB=0 — there are no
     * rings to write into.
     */
    static void setEnabled(bool on);

    /** Microseconds on the shared monotonic clock. */
    std::uint64_t
    nowUs() const
    {
        return monotonicUs();
    }

    /** Instant event; lane < 0 means the calling thread's ring lane. */
    void instant(const char *name, const char *detail = nullptr,
                 int lane = -1);

    /** Open a span ('B'); a crash before end() leaves it open, which
     *  postmortem mode accepts. */
    void begin(const char *name, const char *detail = nullptr,
               int lane = -1);

    /** Close the innermost open span of this name/lane ('E'). */
    void end(const char *name, int lane = -1);

    /** Complete span ('X') with explicit endpoints (monotonicUs). */
    void complete(const char *name, std::uint64_t start_us,
                  std::uint64_t end_us, const char *detail = nullptr,
                  int lane = -1);

    /**
     * Write every live ring slot as a Chrome trace-event JSON array
     * to @p fd, sorted by (ts, seq). Async-signal-safe: no
     * allocation, no locks, write(2) only. Returns false when the
     * recorder has no rings (REGATE_FLIGHT_KB=0).
     */
    bool dumpTo(int fd);

    /** Open @p path (truncating) and dumpTo() it. Same safe path;
     *  usable from normal context or a handler. */
    bool dump(const std::string &path);

    /**
     * Install SIGSEGV/SIGABRT/SIGTERM handlers that dump the rings
     * to @p path, salvage the partial trace buffer, and re-raise.
     * Also pins the clock origin and forces ring allocation so the
     * handler itself never initializes anything.
     */
    static void installCrashHandlers(const std::string &path);

    /** The path handlers dump to ("" when none installed). */
    static const char *crashDumpPath();

    /** Drop all recorded events (single-threaded tests only). */
    void resetForTest();

  private:
    FlightRecorder();

    /** Threads beyond the pool share the last ring; slot claims are
     *  a fetch_add either way, so sharing stays lock-free. */
    static constexpr int kMaxRings = 16;

    struct Ring
    {
        std::atomic<std::uint64_t> next{0};  ///< Slots ever claimed.
        Event *events = nullptr;             ///< ringCap_ slots.
        std::int32_t lane = 0;
    };

    Ring *threadRing();
    void record(char ph, const char *name, std::uint64_t ts,
                std::uint64_t dur, int lane, const char *detail);

    std::atomic<bool> enabled_{false};
    std::size_t ringCap_ = 0;  ///< Events per ring.
    std::unique_ptr<Event[]> storage_;
    /** Dump-time sort scratch (kMaxRings * ringCap_ pointers),
     *  preallocated so the handler never allocates. */
    std::unique_ptr<const Event *[]> scratch_;
    Ring rings_[kMaxRings];
    std::atomic<int> ringsUsed_{0};
    std::atomic<std::uint64_t> seq_{1};
};

namespace detail {

/** write(2) everything, retrying on EINTR/short writes. */
bool writeAllFd(int fd, const char *data, std::size_t n);

/**
 * Bounded append-only formatter for signal-handler use: fixed
 * caller-owned buffer, no allocation. If the buffer fills, the
 * overflow flag is set and the caller drops the whole record rather
 * than emitting truncated (malformed) JSON.
 */
class SigsafeBuf
{
  public:
    SigsafeBuf(char *buf, std::size_t cap)
        : base_(buf), p_(buf), end_(buf + cap)
    {}

    std::size_t size() const { return static_cast<std::size_t>(p_ - base_); }
    bool overflowed() const { return overflow_; }

    void
    ch(char c)
    {
        if (p_ < end_)
            *p_++ = c;
        else
            overflow_ = true;
    }

    void
    str(const char *s)
    {
        while (*s)
            ch(*s++);
    }

    void u64(std::uint64_t v);

    /**
     * Quoted JSON string, conservatively sanitized: bytes outside
     * printable ASCII (or needing escapes) become '_', so the output
     * parses without any escape machinery. Content is capped at
     * @p max_content bytes.
     */
    void jsonStr(const char *s, std::size_t len,
                 std::size_t max_content = 200);

  private:
    char *base_;
    char *p_;
    char *end_;
    bool overflow_ = false;
};

/**
 * Alloc-free heapsort (async-signal-safe) of @p ptrs[0..n) by
 * @p less. Not stable — callers break ties inside the comparator.
 */
template <typename T, typename Less>
void
signalSafeSort(T *ptrs, std::size_t n, Less less)
{
    auto sift = [&](std::size_t root, std::size_t limit) {
        for (;;) {
            std::size_t child = 2 * root + 1;
            if (child >= limit)
                return;
            if (child + 1 < limit && less(ptrs[child], ptrs[child + 1]))
                ++child;
            if (!less(ptrs[root], ptrs[child]))
                return;
            T tmp = ptrs[root];
            ptrs[root] = ptrs[child];
            ptrs[child] = tmp;
            root = child;
        }
    };
    if (n < 2)
        return;
    for (std::size_t i = n / 2; i-- > 0;)
        sift(i, n);
    for (std::size_t i = n - 1; i > 0; --i) {
        T tmp = ptrs[0];
        ptrs[0] = ptrs[i];
        ptrs[i] = tmp;
        sift(0, i);
    }
}

}  // namespace detail

}  // namespace obs
}  // namespace regate

#endif  // REGATE_OBS_FLIGHT_RECORDER_H
