/**
 * @file
 * The sweep orchestrator: one process that owns the whole
 * split-run-merge lifecycle of a grid-shaped figure/table binary,
 * across a *fleet* of worker slots.
 *
 * Where the PR 3 workflow was launch-by-hand (a human picks
 * `--shard i/N` per machine, babysits failures, runs
 * tools/merge_shards.py at the end), the orchestrator
 *
 *  - queries the target's grid size (`BIN --cases`) and splits it
 *    into more shards than the fleet has slots (orch/planner.h), so
 *    stragglers don't dominate the wall clock;
 *  - drives every slot through the net/transport.h abstraction:
 *    `--workers N` local subprocess slots (net::LocalTransport over
 *    orch::ProcessPool) and any number of `--host host:port[:slots]`
 *    remote agents (net::TcpTransport speaking the
 *    net/agent_protocol.h framing to `regate_agent`), all fed from
 *    ONE dynamic shard queue with per-case heartbeat tracking,
 *    stall-based timeouts, crash/disconnect detection, and bounded
 *    retry with reassignment to a different slot (orch/retry.h) —
 *    an agent lost mid-run fails its in-flight shards elsewhere,
 *    exactly like a killed subprocess, while the connection
 *    re-dials with backoff (net::ReconnectingTransport) and its
 *    slots re-enter the scheduler on success;
 *  - is elastic and admission-controlled: `--join-port` accepts
 *    `regate_agent --join` dial-ins mid-sweep (slots enter the
 *    queue immediately), hellos are HMAC-authenticated when a
 *    shared secret is configured, and `--max-speculative` steals
 *    straggling tail shards onto idle slots (first completion
 *    wins);
 *  - validates every artifact as it lands — the worker-reported
 *    whole-file digest travels with the artifact across transports
 *    and is re-verified against the exact bytes the driver received
 *    (common/hash.h fnv1a64), then the format's own entry/file
 *    digests run inside the merger (orch/streaming_merge.h); only
 *    validated content is promoted to a checkpoint, atomically;
 *  - checkpoints: an interrupted run (even SIGKILL of the
 *    orchestrator itself) resumes with --resume, reusing every
 *    validated shard file on disk and re-running only the missing
 *    ones — remote shards checkpoint on the driver, so resume is
 *    fleet-composition-agnostic;
 *  - writes a merged document byte-identical to the unsharded
 *    binary's `--shard 0/1` output, and optionally re-renders the
 *    figure from it (`--render`), byte-identical to an unsharded
 *    run.
 *
 * Failure injection (the `inject*` options) exists for the
 * failure-path tests and the CI end-to-end jobs; it exercises the
 * real kill/stall/retry machinery, not a simulation of it.
 */

#ifndef REGATE_ORCH_ORCHESTRATOR_H
#define REGATE_ORCH_ORCHESTRATOR_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "orch/retry.h"

namespace regate {
namespace orch {

/** One `--host host:port[:slots]` fleet member. */
struct HostSpec
{
    std::string host;
    std::uint16_t port = 0;
    /** Slot cap; 0 = take what the agent's hello advertises. */
    int slots = 0;
};

struct OrchOptions
{
    std::string bin;   ///< Grid-shaped figure/table binary.
    std::string dir;   ///< Run directory (shards, plan, merged).
    int workers = 4;   ///< Local slots; 0 = remote-only fleet.
    std::vector<HostSpec> hosts;  ///< Remote agents.
    int granularity = 4;  ///< Shards per fleet slot.

    /**
     * Stall timeout: an attempt with no progress for this long is
     * killed and retried. Progress = the spawn itself, then one
     * per-case heartbeat line as each case completes — so the
     * timeout must exceed the slowest single grid case (a case
     * computing past it is indistinguishable from a wedged
     * worker). This is the primary timeout — a straggling-but-alive
     * shard keeps heartbeating and is left alone. The default
     * matches the old wall-clock default, so no grid that completed
     * per-attempt under PR 4 defaults stalls out now. 0 disables.
     */
    double stallTimeoutSec = 600;
    /** Optional wall-clock hard cap per attempt; 0 disables. */
    double timeoutSec = 0;

    RetryPolicy retry;
    bool resume = false;
    std::string mergedOut;  ///< Default: <dir>/merged.json.
    bool render = false;    ///< Forward `BIN --from merged` stdout.

    /**
     * Elastic membership: listen for `regate_agent --join` dial-ins
     * on this port (0 = ephemeral; the bound port is announced as a
     * `join: listening on port N` event for scripts). -1 disables.
     * Joiners are handshaked/authenticated like --host agents; a
     * rejected joiner (wrong secret, wrong binary) costs an event
     * line, never the sweep.
     */
    int joinPort = -1;
    /**
     * Shared fleet secret file for the v2 authenticated hello
     * (net/agent_protocol.h); empty falls back to the
     * REGATE_FLEET_SECRET environment variable, and neither set
     * runs the plaintext v1 handshake with an explicit banner.
     */
    std::string secretFile;
    /**
     * Work-stealing bound: when the queue drains but slots idle,
     * up to this many speculative duplicate attempts of the
     * slowest in-flight shards run concurrently (first completion
     * wins, the loser is killed). 0 disables.
     */
    int maxSpeculative = 0;
    /**
     * Re-dials per outage before a lost --host agent is retired
     * for good (capped exponential backoff between attempts).
     * 0 restores the old behavior: one loss retires the agent.
     */
    int reconnectTries = 8;

    /// Test hooks: SIGKILL the first worker spawned on this slot.
    int injectKillSlot = -1;
    /// Test hooks: stall this shard's first attempt (no heartbeats)
    /// past the stall timeout.
    int injectStallShard = -1;
    /// Stall length for the hooks; 0 derives one.
    int stallSeconds = 0;
    /// Test hooks: slow this shard's cases without stalling it —
    /// heartbeats keep flowing, so it must NOT be killed.
    int injectSlowShard = -1;
    /// Per-case delay for the slow hook (seconds).
    int slowCaseSeconds = 0;

    /**
     * Scenario spec file (`--spec`): every worker in the fleet —
     * local subprocess or remote agent — runs the spec's grid
     * instead of the binary's default, and the file's content
     * digest joins the hello/probe capability cross-check, so a
     * fleet can never merge results of mismatched spec files.
     * Empty = enum grid.
     */
    std::string specFile;

    /**
     * The bin's grid size, when the caller already probed it
     * (regate_orch probes in main() so a non-protocol binary is a
     * usage error). 0 = run the `--cases` probe here.
     */
    std::size_t probedCases = 0;

    /**
     * Trace-event timeline output (`--trace-out`): the whole
     * sweep's shard lifecycle — assign, heartbeat-driven spans per
     * fleet slot, steals, retries, losses — as Chrome/Perfetto JSON
     * (obs/trace.h). Empty = tracing off.
     */
    std::string traceOut;

    /**
     * Sweep-wide metrics snapshot output (`--metrics-out`): the
     * canonical-JSON obs::MetricsRegistry snapshot, written next to
     * the merged document after the sweep. It aggregates the
     * driver's own instruments with every metric sample streamed by
     * fleet agents (per-case duration histograms, counter deltas).
     * Empty = no snapshot.
     */
    std::string metricsOut;

    /**
     * Live status endpoint (`--status-port`): serve a canonical
     * JSON snapshot of the running sweep — shards in flight,
     * per-slot heartbeat age, attempt/steal/retry counts,
     * p50/p95/p99 of fleet.case_duration_us, ETA — one request per
     * connection (see net/agent_protocol.h `status`). 0 = ephemeral
     * (the bound port is announced as a `status: listening on port
     * N` event); -1 disables.
     */
    int statusPort = -1;

    /// Event sink ("orch: ..." lines); null = silent.
    std::ostream *events = nullptr;
};

/** Run one orchestration; returns a process exit code (0 = ok). */
int runOrchestration(const OrchOptions &options);

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_ORCHESTRATOR_H
