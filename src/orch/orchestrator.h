/**
 * @file
 * The sweep orchestrator: one process that owns the whole
 * split-run-merge lifecycle of a grid-shaped figure/table binary.
 *
 * Where the PR 3 workflow was launch-by-hand (a human picks
 * `--shard i/N` per machine, babysits failures, runs
 * tools/merge_shards.py at the end), the orchestrator
 *
 *  - queries the target's grid size (`BIN --cases`) and splits it
 *    into more shards than worker slots (orch/planner.h), so
 *    stragglers don't dominate the wall clock;
 *  - drives a pool of `BIN --worker --shard i/M --out ...`
 *    subprocesses with dynamic assignment, per-shard timeouts,
 *    crash detection via exit status, and bounded retry with
 *    reassignment to a different slot (orch/retry.h);
 *  - validates every artifact as it lands — worker-reported
 *    whole-file digest against the bytes on disk, then the format's
 *    own entry/file digests — and streams it into the merger
 *    (orch/streaming_merge.h); only validated files are promoted to
 *    their checkpoint name, atomically;
 *  - checkpoints: an interrupted run (even SIGKILL of the
 *    orchestrator itself) resumes with --resume, reusing every
 *    validated shard file on disk and re-running only the missing
 *    ones;
 *  - writes a merged document byte-identical to the unsharded
 *    binary's `--shard 0/1` output, and optionally re-renders the
 *    figure from it (`--render`), byte-identical to an unsharded
 *    run.
 *
 * Failure injection (the `inject*` options) exists for the
 * failure-path tests and the CI end-to-end job; it exercises the
 * real kill/timeout/retry machinery, not a simulation of it.
 */

#ifndef REGATE_ORCH_ORCHESTRATOR_H
#define REGATE_ORCH_ORCHESTRATOR_H

#include <iosfwd>
#include <string>

#include "orch/retry.h"

namespace regate {
namespace orch {

struct OrchOptions
{
    std::string bin;   ///< Grid-shaped figure/table binary.
    std::string dir;   ///< Run directory (shards, plan, merged).
    int workers = 4;
    int granularity = 4;      ///< Shards per worker slot.
    double timeoutSec = 600;  ///< Per-attempt; 0 disables.
    RetryPolicy retry;
    bool resume = false;
    std::string mergedOut;  ///< Default: <dir>/merged.json.
    bool render = false;    ///< Forward `BIN --from merged` stdout.

    /// Test hooks: SIGKILL the first worker spawned on this slot.
    int injectKillSlot = -1;
    /// Test hooks: stall this shard's first attempt past the timeout.
    int injectStallShard = -1;
    /// Stall length for the hooks; 0 derives one from the timeout.
    int stallSeconds = 0;

    /// Event sink ("orch: ..." lines); null = silent.
    std::ostream *events = nullptr;
};

/** Run one orchestration; returns a process exit code (0 = ok). */
int runOrchestration(const OrchOptions &options);

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_ORCHESTRATOR_H
