#include "orch/planner.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace regate {
namespace orch {

int
planShardCount(std::size_t cases, int workers, int granularity)
{
    REGATE_CHECK(workers > 0, "worker count must be positive, got ",
                 workers);
    REGATE_CHECK(granularity > 0,
                 "granularity must be positive, got ", granularity);
    auto want = static_cast<std::size_t>(workers) *
                static_cast<std::size_t>(granularity);
    return static_cast<int>(std::max<std::size_t>(
        1, std::min(cases, want)));
}

std::string
planToText(const OrchPlan &plan)
{
    std::ostringstream os;
    os << "regate-orch-plan v1\n"
       << "bin=" << plan.bin << "\n"
       << "cases=" << plan.cases << "\n"
       << "shards=" << plan.shards << "\n";
    return os.str();
}

OrchPlan
planFromText(const std::string &text)
{
    std::istringstream is(text);
    std::string header;
    std::getline(is, header);
    REGATE_CHECK(header == "regate-orch-plan v1",
                 "not a regate orchestrator plan file (header \"",
                 header, "\")");
    OrchPlan plan;
    bool have_bin = false, have_cases = false, have_shards = false;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        auto eq = line.find('=');
        REGATE_CHECK(eq != std::string::npos,
                     "malformed plan line \"", line, "\"");
        auto key = line.substr(0, eq);
        auto value = line.substr(eq + 1);
        // Full-match numeric parse: "123garbage" is corruption,
        // not the number 123.
        auto parseNum = [&](auto parse) {
            std::size_t used = 0;
            auto v = parse(value, &used);
            REGATE_CHECK(!value.empty() && used == value.size(),
                         "malformed plan value \"", line, "\"");
            return v;
        };
        try {
            if (key == "bin") {
                plan.bin = value;
                have_bin = true;
            } else if (key == "cases") {
                plan.cases = parseNum([](const std::string &s,
                                         std::size_t *used) {
                    return std::stoull(s, used);
                });
                have_cases = true;
            } else if (key == "shards") {
                plan.shards = parseNum([](const std::string &s,
                                          std::size_t *used) {
                    return std::stoi(s, used);
                });
                have_shards = true;
            } else {
                throw ConfigError("unknown plan key \"" + key +
                                  "\"");
            }
        } catch (const std::logic_error &) {
            throw ConfigError("malformed plan value \"" + line +
                              "\"");
        }
    }
    REGATE_CHECK(have_bin && have_cases && have_shards,
                 "plan file is missing bin=, cases=, or shards=");
    REGATE_CHECK(plan.shards > 0, "plan shard count must be "
                 "positive, got ", plan.shards);
    return plan;
}

std::string
planFileName()
{
    return "orch.plan";
}

std::string
shardFileName(int index)
{
    return "shard_" + std::to_string(index) + ".json";
}

std::string
attemptFileName(int index, long orch_pid, int serial)
{
    // ".part" suffix, not ".json": a stale attempt file (killed
    // orchestrator, late orphan write) must never match the
    // documented `shard_*.json` globs (merge_shards.py --check,
    // the CI orch-e2e job) that operate on run directories.
    return "shard_" + std::to_string(index) + "." +
           std::to_string(orch_pid) + "." + std::to_string(serial) +
           ".part";
}

}  // namespace orch
}  // namespace regate
