/**
 * @file
 * Worker subprocess management for the orchestrator: spawn a bench
 * binary with its stdout+stderr redirected to a per-attempt log
 * file (the worker handshake lines are read back from there), reap
 * exits without blocking, and kill stragglers. POSIX only, like the
 * rest of the sharded-sweep tooling.
 */

#ifndef REGATE_ORCH_PROCESS_POOL_H
#define REGATE_ORCH_PROCESS_POOL_H

#include <sys/types.h>

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace regate {
namespace orch {

class ProcessPool
{
  public:
    struct Exit
    {
        pid_t pid = -1;
        int rawStatus = 0;  ///< waitpid status, see describeStatus.
    };

    ~ProcessPool();  ///< SIGKILLs and reaps anything still running.

    /**
     * Fork+exec @p argv (argv[0] is the binary path; no shell) with
     * @p extra_env appended to the environment and stdout+stderr
     * appended to @p log_path. Throws ConfigError if the process
     * cannot be created; a failed exec surfaces as exit 127.
     */
    pid_t spawn(
        const std::vector<std::string> &argv,
        const std::vector<std::pair<std::string, std::string>>
            &extra_env,
        const std::string &log_path);

    /**
     * Reap every child that has exited, without blocking. This is
     * the only way exits surface — there is deliberately no
     * blocking wait(), so a pool user cannot stall the
     * single-threaded driver loops built on top of it.
     */
    std::vector<Exit> poll();

    /** Send @p sig (default SIGKILL) to a live child. */
    void kill(pid_t pid, int sig = 9);

    /** Did the status come from exit(0)? */
    static bool exitedCleanly(int raw_status);

    /** "exit 3" / "signal 9 (killed)" — for event lines. */
    static std::string describeStatus(int raw_status);

    /**
     * Run @p argv to completion with stdout captured into @p out
     * (stderr passes through). Returns the exit code, or -1 when
     * the child died from a signal. Used for the `--cases` planning
     * query and the `--render` forwarding step.
     */
    static int runCapture(const std::vector<std::string> &argv,
                          std::string &out);

  private:
    std::unordered_set<pid_t> live_;
};

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_PROCESS_POOL_H
