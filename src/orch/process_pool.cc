#include "orch/process_pool.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace regate {
namespace orch {

namespace {

/** argv/env marshalling for execv (valid until the vectors move). */
std::vector<char *>
pointerVector(std::vector<std::string> &strings)
{
    std::vector<char *> ptrs;
    ptrs.reserve(strings.size() + 1);
    for (auto &s : strings)
        ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    return ptrs;
}

}  // namespace

ProcessPool::~ProcessPool()
{
    for (pid_t pid : live_)
        ::kill(pid, SIGKILL);
    for (pid_t pid : live_) {
        int status = 0;
        while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
    }
}

pid_t
ProcessPool::spawn(
    const std::vector<std::string> &argv,
    const std::vector<std::pair<std::string, std::string>> &extra_env,
    const std::string &log_path)
{
    REGATE_CHECK(!argv.empty(), "spawn needs a binary to run");
    pid_t pid = fork();
    REGATE_CHECK(pid >= 0, "fork failed: ", std::strerror(errno));
    if (pid == 0) {
        // Child. Only async-signal-safe calls until exec (the
        // parent is single-threaded, so this is belt and braces).
        int fd = open(log_path.c_str(),
                      O_CREAT | O_WRONLY | O_APPEND, 0644);
        if (fd < 0) {
            // Never run the worker with the orchestrator's stdio:
            // its output would pollute --render stdout and the
            // handshake would be unreadable. Exit 126 makes this a
            // clean failed attempt instead.
            _exit(126);
        }
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO)
            close(fd);
        for (const auto &[key, value] : extra_env)
            setenv(key.c_str(), value.c_str(), 1);
        auto args = argv;  // child-private copy for execv
        auto ptrs = pointerVector(args);
        execv(args[0].c_str(), ptrs.data());
        _exit(127);
    }
    live_.insert(pid);
    return pid;
}

std::vector<ProcessPool::Exit>
ProcessPool::poll()
{
    std::vector<Exit> exits;
    for (auto it = live_.begin(); it != live_.end();) {
        int status = 0;
        pid_t r = waitpid(*it, &status, WNOHANG);
        if (r == *it) {
            exits.push_back({*it, status});
            it = live_.erase(it);
        } else {
            ++it;
        }
    }
    return exits;
}

void
ProcessPool::kill(pid_t pid, int sig)
{
    if (live_.count(pid))
        ::kill(pid, sig);
}

bool
ProcessPool::exitedCleanly(int raw_status)
{
    return WIFEXITED(raw_status) && WEXITSTATUS(raw_status) == 0;
}

std::string
ProcessPool::describeStatus(int raw_status)
{
    if (WIFEXITED(raw_status))
        return "exit " + std::to_string(WEXITSTATUS(raw_status));
    if (WIFSIGNALED(raw_status)) {
        int sig = WTERMSIG(raw_status);
        const char *name = strsignal(sig);
        return "signal " + std::to_string(sig) + " (" +
               (name ? name : "?") + ")";
    }
    return "status " + std::to_string(raw_status);
}

int
ProcessPool::runCapture(const std::vector<std::string> &argv,
                        std::string &out)
{
    REGATE_CHECK(!argv.empty(), "runCapture needs a binary to run");
    int fds[2];
    REGATE_CHECK(pipe(fds) == 0, "pipe failed: ",
                 std::strerror(errno));
    pid_t pid = fork();
    REGATE_CHECK(pid >= 0, "fork failed: ", std::strerror(errno));
    if (pid == 0) {
        close(fds[0]);
        dup2(fds[1], STDOUT_FILENO);
        if (fds[1] > STDERR_FILENO)
            close(fds[1]);
        auto args = argv;
        auto ptrs = pointerVector(args);
        execv(args[0].c_str(), ptrs.data());
        _exit(127);
    }
    close(fds[1]);
    out.clear();
    char buf[4096];
    for (;;) {
        ssize_t n = read(fds[0], buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
            break;
        } else if (errno != EINTR) {
            break;
        }
    }
    close(fds[0]);
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
}

}  // namespace orch
}  // namespace regate
