#include "orch/probe.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "orch/process_pool.h"

namespace regate {
namespace orch {

std::size_t
probeGridCases(const std::string &bin,
               const std::string &spec_path)
{
    REGATE_CHECK(::access(bin.c_str(), X_OK) == 0, bin,
                 " is not an executable binary");
    std::vector<std::string> cmd = {bin};
    if (!spec_path.empty()) {
        cmd.emplace_back("--spec");
        cmd.push_back(spec_path);
    }
    cmd.emplace_back("--cases");
    std::string out;
    int code = ProcessPool::runCapture(cmd, out);
    REGATE_CHECK(code == 0, bin, " --cases exited with code ", code,
                 " — it does not speak the shard worker protocol; "
                 "pick a grid-shaped figure/table binary (fig15 and "
                 "tables 2/3 have no sweep grid)");
    // Strict parse: the query must print one bare case count
    // (surrounding whitespace only). A binary without a sweep grid
    // renders its figure instead, which fails here with a usable
    // message — as does an absurd out-of-range count.
    auto is_space = [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    };
    auto begin = std::find_if_not(out.begin(), out.end(), is_space);
    auto end =
        std::find_if_not(out.rbegin(), out.rend(), is_space).base();
    std::string trimmed(begin, begin < end ? end : begin);
    REGATE_CHECK(!trimmed.empty() &&
                     trimmed.find_first_not_of("0123456789") ==
                         std::string::npos,
                 bin, " --cases did not report a case count — is it "
                 "a grid-shaped figure/table binary?");
    try {
        return std::stoull(trimmed);
    } catch (const std::out_of_range &) {
        throw ConfigError(bin + " --cases reported '" + trimmed +
                          "', which is not a usable case count");
    }
}

}  // namespace orch
}  // namespace regate
