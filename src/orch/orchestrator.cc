#include "orch/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "models/spec.h"
#include "net/agent_protocol.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orch/fs.h"
#include "orch/planner.h"
#include "orch/probe.h"
#include "orch/process_pool.h"
#include "orch/streaming_merge.h"
#include "sim/serialize.h"

namespace regate {
namespace orch {

namespace {

using Clock = std::chrono::steady_clock;

/** How long a killed attempt may take to settle before its
 *  transport is declared wedged and abandoned. */
constexpr double kKillGraceSec = 30;

std::string
fmtSeconds(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", s);
    return buf;
}

/**
 * Quoted JSON string for the status snapshot. The values here are
 * the driver's own (slot names, "k/n" progress) — no quotes or
 * control bytes in practice — so conservative sanitization beats a
 * full escaper: the document stays canonical either way.
 */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\' ||
            static_cast<unsigned char>(c) < 0x20)
            out += '_';
        else
            out += c;
    }
    out += '"';
}

class Orchestrator
{
  public:
    explicit Orchestrator(const OrchOptions &options)
        : opt_(options),
          mergedOut_(options.mergedOut.empty()
                         ? options.dir + "/merged.json"
                         : options.mergedOut)
    {}

    int run();

  private:
    /** One schedulable fleet slot = (transport, transport slot). */
    struct FleetSlot
    {
        net::SlotTransport *transport = nullptr;
        int local = 0;        ///< Slot id within the transport.
        std::string name;     ///< "local#0", "host:port#1".
        bool alive = true;
        bool busy = false;
        int shard = -1;
        int attempt = 0;
        bool speculative = false;  ///< A work-stealing duplicate.
        Clock::time_point started;
        Clock::time_point lastProgress;
        Clock::time_point killDeadline;  ///< Settle-by after a kill.
        std::string progressDetail;  ///< Last heartbeat ("k/n").
        std::string killedReason;    ///< Why the driver killed it.
        std::uint64_t traceStartUs = 0;  ///< Attempt span start.
        /** Attempt span start on the flight-recorder timeline
         *  (recorded whenever the flight recorder is enabled, which
         *  is independent of --trace-out). */
        std::uint64_t flightStartUs = 0;
    };

    void
    event(const std::string &line)
    {
        if (opt_.events)
            *opt_.events << "orch: " << line << "\n" << std::flush;
    }

    std::string path(const std::string &name) const
    {
        return opt_.dir + "/" + name;
    }

    std::string
    tagOf(const FleetSlot &slot) const
    {
        return "shard " + std::to_string(slot.shard) + " attempt " +
               std::to_string(slot.attempt);
    }

    /**
     * Lane for a fleet slot on the trace timeline. Lane 0 belongs
     * to the driver's own thread (auto-assigned by the recorder);
     * every slot renders one row above it.
     */
    static int
    laneOf(int gid)
    {
        return gid + 1;
    }

    /**
     * Fold one streamed (or locally synthesized) metric sample into
     * the registry under the fleet prefix — ONE path for every
     * transport, so nothing is double-counted. Histogram samples
     * arrive as batches (value = sum over count observations);
     * recording the per-observation mean keeps the count exact,
     * which is what the sweep acceptance checks and the ETA picker
     * consume.
     */
    void
    aggregateMetric(const net::TransportEvent &ev)
    {
        auto &reg = obs::MetricsRegistry::instance();
        if (ev.metricKind == 'h') {
            auto count = ev.metricCount ? ev.metricCount : 1;
            reg.recordHistogram("fleet." + ev.metricName,
                                ev.metricValue / count, count);
        } else {
            reg.addCounter("fleet." + ev.metricName,
                           ev.metricValue);
        }
    }

    void buildFleet(std::size_t cases);
    OrchPlan loadOrCreatePlan(std::size_t cases);
    std::vector<int> scanCheckpoints(StreamingMerger &merger);
    /** Returns false on a terminal failure. */
    bool driveFleet(const std::vector<int> &missing,
                    StreamingMerger &merger);
    void spawnShard(FleetSlot &slot, int gid, int shard);
    bool settleFinished(FleetSlot &slot, int gid, bool clean_exit,
                        const std::string &status,
                        StreamingMerger &merger);
    bool handleSuccess(FleetSlot &slot, StreamingMerger &merger);
    /** Returns false when the shard's attempts are exhausted. */
    bool handleFailure(FleetSlot &slot, int gid,
                       const std::string &reason);
    void retireSlot(FleetSlot &slot, const std::string &why);
    void reviveSlots();
    void acceptJoiners();
    void addTransportSlots(net::SlotTransport *transport);
    /** Busy slots currently running @p shard. */
    int inFlight(int shard) const;
    /** Is this failure a speculative leftover to swallow? */
    bool discardObsolete(FleetSlot &slot,
                         const std::string &reason);
    void stealStragglers();
    int pickStraggler() const;
    int renderMerged();
    /** Flush the trace and write the --metrics-out snapshot. */
    void finishTelemetry(std::uint64_t sweep_start,
                        const std::string &outcome);
    /** Answer any pending --status-port requests (non-blocking). */
    void serveStatus(const StreamingMerger &merger);
    /** Canonical JSON snapshot of the live sweep (fixed key order,
     *  digest footer): byte-stable given identical fleet state. */
    std::string statusJson(const StreamingMerger &merger) const;
    /**
     * Dump the flight rings to <merged>.postmortem.json. Called on
     * every Lost slot, stall/timeout kill, and losing speculative
     * twin — the failures where the evidence (the victim's recent
     * spans) would otherwise vanish with the worker.
     */
    void dumpPostmortem(const std::string &reason);

    OrchOptions opt_;
    std::string mergedOut_;
    std::string binName_;
    /** Content digest of opt_.specFile ("" = enum grid). */
    std::string specDigest_;
    std::optional<std::string> secret_;
    OrchPlan plan_;
    std::vector<std::unique_ptr<net::SlotTransport>> transports_;
    std::vector<FleetSlot> slots_;
    net::Socket joinListener_;
    net::Socket statusListener_;
    ShardScheduler *scheduler_ = nullptr;
    std::unordered_set<int> completedShards_;
    /** Successful attempt durations; the straggler baseline. */
    std::vector<double> attemptTook_;
    /** Attempts ever started (spawns + steals); status snapshot. */
    std::uint64_t attemptsStarted_ = 0;
    /** Where dumpPostmortem and the crash handlers write. */
    std::string postmortemPath_;
    bool killInjected_ = false;
    bool stallInjected_ = false;
    bool slowInjected_ = false;
};

void
Orchestrator::addTransportSlots(net::SlotTransport *transport)
{
    for (int i = 0; i < transport->slotCount(); ++i) {
        FleetSlot slot;
        slot.transport = transport;
        slot.local = i;
        slot.name = transport->name() + "#" + std::to_string(i);
        slots_.push_back(std::move(slot));
    }
}

void
Orchestrator::buildFleet(std::size_t cases)
{
    if (opt_.workers > 0)
        transports_.push_back(std::make_unique<net::LocalTransport>(
            opt_.bin, opt_.dir, opt_.workers, opt_.specFile));
    for (const auto &spec : opt_.hosts) {
        std::unique_ptr<net::SlotTransport> agent;
        bool authenticated = false;
        if (opt_.reconnectTries > 0) {
            net::ReconnectingTransport::DialConfig config;
            config.host = spec.host;
            config.port = spec.port;
            config.cliSlots = spec.slots;
            config.expectBin = binName_;
            config.expectCases = cases;
            config.expectSpec = specDigest_;
            config.secret = secret_;
            BackoffPolicy backoff;
            backoff.maxAttempts = opt_.reconnectTries;
            auto link =
                std::make_unique<net::ReconnectingTransport>(
                    std::move(config), backoff);
            authenticated = link->authenticated();
            agent = std::move(link);
        } else {
            auto link = net::TcpTransport::connect(
                spec.host, spec.port, spec.slots, binName_, cases,
                specDigest_, secret_);
            authenticated = link->authenticated();
            agent = std::move(link);
        }
        event("agent " + agent->name() + ": " +
              std::to_string(agent->slotCount()) + " slot(s)" +
              (authenticated ? " [authenticated]"
                             : " [UNAUTHENTICATED plaintext]"));
        transports_.push_back(std::move(agent));
    }
    REGATE_CHECK(!transports_.empty() || joinListener_.valid(),
                 "the fleet is empty: pass --workers N > 0, --host "
                 "host:port[:slots], and/or --join-port P");
    for (auto &transport : transports_)
        addTransportSlots(transport.get());
}

OrchPlan
Orchestrator::loadOrCreatePlan(std::size_t cases)
{
    auto plan_path = path(planFileName());
    auto bin_name =
        std::filesystem::path(opt_.bin).filename().string();
    if (opt_.resume) {
        REGATE_CHECK(fileExists(plan_path),
                     "nothing to resume: no ", plan_path);
        auto plan = planFromText(readFile(plan_path));
        // Shard files are only index-aligned within one partition,
        // so the recorded split is authoritative — and the target
        // must be the same figure, not just one with an
        // equally-sized grid (fig21 vs fig22 both have 25 cases;
        // mixing their checkpoints would merge two figures with
        // every digest still valid).
        REGATE_CHECK(plan.bin == bin_name, "plan file records a ",
                     plan.bin, " run but --bin names ", bin_name,
                     " — resuming the wrong figure?");
        REGATE_CHECK(plan.cases == cases, "plan file records ",
                     plan.cases, " grid cases but ", opt_.bin,
                     " reports ", cases,
                     " — resuming with a different binary or grid?");
        return plan;
    }
    REGATE_CHECK(!fileExists(plan_path), opt_.dir,
                 " already contains ", planFileName(),
                 "; pass --resume to continue that run, or use a "
                 "clean run directory");
    OrchPlan plan;
    plan.bin = bin_name;
    plan.cases = cases;
    // A join-only fleet has no slots yet; plan as if one, so the
    // shard count still tracks the grid (joiners just drain a
    // finer queue than a same-size --host fleet would have).
    plan.shards = planShardCount(
        cases, std::max(1, static_cast<int>(slots_.size())),
        opt_.granularity);
    // Same atomic-promotion discipline as the shard checkpoints: a
    // crash mid-write must not leave a truncated plan that wedges
    // both fresh and --resume runs of this directory.
    writeFile(plan_path + ".part", planToText(plan));
    renameFile(plan_path + ".part", plan_path);
    return plan;
}

std::vector<int>
Orchestrator::scanCheckpoints(StreamingMerger &merger)
{
    std::vector<int> missing;
    for (int shard = 0; shard < plan_.shards; ++shard) {
        auto shard_path = path(shardFileName(shard));
        if (!opt_.resume || !fileExists(shard_path)) {
            missing.push_back(shard);
            continue;
        }
        try {
            merger.addShardFile(shard_path, shard, plan_.shards);
            event("shard " + std::to_string(shard) +
                  ": reused checkpoint");
        } catch (const ConfigError &e) {
            event("shard " + std::to_string(shard) +
                  ": checkpoint invalid (" + e.what() +
                  "); re-running");
            removeFileIfExists(shard_path);
            missing.push_back(shard);
        }
    }
    return missing;
}

void
Orchestrator::spawnShard(FleetSlot &slot, int gid, int shard)
{
    int attempt = scheduler_->attempts(shard);
    slot.shard = shard;
    slot.attempt = attempt;
    slot.speculative = false;
    slot.killedReason.clear();
    slot.progressDetail.clear();

    net::ShardAssignment assignment;
    assignment.shard = shard;
    assignment.shardCount = plan_.shards;
    assignment.attempt = attempt;

    // The injected stall must outlive whichever timeout is armed,
    // or the hook would inject nothing (the worker naps, resumes,
    // and finishes before any kill fires).
    double armed = opt_.stallTimeoutSec > 0 ? opt_.stallTimeoutSec
                                            : opt_.timeoutSec;
    int stall = opt_.stallSeconds > 0
                    ? opt_.stallSeconds
                    : (armed > 0 ? static_cast<int>(armed) * 3 + 5
                                 : 30);
    bool inject_kill = gid == opt_.injectKillSlot && !killInjected_;
    bool inject_stall =
        shard == opt_.injectStallShard && !stallInjected_;
    if (inject_kill || inject_stall)
        assignment.stallSeconds = stall;
    if (shard == opt_.injectSlowShard && !slowInjected_) {
        slowInjected_ = true;
        assignment.slowCaseSeconds = opt_.slowCaseSeconds;
    }

    auto desc = slot.transport->start(slot.local, assignment);
    slot.busy = true;
    slot.started = Clock::now();
    slot.lastProgress = slot.started;

    std::string tag = tagOf(slot);
    ++attemptsStarted_;
    event(tag + ": spawn slot=" + slot.name + " " + desc);
    auto &trace = obs::TraceRecorder::instance();
    if (trace.enabled()) {
        slot.traceStartUs = trace.nowUs();
        trace.instantLane("shard.assign", "fleet", laneOf(gid),
                          {{"shard", std::to_string(shard)},
                           {"attempt", std::to_string(attempt)},
                           {"slot", slot.name}});
    }
    auto &flight = obs::FlightRecorder::instance();
    if (flight.enabled()) {
        slot.flightStartUs = obs::monotonicUs();
        flight.instant("shard.assign",
                       (tag + " slot=" + slot.name).c_str(),
                       laneOf(gid));
    }
    if (inject_kill) {
        // The stall keeps the worker alive long enough for the kill
        // to land, so this deterministically exercises the
        // crashed-worker retry path (locally: SIGKILL; on an agent:
        // a kill frame).
        killInjected_ = true;
        // Each hook injects exactly one failure: if this spawn was
        // also the stall target, the stall hook went out with it —
        // consume that injection too, or the shard's retry would
        // stall again and one shard would absorb both failures.
        if (inject_stall)
            stallInjected_ = true;
        slot.transport->kill(slot.local);
        event(tag + ": injected kill (slot " + slot.name + ")");
    } else if (inject_stall) {
        stallInjected_ = true;
        event(tag + ": injected stall (" + std::to_string(stall) +
              "s)");
    }
}

bool
Orchestrator::handleSuccess(FleetSlot &slot,
                            StreamingMerger &merger)
{
    // Validate the artifact end to end before it becomes a
    // checkpoint: fetchArtifact verifies the worker-reported digest
    // against the exact bytes the driver holds (across however many
    // hops they travelled), then the format's own digests and range
    // checks run inside addShardContent.
    auto content = slot.transport->fetchArtifact(slot.local);
    merger.addShardContent(content, slot.name + " shard " +
                                        std::to_string(slot.shard),
                           slot.shard, plan_.shards);
    // The merger now holds the shard's validated entries, so the
    // attempt has succeeded no matter what happens to the files: a
    // failed checkpoint promotion must not fail the attempt (a
    // retry would hit "already merged"), it only costs a re-run on
    // a later --resume.
    auto final_path = path(shardFileName(slot.shard));
    try {
        // Local artifacts promote by renaming the digest-verified
        // attempt file; remote ones were fetched as bytes and are
        // written out here (atomically, via .part).
        if (!slot.transport->promoteArtifact(slot.local,
                                             final_path)) {
            writeFile(final_path + ".part", content);
            renameFile(final_path + ".part", final_path);
        }
        slot.transport->finishAttempt(slot.local, true);
    } catch (const ConfigError &e) {
        event("shard " + std::to_string(slot.shard) +
              ": checkpoint promotion failed (" + e.what() +
              "); merged in memory, but a --resume would re-run it");
    }
    scheduler_->onSuccess(slot.shard);
    completedShards_.insert(slot.shard);
    double took = std::chrono::duration<double>(Clock::now() -
                                                slot.started)
                      .count();
    attemptTook_.push_back(took);
    event(tagOf(slot) + ": done (" + fmtSeconds(took) + "s)" +
          (slot.speculative ? " [stolen]" : "") + " [" +
          std::to_string(merger.coveredCases()) + "/" +
          std::to_string(plan_.cases) + " cases merged]");
    if (slot.speculative) {
        REGATE_OBS(obs::MetricsRegistry::instance().addCounter(
            "orch.steal.wins", 1));
    }
    // First completion wins: kill any speculative twin of this
    // shard still running elsewhere. Its exit settles through the
    // normal event path and is discarded as obsolete.
    bool twin_killed = false;
    for (auto &other : slots_) {
        if (&other == &slot || !other.busy ||
            other.shard != slot.shard)
            continue;
        if (other.speculative) {
            REGATE_OBS(obs::MetricsRegistry::instance().addCounter(
                "orch.steal.losses", 1));
        }
        other.killedReason = "speculative twin lost the race";
        other.killDeadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(kKillGraceSec));
        other.transport->kill(other.local);
        twin_killed = true;
        event("shard " + std::to_string(other.shard) +
              " attempt " + std::to_string(other.attempt) +
              ": twin on slot=" + other.name +
              " lost the race; killed");
    }
    if (twin_killed)
        dumpPostmortem("shard " + std::to_string(slot.shard) +
                       ": speculative twin lost the race");
    return true;
}

int
Orchestrator::inFlight(int shard) const
{
    int count = 0;
    for (const auto &slot : slots_)
        if (slot.busy && slot.shard == shard)
            ++count;
    return count;
}

bool
Orchestrator::discardObsolete(FleetSlot &slot,
                              const std::string &reason)
{
    // A failure (or leftover exit) of one copy of a shard must not
    // touch the scheduler while the shard is already merged or its
    // twin is still racing: onFailure would requeue — and re-run —
    // work that is complete or still in flight.
    if (completedShards_.count(slot.shard)) {
        event(tagOf(slot) + ": obsolete (" + reason +
              "); shard already merged");
        return true;
    }
    // The caller cleared slot.busy before settling, so any in-
    // flight copy counted here is a distinct twin.
    if (inFlight(slot.shard) > 0) {
        event(tagOf(slot) + ": failed (" + reason +
              "); twin attempt still running");
        return true;
    }
    return false;
}

bool
Orchestrator::handleFailure(FleetSlot &slot, int gid,
                            const std::string &reason)
{
    std::string tag = tagOf(slot);
    if (scheduler_->onFailure(slot.shard, gid)) {
        event(tag + ": failed (" + reason +
              "); retrying on another slot");
        REGATE_OBS(obs::MetricsRegistry::instance().addCounter(
            "orch.shard.retries", 1));
        auto &trace = obs::TraceRecorder::instance();
        if (trace.enabled())
            trace.instantLane(
                "shard.retry", "fleet", laneOf(gid),
                {{"shard", std::to_string(slot.shard)},
                 {"reason", reason}});
        auto &flight = obs::FlightRecorder::instance();
        if (flight.enabled())
            flight.instant("shard.retry",
                           (tag + ": " + reason).c_str(),
                           laneOf(gid));
        dumpPostmortem(tag + " retried: " + reason);
        return true;
    }
    event(tag + ": failed (" + reason + ")");
    event("fatal: shard " + std::to_string(slot.shard) +
          " failed " + std::to_string(slot.attempt) +
          " attempt(s); completed shard files remain in " +
          opt_.dir + " for --resume (" +
          slot.transport->failureRef(slot.local) + ")");
    return false;
}

bool
Orchestrator::settleFinished(FleetSlot &slot, int gid,
                             bool clean_exit,
                             const std::string &status,
                             StreamingMerger &merger)
{
    slot.busy = false;
    auto &trace = obs::TraceRecorder::instance();
    if (trace.enabled() && slot.traceStartUs != 0) {
        // The attempt renders as one span on its slot's lane, from
        // assign to settle, however it ended.
        trace.completeLane(
            "shard " + std::to_string(slot.shard), "fleet",
            laneOf(gid), slot.traceStartUs, trace.nowUs(),
            {{"attempt", std::to_string(slot.attempt)},
             {"outcome", clean_exit ? "clean" : "failed"},
             {"slot", slot.name}});
        slot.traceStartUs = 0;
    }
    auto &flight = obs::FlightRecorder::instance();
    if (flight.enabled() && slot.flightStartUs != 0) {
        char fname[32];
        std::snprintf(fname, sizeof(fname), "shard %d", slot.shard);
        char fdetail[48];
        std::snprintf(fdetail, sizeof(fdetail),
                      "attempt=%d outcome=%s", slot.attempt,
                      clean_exit ? "clean" : "failed");
        flight.complete(fname, slot.flightStartUs,
                        obs::monotonicUs(), fdetail, laneOf(gid));
        slot.flightStartUs = 0;
    }
    std::string killed = slot.killedReason;
    slot.killedReason.clear();
    // A completed shard's leftover exit — the losing side of a
    // speculative race, or a straggler that finished after its twin
    // — settles without touching the scheduler or the merger (which
    // would rightly reject the double absorption).
    if (completedShards_.count(slot.shard)) {
        slot.transport->finishAttempt(slot.local, true);
        event(tagOf(slot) + ": discarded (" +
              (killed.empty() ? status : killed) +
              "); shard already merged");
        return true;
    }
    if (clean_exit) {
        // A worker can finish in the gap between our kill decision
        // and the kill landing; its artifact is done and
        // valid(atable) — don't burn a retry on it.
        if (!killed.empty())
            event(tagOf(slot) +
                  ": finished before the kill landed; accepting");
        try {
            return handleSuccess(slot, merger);
        } catch (const ConfigError &e) {
            slot.transport->finishAttempt(slot.local, false);
            std::string reason =
                std::string("artifact invalid: ") + e.what();
            if (discardObsolete(slot, reason))
                return true;
            return handleFailure(slot, gid, reason);
        }
    }
    slot.transport->finishAttempt(slot.local, false);
    std::string reason = killed.empty() ? status : killed;
    if (discardObsolete(slot, reason))
        return true;
    return handleFailure(slot, gid, reason);
}

void
Orchestrator::retireSlot(FleetSlot &slot, const std::string &why)
{
    if (!slot.alive)
        return;
    slot.alive = false;
    scheduler_->retireSlot();
    event("slot " + slot.name + ": retired (" + why + "); " +
          std::to_string(scheduler_->liveSlots()) +
          " slot(s) remain");
}

void
Orchestrator::reviveSlots()
{
    // A ReconnectingTransport that re-dialed successfully reports
    // alive again; put its retired slots back in service (the
    // inverse of retireSlot, so the scheduler's banned-slot rule
    // re-engages at the right live count).
    for (auto &slot : slots_) {
        if (slot.alive || !slot.transport->alive() ||
            !slot.transport->slotUsable(slot.local))
            continue;
        slot.alive = true;
        slot.busy = false;
        scheduler_->reviveSlot();
        event("slot " + slot.name +
              ": revived (agent reconnected); " +
              std::to_string(scheduler_->liveSlots()) +
              " slot(s) live");
    }
}

void
Orchestrator::acceptJoiners()
{
    while (joinListener_.valid() &&
           net::waitReadable(joinListener_.fd(), 0)) {
        std::string peer;
        net::Socket conn;
        try {
            conn = net::tcpAccept(joinListener_, &peer);
        } catch (const ConfigError &e) {
            event(std::string("join: accept failed: ") + e.what());
            break;
        }
        try {
            // The joiner is handshaked (and authenticated) exactly
            // like a --host agent; a stranger who fails the
            // challenge costs this event line and nothing else.
            auto agent = std::make_unique<net::TcpTransport>(
                std::move(conn), peer, 0, binName_, plan_.cases,
                specDigest_, secret_);
            event("join: agent " + peer + " adds " +
                  std::to_string(agent->slotCount()) + " slot(s)" +
                  (agent->authenticated()
                       ? " [authenticated]"
                       : " [UNAUTHENTICATED plaintext]"));
            auto first = slots_.size();
            addTransportSlots(agent.get());
            for (auto at = first; at < slots_.size(); ++at)
                scheduler_->reviveSlot();
            transports_.push_back(std::move(agent));
        } catch (const ConfigError &e) {
            event(std::string("join rejected: ") + e.what());
        }
    }
}

int
Orchestrator::pickStraggler() const
{
    // The heartbeat progress ("k/n") is the ETA signal: the victim
    // is the busy shard with the largest estimated remaining time.
    // Only proven stragglers qualify — a shard must have a real
    // heartbeat AND have run past twice the median successful
    // attempt (floored at 1s), or an idle fleet would duplicate
    // every freshly-spawned shard the moment the queue drains. A
    // shard with NO heartbeat is not a straggler but a suspected
    // wedge, and wedges are the stall timeout's job to kill.
    double threshold = 1.0;
    if (!attemptTook_.empty()) {
        auto sorted = attemptTook_;
        auto mid = sorted.begin() +
                   static_cast<std::ptrdiff_t>(sorted.size() / 2);
        std::nth_element(sorted.begin(), mid, sorted.end());
        threshold = std::max(threshold, 2.0 * *mid);
    }
    // ETA model: prefer the fleet-wide per-case duration histogram
    // (obs registry, fed by every transport's real samples — local
    // heartbeat deltas and agent-streamed frames alike); its exact
    // mean generalizes across shards, where the per-attempt
    // extrapolation below can be fooled by one slow leading case.
    // The extrapolation stays as the fallback for sweeps that have
    // not recorded a sample yet (or -DREGATE_OBS_DISABLED builds).
    double mean_case_sec = 0;
    REGATE_OBS({
        mean_case_sec = obs::MetricsRegistry::instance()
                            .histogram("fleet.case_duration_us")
                            .mean() /
                        1e6;
    });
    int victim = -1;
    double worst = 0;
    auto now = Clock::now();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        const auto &slot = slots_[s];
        if (!slot.busy || !slot.alive ||
            !slot.killedReason.empty())
            continue;
        if (inFlight(slot.shard) > 1)
            continue;  // Already racing a twin.
        if (scheduler_->attempts(slot.shard) >=
            opt_.retry.maxAttempts)
            continue;  // No attempt budget left to speculate with.
        double elapsed =
            std::chrono::duration<double>(now - slot.started)
                .count();
        if (elapsed < threshold)
            continue;
        int done = 0, total = 0;
        if (std::sscanf(slot.progressDetail.c_str(), "%d/%d",
                        &done, &total) != 2 ||
            done <= 0 || done >= total)
            continue;  // No ETA yet, or final heartbeat seen.
        double remaining =
            mean_case_sec > 0
                ? mean_case_sec * static_cast<double>(total - done)
                : elapsed * static_cast<double>(total - done) /
                      static_cast<double>(done);
        if (victim < 0 || remaining > worst) {
            victim = static_cast<int>(s);
            worst = remaining;
        }
    }
    return victim;
}

void
Orchestrator::stealStragglers()
{
    if (opt_.maxSpeculative <= 0 || !scheduler_->queueEmpty() ||
        scheduler_->allDone())
        return;
    int racing = 0;
    for (const auto &slot : slots_)
        if (slot.busy && slot.speculative)
            ++racing;
    for (std::size_t s = 0;
         s < slots_.size() && racing < opt_.maxSpeculative; ++s) {
        auto &idle = slots_[s];
        if (!idle.alive || idle.busy ||
            !idle.transport->slotUsable(idle.local))
            continue;
        int victim_gid = pickStraggler();
        if (victim_gid < 0)
            break;
        auto &victim = slots_[static_cast<std::size_t>(victim_gid)];
        int shard = victim.shard;
        idle.shard = shard;
        idle.attempt = scheduler_->beginSpeculative(shard);
        idle.speculative = true;
        idle.killedReason.clear();
        idle.progressDetail.clear();

        net::ShardAssignment assignment;
        assignment.shard = shard;
        assignment.shardCount = plan_.shards;
        assignment.attempt = idle.attempt;
        // Deliberately no injection hooks: a stolen attempt exists
        // to beat a straggler, not to replay its failure.
        try {
            auto desc =
                idle.transport->start(idle.local, assignment);
            idle.busy = true;
            idle.started = Clock::now();
            idle.lastProgress = idle.started;
            ++racing;
            ++attemptsStarted_;
            event(tagOf(idle) + ": speculative spawn slot=" +
                  idle.name + " " + desc + " (stealing from slot=" +
                  victim.name + ", at case " +
                  victim.progressDetail + ")");
            REGATE_OBS(obs::MetricsRegistry::instance().addCounter(
                "orch.steal.spawned", 1));
            auto &trace = obs::TraceRecorder::instance();
            if (trace.enabled()) {
                idle.traceStartUs = trace.nowUs();
                trace.instantLane(
                    "shard.steal", "fleet",
                    laneOf(static_cast<int>(s)),
                    {{"shard", std::to_string(shard)},
                     {"victim", victim.name}});
            }
            auto &flight = obs::FlightRecorder::instance();
            if (flight.enabled()) {
                idle.flightStartUs = obs::monotonicUs();
                flight.instant(
                    "shard.steal",
                    (tagOf(idle) + " victim=" + victim.name)
                        .c_str(),
                    laneOf(static_cast<int>(s)));
            }
        } catch (const ConfigError &e) {
            // The twin never started; the original attempt is
            // still running, so this costs the charged attempt and
            // an event line, nothing else.
            idle.busy = false;
            event(tagOf(idle) + ": speculative spawn failed (" +
                  e.what() + ")");
            if (!idle.transport->alive() &&
                !idle.transport->recovering())
                retireSlot(idle, "transport lost");
        }
    }
}

bool
Orchestrator::driveFleet(const std::vector<int> &missing,
                         StreamingMerger &merger)
{
    ShardScheduler scheduler(missing,
                             static_cast<int>(slots_.size()),
                             opt_.retry);
    scheduler_ = &scheduler;

    auto last_tick = Clock::now();
    while (!scheduler.allDone()) {
        // A fleet with zero live slots is only fatal when nothing
        // can bring one back: no transport mid-reconnect and no
        // join listener for fresh agents to dial.
        bool recoverable = joinListener_.valid();
        for (const auto &transport : transports_)
            if (transport->recovering())
                recoverable = true;
        REGATE_CHECK(scheduler.liveSlots() > 0 || recoverable,
                     "every worker slot is gone (all agents lost); "
                     "completed shard files remain in ", opt_.dir,
                     " for --resume");

        acceptJoiners();
        reviveSlots();

        // Assign fresh work to every idle live slot. A transport
        // that died since the last poll (e.g. under a sibling
        // slot's assign moments ago) retires here instead of being
        // offered a shard — a doomed spawn would charge the shard a
        // real attempt, and could even terminal-fail one that is on
        // its last try while healthy slots sit idle.
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            auto &slot = slots_[s];
            if (!slot.alive || slot.busy)
                continue;
            if (!slot.transport->alive()) {
                retireSlot(slot, "transport lost");
                continue;
            }
            int shard = scheduler.nextFor(static_cast<int>(s));
            if (shard < 0)
                continue;
            try {
                spawnShard(slot, static_cast<int>(s), shard);
            } catch (const ConfigError &e) {
                // E.g. the agent connection died under the assign.
                // The attempt is charged and the shard is banned
                // from this slot like any other failure.
                slot.busy = false;
                if (!slot.transport->alive())
                    retireSlot(slot, "transport lost");
                if (!handleFailure(slot, static_cast<int>(s),
                                   std::string("spawn failed: ") +
                                       e.what()))
                    return false;
            }
        }

        // With the queue drained and slots idling, steal the
        // slowest in-flight shards speculatively (bounded by
        // --max-speculative; first completion wins).
        stealStragglers();

        // Answer any queued --status-port requests with the
        // freshest slot state this tick has.
        serveStatus(merger);

        // Drain transport events. Slots are keyed globally by the
        // (transport, local slot) pair.
        for (auto &transport : transports_) {
            auto events = transport->poll();
            for (const auto &ev : events) {
                if (ev.slot < 0) {
                    // Fleet-level notice, not tied to one slot —
                    // e.g. a ReconnectingTransport giving up for
                    // good. The slots themselves already surfaced
                    // their own Lost events when the link dropped.
                    event("agent " + transport->name() + ": " +
                          ev.detail);
                    continue;
                }
                auto it = std::find_if(
                    slots_.begin(), slots_.end(),
                    [&](const FleetSlot &sl) {
                        return sl.transport == transport.get() &&
                               sl.local == ev.slot;
                    });
                REGATE_ASSERT(it != slots_.end(),
                              "event for unknown slot ", ev.slot,
                              " of ", transport->name());
                auto gid =
                    static_cast<int>(it - slots_.begin());
                switch (ev.kind) {
                  case net::TransportEvent::Kind::Progress:
                    it->lastProgress = Clock::now();
                    it->progressDetail = ev.detail;
                    break;
                  case net::TransportEvent::Kind::Metric:
                    aggregateMetric(ev);
                    break;
                  case net::TransportEvent::Kind::Finished:
                    if (!settleFinished(*it, gid, ev.cleanExit,
                                        ev.detail, merger))
                        return false;
                    break;
                  case net::TransportEvent::Kind::Lost: {
                    it->busy = false;
                    it->killedReason.clear();
                    auto &trace = obs::TraceRecorder::instance();
                    if (trace.enabled() && it->traceStartUs != 0) {
                        trace.completeLane(
                            "shard " + std::to_string(it->shard),
                            "fleet", laneOf(gid), it->traceStartUs,
                            trace.nowUs(),
                            {{"attempt",
                              std::to_string(it->attempt)},
                             {"outcome", "lost"}});
                        it->traceStartUs = 0;
                    }
                    auto &flight =
                        obs::FlightRecorder::instance();
                    if (flight.enabled() &&
                        it->flightStartUs != 0) {
                        char fname[32];
                        std::snprintf(fname, sizeof(fname),
                                      "shard %d", it->shard);
                        flight.complete(fname, it->flightStartUs,
                                        obs::monotonicUs(),
                                        "outcome=lost",
                                        laneOf(gid));
                        it->flightStartUs = 0;
                    }
                    dumpPostmortem(tagOf(*it) + " lost: " +
                                   ev.detail);
                    retireSlot(*it, ev.detail);
                    // A lost copy of a merged (or still-racing)
                    // shard is a speculative leftover, not a
                    // failure to requeue.
                    if (!discardObsolete(*it, ev.detail) &&
                        !handleFailure(*it, gid, ev.detail))
                        return false;
                    break;
                  }
                }
            }
            // A dead transport's idle slots retire too (Lost events
            // only cover the busy ones).
            if (!transport->alive()) {
                for (auto &slot : slots_)
                    if (slot.transport == transport.get() &&
                        !slot.busy)
                        retireSlot(slot, "transport lost");
            }
        }

        // Stall- and wall-clock timeouts. The kill is asynchronous:
        // the slot settles when its Finished (or Lost) event
        // arrives, so local subprocesses and remote agent workers
        // follow the same path. A kill that never settles means the
        // far side is wedged with its connection still open (e.g. a
        // SIGSTOPped agent: heartbeats stop, but no EOF ever comes)
        // — abandon the transport so its slots surface as Lost
        // instead of hanging the run forever.
        auto now = Clock::now();
        // An artifact fetch can block this loop for tens of seconds
        // on a wedged agent. That is DRIVER silence, not worker
        // silence: heartbeats kept landing in logs and sockets
        // unread, so credit the starved interval back to every busy
        // slot's progress clock instead of stall-killing healthy
        // workers. (The wall-clock cap is left alone — the attempt
        // really did age.)
        if (now - last_tick > std::chrono::seconds(1)) {
            auto starved = now - last_tick;
            for (auto &slot : slots_) {
                if (!slot.busy)
                    continue;
                slot.lastProgress += starved;
                if (slot.lastProgress > now)
                    slot.lastProgress = now;
            }
        }
        last_tick = now;
        for (auto &slot : slots_) {
            if (!slot.busy)
                continue;
            if (!slot.killedReason.empty()) {
                if (now >= slot.killDeadline) {
                    event(tagOf(slot) + ": no exit " +
                          fmtSeconds(kKillGraceSec) +
                          "s after the kill; abandoning " +
                          slot.transport->name());
                    slot.transport->abandon(
                        "no exit after a kill — agent wedged?");
                    // Re-arm so this logs once per grace period,
                    // not every scheduler tick, while the Lost
                    // events from the abandonment settle.
                    slot.killDeadline =
                        now +
                        std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                kKillGraceSec));
                }
                continue;
            }
            double since_progress =
                std::chrono::duration<double>(now -
                                              slot.lastProgress)
                    .count();
            double since_start =
                std::chrono::duration<double>(now - slot.started)
                    .count();
            if (opt_.stallTimeoutSec > 0 &&
                since_progress > opt_.stallTimeoutSec) {
                slot.killedReason =
                    "stalled: no heartbeat for " +
                    fmtSeconds(since_progress) + "s" +
                    (slot.progressDetail.empty()
                         ? ""
                         : " (last progress: case " +
                               slot.progressDetail + ")");
            } else if (opt_.timeoutSec > 0 &&
                       since_start > opt_.timeoutSec) {
                slot.killedReason = "timeout after " +
                                    fmtSeconds(since_start) + "s";
            } else {
                continue;
            }
            event(tagOf(slot) + ": " + slot.killedReason +
                  "; killed");
            dumpPostmortem(tagOf(slot) + ": " +
                           slot.killedReason);
            slot.killDeadline =
                now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              kKillGraceSec));
            slot.transport->kill(slot.local);
        }

        if (!scheduler.allDone())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(15));
    }
    scheduler_ = nullptr;
    return true;
}

int
Orchestrator::renderMerged()
{
    // The renderer needs the spec too: row labels and the digest
    // check in the merged document both come from the scenario
    // grid, not the binary's built-in one.
    std::vector<std::string> cmd = {opt_.bin};
    if (!opt_.specFile.empty()) {
        cmd.emplace_back("--spec");
        cmd.push_back(opt_.specFile);
    }
    cmd.emplace_back("--from");
    cmd.push_back(mergedOut_);
    event("render: " + opt_.bin + " --from " + mergedOut_);
    std::string out;
    int code = ProcessPool::runCapture(cmd, out);
    std::cout.write(out.data(),
                    static_cast<std::streamsize>(out.size()));
    std::cout.flush();
    if (code != 0)
        event("render failed with code " + std::to_string(code));
    return code;
}

int
Orchestrator::run()
{
    std::filesystem::create_directories(opt_.dir);
    auto &trace = obs::TraceRecorder::instance();
    if (!opt_.traceOut.empty())
        trace.start(opt_.traceOut);
    // The flight recorder is always on (REGATE_FLIGHT_KB=0 opts
    // out): a crash of the driver itself, a stalled shard, or a
    // killed twin all dump the recent timeline next to the merged
    // document.
    postmortemPath_ = mergedOut_ + ".postmortem.json";
    obs::FlightRecorder::installCrashHandlers(postmortemPath_);
    auto sweep_start = obs::monotonicUs();
    // The spec digest is computed before anything else: it joins
    // every hello cross-check, stamps the merged shard header, and
    // a spec file that fails to parse must be a one-line usage
    // error, not a fleet of workers all dying on it.
    if (!opt_.specFile.empty())
        specDigest_ = models::parseSpecFile(opt_.specFile).digest;
    auto cases = opt_.probedCases > 0
                     ? opt_.probedCases
                     : probeGridCases(opt_.bin, opt_.specFile);
    binName_ =
        std::filesystem::path(opt_.bin).filename().string();
    secret_ = net::loadFleetSecret(opt_.secretFile);
    if (!secret_ && (!opt_.hosts.empty() || opt_.joinPort >= 0))
        event("WARNING: no fleet secret configured — remote hellos "
              "run the plaintext v1 handshake (pass --secret-file "
              "or set REGATE_FLEET_SECRET)");
    if (opt_.joinPort >= 0) {
        std::uint16_t bound = 0;
        joinListener_ = net::tcpListen(
            static_cast<std::uint16_t>(opt_.joinPort), &bound);
        event("join: listening on port " + std::to_string(bound));
    }
    if (opt_.statusPort >= 0) {
        std::uint16_t bound = 0;
        statusListener_ = net::tcpListen(
            static_cast<std::uint16_t>(opt_.statusPort), &bound);
        event("status: listening on port " +
              std::to_string(bound));
    }
    buildFleet(cases);
    plan_ = loadOrCreatePlan(cases);
    event("plan cases=" + std::to_string(plan_.cases) +
          " shards=" + std::to_string(plan_.shards) + " slots=" +
          std::to_string(slots_.size()) + " (" +
          std::to_string(opt_.workers) + " local, " +
          std::to_string(slots_.size() -
                         static_cast<std::size_t>(
                             opt_.workers > 0 ? opt_.workers : 0)) +
          " remote)" + (opt_.resume ? " (resume)" : ""));

    StreamingMerger merger(plan_.cases, specDigest_);
    auto missing = scanCheckpoints(merger);

    if (!missing.empty() && !driveFleet(missing, merger)) {
        finishTelemetry(sweep_start, "failed");
        return 1;
    }

    auto doc = merger.mergedDocument();
    // Atomic promotion, like the plan and the shard checkpoints: a
    // crash mid-write must leave either a valid merged document or
    // none at the final path.
    writeFile(mergedOut_ + ".part", doc);
    renameFile(mergedOut_ + ".part", mergedOut_);
    event("merged " + std::to_string(plan_.cases) + " cases -> " +
          mergedOut_ + " (file digest " + sim::contentDigest(doc) +
          ")");
    finishTelemetry(sweep_start, "merged");

    if (opt_.render)
        return renderMerged();
    return 0;
}

void
Orchestrator::finishTelemetry(std::uint64_t sweep_start,
                              const std::string &outcome)
{
    auto &trace = obs::TraceRecorder::instance();
    if (trace.enabled()) {
        trace.complete("orchestrate", "fleet", sweep_start,
                       {{"bin", binName_}, {"outcome", outcome}});
        trace.flush();
        event("trace: wrote " + opt_.traceOut);
    }
    // End-of-sweep latency summary: the same derived quantiles the
    // metrics snapshot and the status endpoint serve.
    REGATE_OBS({
        auto &h = obs::MetricsRegistry::instance().histogram(
            "fleet.case_duration_us");
        if (h.count() > 0)
            event("cases: n=" + std::to_string(h.count()) +
                  " mean=" +
                  std::to_string(
                      static_cast<std::uint64_t>(h.mean())) +
                  "us p50=" + std::to_string(h.percentile(0.50)) +
                  "us p95=" + std::to_string(h.percentile(0.95)) +
                  "us p99=" + std::to_string(h.percentile(0.99)) +
                  "us");
    });
    if (opt_.metricsOut.empty())
        return;
    // The canonical writer (.part + rename) is shared with every
    // grid binary's --metrics-out. The snapshot aggregates the
    // driver's own instruments with everything the fleet streamed
    // during the sweep.
    auto snapshot = obs::MetricsRegistry::instance().writeSnapshot(
        opt_.metricsOut);
    event("metrics: wrote " + opt_.metricsOut + " (file digest " +
          sim::contentDigest(snapshot) + ")");
}

void
Orchestrator::dumpPostmortem(const std::string &reason)
{
    auto &flight = obs::FlightRecorder::instance();
    if (!flight.enabled() || postmortemPath_.empty())
        return;
    flight.instant("postmortem.dump", reason.c_str());
    if (flight.dump(postmortemPath_))
        event("postmortem: wrote " + postmortemPath_ + " (" +
              reason + ")");
}

void
Orchestrator::serveStatus(const StreamingMerger &merger)
{
    while (statusListener_.valid() &&
           net::waitReadable(statusListener_.fd(), 0)) {
        std::string peer;
        net::Socket conn;
        try {
            conn = net::tcpAccept(statusListener_, &peer);
        } catch (const ConfigError &e) {
            event(std::string("status: accept failed: ") +
                  e.what());
            break;
        }
        try {
            // One request per connection: a `status` frame in, the
            // canonical snapshot out, then close. A stranger
            // speaking anything else costs this event line, never
            // the sweep.
            net::LineChannel channel(std::move(conn), peer);
            auto frame = net::parseFrame(channel.readLine(2000));
            REGATE_CHECK(frame.verb == "status",
                         "unexpected status request verb '",
                         frame.verb, "'");
            auto json = statusJson(merger);
            channel.sendLine(net::formatFrame(
                net::statusReplyFrame(json.size())));
            channel.sendBytes(json);
        } catch (const ConfigError &e) {
            event("status: request from " + peer + " failed: " +
                  e.what());
        }
    }
}

std::string
Orchestrator::statusJson(const StreamingMerger &merger) const
{
    auto &reg = obs::MetricsRegistry::instance();
    auto counterOf = [&](const char *name) {
        return reg.counter(name).value();
    };
    std::uint64_t mean_us = 0, p50 = 0, p95 = 0, p99 = 0;
    REGATE_OBS({
        auto &h = reg.histogram("fleet.case_duration_us");
        if (h.count() > 0) {
            mean_us = static_cast<std::uint64_t>(h.mean());
            p50 = h.percentile(0.50);
            p95 = h.percentile(0.95);
            p99 = h.percentile(0.99);
        }
    });
    auto covered = merger.coveredCases();
    auto remaining =
        plan_.cases > covered ? plan_.cases - covered : 0;
    // ETA model: remaining cases at the fleet-wide mean case
    // duration — the same signal pickStraggler() speculates on.
    // 0.000 until the first sample lands.
    double eta_s = mean_us > 0 ? static_cast<double>(remaining) *
                                     static_cast<double>(mean_us) /
                                     1e6
                               : 0.0;
    char buf[64];
    std::string body;
    body += "{\n\"obs\": \"regate-status\",\n\"version\": 1,\n";
    body += "\"bin\": ";
    appendJsonString(body, binName_);
    body += ",\n\"cases\": " + std::to_string(plan_.cases);
    body += ",\n\"merged_cases\": " + std::to_string(covered);
    body += ",\n\"shards\": " + std::to_string(plan_.shards);
    body += ",\n\"completed_shards\": " +
            std::to_string(completedShards_.size());
    body += ",\n\"attempts\": " + std::to_string(attemptsStarted_);
    body += ",\n\"retries\": " +
            std::to_string(counterOf("orch.shard.retries"));
    body += ",\n\"steal_spawned\": " +
            std::to_string(counterOf("orch.steal.spawned"));
    body += ",\n\"steal_wins\": " +
            std::to_string(counterOf("orch.steal.wins"));
    body += ",\n\"steal_losses\": " +
            std::to_string(counterOf("orch.steal.losses"));
    body += ",\n\"case_mean_us\": " + std::to_string(mean_us);
    body += ",\n\"case_p50_us\": " + std::to_string(p50);
    body += ",\n\"case_p95_us\": " + std::to_string(p95);
    body += ",\n\"case_p99_us\": " + std::to_string(p99);
    std::snprintf(buf, sizeof(buf), "%.3f", eta_s);
    body += ",\n\"eta_s\": ";
    body += buf;
    body += ",\n\"slots\": [";
    auto now = Clock::now();
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        const auto &slot = slots_[s];
        body += s ? ",\n" : "\n";
        body += "{\"name\": ";
        appendJsonString(body, slot.name);
        body += ", \"alive\": ";
        body += slot.alive ? "true" : "false";
        body += ", \"busy\": ";
        body += slot.busy ? "true" : "false";
        body += ", \"shard\": " +
                std::to_string(slot.busy ? slot.shard : -1);
        body += ", \"attempt\": " +
                std::to_string(slot.busy ? slot.attempt : -1);
        body += ", \"speculative\": ";
        body += slot.busy && slot.speculative ? "true" : "false";
        auto age_ms =
            slot.busy
                ? std::chrono::duration_cast<
                      std::chrono::milliseconds>(
                      now - slot.lastProgress)
                      .count()
                : -1;
        body += ", \"heartbeat_age_ms\": " + std::to_string(age_ms);
        body += ", \"progress\": ";
        appendJsonString(body,
                         slot.busy ? slot.progressDetail : "");
        body += "}";
    }
    body += "\n],\n";
    // Digest footer over everything above it, exactly like the
    // metrics snapshot: clients can verify they parsed the same
    // bytes the driver serialized.
    std::string out = std::move(body);
    out += "\"digest\": \"";
    out += hexDigest64(fnv1a64(out.data(), out.size()));
    out += "\"\n}\n";
    return out;
}

}  // namespace

int
runOrchestration(const OrchOptions &options)
{
    try {
        return Orchestrator(options).run();
    } catch (const ConfigError &e) {
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    } catch (const LogicError &e) {
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        // E.g. std::filesystem_error from an unwritable run
        // directory — still a clean one-line failure, not a
        // terminate().
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace orch
}  // namespace regate
