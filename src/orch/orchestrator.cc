#include "orch/orchestrator.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "common/error.h"
#include "orch/fs.h"
#include "orch/planner.h"
#include "orch/process_pool.h"
#include "orch/streaming_merge.h"
#include "sim/serialize.h"

namespace regate {
namespace orch {

namespace {

using Clock = std::chrono::steady_clock;

std::string
fmtSeconds(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", s);
    return buf;
}

/**
 * The worker's reported whole-file digest, from the handshake line
 * in its captured log (bench/bench_util.h documents the protocol).
 */
std::string
workerDoneDigest(const std::string &log)
{
    const std::string marker = "@regate-worker v1 done ";
    const std::string key = "file_digest=";
    auto line_start = log.rfind(marker);
    REGATE_CHECK(line_start != std::string::npos,
                 "worker exited 0 but its log has no handshake "
                 "done line");
    auto line_end = log.find('\n', line_start);
    auto line = log.substr(line_start,
                           line_end == std::string::npos
                               ? std::string::npos
                               : line_end - line_start);
    auto key_at = line.find(key);
    REGATE_CHECK(key_at != std::string::npos,
                 "worker done line carries no file_digest");
    auto digest = line.substr(key_at + key.size());
    auto space = digest.find(' ');
    if (space != std::string::npos)
        digest.resize(space);
    return digest;
}

class Orchestrator
{
  public:
    explicit Orchestrator(const OrchOptions &options)
        : opt_(options),
          mergedOut_(options.mergedOut.empty()
                         ? options.dir + "/merged.json"
                         : options.mergedOut)
    {}

    int run();

  private:
    struct Slot
    {
        bool busy = false;
        int shard = -1;
        int attempt = 0;
        pid_t pid = -1;
        Clock::time_point started;
        Clock::time_point deadline;
        bool hasDeadline = false;
        std::string attemptPath;
        std::string logPath;
    };

    void
    event(const std::string &line)
    {
        if (opt_.events)
            *opt_.events << "orch: " << line << "\n" << std::flush;
    }

    std::string path(const std::string &name) const
    {
        return opt_.dir + "/" + name;
    }

    std::size_t queryCaseCount();
    OrchPlan loadOrCreatePlan(std::size_t cases);
    std::vector<int> scanCheckpoints(StreamingMerger &merger);
    void spawnShard(Slot &slot, int slot_id, int shard);
    bool handleSuccess(Slot &slot, StreamingMerger &merger);
    /** Returns false when the shard's attempts are exhausted. */
    bool handleFailure(Slot &slot, int slot_id,
                       const std::string &reason);
    /**
     * Settle a reaped attempt: clean exit -> validate and merge
     * (an invalid artifact becomes a failed attempt); otherwise a
     * failure with @p fail_reason (empty = describe the raw
     * status). Returns false on terminal failure.
     */
    bool settleExit(Slot &slot, int slot_id, int raw_status,
                    StreamingMerger &merger,
                    const std::string &fail_reason = "");
    int renderMerged();

    OrchOptions opt_;
    std::string mergedOut_;
    OrchPlan plan_;
    ProcessPool pool_;
    ShardScheduler *scheduler_ = nullptr;
    int attemptSerial_ = 0;
    bool killInjected_ = false;
    bool stallInjected_ = false;
};

std::size_t
Orchestrator::queryCaseCount()
{
    REGATE_CHECK(::access(opt_.bin.c_str(), X_OK) == 0,
                 opt_.bin, " is not an executable binary");
    std::string out;
    int code = ProcessPool::runCapture({opt_.bin, "--cases"}, out);
    REGATE_CHECK(code == 0, opt_.bin, " --cases exited with code ",
                 code);
    // Strict parse: the query must print one bare case count
    // (surrounding whitespace only). A binary without a sweep grid
    // renders its figure instead, which fails here with a usable
    // message — as does an absurd out-of-range count.
    auto is_space = [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    };
    auto begin = std::find_if_not(out.begin(), out.end(), is_space);
    auto end = std::find_if_not(out.rbegin(), out.rend(), is_space)
                   .base();
    std::string trimmed(begin, begin < end ? end : begin);
    REGATE_CHECK(!trimmed.empty() &&
                     trimmed.find_first_not_of("0123456789") ==
                         std::string::npos,
                 opt_.bin, " --cases did not report a case count — "
                 "is it a grid-shaped figure/table binary?");
    try {
        return std::stoull(trimmed);
    } catch (const std::out_of_range &) {
        throw ConfigError(opt_.bin + " --cases reported '" +
                          trimmed + "', which is not a usable "
                          "case count");
    }
}

OrchPlan
Orchestrator::loadOrCreatePlan(std::size_t cases)
{
    auto plan_path = path(planFileName());
    auto bin_name =
        std::filesystem::path(opt_.bin).filename().string();
    if (opt_.resume) {
        REGATE_CHECK(fileExists(plan_path),
                     "nothing to resume: no ", plan_path);
        auto plan = planFromText(readFile(plan_path));
        // Shard files are only index-aligned within one partition,
        // so the recorded split is authoritative — and the target
        // must be the same figure, not just one with an
        // equally-sized grid (fig21 vs fig22 both have 25 cases;
        // mixing their checkpoints would merge two figures with
        // every digest still valid).
        REGATE_CHECK(plan.bin == bin_name, "plan file records a ",
                     plan.bin, " run but --bin names ", bin_name,
                     " — resuming the wrong figure?");
        REGATE_CHECK(plan.cases == cases, "plan file records ",
                     plan.cases, " grid cases but ", opt_.bin,
                     " reports ", cases,
                     " — resuming with a different binary or grid?");
        return plan;
    }
    REGATE_CHECK(!fileExists(plan_path), opt_.dir,
                 " already contains ", planFileName(),
                 "; pass --resume to continue that run, or use a "
                 "clean run directory");
    OrchPlan plan;
    plan.bin = bin_name;
    plan.cases = cases;
    plan.shards =
        planShardCount(cases, opt_.workers, opt_.granularity);
    // Same atomic-promotion discipline as the shard checkpoints: a
    // crash mid-write must not leave a truncated plan that wedges
    // both fresh and --resume runs of this directory.
    writeFile(plan_path + ".part", planToText(plan));
    renameFile(plan_path + ".part", plan_path);
    return plan;
}

std::vector<int>
Orchestrator::scanCheckpoints(StreamingMerger &merger)
{
    std::vector<int> missing;
    for (int shard = 0; shard < plan_.shards; ++shard) {
        auto shard_path = path(shardFileName(shard));
        if (!opt_.resume || !fileExists(shard_path)) {
            missing.push_back(shard);
            continue;
        }
        try {
            merger.addShardFile(shard_path, shard, plan_.shards);
            event("shard " + std::to_string(shard) +
                  ": reused checkpoint");
        } catch (const ConfigError &e) {
            event("shard " + std::to_string(shard) +
                  ": checkpoint invalid (" + e.what() +
                  "); re-running");
            removeFileIfExists(shard_path);
            missing.push_back(shard);
        }
    }
    return missing;
}

void
Orchestrator::spawnShard(Slot &slot, int slot_id, int shard)
{
    int serial = ++attemptSerial_;
    int attempt = scheduler_->attempts(shard);
    slot.busy = true;
    slot.shard = shard;
    slot.attempt = attempt;
    slot.attemptPath = path(attemptFileName(
        shard, static_cast<long>(::getpid()), serial));
    slot.logPath = slot.attemptPath + ".log";

    int stall = opt_.stallSeconds > 0
                    ? opt_.stallSeconds
                    : (opt_.timeoutSec > 0
                           ? static_cast<int>(opt_.timeoutSec) * 3 + 5
                           : 30);
    bool inject_kill =
        slot_id == opt_.injectKillSlot && !killInjected_;
    bool inject_stall =
        shard == opt_.injectStallShard && !stallInjected_;
    // Always set the stall hook explicitly — "0" for normal
    // attempts — so a REGATE_TEST_STALL_S exported in the
    // orchestrator's own environment (e.g. left over from
    // reproducing a test) can never leak into every worker and
    // stall a real run into terminal timeout failure.
    std::vector<std::pair<std::string, std::string>> env = {
        {"REGATE_TEST_STALL_S",
         inject_kill || inject_stall ? std::to_string(stall) : "0"}};

    std::string spec = std::to_string(shard) + "/" +
                       std::to_string(plan_.shards);
    slot.pid = pool_.spawn({opt_.bin, "--worker", "--shard", spec,
                            "--out", slot.attemptPath},
                           env, slot.logPath);
    slot.started = Clock::now();
    slot.hasDeadline = opt_.timeoutSec > 0;
    if (slot.hasDeadline)
        slot.deadline =
            slot.started +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(opt_.timeoutSec));

    std::string tag = "shard " + std::to_string(shard) +
                      " attempt " + std::to_string(attempt);
    event(tag + ": spawn slot=" + std::to_string(slot_id) +
          " pid=" + std::to_string(slot.pid));
    if (inject_kill) {
        // The stall keeps the worker alive long enough for the kill
        // to land, so this deterministically exercises the
        // crashed-worker retry path.
        killInjected_ = true;
        // Each hook injects exactly one failure: if this spawn was
        // also the stall target, the stall env went out with it —
        // consume that injection too, or the shard's retry would
        // stall again and one shard would absorb both failures.
        if (inject_stall)
            stallInjected_ = true;
        pool_.kill(slot.pid);
        event(tag + ": injected kill (slot " +
              std::to_string(slot_id) + ")");
    } else if (inject_stall) {
        stallInjected_ = true;
        event(tag + ": injected stall (" + std::to_string(stall) +
              "s)");
    }
}

bool
Orchestrator::handleSuccess(Slot &slot, StreamingMerger &merger)
{
    // Validate the artifact end to end before it becomes a
    // checkpoint: the worker's reported digest pins the bytes that
    // landed on (possibly shared) storage, then the format's own
    // digests and range checks run inside addShardFile.
    auto content = readFile(slot.attemptPath);
    auto reported = workerDoneDigest(readFile(slot.logPath));
    auto on_disk = sim::contentDigest(content);
    REGATE_CHECK(reported == on_disk, "worker reported file digest ",
                 reported, " but ", on_disk,
                 " landed on disk — truncated or concurrent write?");
    merger.addShardContent(content, slot.attemptPath, slot.shard,
                           plan_.shards);
    // The merger now holds the shard's validated entries, so the
    // attempt has succeeded no matter what happens to the files: a
    // failed checkpoint promotion must not fail the attempt (a
    // retry would hit "already merged"), it only costs a re-run on
    // a later --resume.
    try {
        renameFile(slot.attemptPath, path(shardFileName(slot.shard)));
        removeFileIfExists(slot.logPath);
    } catch (const ConfigError &e) {
        event("shard " + std::to_string(slot.shard) +
              ": checkpoint promotion failed (" + e.what() +
              "); merged in memory, but a --resume would re-run it");
    }
    scheduler_->onSuccess(slot.shard);
    double took = std::chrono::duration<double>(Clock::now() -
                                                slot.started)
                      .count();
    event("shard " + std::to_string(slot.shard) + " attempt " +
          std::to_string(slot.attempt) + ": done (" +
          fmtSeconds(took) + "s) [" +
          std::to_string(merger.coveredCases()) + "/" +
          std::to_string(plan_.cases) + " cases merged]");
    return true;
}

bool
Orchestrator::handleFailure(Slot &slot, int slot_id,
                            const std::string &reason)
{
    removeFileIfExists(slot.attemptPath);
    std::string tag = "shard " + std::to_string(slot.shard) +
                      " attempt " + std::to_string(slot.attempt);
    if (scheduler_->onFailure(slot.shard, slot_id)) {
        event(tag + ": failed (" + reason +
              "); retrying on another slot");
        return true;
    }
    event(tag + ": failed (" + reason + ")");
    event("fatal: shard " + std::to_string(slot.shard) +
          " failed " + std::to_string(slot.attempt) +
          " attempt(s); completed shard files remain in " +
          opt_.dir + " for --resume (worker log: " + slot.logPath +
          ")");
    return false;
}

bool
Orchestrator::settleExit(Slot &slot, int slot_id, int raw_status,
                         StreamingMerger &merger,
                         const std::string &fail_reason)
{
    if (ProcessPool::exitedCleanly(raw_status)) {
        try {
            handleSuccess(slot, merger);
            return true;
        } catch (const ConfigError &e) {
            return handleFailure(slot, slot_id,
                                 std::string("artifact invalid: ") +
                                     e.what());
        }
    }
    return handleFailure(slot, slot_id,
                         fail_reason.empty()
                             ? ProcessPool::describeStatus(raw_status)
                             : fail_reason);
}

int
Orchestrator::renderMerged()
{
    event("render: " + opt_.bin + " --from " + mergedOut_);
    std::string out;
    int code =
        ProcessPool::runCapture({opt_.bin, "--from", mergedOut_},
                                out);
    std::cout.write(out.data(),
                    static_cast<std::streamsize>(out.size()));
    std::cout.flush();
    if (code != 0)
        event("render failed with code " + std::to_string(code));
    return code;
}

int
Orchestrator::run()
{
    std::filesystem::create_directories(opt_.dir);
    auto cases = queryCaseCount();
    plan_ = loadOrCreatePlan(cases);
    event("plan cases=" + std::to_string(plan_.cases) +
          " shards=" + std::to_string(plan_.shards) +
          " workers=" + std::to_string(opt_.workers) +
          (opt_.resume ? " (resume)" : ""));

    StreamingMerger merger(plan_.cases);
    auto missing = scanCheckpoints(merger);

    if (!missing.empty()) {
        ShardScheduler scheduler(missing, opt_.workers, opt_.retry);
        scheduler_ = &scheduler;
        std::vector<Slot> slots(
            static_cast<std::size_t>(opt_.workers));

        while (!scheduler.allDone()) {
            for (std::size_t s = 0; s < slots.size(); ++s) {
                if (slots[s].busy)
                    continue;
                int shard = scheduler.nextFor(static_cast<int>(s));
                if (shard >= 0)
                    spawnShard(slots[s], static_cast<int>(s), shard);
            }

            for (const auto &exit : pool_.poll()) {
                auto it = std::find_if(
                    slots.begin(), slots.end(), [&](const Slot &sl) {
                        return sl.busy && sl.pid == exit.pid;
                    });
                REGATE_ASSERT(it != slots.end(),
                              "reaped unknown pid ", exit.pid);
                auto slot_id =
                    static_cast<int>(it - slots.begin());
                it->busy = false;
                if (!settleExit(*it, slot_id, exit.rawStatus,
                                merger))
                    return 1;
            }

            auto now = Clock::now();
            for (std::size_t s = 0; s < slots.size(); ++s) {
                auto &slot = slots[s];
                if (!slot.busy || !slot.hasDeadline ||
                    now < slot.deadline)
                    continue;
                double took = std::chrono::duration<double>(
                                  now - slot.started)
                                  .count();
                pool_.kill(slot.pid);
                int raw = pool_.wait(slot.pid);
                slot.busy = false;
                std::string tag =
                    "shard " + std::to_string(slot.shard) +
                    " attempt " + std::to_string(slot.attempt);
                if (ProcessPool::exitedCleanly(raw)) {
                    // The worker finished in the gap between this
                    // iteration's poll() and the deadline check —
                    // the kill hit a zombie. Its artifact is done
                    // and valid(atable); don't burn a retry on it.
                    event(tag + ": finished at the deadline (" +
                          fmtSeconds(took) + "s); accepting");
                } else {
                    event(tag + ": timeout after " +
                          fmtSeconds(took) + "s; killed");
                }
                if (!settleExit(slot, static_cast<int>(s), raw,
                                merger,
                                "timeout after " + fmtSeconds(took) +
                                    "s"))
                    return 1;
            }

            if (!scheduler.allDone())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(15));
        }
        scheduler_ = nullptr;
    }

    auto doc = merger.mergedDocument();
    // Atomic promotion, like the plan and the shard checkpoints: a
    // crash mid-write must leave either a valid merged document or
    // none at the final path.
    writeFile(mergedOut_ + ".part", doc);
    renameFile(mergedOut_ + ".part", mergedOut_);
    event("merged " + std::to_string(plan_.cases) + " cases -> " +
          mergedOut_ + " (file digest " + sim::contentDigest(doc) +
          ")");

    if (opt_.render)
        return renderMerged();
    return 0;
}

}  // namespace

int
runOrchestration(const OrchOptions &options)
{
    try {
        return Orchestrator(options).run();
    } catch (const ConfigError &e) {
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    } catch (const LogicError &e) {
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        // E.g. std::filesystem_error from an unwritable run
        // directory — still a clean one-line failure, not a
        // terminate().
        std::cerr << "regate_orch: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace orch
}  // namespace regate
