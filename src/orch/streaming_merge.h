/**
 * @file
 * Streaming shard merger: absorbs shard JSON files one at a time —
 * as workers land them, or from disk when resuming — and assembles
 * the final merged document once coverage is complete.
 *
 * Every file is fully validated on absorption (parse, both content
 * digests, header/range agreement with the orchestrator's plan), so
 * a corrupt or stale checkpoint is detected the moment it is read,
 * not at render time. The merged document is assembled through
 * sim::assembleShardDoc from the same canonical entry texts the
 * workers wrote, so it is byte-identical to the single-shard
 * (`--shard 0/1`) document of an unsharded run — the orchestrated
 * path inherits the PR 3 serialize invariants wholesale, and the
 * golden harness stays the correctness oracle.
 */

#ifndef REGATE_ORCH_STREAMING_MERGE_H
#define REGATE_ORCH_STREAMING_MERGE_H

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/serialize.h"

namespace regate {
namespace orch {

class StreamingMerger
{
  public:
    /**
     * @param cases       total grid size every shard must agree on.
     * @param spec_digest the run's scenario-spec content digest
     *                    ("" = enum grid); every absorbed shard
     *                    must carry exactly this digest, so a
     *                    checkpoint from a different spec file (or
     *                    from an enum run) is rejected on read.
     */
    explicit StreamingMerger(std::size_t cases,
                             std::string spec_digest = {})
        : cases_(cases), specDigest_(std::move(spec_digest))
    {}

    /**
     * Read, validate, and absorb one shard file. The document must
     * be shard @p shard_index of @p shard_count over exactly
     * `cases` cases, carry valid digests, and cover its planned
     * index range exactly. Throws ConfigError on any violation
     * (including a shard absorbed twice); on throw the merger is
     * unchanged.
     */
    void addShardFile(const std::string &path, int shard_index,
                      int shard_count);

    /**
     * Same validation and absorption on already-read bytes
     * (@p path is for error messages only). The orchestrator uses
     * this so the bytes it digest-checked against the worker's
     * handshake are the exact bytes merged — no second read that
     * could observe a different file state on shared storage.
     */
    void addShardContent(const std::string &content,
                         const std::string &path, int shard_index,
                         int shard_count);

    bool complete() const { return coveredCases() == cases_; }
    std::size_t coveredCases() const { return entries_.size(); }

    /**
     * The merged document (byte-identical to the unsharded
     * binary's `--shard 0/1` output). Requires complete().
     */
    std::string mergedDocument() const;

  private:
    std::size_t cases_;
    std::string specDigest_;
    bool haveKind_ = false;
    sim::ShardKind kind_ = sim::ShardKind::Run;
    /** grid index -> canonical result JSON. */
    std::map<std::size_t, std::string> entries_;
};

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_STREAMING_MERGE_H
