/**
 * @file
 * The driver-side capability probe: before any worker is spawned
 * (locally, or on an agent host), the target binary is run with
 * `--cases` and must print exactly one bare case count. A binary
 * that does not speak the shard protocol — fig15 and tables 2/3
 * print closed-form values and have no sweep grid — fails here with
 * a one-line usage error naming the binary, instead of an opaque
 * failed-worker loop later. Shared by `regate_orch` and
 * `regate_agent` so both ends of a fleet reject the same way.
 */

#ifndef REGATE_ORCH_PROBE_H
#define REGATE_ORCH_PROBE_H

#include <cstddef>
#include <string>

namespace regate {
namespace orch {

/**
 * Probe @p bin with `--cases`; returns its grid size. With a
 * non-empty @p spec_path the probe runs `--spec spec_path --cases`,
 * so the count answers for the scenario grid the workers will
 * actually run. Throws ConfigError (one line, actionable) when the
 * binary is missing, not executable, exits non-zero, or prints
 * anything but a case count.
 */
std::size_t probeGridCases(const std::string &bin,
                           const std::string &spec_path = {});

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_PROBE_H
