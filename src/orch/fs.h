/**
 * @file
 * Tiny path helpers for the orchestration subsystem (whole-file IO
 * itself lives in common/fsio.h, shared with the bench CLI).
 */

#ifndef REGATE_ORCH_FS_H
#define REGATE_ORCH_FS_H

#include <filesystem>
#include <string>

#include "common/error.h"
#include "common/fsio.h"

namespace regate {
namespace orch {

using ::regate::readFile;
using ::regate::writeFile;

inline bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::exists(path, ec);
}

inline void
removeFileIfExists(const std::string &path)
{
    std::error_code ec;
    std::filesystem::remove(path, ec);
}

/** Atomic promotion of a validated attempt file to its final name. */
inline void
renameFile(const std::string &from, const std::string &to)
{
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    REGATE_CHECK(!ec, "cannot rename ", from, " -> ", to, ": ",
                 ec.message());
}

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_FS_H
