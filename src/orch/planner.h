/**
 * @file
 * Shard planning for the sweep orchestrator.
 *
 * The orchestrator splits a grid into MORE shards than it has worker
 * slots (the granularity factor), so work is assigned dynamically:
 * a straggling shard ties up one slot while the remaining shards
 * flow to the others, instead of one pre-assigned slice dominating
 * the whole run's wall clock. Shard boundaries come from the same
 * deterministic sim::shardRange planner the CLI `--shard i/N` flags
 * use, so an orchestrated run and a hand-launched run partition the
 * grid identically.
 *
 * The plan is persisted to a plan file in the run directory; a
 * resumed run MUST reuse the recorded shard count (shard files are
 * only index-aligned within one partition), so the plan file — not
 * the resumed command line — is authoritative for the split.
 */

#ifndef REGATE_ORCH_PLANNER_H
#define REGATE_ORCH_PLANNER_H

#include <cstddef>
#include <string>

namespace regate {
namespace orch {

/** The persisted decisions of one orchestrated run. */
struct OrchPlan
{
    std::size_t cases = 0;  ///< Total grid size of the target.
    int shards = 1;         ///< How many ways the grid is split.

    /**
     * Base name of the target binary. Checked on resume so a run
     * directory cannot be resumed with a *different* figure whose
     * grid merely has the same case count (e.g. fig21 vs fig22,
     * both 25 cases) — that would merge two figures' results into
     * one document with every digest still valid.
     */
    std::string bin;
};

/**
 * How many shards to split @p cases over for @p workers slots at
 * @p granularity shards per slot. At least 1 (so an empty grid
 * still produces one — empty — shard document), at most @p cases
 * (a shard with no work is pure process overhead).
 */
int planShardCount(std::size_t cases, int workers, int granularity);

/** Serialize a plan for the run directory (plain key=value lines). */
std::string planToText(const OrchPlan &plan);

/** Inverse of planToText; throws ConfigError on malformed input. */
OrchPlan planFromText(const std::string &text);

/** The plan file's name inside a run directory. */
std::string planFileName();

/** Final (validated, checkpointable) file name of shard @p index. */
std::string shardFileName(int index);

/**
 * In-progress attempt file name. Tagged with the orchestrator's pid
 * and a per-run attempt serial so an orphaned worker from a killed
 * orchestrator can never collide with (or be mistaken for) a resumed
 * run's attempt — only validated files are promoted to
 * shardFileName via rename.
 */
std::string attemptFileName(int index, long orch_pid, int serial);

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_PLANNER_H
