#include "orch/streaming_merge.h"

#include <utility>

#include "common/error.h"
#include "orch/fs.h"
#include "sim/sweep.h"

namespace regate {
namespace orch {

void
StreamingMerger::addShardFile(const std::string &path,
                              int shard_index, int shard_count)
{
    addShardContent(readFile(path), path, shard_index, shard_count);
}

void
StreamingMerger::addShardContent(const std::string &content,
                                 const std::string &path,
                                 int shard_index, int shard_count)
{
    // parseShard verifies the format version and both digest layers.
    auto doc = sim::parseShard(content);
    REGATE_CHECK(doc.cases == cases_, path, ": shard is for ",
                 doc.cases, " grid cases, this run has ", cases_);
    REGATE_CHECK(doc.shardIndex == shard_index &&
                     doc.shardCount == shard_count,
                 path, ": document says shard ", doc.shardIndex, "/",
                 doc.shardCount, ", expected ", shard_index, "/",
                 shard_count);
    REGATE_CHECK(!haveKind_ || doc.kind == kind_, path,
                 ": shard kind differs from previously merged "
                 "shards");
    REGATE_CHECK(doc.specDigest == specDigest_, path,
                 ": shard carries spec digest \"", doc.specDigest,
                 "\" but this run expects \"", specDigest_,
                 "\" — was it produced with a different --spec "
                 "file (or none)?");

    auto range = sim::shardRange(cases_, shard_index, shard_count);
    std::size_t count = doc.kind == sim::ShardKind::Run
                            ? doc.runs.size()
                            : doc.searches.size();
    REGATE_CHECK(count == range.size(), path, ": ", count,
                 " entries do not cover the planned range [",
                 range.begin, ", ", range.end, ")");

    // parseShard already built the canonical entry texts for its
    // digest verification; validate the whole batch before touching
    // the map so a failure leaves the merger untouched.
    std::size_t expect = range.begin;
    for (const auto &[index, json] : doc.entryTexts) {
        (void)json;
        REGATE_CHECK(index == expect, path, ": entry carries grid "
                     "index ", index, ", expected ", expect);
        REGATE_CHECK(!entries_.count(index), path, ": grid index ",
                     index, " was already merged (shard absorbed "
                     "twice?)");
        ++expect;
    }

    for (auto &[index, json] : doc.entryTexts)
        entries_.emplace(index, std::move(json));
    kind_ = doc.kind;
    haveKind_ = true;
}

std::string
StreamingMerger::mergedDocument() const
{
    REGATE_CHECK(complete(), "merged document requested with only ",
                 coveredCases(), " of ", cases_, " cases merged");
    std::vector<std::pair<std::size_t, std::string>> ordered(
        entries_.begin(), entries_.end());
    return sim::assembleShardDoc(kind_, cases_, 0, 1, ordered,
                                 specDigest_);
}

}  // namespace orch
}  // namespace regate
