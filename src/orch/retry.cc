#include "orch/retry.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace orch {

ShardScheduler::ShardScheduler(std::vector<int> pending, int slots,
                               RetryPolicy policy)
    : pending_(pending.begin(), pending.end()),
      total_(pending.size()), slots_(slots), policy_(policy)
{
    // Zero is allowed: an elastic fleet may open with no slots at
    // all (--join-port only) and grow via reviveSlot as agents
    // dial in.
    REGATE_CHECK(slots_ >= 0, "negative slot count ", slots_);
    REGATE_CHECK(policy_.maxAttempts > 0,
                 "retry policy must allow at least one attempt");
    int max_id = -1;
    for (int shard : pending) {
        REGATE_CHECK(shard >= 0, "negative shard id ", shard);
        max_id = std::max(max_id, shard);
    }
    states_.resize(static_cast<std::size_t>(max_id + 1));
}

const ShardScheduler::State &
ShardScheduler::stateOf(int shard) const
{
    REGATE_CHECK(shard >= 0 &&
                     static_cast<std::size_t>(shard) < states_.size(),
                 "unknown shard id ", shard);
    return states_[static_cast<std::size_t>(shard)];
}

ShardScheduler::State &
ShardScheduler::stateOf(int shard)
{
    return const_cast<State &>(
        static_cast<const ShardScheduler *>(this)->stateOf(shard));
}

int
ShardScheduler::nextFor(int slot)
{
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (slots_ > 1 && stateOf(*it).bannedSlot == slot)
            continue;
        int shard = *it;
        pending_.erase(it);
        ++stateOf(shard).attempts;
        return shard;
    }
    return -1;
}

void
ShardScheduler::onSuccess(int shard)
{
    (void)stateOf(shard);
    ++done_;
}

bool
ShardScheduler::onFailure(int shard, int slot)
{
    auto &state = stateOf(shard);
    state.bannedSlot = slot;
    if (state.attempts >= policy_.maxAttempts)
        return false;
    // Requeue at the back: fresh shards keep flowing while the
    // retried one waits for a different slot to free up.
    pending_.push_back(shard);
    return true;
}

int
ShardScheduler::attempts(int shard) const
{
    return stateOf(shard).attempts;
}

void
ShardScheduler::retireSlot()
{
    REGATE_CHECK(slots_ > 0, "retiring a slot from an empty fleet");
    --slots_;
}

void
ShardScheduler::reviveSlot()
{
    ++slots_;
}

int
ShardScheduler::beginSpeculative(int shard)
{
    auto &state = stateOf(shard);
    REGATE_CHECK(state.attempts < policy_.maxAttempts,
                 "shard ", shard, " has no attempt budget left to "
                 "speculate with");
    return ++state.attempts;
}

}  // namespace orch
}  // namespace regate
