/**
 * @file
 * Retry policy and dynamic shard scheduling for the orchestrator.
 *
 * Pure bookkeeping, no processes: the orchestrator asks
 * ShardScheduler which shard a freed worker slot should run next and
 * reports every attempt's outcome back. The scheduler enforces the
 * two fault-tolerance rules of the design:
 *
 *  - bounded retry: a shard gets at most RetryPolicy::maxAttempts
 *    attempts; exhausting them is a terminal orchestration failure
 *    (the shard files already completed stay on disk for --resume);
 *  - reassignment: a retried shard is withheld from the slot whose
 *    attempt just failed (when there is more than one slot), so a
 *    shard that dies from slot-local causes — a sick machine in a
 *    future multi-host pool, a worker wedged by its environment —
 *    makes progress somewhere else instead of failing in place.
 */

#ifndef REGATE_ORCH_RETRY_H
#define REGATE_ORCH_RETRY_H

#include <cstddef>
#include <deque>
#include <vector>

namespace regate {
namespace orch {

/** Bounded-retry knobs. */
struct RetryPolicy
{
    int maxAttempts = 3;  ///< Attempts per shard before giving up.
};

class ShardScheduler
{
  public:
    /**
     * @param pending  shard ids still needing a successful run (a
     *                 resumed run passes only the missing ones).
     * @param slots    worker slot count (disables the banned-slot
     *                 rule when 1 — there is nowhere else to go).
     */
    ShardScheduler(std::vector<int> pending, int slots,
                   RetryPolicy policy);

    /**
     * Next shard for an idle @p slot, or -1 if nothing assignable
     * right now (queue empty, or every pending shard is banned from
     * this slot). The returned shard is marked in-flight.
     */
    int nextFor(int slot);

    /** A successful, validated attempt. */
    void onSuccess(int shard);

    /**
     * A failed attempt (crash, timeout, invalid artifact) on
     * @p slot. Returns true when the shard was requeued, false when
     * its attempts are exhausted (terminal failure).
     */
    bool onFailure(int shard, int slot);

    /** Attempts started for @p shard so far. */
    int attempts(int shard) const;

    /**
     * A slot is permanently gone (its transport died — e.g. an
     * agent host lost mid-run). Shrinks the live-slot count the
     * banned-slot rule compares against, so when the fleet is down
     * to one live slot, retries stop being withheld from it instead
     * of deadlocking; the caller simply stops offering the dead
     * slot to nextFor.
     */
    void retireSlot();

    /**
     * The inverse of retireSlot: a slot came (back) into service —
     * a lost agent re-dialed in, or a fresh agent joined the fleet
     * mid-sweep. Re-grows the live-slot count so the banned-slot
     * rule re-engages the moment there is somewhere else to go
     * again.
     */
    void reviveSlot();

    /** Slots still in service (initial count minus retirements). */
    int liveSlots() const { return slots_; }

    /**
     * Begin a speculative duplicate attempt of an in-flight
     * @p shard (work-stealing: the queue is empty but a slot
     * idles). Charges the shard an attempt — the bounded-retry
     * budget covers speculation too — and returns the attempt
     * number. The shard is NOT taken from the queue: it is already
     * in flight elsewhere.
     */
    int beginSpeculative(int shard);

    /** Is the pending queue drained (shards may still be in
     *  flight)? */
    bool queueEmpty() const { return pending_.empty(); }

    bool allDone() const { return done_ == total_; }
    std::size_t completed() const { return done_; }

  private:
    struct State
    {
        int attempts = 0;
        int bannedSlot = -1;  ///< Slot of the last failed attempt.
    };

    const State &stateOf(int shard) const;
    State &stateOf(int shard);

    std::deque<int> pending_;
    std::vector<State> states_;  ///< Indexed by shard id.
    std::size_t total_ = 0;
    std::size_t done_ = 0;
    int slots_ = 1;
    RetryPolicy policy_;
};

}  // namespace orch
}  // namespace regate

#endif  // REGATE_ORCH_RETRY_H
