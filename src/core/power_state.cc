#include "core/power_state.h"

#include "common/error.h"

namespace regate {
namespace core {

std::string
powerModeName(PowerMode mode)
{
    switch (mode) {
      case PowerMode::Auto:
        return "auto";
      case PowerMode::On:
        return "on";
      case PowerMode::Off:
        return "off";
      case PowerMode::Sleep:
        return "sleep";
    }
    throw LogicError("unknown PowerMode");
}

void
UnitPowerState::setMode(PowerMode mode, Cycles now)
{
    mode_ = mode;
    switch (mode) {
      case PowerMode::Off:
      case PowerMode::Sleep:
        gateNow(now);
        break;
      case PowerMode::On:
        wake(now);
        break;
      case PowerMode::Auto:
        // Physical state unchanged; hardware policy takes over.
        break;
    }
}

void
UnitPowerState::gateNow(Cycles now)
{
    if (!poweredOn_)
        return;
    poweredOn_ = false;
    gatedSince_ = now;
    ++gateEvents_;
}

Cycles
UnitPowerState::wake(Cycles now)
{
    if (poweredOn_)
        return now >= wakeDone_ ? now : wakeDone_;
    gatedAccum_ += now - gatedSince_;
    poweredOn_ = true;
    wakeDone_ = now + wakeDelay_;
    return wakeDone_;
}

Cycles
UnitPowerState::gatedCycles(Cycles now) const
{
    Cycles total = gatedAccum_;
    if (!poweredOn_)
        total += now - gatedSince_;
    return total;
}

}  // namespace core
}  // namespace regate
