/**
 * @file
 * Software-visible power modes and the per-unit power-state manager
 * the NPU core pipeline uses to treat gated units as structural
 * hazards (§4.1 "Power state management in NPU core pipeline", §4.2).
 */

#ifndef REGATE_CORE_POWER_STATE_H
#define REGATE_CORE_POWER_STATE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace regate {
namespace core {

/**
 * The §4.2 power modes. `Auto` delegates to the hardware-managed
 * policy; `On`/`Off`/`Sleep` are software overrides set via setpm.
 */
enum class PowerMode : std::uint8_t { Auto, On, Off, Sleep };

/** Printable mode name. */
std::string powerModeName(PowerMode mode);

/**
 * Tracks the physical power state and readiness of one gateable unit.
 *
 * An instruction that needs the unit checks ready(); if the unit is
 * waking, the pipeline stalls until wakeCompleteCycle(). Operations
 * dispatched to a powered-off unit trigger a wake-up (the wake-up
 * signal has no effect if the unit is already on).
 */
class UnitPowerState
{
  public:
    /** @param wake_delay Cycles to power the unit back on. */
    explicit UnitPowerState(Cycles wake_delay)
        : wakeDelay_(wake_delay)
    {}

    PowerMode mode() const { return mode_; }

    /** True if the unit is physically powered (not gated/waking). */
    bool poweredOn() const { return poweredOn_ && wakeDone_ == 0; }

    /** True if an instruction can dispatch to the unit at @p now. */
    bool
    ready(Cycles now) const
    {
        return poweredOn_ && now >= wakeDone_;
    }

    /**
     * Software setpm or hardware policy changes the mode at @p now.
     * Switching to Off/Sleep gates the unit; switching to On starts a
     * wake-up if it was gated. Auto leaves the physical state to the
     * hardware policy (gateNow/wake below).
     */
    void setMode(PowerMode mode, Cycles now);

    /** Hardware idle-detection decision to gate at @p now (Auto). */
    void gateNow(Cycles now);

    /**
     * An operation arrived needing the unit at @p now. If gated, a
     * wake starts; returns the cycle at which the unit is usable
     * (now if already on).
     */
    Cycles wake(Cycles now);

    /** Cycle at which an in-progress wake completes (0 if none). */
    Cycles wakeCompleteCycle() const { return wakeDone_; }

    /** Cumulative cycles the unit spent gated. */
    Cycles gatedCycles(Cycles now) const;

    /** Number of gate events so far. */
    std::uint64_t gateEvents() const { return gateEvents_; }

  private:
    Cycles wakeDelay_;
    PowerMode mode_ = PowerMode::Auto;
    bool poweredOn_ = true;
    Cycles wakeDone_ = 0;
    Cycles gatedSince_ = 0;
    Cycles gatedAccum_ = 0;
    std::uint64_t gateEvents_ = 0;
};

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_POWER_STATE_H
