/**
 * @file
 * Half-open cycle intervals and utilities for turning per-cycle
 * activity traces (from the cycle-accurate simulators) into interval
 * lists. The analytical gating engine consumes the multiset of idle
 * gaps between intervals.
 */

#ifndef REGATE_CORE_INTERVAL_H
#define REGATE_CORE_INTERVAL_H

#include <vector>

#include "common/units.h"

namespace regate {
namespace core {

/** Half-open interval [start, end) in cycles. */
struct Interval
{
    Cycles start = 0;
    Cycles end = 0;

    Cycles length() const { return end - start; }
    bool empty() const { return end <= start; }

    bool
    operator==(const Interval &o) const
    {
        return start == o.start && end == o.end;
    }
};

/**
 * Sort intervals and merge overlapping or abutting ones. Throws
 * ConfigError on malformed (end < start) input.
 */
std::vector<Interval> normalize(std::vector<Interval> intervals);

/** Total covered length of a normalized interval list. */
Cycles coveredLength(const std::vector<Interval> &intervals);

/**
 * Complement of a normalized interval list within [0, span):
 * the idle intervals.
 */
std::vector<Interval> complementWithin(
    const std::vector<Interval> &intervals, Cycles span);

/** Build intervals from a boolean per-cycle trace (true = active). */
std::vector<Interval> intervalsFromTrace(const std::vector<bool> &trace);

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_INTERVAL_H
