/**
 * @file
 * The ReGate gating engine: evaluates what a gating policy does to one
 * unit's static energy given its activity timeline.
 *
 * Three mechanisms are modeled, matching the paper's design space:
 *
 *  - HwDetect: the idle-detection FSM (§4.1). Gates after observing
 *    `detectionWindow` idle cycles (BET/3 [7]); the window is wasted at
 *    full leakage, the next access pays an exposed wake-up delay, and
 *    the FSM happily gates intervals below break-even (it cannot see
 *    the future) — this is why ReGate-Base loses energy on short gaps.
 *
 *  - SwExact: compiler-managed setpm (§4.3). Gates exactly the idle
 *    intervals that pass the BET-based policy (idle > BET and idle >
 *    2x on/off delay); transitions fit inside the interval and the
 *    wake-up is issued early, so no delay is exposed.
 *
 *  - Ideal: the §6.1 roofline — zero gated leakage, zero delay, every
 *    idle cycle gated, no transition energy.
 */

#ifndef REGATE_CORE_GATING_ENGINE_H
#define REGATE_CORE_GATING_ENGINE_H

#include <cstdint>

#include "arch/gating_params.h"
#include "core/activity.h"

namespace regate {
namespace core {

/** How a unit's idleness is exploited. */
enum class GatingMode { None, HwDetect, SwExact, Ideal };

/** Printable mode name. */
std::string gatingModeName(GatingMode mode);

/** Static description of the unit being gated. */
struct UnitSpec
{
    arch::GatedUnit kind;    ///< Selects Table 3 delay/BET/leakage.
    double staticPower = 0;  ///< Active-state static power, watts.
    double cycleTime = 0;    ///< Seconds per cycle.
};

/** Outcome of evaluating one unit timeline under one policy. */
struct GatingResult
{
    Cycles span = 0;            ///< Timeline length, cycles.
    Cycles activeCycles = 0;    ///< Cycles the unit did work.
    Cycles gatedCycles = 0;     ///< Cycles spent in the gated state.
    double staticEnergyNoPg = 0;///< Baseline static energy, J.
    double staticEnergy = 0;    ///< Static energy with gating, J
                                ///< (includes transition overheads).
    double transitionEnergy = 0;///< Energy of on/off transitions, J.
    std::uint64_t gateEvents = 0;  ///< Number of gated intervals.
    Cycles exposedDelay = 0;    ///< Wake-up cycles added to runtime.

    /** Net static energy saved (can be negative for HwDetect). */
    double saved() const { return staticEnergyNoPg - staticEnergy; }

    /** Merge results of independent units. */
    GatingResult &operator+=(const GatingResult &o);
};

/**
 * Evaluate @p mode on one unit over @p timeline.
 *
 * @param timeline Activity of the unit (span, active cycles, idle-gap
 *                 multiset).
 * @param spec     Unit kind, static power, cycle time.
 * @param mode     Gating mechanism to apply.
 * @param params   Delays, BETs, windows, leakage ratios.
 */
GatingResult evaluateTimeline(const ActivityTimeline &timeline,
                              const UnitSpec &spec, GatingMode mode,
                              const arch::GatingParams &params);

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_GATING_ENGINE_H
