#include "core/bet.h"

#include "common/error.h"

namespace regate {
namespace core {

double
transitionEnergy(double unit_static_power, Cycles bet,
                 Cycles on_off_delay, double gated_leakage,
                 double cycle_time)
{
    REGATE_CHECK(unit_static_power >= 0, "negative static power");
    REGATE_CHECK(gated_leakage >= 0 && gated_leakage <= 1,
                 "leakage ratio out of [0,1]: ", gated_leakage);
    Cycles effective = bet > 2 * on_off_delay ? bet - 2 * on_off_delay : 0;
    return (1.0 - gated_leakage) * unit_static_power * cycle_time *
           static_cast<double>(effective);
}

bool
shouldGateSw(Cycles idle_len, Cycles bet, Cycles on_off_delay)
{
    return idle_len > bet && idle_len > 2 * on_off_delay;
}

bool
wouldGateHw(Cycles idle_len, Cycles detection_window)
{
    return idle_len >= detection_window;
}

double
gatingSaving(Cycles gated_cycles, double unit_static_power,
             double gated_leakage, double transition_j, double cycle_time)
{
    return (1.0 - gated_leakage) * unit_static_power * cycle_time *
               static_cast<double>(gated_cycles) -
           transition_j;
}

}  // namespace core
}  // namespace regate
