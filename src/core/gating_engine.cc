#include "core/gating_engine.h"

#include "common/error.h"
#include "core/bet.h"

namespace regate {
namespace core {

std::string
gatingModeName(GatingMode mode)
{
    switch (mode) {
      case GatingMode::None:
        return "none";
      case GatingMode::HwDetect:
        return "hw-detect";
      case GatingMode::SwExact:
        return "sw-exact";
      case GatingMode::Ideal:
        return "ideal";
    }
    throw LogicError("unknown GatingMode");
}

GatingResult &
GatingResult::operator+=(const GatingResult &o)
{
    span += o.span;
    activeCycles += o.activeCycles;
    gatedCycles += o.gatedCycles;
    staticEnergyNoPg += o.staticEnergyNoPg;
    staticEnergy += o.staticEnergy;
    transitionEnergy += o.transitionEnergy;
    gateEvents += o.gateEvents;
    exposedDelay += o.exposedDelay;
    return *this;
}

GatingResult
evaluateTimeline(const ActivityTimeline &timeline, const UnitSpec &spec,
                 GatingMode mode, const arch::GatingParams &params)
{
    REGATE_CHECK(spec.staticPower >= 0 && spec.cycleTime > 0,
                 "bad unit spec for ", arch::gatedUnitName(spec.kind));

    const double p = spec.staticPower;
    const double tau = spec.cycleTime;
    const double leak = params.gatedLeakage(spec.kind);
    const Cycles delay = params.onOffDelay(spec.kind);
    const Cycles bet = params.breakEven(spec.kind);
    const Cycles window = params.detectionWindow(spec.kind);

    GatingResult r;
    r.span = timeline.span();
    r.activeCycles = timeline.activeCycles();
    r.staticEnergyNoPg = p * tau * static_cast<double>(r.span);

    // Active cycles always burn full static power.
    double energy = p * tau * static_cast<double>(r.activeCycles);

    const double e_tr =
        transitionEnergy(p, bet, delay, leak, tau);

    for (const auto &gap : timeline.gaps()) {
        const Cycles len = gap.length;
        const double n = static_cast<double>(gap.count);
        const double full_gap_j = p * tau * static_cast<double>(len);

        switch (mode) {
          case GatingMode::None:
            energy += n * full_gap_j;
            continue;

          case GatingMode::Ideal:
            // Every idle cycle gated at zero leakage, free transitions.
            r.gatedCycles += len * gap.count;
            continue;

          case GatingMode::SwExact: {
            if (!shouldGateSw(len, bet, delay)) {
                energy += n * full_gap_j;
                continue;
            }
            // Both transitions fit inside the interval (2 * delay at
            // full power), the remainder is gated at residual leakage,
            // and the compiler pre-wakes so nothing is exposed.
            const Cycles gated = len - 2 * delay;
            energy += n * (p * tau * static_cast<double>(2 * delay) +
                           leak * p * tau * static_cast<double>(gated) +
                           e_tr);
            r.transitionEnergy += n * e_tr;
            r.gatedCycles += gated * gap.count;
            r.gateEvents += gap.count;
            continue;
          }

          case GatingMode::HwDetect: {
            if (!wouldGateHw(len, window)) {
                energy += n * full_gap_j;
                continue;
            }
            // The detection window is wasted at full power, the rest
            // of the interval is gated, and the next access eats the
            // wake-up delay as a runtime stall.
            const Cycles gated = len - window;
            energy += n * (p * tau * static_cast<double>(window) +
                           leak * p * tau * static_cast<double>(gated) +
                           e_tr);
            r.transitionEnergy += n * e_tr;
            r.gatedCycles += gated * gap.count;
            r.gateEvents += gap.count;
            r.exposedDelay += delay * gap.count;
            continue;
          }
        }
        throw LogicError("unreachable gating mode");
    }

    r.staticEnergy = energy;
    return r;
}

}  // namespace core
}  // namespace regate
