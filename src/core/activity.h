/**
 * @file
 * Compact activity timelines.
 *
 * A component's activity inside an operator is highly regular (§4.3,
 * Fig. 15: a VU is active 2 cycles out of every 16 while draining SA
 * outputs), so instead of storing per-cycle traces the simulator keeps
 * a compressed form: total span, total active cycles, the number of
 * activations (wake events), and the *multiset of idle-gap lengths*
 * stored as (length, count) groups. That multiset is exactly what the
 * BET-based gating policy needs, and it composes in O(log G) per
 * operator — G being the number of distinct gap lengths — even for
 * workloads spanning trillions of cycles.
 *
 * The gap multiset is kept sorted ascending by length as a class
 * invariant, so membership updates are binary searches, concatenation
 * is an ordered merge, and repetition is O(log G) seam arithmetic
 * rather than a loop over the repeat count.
 */

#ifndef REGATE_CORE_ACTIVITY_H
#define REGATE_CORE_ACTIVITY_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/interval.h"

namespace regate {
namespace core {

/** A group of identical idle gaps: @c count gaps of @c length cycles. */
struct GapGroup
{
    Cycles length = 0;
    std::uint64_t count = 0;

    bool
    operator==(const GapGroup &o) const
    {
        return length == o.length && count == o.count;
    }
};

/**
 * Compressed activity timeline of one hardware unit over a stretch of
 * execution.
 *
 * Invariants: activeCycles + sum(gap lengths) == span; gaps_ sorted
 * ascending by length with no duplicate lengths and no zero counts;
 * leadingIdle/trailingIdle describe the first/last gap so that two
 * timelines can be concatenated with gap merging at the seam.
 */
class ActivityTimeline
{
  public:
    ActivityTimeline() = default;

    /** Unit busy for the whole span. */
    static ActivityTimeline allActive(Cycles span);

    /** Unit idle for the whole span. */
    static ActivityTimeline allIdle(Cycles span);

    /**
     * Periodic bursts: starting at @p offset, a burst of @p active_len
     * cycles every @p period cycles, as many whole bursts as fit in
     * @p span. Gaps before the first and after the last burst become
     * leading/trailing idle.
     */
    static ActivityTimeline periodic(Cycles span, Cycles offset,
                                     Cycles active_len, Cycles period);

    /** From an explicit (normalized or not) interval list. */
    static ActivityTimeline fromIntervals(Cycles span,
                                          std::vector<Interval> active);

    /**
     * Reassemble a timeline from its stored compressed form (the
     * exact fields the accessors expose) — the deserialization path
     * of sim/serialize.h. @p gaps must be sorted ascending with no
     * duplicate lengths; all invariants are re-checked, so a
     * corrupted or hand-edited shard file fails loudly here.
     */
    static ActivityTimeline fromParts(Cycles span, Cycles active,
                                      std::uint64_t activations,
                                      std::vector<GapGroup> gaps,
                                      Cycles leading_idle,
                                      Cycles trailing_idle);

    /** Append another timeline after this one, merging seam gaps. */
    void append(const ActivityTimeline &next);

    /** Scale the number of repetitions (e.g., one layer -> N layers). */
    ActivityTimeline repeated(std::uint64_t times) const;

    Cycles span() const { return span_; }
    Cycles activeCycles() const { return active_; }
    Cycles idleCycles() const { return span_ - active_; }

    /** Number of activations == wake events if fully gated when idle. */
    std::uint64_t activations() const { return activations_; }

    /** Idle-gap multiset, ascending by length. */
    const std::vector<GapGroup> &gaps() const { return gaps_; }

    /** Idle cycles before the first activation (0 if none). */
    Cycles leadingIdle() const { return leadingIdle_; }

    /** Idle cycles after the last activation (0 if none). */
    Cycles trailingIdle() const { return trailingIdle_; }

    /** Fraction of the span the unit is active. */
    double
    utilization() const
    {
        return span_ > 0 ?
            static_cast<double>(active_) / static_cast<double>(span_) : 0.0;
    }

    /** Exact structural equality (all fields, full gap multiset). */
    bool operator==(const ActivityTimeline &o) const;

    /** Verify internal invariants; throws LogicError on violation. */
    void checkInvariants() const;

  private:
    /** Add @p count gaps of @p length, keeping gaps_ sorted. O(log G). */
    void insertGap(Cycles length, std::uint64_t count);

    /** Remove @p count gaps of @p length; throws if absent. O(log G). */
    void removeGaps(Cycles length, std::uint64_t count);

    /**
     * Ordered-merge @p other into gaps_, dropping one gap of
     * @p skip_length from @p other (its seam-side gap). O(G).
     */
    void mergeGaps(const std::vector<GapGroup> &other, Cycles skip_length);

    Cycles span_ = 0;
    Cycles active_ = 0;
    std::uint64_t activations_ = 0;
    std::vector<GapGroup> gaps_;
    Cycles leadingIdle_ = 0;
    Cycles trailingIdle_ = 0;
};

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_ACTIVITY_H
