#include "core/interval.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace core {

std::vector<Interval>
normalize(std::vector<Interval> intervals)
{
    for (const auto &iv : intervals)
        REGATE_CHECK(iv.end >= iv.start, "interval with end < start: [",
                     iv.start, ", ", iv.end, ")");
    std::erase_if(intervals, [](const Interval &iv) { return iv.empty(); });
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });
    std::vector<Interval> out;
    for (const auto &iv : intervals) {
        if (!out.empty() && iv.start <= out.back().end)
            out.back().end = std::max(out.back().end, iv.end);
        else
            out.push_back(iv);
    }
    return out;
}

Cycles
coveredLength(const std::vector<Interval> &intervals)
{
    Cycles total = 0;
    for (const auto &iv : intervals)
        total += iv.length();
    return total;
}

std::vector<Interval>
complementWithin(const std::vector<Interval> &intervals, Cycles span)
{
    std::vector<Interval> out;
    Cycles cursor = 0;
    for (const auto &iv : intervals) {
        REGATE_CHECK(iv.end <= span, "interval [", iv.start, ", ", iv.end,
                     ") exceeds span ", span);
        if (iv.start > cursor)
            out.push_back({cursor, iv.start});
        cursor = iv.end;
    }
    if (cursor < span)
        out.push_back({cursor, span});
    return out;
}

std::vector<Interval>
intervalsFromTrace(const std::vector<bool> &trace)
{
    std::vector<Interval> out;
    Cycles start = 0;
    bool in_run = false;
    for (Cycles i = 0; i < trace.size(); ++i) {
        if (trace[i] && !in_run) {
            start = i;
            in_run = true;
        } else if (!trace[i] && in_run) {
            out.push_back({start, i});
            in_run = false;
        }
    }
    if (in_run)
        out.push_back({start, trace.size()});
    return out;
}

}  // namespace core
}  // namespace regate
