#include "core/interval.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace core {

std::vector<Interval>
normalize(std::vector<Interval> intervals)
{
    for (const auto &iv : intervals)
        REGATE_CHECK(iv.end >= iv.start, "interval with end < start: [",
                     iv.start, ", ", iv.end, ")");
    std::erase_if(intervals, [](const Interval &iv) { return iv.empty(); });
    auto by_start = [](const Interval &a, const Interval &b) {
        return a.start < b.start;
    };
    // Traces and generators emit already-ordered intervals; sorting is
    // only needed for adversarial input.
    if (!std::is_sorted(intervals.begin(), intervals.end(), by_start))
        std::sort(intervals.begin(), intervals.end(), by_start);
    std::vector<Interval> out;
    out.reserve(intervals.size());
    for (const auto &iv : intervals) {
        if (!out.empty() && iv.start <= out.back().end)
            out.back().end = std::max(out.back().end, iv.end);
        else
            out.push_back(iv);
    }
    return out;
}

Cycles
coveredLength(const std::vector<Interval> &intervals)
{
    Cycles total = 0;
    for (const auto &iv : intervals)
        total += iv.length();
    return total;
}

std::vector<Interval>
complementWithin(const std::vector<Interval> &intervals, Cycles span)
{
    std::vector<Interval> out;
    out.reserve(intervals.size() + 1);
    Cycles cursor = 0;
    for (const auto &iv : intervals) {
        REGATE_CHECK(iv.end <= span, "interval [", iv.start, ", ", iv.end,
                     ") exceeds span ", span);
        if (iv.start > cursor)
            out.push_back({cursor, iv.start});
        cursor = iv.end;
    }
    if (cursor < span)
        out.push_back({cursor, span});
    return out;
}

std::vector<Interval>
intervalsFromTrace(const std::vector<bool> &trace)
{
    std::vector<Interval> out;
    Cycles start = 0;
    bool in_run = false;
    for (Cycles i = 0; i < trace.size(); ++i) {
        if (trace[i] && !in_run) {
            start = i;
            in_run = true;
        } else if (!trace[i] && in_run) {
            out.push_back({start, i});
            in_run = false;
        }
    }
    if (in_run)
        out.push_back({start, trace.size()});
    return out;
}

}  // namespace core
}  // namespace regate
