#include "core/activity.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace regate {
namespace core {

ActivityTimeline
ActivityTimeline::allActive(Cycles span)
{
    ActivityTimeline t;
    t.span_ = span;
    t.active_ = span;
    t.activations_ = span > 0 ? 1 : 0;
    return t;
}

ActivityTimeline
ActivityTimeline::allIdle(Cycles span)
{
    ActivityTimeline t;
    t.span_ = span;
    if (span > 0) {
        t.gaps_.push_back({span, 1});
        t.leadingIdle_ = span;
        t.trailingIdle_ = span;
    }
    return t;
}

ActivityTimeline
ActivityTimeline::periodic(Cycles span, Cycles offset, Cycles active_len,
                           Cycles period)
{
    REGATE_CHECK(period > 0, "periodic: period must be positive");
    REGATE_CHECK(active_len > 0, "periodic: active_len must be positive");
    REGATE_CHECK(active_len <= period,
                 "periodic: active_len ", active_len, " > period ", period);

    if (span < offset + active_len)
        return allIdle(span);

    std::uint64_t reps = (span - offset - active_len) / period + 1;

    ActivityTimeline t;
    t.span_ = span;
    t.active_ = active_len * reps;
    t.activations_ = reps;
    t.leadingIdle_ = offset;
    Cycles last_end = offset + (reps - 1) * period + active_len;
    t.trailingIdle_ = span - last_end;

    Cycles inner_gap = period - active_len;
    if (inner_gap > 0 && reps > 1)
        t.addGap(inner_gap, reps - 1);
    if (t.leadingIdle_ > 0)
        t.addGap(t.leadingIdle_, 1);
    if (t.trailingIdle_ > 0)
        t.addGap(t.trailingIdle_, 1);
    t.sortGaps();
    return t;
}

ActivityTimeline
ActivityTimeline::fromIntervals(Cycles span, std::vector<Interval> active)
{
    auto norm = normalize(std::move(active));
    ActivityTimeline t;
    t.span_ = span;
    t.active_ = coveredLength(norm);
    t.activations_ = norm.size();

    std::map<Cycles, std::uint64_t> groups;
    auto idle = complementWithin(norm, span);
    for (const auto &gap : idle)
        groups[gap.length()]++;
    for (const auto &[len, cnt] : groups)
        t.gaps_.push_back({len, cnt});

    if (!idle.empty() && idle.front().start == 0)
        t.leadingIdle_ = idle.front().length();
    if (!idle.empty() && idle.back().end == span)
        t.trailingIdle_ = idle.back().length();
    return t;
}

void
ActivityTimeline::addGap(Cycles length, std::uint64_t count)
{
    if (length == 0 || count == 0)
        return;
    for (auto &g : gaps_) {
        if (g.length == length) {
            g.count += count;
            return;
        }
    }
    gaps_.push_back({length, count});
}

void
ActivityTimeline::sortGaps()
{
    std::sort(gaps_.begin(), gaps_.end(),
              [](const GapGroup &a, const GapGroup &b) {
                  return a.length < b.length;
              });
}

namespace {

/** Remove one gap of exactly @p length from @p gaps (if length > 0). */
void
removeOneGap(std::vector<GapGroup> &gaps, Cycles length)
{
    if (length == 0)
        return;
    for (auto it = gaps.begin(); it != gaps.end(); ++it) {
        if (it->length == length) {
            if (--it->count == 0)
                gaps.erase(it);
            return;
        }
    }
    throw LogicError("removeOneGap: no gap of requested length");
}

}  // namespace

void
ActivityTimeline::append(const ActivityTimeline &next)
{
    if (next.span_ == 0)
        return;
    if (span_ == 0) {
        *this = next;
        return;
    }

    bool a_ends_active = active_ > 0 && trailingIdle_ == 0;
    bool b_starts_active = next.active_ > 0 && next.leadingIdle_ == 0;
    bool a_all_idle = active_ == 0;
    bool b_all_idle = next.active_ == 0;

    Cycles seam = trailingIdle_ + next.leadingIdle_;

    removeOneGap(gaps_, trailingIdle_);
    std::vector<GapGroup> b_gaps = next.gaps_;
    removeOneGap(b_gaps, next.leadingIdle_);
    for (const auto &g : b_gaps)
        addGap(g.length, g.count);
    addGap(seam, 1);
    sortGaps();

    activations_ += next.activations_;
    if (seam == 0 && a_ends_active && b_starts_active)
        activations_ -= 1;

    span_ += next.span_;
    active_ += next.active_;
    leadingIdle_ = a_all_idle ? seam : leadingIdle_;
    trailingIdle_ = b_all_idle ? seam : next.trailingIdle_;
}

ActivityTimeline
ActivityTimeline::repeated(std::uint64_t times) const
{
    if (times == 0)
        return ActivityTimeline();
    if (times == 1 || span_ == 0)
        return *this;

    ActivityTimeline t;
    t.span_ = span_ * times;

    if (active_ == 0)
        return allIdle(t.span_);

    t.active_ = active_ * times;
    t.gaps_ = gaps_;
    for (auto &g : t.gaps_)
        g.count *= times;

    Cycles seam = trailingIdle_ + leadingIdle_;
    std::uint64_t seams = times - 1;
    for (std::uint64_t i = 0; i < seams; ++i) {
        removeOneGap(t.gaps_, trailingIdle_);
        removeOneGap(t.gaps_, leadingIdle_);
    }
    t.addGap(seam, seams);
    t.sortGaps();

    t.activations_ = activations_ * times - (seam == 0 ? seams : 0);
    t.leadingIdle_ = leadingIdle_;
    t.trailingIdle_ = trailingIdle_;
    t.checkInvariants();
    return t;
}

void
ActivityTimeline::checkInvariants() const
{
    Cycles gap_total = 0;
    for (const auto &g : gaps_) {
        REGATE_ASSERT(g.length > 0 && g.count > 0,
                      "timeline has degenerate gap group");
        gap_total += g.length * g.count;
    }
    REGATE_ASSERT(active_ + gap_total == span_,
                  "timeline accounting broken: active ", active_,
                  " + gaps ", gap_total, " != span ", span_);
    REGATE_ASSERT((active_ == 0) == (activations_ == 0),
                  "activations inconsistent with active cycles");
}

}  // namespace core
}  // namespace regate
