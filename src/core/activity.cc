#include "core/activity.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace regate {
namespace core {

namespace {

/** Binary search for the group of exactly @p length in a sorted list. */
std::vector<GapGroup>::iterator
findGroup(std::vector<GapGroup> &gaps, Cycles length)
{
    return std::lower_bound(gaps.begin(), gaps.end(), length,
                            [](const GapGroup &g, Cycles len) {
                                return g.length < len;
                            });
}

}  // namespace

ActivityTimeline
ActivityTimeline::allActive(Cycles span)
{
    ActivityTimeline t;
    t.span_ = span;
    t.active_ = span;
    t.activations_ = span > 0 ? 1 : 0;
    return t;
}

ActivityTimeline
ActivityTimeline::allIdle(Cycles span)
{
    ActivityTimeline t;
    t.span_ = span;
    if (span > 0) {
        t.gaps_.push_back({span, 1});
        t.leadingIdle_ = span;
        t.trailingIdle_ = span;
    }
    return t;
}

ActivityTimeline
ActivityTimeline::periodic(Cycles span, Cycles offset, Cycles active_len,
                           Cycles period)
{
    REGATE_CHECK(period > 0, "periodic: period must be positive");
    REGATE_CHECK(active_len > 0, "periodic: active_len must be positive");
    REGATE_CHECK(active_len <= period,
                 "periodic: active_len ", active_len, " > period ", period);

    if (span < offset + active_len)
        return allIdle(span);

    std::uint64_t reps = (span - offset - active_len) / period + 1;

    ActivityTimeline t;
    t.span_ = span;
    t.active_ = active_len * reps;
    t.activations_ = reps;
    t.leadingIdle_ = offset;
    Cycles last_end = offset + (reps - 1) * period + active_len;
    t.trailingIdle_ = span - last_end;

    Cycles inner_gap = period - active_len;
    if (inner_gap > 0 && reps > 1)
        t.insertGap(inner_gap, reps - 1);
    if (t.leadingIdle_ > 0)
        t.insertGap(t.leadingIdle_, 1);
    if (t.trailingIdle_ > 0)
        t.insertGap(t.trailingIdle_, 1);
    return t;
}

ActivityTimeline
ActivityTimeline::fromIntervals(Cycles span, std::vector<Interval> active)
{
    auto norm = normalize(std::move(active));
    ActivityTimeline t;
    t.span_ = span;
    t.active_ = coveredLength(norm);
    t.activations_ = norm.size();

    std::map<Cycles, std::uint64_t> groups;
    auto idle = complementWithin(norm, span);
    for (const auto &gap : idle)
        groups[gap.length()]++;
    t.gaps_.reserve(groups.size());
    for (const auto &[len, cnt] : groups)
        t.gaps_.push_back({len, cnt});

    if (!idle.empty() && idle.front().start == 0)
        t.leadingIdle_ = idle.front().length();
    if (!idle.empty() && idle.back().end == span)
        t.trailingIdle_ = idle.back().length();
    return t;
}

ActivityTimeline
ActivityTimeline::fromParts(Cycles span, Cycles active,
                            std::uint64_t activations,
                            std::vector<GapGroup> gaps,
                            Cycles leading_idle, Cycles trailing_idle)
{
    ActivityTimeline t;
    t.span_ = span;
    t.active_ = active;
    t.activations_ = activations;
    t.gaps_ = std::move(gaps);
    t.leadingIdle_ = leading_idle;
    t.trailingIdle_ = trailing_idle;
    t.checkInvariants();
    REGATE_CHECK(leading_idle <= span && trailing_idle <= span,
                 "fromParts: leading/trailing idle exceeds span");
    return t;
}

void
ActivityTimeline::insertGap(Cycles length, std::uint64_t count)
{
    if (length == 0 || count == 0)
        return;
    auto it = findGroup(gaps_, length);
    if (it != gaps_.end() && it->length == length)
        it->count += count;
    else
        gaps_.insert(it, {length, count});
}

void
ActivityTimeline::removeGaps(Cycles length, std::uint64_t count)
{
    if (length == 0 || count == 0)
        return;
    auto it = findGroup(gaps_, length);
    if (it == gaps_.end() || it->length != length || it->count < count)
        throw LogicError("removeGaps: fewer than requested gaps of "
                         "requested length");
    it->count -= count;
    if (it->count == 0)
        gaps_.erase(it);
}

void
ActivityTimeline::mergeGaps(const std::vector<GapGroup> &other,
                            Cycles skip_length)
{
    if (other.empty()) {
        REGATE_ASSERT(skip_length == 0,
                      "mergeGaps: seam gap missing from other timeline");
        return;
    }

    std::vector<GapGroup> merged;
    merged.reserve(gaps_.size() + other.size());
    auto push = [&merged](Cycles length, std::uint64_t count) {
        if (count == 0)
            return;
        if (!merged.empty() && merged.back().length == length)
            merged.back().count += count;
        else
            merged.push_back({length, count});
    };

    bool skipped = skip_length == 0;
    std::size_t i = 0, j = 0;
    while (i < gaps_.size() || j < other.size()) {
        bool take_mine = j >= other.size() ||
                         (i < gaps_.size() &&
                          gaps_[i].length <= other[j].length);
        if (take_mine) {
            push(gaps_[i].length, gaps_[i].count);
            ++i;
        } else {
            std::uint64_t count = other[j].count;
            if (!skipped && other[j].length == skip_length) {
                --count;
                skipped = true;
            }
            push(other[j].length, count);
            ++j;
        }
    }
    REGATE_ASSERT(skipped,
                  "mergeGaps: seam gap missing from other timeline");
    gaps_ = std::move(merged);
}

void
ActivityTimeline::append(const ActivityTimeline &next)
{
    if (next.span_ == 0)
        return;
    if (span_ == 0) {
        *this = next;
        return;
    }
    if (&next == this) {
        ActivityTimeline copy = next;
        append(copy);
        return;
    }

    bool a_ends_active = active_ > 0 && trailingIdle_ == 0;
    bool b_starts_active = next.active_ > 0 && next.leadingIdle_ == 0;
    bool a_all_idle = active_ == 0;
    bool b_all_idle = next.active_ == 0;

    Cycles seam = trailingIdle_ + next.leadingIdle_;

    removeGaps(trailingIdle_, 1);
    mergeGaps(next.gaps_, next.leadingIdle_);
    insertGap(seam, 1);

    activations_ += next.activations_;
    if (seam == 0 && a_ends_active && b_starts_active)
        activations_ -= 1;

    span_ += next.span_;
    active_ += next.active_;
    leadingIdle_ = a_all_idle ? seam : leadingIdle_;
    trailingIdle_ = b_all_idle ? seam : next.trailingIdle_;
}

ActivityTimeline
ActivityTimeline::repeated(std::uint64_t times) const
{
    if (times == 0)
        return ActivityTimeline();
    if (times == 1 || span_ == 0)
        return *this;

    ActivityTimeline t;
    t.span_ = span_ * times;

    if (active_ == 0)
        return allIdle(t.span_);

    t.active_ = active_ * times;
    t.gaps_ = gaps_;
    for (auto &g : t.gaps_)
        g.count *= times;

    // Each of the times-1 seams fuses one trailing and one leading gap
    // into a single seam gap; the whole adjustment is three O(log G)
    // multiset updates instead of a loop over the repeat count.
    Cycles seam = trailingIdle_ + leadingIdle_;
    std::uint64_t seams = times - 1;
    t.removeGaps(trailingIdle_, seams);
    t.removeGaps(leadingIdle_, seams);
    t.insertGap(seam, seams);

    t.activations_ = activations_ * times - (seam == 0 ? seams : 0);
    t.leadingIdle_ = leadingIdle_;
    t.trailingIdle_ = trailingIdle_;
    t.checkInvariants();
    return t;
}

bool
ActivityTimeline::operator==(const ActivityTimeline &o) const
{
    return span_ == o.span_ && active_ == o.active_ &&
           activations_ == o.activations_ && gaps_ == o.gaps_ &&
           leadingIdle_ == o.leadingIdle_ &&
           trailingIdle_ == o.trailingIdle_;
}

void
ActivityTimeline::checkInvariants() const
{
    Cycles gap_total = 0;
    Cycles prev_len = 0;
    for (const auto &g : gaps_) {
        REGATE_ASSERT(g.length > 0 && g.count > 0,
                      "timeline has degenerate gap group");
        REGATE_ASSERT(g.length > prev_len,
                      "timeline gap groups unsorted or duplicated");
        prev_len = g.length;
        gap_total += g.length * g.count;
    }
    REGATE_ASSERT(active_ + gap_total == span_,
                  "timeline accounting broken: active ", active_,
                  " + gaps ", gap_total, " != span ", span_);
    REGATE_ASSERT((active_ == 0) == (activations_ == 0),
                  "activations inconsistent with active cycles");
}

}  // namespace core
}  // namespace regate
