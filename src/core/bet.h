/**
 * @file
 * Break-even-time (BET) arithmetic (§2.3, §4.3).
 *
 * Powering a unit off and back on costs extra dynamic energy; gating
 * only pays off when the idle interval is longer than the BET. The
 * ReGate compiler policy additionally requires the interval to exceed
 * 2x the power-on/off delay so the transitions fit inside the idle
 * window without delaying execution.
 */

#ifndef REGATE_CORE_BET_H
#define REGATE_CORE_BET_H

#include "arch/gating_params.h"
#include "common/units.h"

namespace regate {
namespace core {

/**
 * Energy cost of one full off+on transition, joules.
 *
 * Defined by the break-even relation: an idle interval of exactly BET
 * cycles saves nothing, i.e.
 *   (1 - leak) * P * tau * (BET - 2 * delay) == E_transition.
 *
 * @param unit_static_power  Active-state static power of the unit, W.
 * @param bet                Break-even time, cycles.
 * @param on_off_delay       Power on/off delay, cycles.
 * @param gated_leakage      Residual leakage fraction when gated.
 * @param cycle_time         Seconds per cycle.
 */
double transitionEnergy(double unit_static_power, Cycles bet,
                        Cycles on_off_delay, double gated_leakage,
                        double cycle_time);

/**
 * The §4.3 software policy: gate only if the idle interval exceeds
 * both the BET and 2x the on/off delay.
 */
bool shouldGateSw(Cycles idle_len, Cycles bet, Cycles on_off_delay);

/**
 * The hardware idle-detection policy: the FSM gates whenever the unit
 * has been idle for the detection window; it cannot see the future, so
 * it gates even when the remaining idle time is below break-even.
 */
bool wouldGateHw(Cycles idle_len, Cycles detection_window);

/**
 * Net static-energy saving of gating one idle interval, joules. May
 * be negative for a hardware policy that gated a too-short interval.
 *
 * @param gated_cycles       Cycles actually spent in the gated state.
 * @param unit_static_power  Active-state static power of the unit, W.
 * @param gated_leakage      Residual leakage fraction when gated.
 * @param transition_j       Energy of the off+on transition pair, J.
 * @param cycle_time         Seconds per cycle.
 */
double gatingSaving(Cycles gated_cycles, double unit_static_power,
                    double gated_leakage, double transition_j,
                    double cycle_time);

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_BET_H
