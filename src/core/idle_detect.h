/**
 * @file
 * Cycle-driven idle-detection state machine, the hardware-managed
 * gating mechanism ReGate uses for the VU (best effort), HBM, and ICI
 * (§4.1), and that ReGate-Base applies to whole SAs.
 *
 * The FSM counts consecutive idle cycles; after `window` cycles it
 * gates the unit. The next access triggers a wake-up and the unit is
 * unavailable for `wakeDelay` cycles (the exposed performance cost of
 * imprecise hardware gating, Fig. 19).
 */

#ifndef REGATE_CORE_IDLE_DETECT_H
#define REGATE_CORE_IDLE_DETECT_H

#include <cstdint>

#include "common/units.h"

namespace regate {
namespace core {

/** Idle-detection FSM for one unit. */
class IdleDetector
{
  public:
    enum class State { Active, CountingIdle, Gated, Waking };

    /**
     * @param window     Idle cycles observed before gating.
     * @param wake_delay Cycles from wake trigger to usable.
     */
    IdleDetector(Cycles window, Cycles wake_delay);

    /**
     * Advance one cycle. @p access_requested is true when an
     * operation wants the unit this cycle.
     * @return true if the unit can service the access this cycle.
     */
    bool tick(bool access_requested);

    State state() const { return state_; }

    /** Cycles spent in the Gated state so far. */
    Cycles gatedCycles() const { return gatedCycles_; }

    /** Wake-up events (each exposes wake_delay stall cycles). */
    std::uint64_t wakeEvents() const { return wakeEvents_; }

    /** Stall cycles where an access waited on a wake-up. */
    Cycles stallCycles() const { return stallCycles_; }

    /** Total cycles ticked. */
    Cycles totalCycles() const { return totalCycles_; }

  private:
    Cycles window_;
    Cycles wakeDelay_;
    State state_ = State::Active;
    Cycles idleCount_ = 0;
    Cycles wakeCount_ = 0;
    Cycles gatedCycles_ = 0;
    Cycles stallCycles_ = 0;
    Cycles totalCycles_ = 0;
    std::uint64_t wakeEvents_ = 0;
};

}  // namespace core
}  // namespace regate

#endif  // REGATE_CORE_IDLE_DETECT_H
