#include "core/idle_detect.h"

#include "common/error.h"

namespace regate {
namespace core {

IdleDetector::IdleDetector(Cycles window, Cycles wake_delay)
    : window_(window), wakeDelay_(wake_delay)
{
    REGATE_CHECK(window > 0, "idle-detection window must be positive");
}

bool
IdleDetector::tick(bool access_requested)
{
    ++totalCycles_;
    switch (state_) {
      case State::Active:
        if (access_requested)
            return true;
        idleCount_ = 1;
        state_ = State::CountingIdle;
        return true;

      case State::CountingIdle:
        if (access_requested) {
            state_ = State::Active;
            return true;
        }
        if (++idleCount_ >= window_) {
            state_ = State::Gated;
            ++gatedCycles_;
        }
        return true;

      case State::Gated:
        if (!access_requested) {
            ++gatedCycles_;
            return false;
        }
        ++wakeEvents_;
        if (wakeDelay_ == 0) {
            state_ = State::Active;
            return true;
        }
        state_ = State::Waking;
        wakeCount_ = 1;
        ++stallCycles_;
        return false;

      case State::Waking:
        if (wakeCount_ >= wakeDelay_) {
            state_ = State::Active;
            return true;
        }
        ++wakeCount_;
        ++stallCycles_;
        return false;
    }
    throw LogicError("unreachable IdleDetector state");
}

}  // namespace core
}  // namespace regate
