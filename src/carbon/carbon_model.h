/**
 * @file
 * Carbon accounting (§6.6): operational carbon from electricity
 * (0.0624 kgCO2e/kWh [31], 60% datacenter utilization [84], PUE 1.1)
 * and embodied carbon per chip from the TPUv4/v5p life-cycle study
 * [75].
 */

#ifndef REGATE_CARBON_CARBON_MODEL_H
#define REGATE_CARBON_CARBON_MODEL_H

#include "sim/report.h"

namespace regate {
namespace carbon {

/** Accounting constants. */
struct CarbonParams
{
    double intensityKgPerKwh = 0.0624;  ///< Grid carbon intensity [31].
    double embodiedKgPerChip = 250.0;   ///< Cradle-to-gate, [75]-class.
    sim::FleetParams fleet;             ///< Duty cycle + PUE.
};

/**
 * Operational carbon of one run (busy + duty-cycle idle, PUE applied),
 * kgCO2e for the whole pod.
 */
double operationalCarbonPerRun(const sim::WorkloadReport &rep,
                               sim::Policy policy,
                               const CarbonParams &params = {});

/** Operational carbon per work unit, kgCO2e. */
double operationalCarbonPerUnit(const sim::WorkloadReport &rep,
                                sim::Policy policy,
                                const CarbonParams &params = {});

/**
 * Fractional reduction of operational carbon vs NoPG (Fig. 24).
 * Larger than the busy-energy saving because idle chips are almost
 * entirely static power, which ReGate gates.
 */
double operationalCarbonReduction(const sim::WorkloadReport &rep,
                                  sim::Policy policy,
                                  const CarbonParams &params = {});

}  // namespace carbon
}  // namespace regate

#endif  // REGATE_CARBON_CARBON_MODEL_H
