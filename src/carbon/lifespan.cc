#include "carbon/lifespan.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace regate {
namespace carbon {

namespace {

double
annualFactorFrom(const sim::WorkloadReport &rep_c,
                 const sim::WorkloadReport &rep_d)
{
    double e_c = rep_c.energyPerUnit(sim::Policy::NoPG);
    double e_d = rep_d.energyPerUnit(sim::Policy::NoPG);
    int years = arch::npuConfig(arch::NpuGeneration::D).deploymentYear -
                arch::npuConfig(arch::NpuGeneration::C).deploymentYear;
    REGATE_ASSERT(years > 0, "generation years out of order");
    double total = e_d / e_c;
    // Clamp: a regression would imply no reason to ever upgrade.
    total = std::min(total, 0.999);
    return std::pow(total, 1.0 / years);
}

}  // namespace

double
annualEfficiencyFactor(models::Workload workload)
{
    return annualFactorFrom(
        sim::simulateWorkload(workload, arch::NpuGeneration::C),
        sim::simulateWorkload(workload, arch::NpuGeneration::D));
}

double
annualEfficiencyFactor(std::shared_ptr<const models::ScenarioSpec> spec)
{
    return annualFactorFrom(
        sim::simulateScenario(spec, arch::NpuGeneration::C),
        sim::simulateScenario(spec, arch::NpuGeneration::D));
}

LifespanAnalysis
analyzeLifespan(const sim::WorkloadReport &rep, sim::Policy policy,
                double annual_factor, int horizon_years,
                const CarbonParams &params)
{
    REGATE_CHECK(annual_factor > 0 && annual_factor < 1,
                 "annual efficiency factor must be in (0, 1), got ",
                 annual_factor);
    REGATE_CHECK(horizon_years >= 1, "empty horizon");

    // Work delivered per year by the pod at the configured duty cycle.
    double run_seconds = rep.run().result(policy).seconds;
    double runs_per_year = 365.25 * 86400.0 *
                           params.fleet.dutyCycle / run_seconds;
    double units_per_year = runs_per_year * rep.units;
    double embodied_total =
        params.embodiedKgPerChip * rep.setup.chips;
    double op_per_unit_now =
        operationalCarbonPerUnit(rep, policy, params);

    LifespanAnalysis out;
    double best = std::numeric_limits<double>::infinity();
    for (int life = 1; life <= horizon_years; ++life) {
        LifespanPoint pt;
        pt.lifespanYears = life;
        pt.embodiedPerUnit = embodied_total / (units_per_year * life);

        // Average operational carbon per unit over the horizon:
        // fleets are replaced every `life` years; a fleet bought in
        // year y runs at year-y efficiency for the years it covers
        // (the last fleet may be truncated by the horizon).
        double acc = 0;
        for (int y = 0; y < horizon_years; y += life) {
            int covered = std::min(life, horizon_years - y);
            acc += op_per_unit_now * std::pow(annual_factor, y) *
                   covered;
        }
        pt.operationalPerUnit = acc / horizon_years;

        if (pt.totalPerUnit() < best) {
            best = pt.totalPerUnit();
            out.optimalYears = life;
        }
        out.points.push_back(pt);
    }
    return out;
}

}  // namespace carbon
}  // namespace regate
