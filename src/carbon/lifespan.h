/**
 * @file
 * Device-lifespan optimization (§6.6, Fig. 25): total carbon per work
 * unit over a 10-year horizon as a function of the fleet upgrade
 * cadence, assuming per-unit energy improves each year at the
 * NPU-C -> NPU-D generational rate. Frequent upgrades pay embodied
 * carbon; long lifespans pay the operational carbon of stale chips.
 * Power gating shrinks the operational term, shifting the optimum to
 * longer lifespans.
 */

#ifndef REGATE_CARBON_LIFESPAN_H
#define REGATE_CARBON_LIFESPAN_H

#include <vector>

#include "carbon/carbon_model.h"

namespace regate {
namespace carbon {

/** Carbon per work unit for one candidate lifespan. */
struct LifespanPoint
{
    int lifespanYears = 0;
    double embodiedPerUnit = 0;     ///< kgCO2e per unit.
    double operationalPerUnit = 0;  ///< kgCO2e per unit.
    double totalPerUnit() const
    {
        return embodiedPerUnit + operationalPerUnit;
    }
};

/** Sweep result for one workload/policy. */
struct LifespanAnalysis
{
    std::vector<LifespanPoint> points;  ///< Lifespans 1..horizon.
    int optimalYears = 0;               ///< Argmin of totalPerUnit.
};

/**
 * Annual per-unit energy improvement factor implied by the NPU-C ->
 * NPU-D transition for @p workload (3 deployment years apart).
 * Returns f < 1 such that next year's energy/unit = f * this year's.
 */
double annualEfficiencyFactor(models::Workload workload);

/** The custom-scenario spelling (fig25 under `--spec`). */
double annualEfficiencyFactor(
    std::shared_ptr<const models::ScenarioSpec> spec);

/**
 * Sweep lifespans 1..@p horizon_years for @p rep under @p policy.
 * @p annual_factor as from annualEfficiencyFactor().
 */
LifespanAnalysis analyzeLifespan(const sim::WorkloadReport &rep,
                                 sim::Policy policy,
                                 double annual_factor,
                                 int horizon_years = 10,
                                 const CarbonParams &params = {});

}  // namespace carbon
}  // namespace regate

#endif  // REGATE_CARBON_LIFESPAN_H
