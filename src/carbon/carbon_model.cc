#include "carbon/carbon_model.h"

#include "common/error.h"
#include "common/units.h"

namespace regate {
namespace carbon {

double
operationalCarbonPerRun(const sim::WorkloadReport &rep,
                        sim::Policy policy, const CarbonParams &params)
{
    double joules = rep.podTotalEnergy(policy, params.fleet);
    return units::joulesToKWh(joules) * params.intensityKgPerKwh;
}

double
operationalCarbonPerUnit(const sim::WorkloadReport &rep,
                         sim::Policy policy, const CarbonParams &params)
{
    REGATE_CHECK(rep.units > 0, "report has no work units");
    return operationalCarbonPerRun(rep, policy, params) / rep.units;
}

double
operationalCarbonReduction(const sim::WorkloadReport &rep,
                           sim::Policy policy,
                           const CarbonParams &params)
{
    double base =
        operationalCarbonPerRun(rep, sim::Policy::NoPG, params);
    double with =
        operationalCarbonPerRun(rep, policy, params);
    return base > 0 ? 1.0 - with / base : 0.0;
}

}  // namespace carbon
}  // namespace regate
