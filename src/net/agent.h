/**
 * @file
 * The per-host fleet agent: a thin server that lets one
 * orchestrator drive worker subprocesses on this machine over TCP.
 * `regate_agent` (bench/regate_agent.cc) is the CLI wrapper; the
 * logic lives here so the protocol paths stay linkable from tests.
 *
 * The agent probes its target binary with `--cases` at startup
 * (rejecting non-grid binaries exactly like the orchestrator does),
 * then serves driver sessions one at a time: hello/capabilities on
 * accept, `assign` spawns `BIN --worker --shard i/M --out ...` into
 * the agent's work directory via the same orch::ProcessPool the
 * local transport uses, worker heartbeat lines are relayed as
 * `case` frames, a clean exit is digest-verified locally and
 * announced with `done`, and `fetch` streams the artifact bytes
 * back. A dropped driver connection kills every running worker and
 * returns to accept — an orchestrator crash never leaks workers on
 * fleet hosts.
 *
 * Two connection directions: the default listen mode serves
 * `--host` drivers that dial in; `--join host:port` inverts it —
 * the agent dials an orchestrator's `--join-port` listener and
 * offers its slots mid-sweep, re-dialing with backoff between
 * sessions.
 *
 * Trust model: with a shared secret (--secret-file /
 * REGATE_FLEET_SECRET) every hello runs the v2 challenge–response
 * of net/agent_protocol.h, so neither end talks to a stranger. The
 * payload frames stay plaintext; without a secret the hello does
 * too — fall back to an ssh tunnel on untrusted networks
 * (bench/README.md "Remote fleets").
 */

#ifndef REGATE_NET_AGENT_H
#define REGATE_NET_AGENT_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace regate {
namespace net {

struct AgentOptions
{
    std::string bin;        ///< Grid-shaped figure/table binary.
    std::string dir;        ///< Work directory (attempts, logs).
    std::uint16_t port = 0; ///< TCP port; 0 = ephemeral.
    int slots = 2;          ///< Worker slots offered to the driver.
    /**
     * Exit after this many driver sessions (0 = serve forever).
     * Tests and the CI fleet job use 1 so agents reap themselves.
     * In join mode a dial attempt that never reaches a session
     * (connection refused, handshake rejected) counts too, so a
     * bounded agent can never spin forever against a dead or
     * hostile driver.
     */
    int maxSessions = 0;

    /**
     * Join mode: dial this orchestrator host (its --join-port) and
     * offer the slots, instead of listening. Empty = listen mode.
     */
    std::string joinHost;
    std::uint16_t joinPort = 0;  ///< Port of the driver's listener.

    /**
     * Shared fleet secret file for the v2 authenticated hello;
     * empty falls back to REGATE_FLEET_SECRET, and neither set
     * speaks the plaintext v1 hello.
     */
    std::string secretFile;

    /**
     * Scenario spec file (`--spec`): workers run the spec's grid
     * instead of the binary's default, and the hello advertises the
     * file's content digest so the driver can refuse a fleet whose
     * hosts run mismatched spec files. Empty = enum grid.
     */
    std::string specFile;

    /**
     * Trace-event timeline output (`--trace-out`): session
     * lifecycle and per-slot activity as Chrome/Perfetto JSON
     * (obs/trace.h). Empty = tracing off.
     */
    std::string traceOut;

    /// Event sink ("agent: ..." lines); null = silent.
    std::ostream *events = nullptr;
};

/**
 * Probe the target, listen, and serve. Returns a process exit code
 * (0 = clean shutdown after maxSessions). Throws nothing; all
 * failures are reported on the event sink / stderr and encoded in
 * the exit code (2 = usage-grade, e.g. a non-grid binary).
 */
int runAgent(const AgentOptions &options);

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_AGENT_H
