/**
 * @file
 * The per-host fleet agent: a thin server that lets one
 * orchestrator drive worker subprocesses on this machine over TCP.
 * `regate_agent` (bench/regate_agent.cc) is the CLI wrapper; the
 * logic lives here so the protocol paths stay linkable from tests.
 *
 * The agent probes its target binary with `--cases` at startup
 * (rejecting non-grid binaries exactly like the orchestrator does),
 * then serves driver sessions one at a time: hello/capabilities on
 * accept, `assign` spawns `BIN --worker --shard i/M --out ...` into
 * the agent's work directory via the same orch::ProcessPool the
 * local transport uses, worker heartbeat lines are relayed as
 * `case` frames, a clean exit is digest-verified locally and
 * announced with `done`, and `fetch` streams the artifact bytes
 * back. A dropped driver connection kills every running worker and
 * returns to accept — an orchestrator crash never leaks workers on
 * fleet hosts.
 *
 * Trust model: plaintext TCP on a trusted network; tunnel the port
 * over ssh when the network is not (bench/README.md).
 */

#ifndef REGATE_NET_AGENT_H
#define REGATE_NET_AGENT_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace regate {
namespace net {

struct AgentOptions
{
    std::string bin;        ///< Grid-shaped figure/table binary.
    std::string dir;        ///< Work directory (attempts, logs).
    std::uint16_t port = 0; ///< TCP port; 0 = ephemeral.
    int slots = 2;          ///< Worker slots offered to the driver.
    /**
     * Exit after this many driver sessions (0 = serve forever).
     * Tests and the CI fleet job use 1 so agents reap themselves.
     */
    int maxSessions = 0;

    /// Event sink ("agent: ..." lines); null = silent.
    std::ostream *events = nullptr;
};

/**
 * Probe the target, listen, and serve. Returns a process exit code
 * (0 = clean shutdown after maxSessions). Throws nothing; all
 * failures are reported on the event sink / stderr and encoded in
 * the exit code (2 = usage-grade, e.g. a non-grid binary).
 */
int runAgent(const AgentOptions &options);

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_AGENT_H
