/**
 * @file
 * Minimal POSIX stream-socket layer for the remote worker fleet:
 * an RAII fd wrapper, loopback/LAN TCP listen/accept/connect, and a
 * LineChannel that buffers a full-duplex byte stream into the
 * line-framed protocol of net/agent_protocol.h (complete lines out,
 * exact-length binary reads for artifact payloads).
 *
 * Everything here throws ConfigError with the peer's name in the
 * message instead of returning error codes: a fleet-transport
 * failure is an attempt/connection failure the orchestrator's retry
 * machinery handles, never a crash. The byte stream is plaintext;
 * peer authentication is the handshake layer's job
 * (net/agent_protocol.h HMAC hellos) — on untrusted networks,
 * tunnel the port (bench/README.md "Remote fleets").
 */

#ifndef REGATE_NET_SOCKET_H
#define REGATE_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace regate {
namespace net {

/** RAII file descriptor (socket or socketpair end). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
};

/**
 * Listen on TCP @p port (0 = ephemeral); @p bound_port receives the
 * actual port. Binds all interfaces — the agent serves whatever
 * network it is on; restrict exposure with the network, not here.
 */
Socket tcpListen(std::uint16_t port, std::uint16_t *bound_port);

/** Accept one connection; @p peer receives "addr:port" if non-null. */
Socket tcpAccept(const Socket &listener, std::string *peer);

/** Connect to @p host : @p port (numeric or resolvable name). */
Socket tcpConnect(const std::string &host, std::uint16_t port);

/**
 * Wait until @p fd is readable or @p timeout_ms elapses (-1 = wait
 * forever). Returns false on timeout.
 */
bool waitReadable(int fd, int timeout_ms);

/**
 * Line/byte framing over one connected stream socket. Reads are
 * buffered; writes go straight out (the frames are small and the
 * artifact payloads are one-shot).
 */
class LineChannel
{
  public:
    LineChannel(Socket sock, std::string peer_name);

    const std::string &peerName() const { return peer_; }
    int fd() const { return sock_.fd(); }

    /**
     * Drain whatever the peer has sent into the buffer without
     * blocking. Returns false once the peer has closed the
     * connection (buffered complete lines may still be pending);
     * throws ConfigError on a socket error.
     */
    bool fill();

    /** Next complete buffered line (without '\n'), if any. */
    std::optional<std::string> nextLine();

    /**
     * Block until a complete line arrives; throws ConfigError on
     * timeout, on a connection closed mid-line (truncated frame),
     * or on a socket error. @p timeout_ms is a TOTAL budget for
     * the operation (a trickling peer cannot re-arm it); negative
     * waits forever.
     */
    std::string readLine(int timeout_ms);

    /**
     * Read exactly @p n raw bytes (artifact payload). Throws
     * ConfigError if the connection closes mid-transfer, the
     * stream goes silent for @p timeout_ms (the budget re-arms on
     * progress, so a slow-but-flowing link survives), or a hard
     * overall cap of 10 budgets elapses (so a byte-trickling
     * wedged peer cannot re-arm it forever).
     */
    std::string readExact(std::size_t n, int timeout_ms);

    /** Send one frame line; appends '\n'. Throws on a dead peer. */
    void sendLine(const std::string &line);

    /** Send raw bytes (artifact payload). Throws on a dead peer. */
    void sendBytes(const std::string &bytes);

    /** Has the peer closed (and the buffer run dry of lines)? */
    bool closed() const { return eof_; }

  private:
    bool fillOnce(int timeout_ms);  ///< One read; false on timeout.

    Socket sock_;
    std::string peer_;
    std::string buf_;
    std::size_t pos_ = 0;  ///< Consumed prefix of buf_.
    bool eof_ = false;
};

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_SOCKET_H
