#include "net/agent_protocol.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <random>

#include "common/error.h"
#include "common/sha256.h"
#include "net/socket.h"

namespace regate {
namespace net {

namespace {

const std::string kMagic = "@regate-net";

bool
plainValue(const std::string &value)
{
    if (value.empty())
        return false;
    for (char c : value)
        if (c == ' ' || c == '"' || c == '\n' || c == '\r')
            return false;
    return true;
}

}  // namespace

bool
Frame::has(const std::string &key) const
{
    for (const auto &[k, v] : kv) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

const std::string &
Frame::get(const std::string &key) const
{
    for (const auto &[k, v] : kv)
        if (k == key)
            return v;
    throw ConfigError("frame '" + verb + "' carries no " + key +
                      "= field");
}

long long
Frame::getInt(const std::string &key) const
{
    const auto &value = get(key);
    REGATE_CHECK(!value.empty() &&
                     value.find_first_not_of("0123456789") ==
                         std::string::npos,
                 "frame '", verb, "' field ", key, "=\"", value,
                 "\" is not a non-negative integer");
    try {
        return std::stoll(value);
    } catch (const std::out_of_range &) {
        throw ConfigError("frame '" + verb + "' field " + key + "=" +
                          value + " is out of range");
    }
}

int
Frame::getIndex(const std::string &key) const
{
    long long v = getInt(key);
    REGATE_CHECK(v <= static_cast<long long>(INT_MAX),
                 "frame '", verb, "' field ", key, "=", v,
                 " does not fit an index");
    return static_cast<int>(v);
}

std::string
formatFrame(const Frame &frame)
{
    REGATE_ASSERT(frame.version == kProtocolVersion ||
                      frame.version == kAuthProtocolVersion,
                  "frame version v", frame.version,
                  " is not one this build speaks");
    REGATE_ASSERT(!frame.verb.empty() && plainValue(frame.verb),
                  "frame verb must be a bare word");
    std::string out = kMagic + " v" +
                      std::to_string(frame.version) + " " +
                      frame.verb;
    for (const auto &[key, value] : frame.kv) {
        REGATE_ASSERT(plainValue(key), "frame key \"", key,
                      "\" must be a bare word");
        out += " " + key + "=";
        if (plainValue(value)) {
            out += value;
        } else {
            REGATE_ASSERT(value.find('"') == std::string::npos &&
                              value.find('\n') == std::string::npos &&
                              value.find('\r') == std::string::npos,
                          "frame value for ", key,
                          " cannot carry quotes or newlines");
            out += "\"" + value + "\"";
        }
    }
    return out;
}

Frame
parseFrame(const std::string &line)
{
    REGATE_CHECK(line.compare(0, kMagic.size(), kMagic) == 0 &&
                     line.size() > kMagic.size() &&
                     line[kMagic.size()] == ' ',
                 "not a fleet protocol frame: \"", line, "\"");
    std::size_t at = kMagic.size() + 1;

    // Version token: "v<digits>".
    auto sp = line.find(' ', at);
    std::string vtok = line.substr(
        at, sp == std::string::npos ? std::string::npos : sp - at);
    REGATE_CHECK(vtok.size() >= 2 && vtok[0] == 'v' &&
                     vtok.find_first_not_of("0123456789", 1) ==
                         std::string::npos,
                 "malformed protocol version token \"", vtok,
                 "\" in frame \"", line, "\"");
    int version = 0;
    try {
        version = std::stoi(vtok.substr(1));
    } catch (const std::out_of_range &) {
        // An absurd digit string is still a peer speaking some
        // other protocol revision, not an internal error — it must
        // stay inside the ConfigError containment every session
        // handler relies on.
        throw ConfigError("protocol version mismatch: peer speaks " +
                          vtok + ", this build speaks v" +
                          std::to_string(kProtocolVersion) + "/v" +
                          std::to_string(kAuthProtocolVersion));
    }
    REGATE_CHECK(version == kProtocolVersion ||
                     version == kAuthProtocolVersion,
                 "protocol version mismatch: peer speaks v", version,
                 ", this build speaks v", kProtocolVersion, "/v",
                 kAuthProtocolVersion);
    REGATE_CHECK(sp != std::string::npos,
                 "frame \"", line, "\" carries no verb");
    at = sp + 1;

    Frame frame;
    frame.version = version;
    auto verb_end = line.find(' ', at);
    frame.verb = line.substr(at, verb_end == std::string::npos
                                     ? std::string::npos
                                     : verb_end - at);
    REGATE_CHECK(!frame.verb.empty() &&
                     frame.verb.find('=') == std::string::npos,
                 "frame \"", line, "\" carries no verb");
    at = verb_end == std::string::npos ? line.size() : verb_end + 1;

    while (at < line.size()) {
        if (line[at] == ' ') {
            ++at;
            continue;
        }
        auto eq = line.find('=', at);
        REGATE_CHECK(eq != std::string::npos && eq > at,
                     "malformed key=value token at \"",
                     line.substr(at), "\" in frame \"", line, "\"");
        std::string key = line.substr(at, eq - at);
        std::string value;
        at = eq + 1;
        if (at < line.size() && line[at] == '"') {
            auto close = line.find('"', at + 1);
            REGATE_CHECK(close != std::string::npos,
                         "unterminated quoted value for ", key,
                         " in frame \"", line, "\"");
            value = line.substr(at + 1, close - at - 1);
            at = close + 1;
            REGATE_CHECK(at >= line.size() || line[at] == ' ',
                         "garbage after quoted value for ", key,
                         " in frame \"", line, "\"");
        } else {
            auto end = line.find(' ', at);
            value = line.substr(at, end == std::string::npos
                                        ? std::string::npos
                                        : end - at);
            at = end == std::string::npos ? line.size() : end;
        }
        frame.kv.emplace_back(std::move(key), std::move(value));
    }
    return frame;
}

Frame
helloFrame(const AgentHello &hello)
{
    Frame f;
    f.verb = "hello";
    f.kv = {{"role", "agent"},
            {"bin", hello.bin},
            {"slots", std::to_string(hello.slots)},
            {"cases", std::to_string(hello.cases)}};
    // Absent (not empty) without a spec file, so a spec-less fleet
    // stays wire-identical to builds that predate the key.
    if (!hello.spec.empty())
        f.kv.emplace_back("spec", hello.spec);
    // Same discipline for the telemetry capability: absent when not
    // offered, so the frame (and the auth MAC input) of a
    // metrics-less hello matches builds that predate the key.
    if (hello.metrics)
        f.kv.emplace_back("metrics", "1");
    return f;
}

AgentHello
parseHello(const Frame &frame)
{
    REGATE_CHECK(frame.verb == "hello",
                 "expected a hello frame, got '", frame.verb, "'");
    REGATE_CHECK(frame.get("role") == "agent",
                 "hello role is '", frame.get("role"),
                 "', expected 'agent'");
    AgentHello hello;
    hello.bin = frame.get("bin");
    hello.slots = frame.getIndex("slots");
    hello.cases =
        static_cast<std::size_t>(frame.getInt("cases"));
    if (frame.has("spec"))
        hello.spec = frame.get("spec");
    hello.metrics = frame.has("metrics") &&
                    frame.get("metrics") == "1";
    REGATE_CHECK(hello.slots > 0, "agent hello offers ", hello.slots,
                 " slots");
    return hello;
}

Frame
metricFrame(int slot, std::uint64_t seq,
            const MetricSample &sample, const std::string &auth)
{
    REGATE_ASSERT(sample.kind == 'c' || sample.kind == 'h',
                  "metric sample kind must be 'c' or 'h', got '",
                  sample.kind, "'");
    Frame f;
    f.verb = "metric";
    f.kv = {{"slot", std::to_string(slot)},
            {"seq", std::to_string(seq)},
            {"name", sample.name},
            {"kind", std::string(1, sample.kind)},
            {"v", std::to_string(sample.value)},
            {"n", std::to_string(sample.count)}};
    if (!auth.empty())
        f.kv.emplace_back("auth", auth);
    return f;
}

MetricSample
parseMetric(const Frame &frame)
{
    REGATE_CHECK(frame.verb == "metric",
                 "expected a metric frame, got '", frame.verb, "'");
    MetricSample sample;
    sample.name = frame.get("name");
    REGATE_CHECK(!sample.name.empty(),
                 "metric frame carries an empty name");
    const auto &kind = frame.get("kind");
    REGATE_CHECK(kind == "c" || kind == "h",
                 "metric frame kind is \"", kind,
                 "\", expected c or h");
    sample.kind = kind[0];
    sample.value = static_cast<std::uint64_t>(frame.getInt("v"));
    sample.count = static_cast<std::uint64_t>(frame.getInt("n"));
    REGATE_CHECK(sample.count > 0,
                 "metric frame batches zero observations");
    return sample;
}

Frame
statusRequestFrame()
{
    Frame f;
    f.verb = "status";
    return f;
}

Frame
statusReplyFrame(std::size_t bytes)
{
    Frame f;
    f.verb = "status-reply";
    f.kv = {{"bytes", std::to_string(bytes)}};
    return f;
}

std::string
metricAuth(const std::string &secret,
           const std::string &driver_nonce, int slot,
           std::uint64_t seq, const MetricSample &sample)
{
    // The sample fields are inside the MAC and the sequence number
    // is strictly increasing per session, so a tag can neither be
    // moved onto a different sample nor replayed to re-count one.
    return hmacSha256Hex(
        secret, "regate-metric|" + driver_nonce + "|" +
                    std::to_string(seq) + "|" +
                    std::to_string(slot) + "|" + sample.name + "|" +
                    std::string(1, sample.kind) + "|" +
                    std::to_string(sample.value) + "|" +
                    std::to_string(sample.count));
}

std::optional<std::string>
loadFleetSecret(const std::string &secret_file)
{
    std::string secret;
    if (!secret_file.empty()) {
        std::ifstream in(secret_file, std::ios::binary);
        REGATE_CHECK(in.good(), "cannot read secret file ",
                     secret_file);
        secret.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    } else if (const char *env =
                   std::getenv("REGATE_FLEET_SECRET")) {
        secret = env;
    } else {
        return std::nullopt;
    }
    while (!secret.empty() &&
           (secret.back() == '\n' || secret.back() == '\r'))
        secret.pop_back();
    REGATE_CHECK(!secret.empty(),
                 "the fleet secret is empty — an empty secret "
                 "would authenticate anyone; remove ",
                 secret_file.empty() ? "REGATE_FLEET_SECRET"
                                     : secret_file.c_str(),
                 " to run a plaintext fleet instead");
    return secret;
}

std::string
makeNonce()
{
    // Uniqueness is what defeats replay; a counter guarantees it
    // within the process, std::random_device + pid + time make
    // cross-process collisions (driver restarts, many agents)
    // vanishingly unlikely.
    static std::atomic<std::uint64_t> counter{0};
    std::random_device rd;
    std::uint64_t a =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    std::uint64_t b =
        (static_cast<std::uint64_t>(
             std::chrono::steady_clock::now()
                 .time_since_epoch()
                 .count())
         << 16) ^
        (static_cast<std::uint64_t>(::getpid()) << 1) ^ ++counter;
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (int i = 15; i >= 0; --i)
        out.push_back(hex[(a >> (4 * i)) & 0xf]);
    for (int i = 15; i >= 0; --i)
        out.push_back(hex[(b >> (4 * i)) & 0xf]);
    return out;
}

std::string
driverProof(const std::string &secret,
            const std::string &agent_nonce)
{
    // Domain-separated from agentAuth so neither side's tag can be
    // reflected back as the other's.
    return hmacSha256Hex(secret, "regate-driver|" + agent_nonce);
}

std::string
agentAuth(const std::string &secret,
          const std::string &driver_nonce, const AgentHello &hello)
{
    // The capabilities are inside the MAC: a tampering middlebox
    // cannot swap slots/cases (or the spec digest) on an
    // otherwise-valid hello. The metrics capability extends the
    // input only when offered, so a metrics-less hello MACs exactly
    // as builds that predate the key.
    std::string input = "regate-agent|" + driver_nonce + "|" +
                        hello.bin + "|" +
                        std::to_string(hello.slots) + "|" +
                        std::to_string(hello.cases) + "|" +
                        hello.spec;
    if (hello.metrics)
        input += "|metrics";
    return hmacSha256Hex(secret, input);
}

HandshakeResult
driverHandshake(LineChannel &channel,
                const std::optional<std::string> &secret,
                int timeout_ms)
{
    const auto &peer = channel.peerName();
    auto opening = parseFrame(channel.readLine(timeout_ms));
    if (opening.verb == "error")
        // The agent names its own reason (e.g. it rejected OUR
        // proof); surface that instead of a generic parse error.
        throw ConfigError(peer + ": agent reported: " +
                          opening.get("msg"));
    if (opening.verb == "hello") {
        REGATE_CHECK(!secret, peer,
                     ": agent sent an unauthenticated (v1) hello "
                     "but this fleet has a shared secret — start "
                     "the agent with --secret-file or "
                     "REGATE_FLEET_SECRET");
        return {parseHello(opening), false, ""};
    }
    REGATE_CHECK(opening.verb == "hello-auth", peer,
                 ": expected a hello, got '", opening.verb, "'");
    REGATE_CHECK(secret, peer,
                 ": agent requires an authenticated (v2) hello but "
                 "no secret is configured here — pass --secret-file "
                 "or set REGATE_FLEET_SECRET");

    Frame challenge;
    challenge.version = kAuthProtocolVersion;
    challenge.verb = "challenge";
    auto driver_nonce = makeNonce();
    challenge.kv = {
        {"nonce", driver_nonce},
        {"proof", driverProof(*secret, opening.get("nonce"))},
        // Advertise the telemetry capability here, NOT via the
        // hello: the agent's hello HMAC covers a metrics key, and
        // an old driver would reject that MAC. Old agents ignore
        // unknown challenge keys and answer metrics-less hellos.
        {"metrics", "1"}};
    channel.sendLine(formatFrame(challenge));

    auto answer = parseFrame(channel.readLine(timeout_ms));
    if (answer.verb == "error")
        throw ConfigError(peer + ": agent reported: " +
                          answer.get("msg"));
    REGATE_CHECK(answer.verb == "hello", peer,
                 ": expected the authenticated hello, got '",
                 answer.verb, "'");
    auto hello = parseHello(answer);
    REGATE_CHECK(answer.has("auth") &&
                     answer.get("auth") ==
                         agentAuth(*secret, driver_nonce, hello),
                 peer, ": hello authentication failed: HMAC "
                 "mismatch — wrong secret or a replayed hello");
    return {hello, true, driver_nonce};
}

AgentHandshakeResult
agentHandshake(LineChannel &channel, const AgentHello &hello,
               const std::optional<std::string> &secret,
               int timeout_ms)
{
    if (!secret) {
        // Plaintext: offer the capability unconditionally — an old
        // driver's parseHello ignores the unknown key and never
        // enables streaming via assign, so nothing changes for it.
        channel.sendLine(formatFrame(helloFrame(hello)));
        return {hello, ""};
    }
    const auto &peer = channel.peerName();
    Frame opening;
    opening.version = kAuthProtocolVersion;
    opening.verb = "hello-auth";
    auto agent_nonce = makeNonce();
    opening.kv = {{"role", "agent"}, {"nonce", agent_nonce}};
    channel.sendLine(formatFrame(opening));

    auto challenge = parseFrame(channel.readLine(timeout_ms));
    if (challenge.verb == "error")
        throw ConfigError(peer + ": driver reported: " +
                          challenge.get("msg"));
    REGATE_CHECK(challenge.verb == "challenge", peer,
                 ": expected an auth challenge, got '",
                 challenge.verb,
                 "' — is the driver running without a secret?");
    REGATE_CHECK(challenge.get("proof") ==
                     driverProof(*secret, agent_nonce),
                 peer, ": driver failed authentication: bad "
                 "challenge proof — wrong secret?");

    // Offer metrics only to a driver that advertised the capability
    // on its challenge: an older driver computes the hello HMAC
    // over the metrics-less input and would reject ours otherwise.
    AgentHello effective = hello;
    if (!(challenge.has("metrics") &&
          challenge.get("metrics") == "1"))
        effective.metrics = false;

    auto answer = helloFrame(effective);
    answer.version = kAuthProtocolVersion;
    answer.kv.emplace_back(
        "auth",
        agentAuth(*secret, challenge.get("nonce"), effective));
    channel.sendLine(formatFrame(answer));
    return {effective, challenge.get("nonce")};
}

namespace {

const std::string kWorkerMarker = "@regate-worker v1 ";

}  // namespace

int
scanWorkerLog(const std::string &text, WorkerLogTail *tail)
{
    const std::string case_marker = kWorkerMarker + "case ";
    const std::string done_marker = kWorkerMarker + "done ";
    const std::string digest_key = "file_digest=";
    int seen = 0;
    std::size_t at = 0;
    while ((at = text.find(kWorkerMarker, at)) !=
           std::string::npos) {
        auto end = text.find('\n', at);
        if (end == std::string::npos)
            break;  // Partial line; the next scan completes it.
        if (text.compare(at, case_marker.size(), case_marker) ==
            0) {
            tail->progress = text.substr(at + case_marker.size(),
                                         end - at -
                                             case_marker.size());
            ++seen;
        } else if (text.compare(at, done_marker.size(),
                                done_marker) == 0) {
            auto line = text.substr(at, end - at);
            auto key_at = line.find(digest_key);
            if (key_at != std::string::npos) {
                auto digest =
                    line.substr(key_at + digest_key.size());
                auto space = digest.find(' ');
                if (space != std::string::npos)
                    digest.resize(space);
                tail->doneDigest = digest;
            }
        }
        at = end;
    }
    return seen;
}

int
tailWorkerLog(const std::string &log_path, WorkerLogTail *tail)
{
    // Read only the unread suffix: this runs every scheduler tick
    // (~15 ms) per busy slot, so re-reading the whole log each time
    // would make a long shard's heartbeat polling O(n^2) I/O.
    std::ifstream in(log_path, std::ios::binary);
    if (!in.good())
        return 0;  // Not created yet — nothing to report.
    in.seekg(0, std::ios::end);
    auto size = static_cast<std::size_t>(in.tellg());
    if (size <= tail->offset)
        return 0;
    std::string text(size - tail->offset, '\0');
    in.seekg(static_cast<std::streamoff>(tail->offset));
    in.read(text.data(), static_cast<std::streamsize>(text.size()));
    if (in.gcount() >= 0 &&
        static_cast<std::size_t>(in.gcount()) < text.size())
        text.resize(static_cast<std::size_t>(in.gcount()));

    int seen = scanWorkerLog(text, tail);
    // Advance past the last complete line only; a trailing partial
    // heartbeat is re-scanned once its newline lands.
    auto last_nl = text.rfind('\n');
    if (last_nl != std::string::npos)
        tail->offset += last_nl + 1;
    return seen;
}

}  // namespace net
}  // namespace regate
