#include "net/agent_protocol.h"

#include <cctype>
#include <climits>
#include <fstream>

#include "common/error.h"

namespace regate {
namespace net {

namespace {

const std::string kMagic = "@regate-net";

bool
plainValue(const std::string &value)
{
    if (value.empty())
        return false;
    for (char c : value)
        if (c == ' ' || c == '"' || c == '\n' || c == '\r')
            return false;
    return true;
}

}  // namespace

bool
Frame::has(const std::string &key) const
{
    for (const auto &[k, v] : kv) {
        (void)v;
        if (k == key)
            return true;
    }
    return false;
}

const std::string &
Frame::get(const std::string &key) const
{
    for (const auto &[k, v] : kv)
        if (k == key)
            return v;
    throw ConfigError("frame '" + verb + "' carries no " + key +
                      "= field");
}

long long
Frame::getInt(const std::string &key) const
{
    const auto &value = get(key);
    REGATE_CHECK(!value.empty() &&
                     value.find_first_not_of("0123456789") ==
                         std::string::npos,
                 "frame '", verb, "' field ", key, "=\"", value,
                 "\" is not a non-negative integer");
    try {
        return std::stoll(value);
    } catch (const std::out_of_range &) {
        throw ConfigError("frame '" + verb + "' field " + key + "=" +
                          value + " is out of range");
    }
}

int
Frame::getIndex(const std::string &key) const
{
    long long v = getInt(key);
    REGATE_CHECK(v <= static_cast<long long>(INT_MAX),
                 "frame '", verb, "' field ", key, "=", v,
                 " does not fit an index");
    return static_cast<int>(v);
}

std::string
formatFrame(const Frame &frame)
{
    REGATE_ASSERT(!frame.verb.empty() && plainValue(frame.verb),
                  "frame verb must be a bare word");
    std::string out = kMagic + " v" +
                      std::to_string(kProtocolVersion) + " " +
                      frame.verb;
    for (const auto &[key, value] : frame.kv) {
        REGATE_ASSERT(plainValue(key), "frame key \"", key,
                      "\" must be a bare word");
        out += " " + key + "=";
        if (plainValue(value)) {
            out += value;
        } else {
            REGATE_ASSERT(value.find('"') == std::string::npos &&
                              value.find('\n') == std::string::npos &&
                              value.find('\r') == std::string::npos,
                          "frame value for ", key,
                          " cannot carry quotes or newlines");
            out += "\"" + value + "\"";
        }
    }
    return out;
}

Frame
parseFrame(const std::string &line)
{
    REGATE_CHECK(line.compare(0, kMagic.size(), kMagic) == 0 &&
                     line.size() > kMagic.size() &&
                     line[kMagic.size()] == ' ',
                 "not a fleet protocol frame: \"", line, "\"");
    std::size_t at = kMagic.size() + 1;

    // Version token: "v<digits>".
    auto sp = line.find(' ', at);
    std::string vtok = line.substr(
        at, sp == std::string::npos ? std::string::npos : sp - at);
    REGATE_CHECK(vtok.size() >= 2 && vtok[0] == 'v' &&
                     vtok.find_first_not_of("0123456789", 1) ==
                         std::string::npos,
                 "malformed protocol version token \"", vtok,
                 "\" in frame \"", line, "\"");
    int version = 0;
    try {
        version = std::stoi(vtok.substr(1));
    } catch (const std::out_of_range &) {
        // An absurd digit string is still a peer speaking some
        // other protocol revision, not an internal error — it must
        // stay inside the ConfigError containment every session
        // handler relies on.
        throw ConfigError("protocol version mismatch: peer speaks " +
                          vtok + ", this build speaks v" +
                          std::to_string(kProtocolVersion));
    }
    REGATE_CHECK(version == kProtocolVersion,
                 "protocol version mismatch: peer speaks v", version,
                 ", this build speaks v", kProtocolVersion);
    REGATE_CHECK(sp != std::string::npos,
                 "frame \"", line, "\" carries no verb");
    at = sp + 1;

    Frame frame;
    auto verb_end = line.find(' ', at);
    frame.verb = line.substr(at, verb_end == std::string::npos
                                     ? std::string::npos
                                     : verb_end - at);
    REGATE_CHECK(!frame.verb.empty() &&
                     frame.verb.find('=') == std::string::npos,
                 "frame \"", line, "\" carries no verb");
    at = verb_end == std::string::npos ? line.size() : verb_end + 1;

    while (at < line.size()) {
        if (line[at] == ' ') {
            ++at;
            continue;
        }
        auto eq = line.find('=', at);
        REGATE_CHECK(eq != std::string::npos && eq > at,
                     "malformed key=value token at \"",
                     line.substr(at), "\" in frame \"", line, "\"");
        std::string key = line.substr(at, eq - at);
        std::string value;
        at = eq + 1;
        if (at < line.size() && line[at] == '"') {
            auto close = line.find('"', at + 1);
            REGATE_CHECK(close != std::string::npos,
                         "unterminated quoted value for ", key,
                         " in frame \"", line, "\"");
            value = line.substr(at + 1, close - at - 1);
            at = close + 1;
            REGATE_CHECK(at >= line.size() || line[at] == ' ',
                         "garbage after quoted value for ", key,
                         " in frame \"", line, "\"");
        } else {
            auto end = line.find(' ', at);
            value = line.substr(at, end == std::string::npos
                                        ? std::string::npos
                                        : end - at);
            at = end == std::string::npos ? line.size() : end;
        }
        frame.kv.emplace_back(std::move(key), std::move(value));
    }
    return frame;
}

Frame
helloFrame(const AgentHello &hello)
{
    Frame f;
    f.verb = "hello";
    f.kv = {{"role", "agent"},
            {"bin", hello.bin},
            {"slots", std::to_string(hello.slots)},
            {"cases", std::to_string(hello.cases)}};
    return f;
}

AgentHello
parseHello(const Frame &frame)
{
    REGATE_CHECK(frame.verb == "hello",
                 "expected a hello frame, got '", frame.verb, "'");
    REGATE_CHECK(frame.get("role") == "agent",
                 "hello role is '", frame.get("role"),
                 "', expected 'agent'");
    AgentHello hello;
    hello.bin = frame.get("bin");
    hello.slots = frame.getIndex("slots");
    hello.cases =
        static_cast<std::size_t>(frame.getInt("cases"));
    REGATE_CHECK(hello.slots > 0, "agent hello offers ", hello.slots,
                 " slots");
    return hello;
}

namespace {

const std::string kWorkerMarker = "@regate-worker v1 ";

}  // namespace

std::string
workerDoneDigest(const std::string &log)
{
    const std::string marker = kWorkerMarker + "done ";
    const std::string key = "file_digest=";
    auto line_start = log.rfind(marker);
    REGATE_CHECK(line_start != std::string::npos,
                 "worker exited 0 but its log has no handshake "
                 "done line");
    auto line_end = log.find('\n', line_start);
    auto line = log.substr(line_start,
                           line_end == std::string::npos
                               ? std::string::npos
                               : line_end - line_start);
    auto key_at = line.find(key);
    REGATE_CHECK(key_at != std::string::npos,
                 "worker done line carries no file_digest");
    auto digest = line.substr(key_at + key.size());
    auto space = digest.find(' ');
    if (space != std::string::npos)
        digest.resize(space);
    return digest;
}

int
scanWorkerHeartbeats(const std::string &text, std::string *progress)
{
    const std::string marker = kWorkerMarker + "case ";
    int seen = 0;
    std::size_t at = 0;
    while ((at = text.find(marker, at)) != std::string::npos) {
        auto start = at + marker.size();
        auto end = text.find('\n', start);
        if (end == std::string::npos)
            break;  // Partial line; the next scan completes it.
        *progress = text.substr(start, end - start);
        ++seen;
        at = end;
    }
    return seen;
}

int
tailWorkerHeartbeats(const std::string &log_path,
                     std::size_t *offset, std::string *progress)
{
    // Read only the unread suffix: this runs every scheduler tick
    // (~15 ms) per busy slot, so re-reading the whole log each time
    // would make a long shard's heartbeat polling O(n^2) I/O.
    std::ifstream in(log_path, std::ios::binary);
    if (!in.good())
        return 0;  // Not created yet — nothing to report.
    in.seekg(0, std::ios::end);
    auto size = static_cast<std::size_t>(in.tellg());
    if (size <= *offset)
        return 0;
    std::string text(size - *offset, '\0');
    in.seekg(static_cast<std::streamoff>(*offset));
    in.read(text.data(), static_cast<std::streamsize>(text.size()));
    if (in.gcount() >= 0 &&
        static_cast<std::size_t>(in.gcount()) < text.size())
        text.resize(static_cast<std::size_t>(in.gcount()));

    int seen = scanWorkerHeartbeats(text, progress);
    // Advance past the last complete line only; a trailing partial
    // heartbeat is re-scanned once its newline lands.
    auto last_nl = text.rfind('\n');
    if (last_nl != std::string::npos)
        *offset += last_nl + 1;
    return seen;
}

}  // namespace net
}  // namespace regate
