/**
 * @file
 * The slot-transport abstraction that makes the orchestrator's
 * scheduler fleet-agnostic. A SlotTransport owns a fixed number of
 * worker *slots* and knows how to run one shard attempt on a slot:
 * spawn it, surface progress heartbeats and exits as polled events,
 * hand back the produced artifact with end-to-end digest
 * verification (common/hash.h fnv1a64 via sim::contentDigest), and
 * kill a straggler. The orchestrator schedules over the union of
 * every transport's slots with one dynamic shard queue; where an
 * attempt runs — a forked subprocess or a worker on another host —
 * is invisible to the retry/merge machinery.
 *
 *  - LocalTransport wraps orch::ProcessPool: each slot is a
 *    `BIN --worker --shard i/M --out ...` subprocess whose log file
 *    is tailed for handshake/heartbeat lines.
 *  - TcpTransport speaks the net/agent_protocol.h framing to a
 *    remote `regate_agent`, which wraps the same ProcessPool on its
 *    host and streams validated artifacts back. Losing the
 *    connection turns every busy slot into a failed attempt (Lost)
 *    and retires the transport — the orchestrator's retry machinery
 *    reassigns the shards exactly as it does for a killed
 *    subprocess.
 *  - ReconnectingTransport wraps a dialed TcpTransport and, when
 *    the session dies, re-dials with capped exponential backoff
 *    (common/backoff.h), re-runs the hello/capability cross-check,
 *    and puts the agent's slots back in service. In-flight shards
 *    still fail (Lost) at the moment of the drop — resilience never
 *    trusts half a session — but the host's capacity returns
 *    instead of being retired forever.
 */

#ifndef REGATE_NET_TRANSPORT_H
#define REGATE_NET_TRANSPORT_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "net/socket.h"
#include "orch/process_pool.h"

namespace regate {
namespace net {

struct Frame;  // net/agent_protocol.h

/** One shard attempt, as handed to a transport slot. */
struct ShardAssignment
{
    int shard = 0;
    int shardCount = 1;
    int attempt = 1;
    /** Test hooks (0 = off): see bench/bench_util.h. */
    int stallSeconds = 0;     ///< REGATE_TEST_STALL_S for the worker.
    int slowCaseSeconds = 0;  ///< REGATE_TEST_SLOW_CASE_S.
};

/** What poll() reports about a slot. */
struct TransportEvent
{
    enum class Kind
    {
        Progress,  ///< Heartbeat (worker case line); detail = "k/n".
        Finished,  ///< Worker exited; cleanExit says how.
        Lost,      ///< Transport died with this slot busy.
        Metric,    ///< Telemetry sample; metric* fields below.
    };

    int slot = -1;
    Kind kind = Kind::Progress;
    bool cleanExit = false;  ///< Finished: did the worker exit 0?
    std::string detail;      ///< Status / progress / loss reason.

    /**
     * Metric events only. Every transport surfaces samples through
     * this one shape — TcpTransport decodes streamed metric frames,
     * LocalTransport synthesizes per-case durations from heartbeat
     * deltas — so the orchestrator aggregates one way and never
     * double-counts a source. Names are wire names; the aggregator
     * re-homes them under its "fleet." registry prefix.
     */
    std::string metricName;
    char metricKind = 'c';           ///< 'c' counter, 'h' histogram.
    std::uint64_t metricValue = 0;   ///< Delta (c) / value sum (h).
    std::uint64_t metricCount = 0;   ///< Observations batched (h).
};

class SlotTransport
{
  public:
    virtual ~SlotTransport() = default;

    /** Display name ("local", "host:port") for event lines. */
    virtual const std::string &name() const = 0;

    virtual int slotCount() const = 0;

    /** False once the transport can run no further attempts. */
    virtual bool alive() const = 0;

    /**
     * True while a currently-dead transport may still come back (a
     * re-dial is pending). The orchestrator keeps such a
     * transport's slots retired-but-revivable instead of declaring
     * the fleet dead.
     */
    virtual bool recovering() const { return false; }

    /**
     * Can @p slot take work right now? A reconnected agent may
     * offer fewer slots than it originally did; the extras stay
     * retired.
     */
    virtual bool
    slotUsable(int slot) const
    {
        (void)slot;
        return alive();
    }

    /**
     * Start one shard attempt on idle @p slot. Returns a short
     * descriptor for the spawn event line ("pid=1234",
     * "agent slot 0"). Throws ConfigError if the attempt cannot be
     * started (the caller treats that as a failed attempt).
     */
    virtual std::string start(int slot,
                              const ShardAssignment &assignment) = 0;

    /** Drain pending events (non-blocking). */
    virtual std::vector<TransportEvent> poll() = 0;

    /**
     * Fetch the artifact of a slot whose Finished event reported a
     * clean exit, verified end to end: the bytes returned hash
     * (sim::contentDigest) to exactly the digest the worker
     * reported for what it wrote. Throws ConfigError on any
     * mismatch, truncation, or mid-transfer disconnect — a failed
     * attempt, never silent corruption.
     */
    virtual std::string fetchArtifact(int slot) = 0;

    /** SIGKILL the slot's worker (async; exit arrives via poll). */
    virtual void kill(int slot) = 0;

    /**
     * Give up on the transport entirely: a kill that never settles
     * means the far side is wedged with the connection still open
     * (e.g. a SIGSTOPped agent), so no frame from it can be
     * expected — the next poll must surface every busy slot as
     * Lost. A no-op for local subprocesses: the kernel guarantees a
     * SIGKILLed child reaps.
     */
    virtual void abandon(const std::string &reason) = 0;

    /**
     * Promote the slot's artifact to @p final_path when the bytes
     * already live in a local file (rename, no rewrite). Returns
     * false when the transport holds no local file — the caller
     * then writes the fetched bytes itself. Only meaningful after
     * a successful fetchArtifact.
     */
    virtual bool promoteArtifact(int slot,
                                 const std::string &final_path) = 0;

    /**
     * Attempt bookkeeping after the orchestrator settles a slot:
     * success discards local attempt droppings, failure keeps what
     * aids forensics (worker logs).
     */
    virtual void finishAttempt(int slot, bool success) = 0;

    /** Where to look when an attempt failed (for event lines). */
    virtual std::string failureRef(int slot) const = 0;
};

/** Worker subprocesses on this machine (the PR 4 pool, slotted). */
class LocalTransport : public SlotTransport
{
  public:
    /**
     * @param bin       target binary (runs `--worker --shard i/M`).
     * @param dir       run directory for attempt/log files.
     * @param slots     subprocess slot count.
     * @param spec_path scenario spec file every worker runs with
     *                  (`--spec spec_path`); empty = enum grid.
     */
    LocalTransport(std::string bin, std::string dir, int slots,
                   std::string spec_path = {});
    ~LocalTransport() override;

    const std::string &name() const override { return name_; }
    int slotCount() const override;
    bool alive() const override { return true; }
    std::string start(int slot,
                      const ShardAssignment &assignment) override;
    std::vector<TransportEvent> poll() override;
    std::string fetchArtifact(int slot) override;
    void kill(int slot) override;
    void abandon(const std::string &) override {}
    bool promoteArtifact(int slot,
                         const std::string &final_path) override;
    void finishAttempt(int slot, bool success) override;
    std::string failureRef(int slot) const override;

  private:
    struct Slot;
    Slot &at(int slot);
    const Slot &at(int slot) const;

    std::string bin_;
    std::string dir_;
    std::string specPath_;
    std::string name_ = "local";
    std::vector<Slot> slots_;
    orch::ProcessPool pool_;
};

/** Slots served by a remote `regate_agent` over one TCP session. */
class TcpTransport : public SlotTransport
{
  public:
    /**
     * Connect to an agent, read its hello, and cross-check it
     * against the driver's own probe of the target: @p expect_bin
     * (base name), @p expect_cases, and @p expect_spec (the spec
     * file's content digest, empty for enum grids) must all match,
     * or the fleet would merge results of different figures/builds/
     * scenario files. @p cli_slots caps the agent's advertised slot
     * count (0 = take what it offers). With @p secret set the hello
     * runs the v2 challenge–response (net/agent_protocol.h); without
     * one it is the plaintext v1 exchange. Throws ConfigError on
     * connect/handshake/auth failure.
     */
    static std::unique_ptr<TcpTransport> connect(
        const std::string &host, std::uint16_t port, int cli_slots,
        const std::string &expect_bin, std::size_t expect_cases,
        const std::string &expect_spec = {},
        const std::optional<std::string> &secret = std::nullopt);

    /**
     * Wrap an already-connected socket (the tests drive this end of
     * a socketpair against a scripted fake agent; the join listener
     * wraps accepted connections). Performs the same hello
     * handshake and checks as connect().
     */
    TcpTransport(Socket sock, std::string name, int cli_slots,
                 const std::string &expect_bin,
                 std::size_t expect_cases,
                 const std::string &expect_spec = {},
                 const std::optional<std::string> &secret =
                     std::nullopt);
    ~TcpTransport() override;

    /** Did the hello run the v2 challenge–response? */
    bool authenticated() const { return authenticated_; }

    /** Did the agent's hello offer metric streaming? */
    bool metricsNegotiated() const { return peerMetrics_; }

    /** Why the session died (empty while alive). */
    const std::string &deathReason() const { return deathReason_; }

    const std::string &name() const override { return name_; }
    int slotCount() const override;
    bool alive() const override { return alive_; }
    std::string start(int slot,
                      const ShardAssignment &assignment) override;
    std::vector<TransportEvent> poll() override;
    std::string fetchArtifact(int slot) override;
    void kill(int slot) override;
    void abandon(const std::string &reason) override;
    bool promoteArtifact(int slot,
                         const std::string &final_path) override
    {
        // Remote artifacts arrive as bytes; the caller persists
        // them.
        (void)slot;
        (void)final_path;
        return false;
    }
    void finishAttempt(int slot, bool success) override;
    std::string failureRef(int slot) const override;

  private:
    struct Slot;
    Slot &at(int slot);
    const Slot &at(int slot) const;
    void markDead(const std::string &reason,
                  std::vector<TransportEvent> *events);
    void handleFrame(const Frame &frame,
                     std::vector<TransportEvent> *events);

    std::string name_;
    LineChannel channel_;
    std::vector<Slot> slots_;
    bool alive_ = true;
    bool authenticated_ = false;
    bool peerMetrics_ = false;  ///< Agent's hello offered metrics.
    std::optional<std::string> secret_;
    std::string driverNonce_;   ///< Binds incoming metric HMACs.
    std::uint64_t lastMetricSeq_ = 0;
    std::string deathReason_;
    /** Events decoded while fetchArtifact drained the channel. */
    std::vector<TransportEvent> queued_;
};

/**
 * A dialed agent that survives connection loss: wraps a
 * TcpTransport and re-dials on death with capped exponential
 * backoff + jitter, re-running the full hello handshake (including
 * authentication) before the slots go back into service. The slot
 * count is pinned by the first hello — a reconnected agent
 * offering fewer slots leaves the extras unusable (slotUsable),
 * one offering more is capped.
 */
class ReconnectingTransport : public SlotTransport
{
  public:
    struct DialConfig
    {
        std::string host;
        std::uint16_t port = 0;
        int cliSlots = 0;  ///< --host slot cap (0 = agent's offer).
        std::string expectBin;
        std::size_t expectCases = 0;
        std::string expectSpec;  ///< Spec digest ("" = no spec).
        std::optional<std::string> secret;
    };

    /**
     * Dials immediately — a host that is down at startup is a
     * configuration error and throws, exactly like
     * TcpTransport::connect; the backoff only governs RE-dials
     * after a session that once worked is lost. @p backoff's
     * maxAttempts bounds consecutive failed re-dials per outage
     * before the transport is permanently retired.
     */
    ReconnectingTransport(DialConfig config, BackoffPolicy backoff);

    const std::string &name() const override { return name_; }
    int slotCount() const override { return slotCount_; }
    bool alive() const override;
    bool recovering() const override;
    bool slotUsable(int slot) const override;
    std::string start(int slot,
                      const ShardAssignment &assignment) override;
    std::vector<TransportEvent> poll() override;
    std::string fetchArtifact(int slot) override;
    void kill(int slot) override;
    void abandon(const std::string &reason) override;
    bool promoteArtifact(int slot,
                         const std::string &final_path) override;
    void finishAttempt(int slot, bool success) override;
    std::string failureRef(int slot) const override;

    /** Did the current session authenticate? (False while down.) */
    bool authenticated() const;
    /** Sessions established since construction (1 = never lost). */
    int sessions() const { return sessions_; }

  private:
    using Clock = std::chrono::steady_clock;

    std::unique_ptr<TcpTransport> dial();
    void noteLoss(const std::string &reason);

    DialConfig config_;
    std::string name_;
    int slotCount_ = 0;  ///< Pinned by the first hello.
    std::unique_ptr<TcpTransport> inner_;
    Backoff backoff_;
    Clock::time_point nextDialAt_;
    bool gaveUp_ = false;
    int sessions_ = 0;
    std::string lastError_;
};

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_TRANSPORT_H
