/**
 * @file
 * The line-framed fleet protocol (version 1) spoken between the
 * orchestrator's TcpTransport and a `regate_agent` process. Both
 * ends share this one definition, so a malformed, truncated, or
 * version-skewed frame is rejected with the same precise message
 * everywhere.
 *
 * A frame is one text line:
 *
 *     @regate-net v1 <verb> key=value key="value with spaces" ...
 *
 * Values containing spaces are double-quoted (no embedded quotes or
 * newlines — enforced at format time). The conversation:
 *
 *   agent -> driver on accept:
 *     hello role=agent bin=<name> slots=<n> cases=<grid size>
 *         The capability line. The driver cross-checks bin and
 *         cases against its own probe of the target binary, so a
 *         fleet can never mix two figures (or two builds whose
 *         grids differ) into one merged document.
 *   driver -> agent:
 *     assign slot=<s> shard=<i> shards=<M> attempt=<k>
 *         stall=<sec> slow=<sec>
 *         Run one shard attempt on agent slot s (stall/slow are the
 *         failure-injection hooks, 0 = off).
 *     fetch slot=<s>      Request the finished slot's artifact.
 *     kill slot=<s>       SIGKILL the slot's worker.
 *   agent -> driver:
 *     case slot=<s> done=<k>/<n>
 *         Per-case heartbeat relayed from the worker's
 *         `@regate-worker v1 case` lines.
 *     done slot=<s> bytes=<n> digest=<hex16>
 *         Worker exited 0 and its artifact validated locally
 *         (worker-reported digest vs the bytes on the agent's
 *         disk). digest is sim::contentDigest of the artifact.
 *     fail slot=<s> reason="..."
 *         Worker crashed, was killed, or produced an invalid
 *         artifact.
 *     artifact slot=<s> bytes=<n> digest=<hex16>
 *         Reply to fetch; exactly n raw payload bytes follow the
 *         newline. The driver recomputes the digest over the bytes
 *         it received — a mismatch is a failed attempt, not a
 *         merged lie.
 *     error msg="..."
 *         Session-fatal protocol error; the agent closes after
 *         sending it.
 */

#ifndef REGATE_NET_AGENT_PROTOCOL_H
#define REGATE_NET_AGENT_PROTOCOL_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace regate {
namespace net {

/** The protocol revision this build speaks. */
constexpr int kProtocolVersion = 1;

/** One parsed frame: a verb plus ordered key=value pairs. */
struct Frame
{
    std::string verb;
    std::vector<std::pair<std::string, std::string>> kv;

    bool has(const std::string &key) const;

    /** Value of @p key; throws ConfigError naming a missing key. */
    const std::string &get(const std::string &key) const;

    /** get() parsed as a non-negative integer; throws on garbage. */
    long long getInt(const std::string &key) const;

    /**
     * getInt() narrowed to int. Peers address slots/shards with
     * these; a value above INT_MAX must be rejected here, not
     * wrapped by a cast into some *valid* index and mis-routed.
     */
    int getIndex(const std::string &key) const;
};

/**
 * Render a frame as its wire line (no trailing newline). Values with
 * spaces are quoted; a value with an embedded quote, newline, or
 * other unrepresentable byte throws LogicError (protocol misuse).
 */
std::string formatFrame(const Frame &frame);

/**
 * Parse one wire line. Throws ConfigError for anything that is not
 * a well-formed version-1 frame: wrong magic, a protocol version
 * other than kProtocolVersion (named in the message), a missing
 * verb, or a malformed/unterminated key=value token.
 */
Frame parseFrame(const std::string &line);

/** The agent's capability line (see the file comment). */
struct AgentHello
{
    std::string bin;        ///< Target binary base name.
    int slots = 0;          ///< Worker slots the agent offers.
    std::size_t cases = 0;  ///< The target's probed grid size.
};

Frame helloFrame(const AgentHello &hello);

/** Parse + validate a hello; throws ConfigError with specifics. */
AgentHello parseHello(const Frame &frame);

/**
 * Worker-handshake log parsing, shared by every driver of `--worker`
 * subprocesses (the local transport and the agent): both tail the
 * worker's captured log for `@regate-worker v1` lines.
 */

/**
 * The worker's reported whole-file digest from its done line;
 * throws ConfigError when a clean exit left no parseable done line.
 */
std::string workerDoneDigest(const std::string &log);

/**
 * Scan new log bytes for per-case heartbeat lines
 * (`@regate-worker v1 case k/n`); the last complete one wins as
 * @p progress ("k/n"). Returns how many were seen.
 */
int scanWorkerHeartbeats(const std::string &text,
                         std::string *progress);

/**
 * Incrementally tail a worker's log file for heartbeats: reads
 * @p log_path (a still-missing file is simply "nothing yet"),
 * scans the unread suffix from @p *offset, advances the offset
 * past the last complete line (a trailing partial line is left for
 * the next call), and records the latest "k/n" in @p progress.
 * Returns how many new heartbeat lines were seen. Shared by the
 * local transport and the agent so the partial-line subtleties
 * live in exactly one place.
 */
int tailWorkerHeartbeats(const std::string &log_path,
                         std::size_t *offset,
                         std::string *progress);

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_AGENT_PROTOCOL_H
