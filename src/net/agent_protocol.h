/**
 * @file
 * The line-framed fleet protocol spoken between the orchestrator's
 * TcpTransport and a `regate_agent` process. Both ends share this
 * one definition, so a malformed, truncated, or version-skewed
 * frame is rejected with the same precise message everywhere.
 *
 * A frame is one text line:
 *
 *     @regate-net v1 <verb> key=value key="value with spaces" ...
 *
 * Values containing spaces are double-quoted (no embedded quotes or
 * newlines — enforced at format time). Version 1 is the plaintext
 * session grammar; version 2 adds the authenticated handshake
 * frames below and is only spoken when both ends hold the shared
 * fleet secret (--secret-file / REGATE_FLEET_SECRET) — the session
 * verbs stay v1 either way, so an authenticated fleet is wire
 * compatible with a v1 one past the hello. The conversation:
 *
 *   agent -> driver on accept (no secret configured):
 *     hello role=agent bin=<name> slots=<n> cases=<grid size>
 *         [spec=<hex16>]
 *         The capability line. The driver cross-checks bin and
 *         cases against its own probe of the target binary, so a
 *         fleet can never mix two figures (or two builds whose
 *         grids differ) into one merged document. spec is the
 *         content digest of the agent's --spec scenario file
 *         (models::SpecFile::digest), present only when the agent
 *         runs one; the driver cross-checks it against its own spec
 *         digest, so a fleet can never mix shards computed from
 *         mismatched (or missing) spec files either.
 *   with a secret, the hello becomes a challenge–response
 *   (HMAC-SHA256 over fresh nonces, common/sha256.h):
 *     agent -> driver:  hello-auth role=agent nonce=<hex>
 *     driver -> agent:  challenge nonce=<hex> proof=<hmac>
 *         proof = HMAC(secret, "regate-driver|" + agent nonce):
 *         the driver authenticates itself first, so an agent never
 *         reveals capabilities to a stranger.
 *     agent -> driver:  hello role=agent bin=... slots=... cases=...
 *                           auth=<hmac>
 *         auth = HMAC(secret, "regate-agent|" + driver nonce + "|"
 *         + bin + "|" + slots + "|" + cases). The driver's nonce is
 *         fresh per connection, so a recorded hello replayed later
 *         fails the check — both mismatches are rejected with named
 *         errors.
 *   driver -> agent:
 *     assign slot=<s> shard=<i> shards=<M> attempt=<k>
 *         stall=<sec> slow=<sec>
 *         Run one shard attempt on agent slot s (stall/slow are the
 *         failure-injection hooks, 0 = off).
 *     fetch slot=<s>      Request the finished slot's artifact.
 *     kill slot=<s>       SIGKILL the slot's worker.
 *   agent -> driver:
 *     case slot=<s> done=<k>/<n>
 *         Per-case heartbeat relayed from the worker's
 *         `@regate-worker v1 case` lines.
 *     metric slot=<s> seq=<n> name=<metric> kind=c|h v=<val>
 *         n=<count> [auth=<hmac>]
 *         Telemetry sample: a counter delta (kind=c, v=delta) or a
 *         histogram batch (kind=h, v=sum of observed values,
 *         n=observation count — e.g. per-case durations in µs).
 *         Negotiated, never assumed: the agent advertises the
 *         capability with metrics=1 on its hello, and only streams
 *         after the driver enables it with metrics=1 on an assign
 *         frame — both keys ride the existing unknown-key tolerance,
 *         so either end paired with an older build simply never
 *         sees a metric frame. On authenticated fleets the driver
 *         additionally advertises metrics=1 on its challenge (a
 *         MAC-covered hello key would break old drivers' HMAC), and
 *         auth = HMAC(secret, "regate-metric|" + driver nonce + "|"
 *         + seq + "|" + slot + "|" + name + "|" + kind + "|" + v +
 *         "|" + n); seq is strictly increasing per session, so a
 *         recorded sample cannot be replayed to skew the driver's
 *         aggregates.
 *     done slot=<s> bytes=<n> digest=<hex16>
 *         Worker exited 0 and its artifact validated locally
 *         (worker-reported digest vs the bytes on the agent's
 *         disk). digest is sim::contentDigest of the artifact.
 *     fail slot=<s> reason="..."
 *         Worker crashed, was killed, or produced an invalid
 *         artifact.
 *     artifact slot=<s> bytes=<n> digest=<hex16>
 *         Reply to fetch; exactly n raw payload bytes follow the
 *         newline. The driver recomputes the digest over the bytes
 *         it received — a mismatch is a failed attempt, not a
 *         merged lie.
 *     error msg="..."
 *         Session-fatal protocol error; the agent closes after
 *         sending it.
 *
 * The driver's `--status-port` listener speaks a one-request
 * exchange in the same framing (NOT part of the agent session — any
 * client may connect, ask once, and is disconnected after the
 * reply):
 *
 *   client -> driver:
 *     status              Ask for the live sweep snapshot.
 *   driver -> client:
 *     status-reply bytes=<n>
 *         Exactly n raw bytes of canonical status JSON follow the
 *         newline (fixed key order, FNV-1a digest footer like the
 *         metrics snapshot — byte-stable for equal sweep state),
 *         then the driver closes the connection.
 */

#ifndef REGATE_NET_AGENT_PROTOCOL_H
#define REGATE_NET_AGENT_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace regate {
namespace net {

class LineChannel;  // net/socket.h

/** The base (session) protocol revision this build speaks. */
constexpr int kProtocolVersion = 1;
/** The authenticated-handshake extension revision. */
constexpr int kAuthProtocolVersion = 2;

/** One parsed frame: a verb plus ordered key=value pairs. */
struct Frame
{
    int version = kProtocolVersion;
    std::string verb;
    std::vector<std::pair<std::string, std::string>> kv;

    bool has(const std::string &key) const;

    /** Value of @p key; throws ConfigError naming a missing key. */
    const std::string &get(const std::string &key) const;

    /** get() parsed as a non-negative integer; throws on garbage. */
    long long getInt(const std::string &key) const;

    /**
     * getInt() narrowed to int. Peers address slots/shards with
     * these; a value above INT_MAX must be rejected here, not
     * wrapped by a cast into some *valid* index and mis-routed.
     */
    int getIndex(const std::string &key) const;
};

/**
 * Render a frame as its wire line (no trailing newline). Values with
 * spaces are quoted; a value with an embedded quote, newline, or
 * other unrepresentable byte throws LogicError (protocol misuse).
 */
std::string formatFrame(const Frame &frame);

/**
 * Parse one wire line. Throws ConfigError for anything that is not
 * a well-formed frame: wrong magic, a protocol version this build
 * does not speak (v1/v2; both sides named in the message), a
 * missing verb, or a malformed/unterminated key=value token.
 */
Frame parseFrame(const std::string &line);

/** The agent's capability line (see the file comment). */
struct AgentHello
{
    std::string bin;        ///< Target binary base name.
    int slots = 0;          ///< Worker slots the agent offers.
    std::size_t cases = 0;  ///< The target's probed grid size.
    std::string spec;       ///< Spec-file digest; "" = no --spec.
    bool metrics = false;   ///< Peer can stream metric frames.
};

Frame helloFrame(const AgentHello &hello);

/** Parse + validate a hello; throws ConfigError with specifics. */
AgentHello parseHello(const Frame &frame);

/** One telemetry sample carried by a metric frame. */
struct MetricSample
{
    std::string name;          ///< Registry metric name.
    char kind = 'c';           ///< 'c' counter delta, 'h' histogram.
    std::uint64_t value = 0;   ///< Delta (c) or sum of values (h).
    std::uint64_t count = 1;   ///< Observations batched in (h).
};

/**
 * Render a metric frame. @p auth is the metricAuth() tag on
 * authenticated sessions, empty on plaintext ones (key omitted).
 */
Frame metricFrame(int slot, std::uint64_t seq,
                  const MetricSample &sample,
                  const std::string &auth = "");

/** Parse + validate a metric frame's sample fields. */
MetricSample parseMetric(const Frame &frame);

/** The status-port request ("status", no keys). */
Frame statusRequestFrame();

/** The status-port reply header; @p bytes of JSON follow it. */
Frame statusReplyFrame(std::size_t bytes);

/**
 * The HMAC binding one metric sample to this session's driver nonce
 * and its strictly-increasing sequence number.
 */
std::string metricAuth(const std::string &secret,
                       const std::string &driver_nonce, int slot,
                       std::uint64_t seq,
                       const MetricSample &sample);

/**
 * The shared fleet secret: @p secret_file (from --secret-file) wins
 * over the REGATE_FLEET_SECRET environment variable; neither
 * configured returns nullopt (plaintext v1 fleet). Trailing
 * newlines are stripped (secret files are usually written with
 * echo); an effectively-empty secret is a ConfigError, not a
 * silently unauthenticated fleet.
 */
std::optional<std::string> loadFleetSecret(
    const std::string &secret_file);

/** Fresh per-connection nonce (hex); never repeats in a process. */
std::string makeNonce();

/** The driver's challenge proof over the agent's nonce. */
std::string driverProof(const std::string &secret,
                        const std::string &agent_nonce);

/** The agent's hello HMAC, binding capabilities to the nonce. */
std::string agentAuth(const std::string &secret,
                      const std::string &driver_nonce,
                      const AgentHello &hello);

struct HandshakeResult
{
    AgentHello hello;
    bool authenticated = false;  ///< v2 challenge–response passed.
    /** The nonce this driver issued; binds the session's metric
     *  HMACs. Empty on plaintext sessions. */
    std::string driverNonce;
};

/**
 * Driver side of the hello: read the agent's opening frame and run
 * either the v1 plaintext hello or the v2 challenge–response,
 * depending on whether @p secret is configured. A secret mismatch
 * in either direction, a plaintext hello against a configured
 * secret (downgrade), an auth hello without one, and a replayed
 * hello all throw ConfigError with a named auth error.
 */
HandshakeResult driverHandshake(
    LineChannel &channel, const std::optional<std::string> &secret,
    int timeout_ms);

struct AgentHandshakeResult
{
    /** The hello as actually sent — metrics is downgraded to false
     *  when an authenticated driver did not advertise the
     *  capability on its challenge (its HMAC covers the hello, and
     *  an old driver MACs the metrics-less input). */
    AgentHello hello;
    /** The driver's challenge nonce; binds this session's outgoing
     *  metric HMACs. Empty on plaintext sessions. */
    std::string driverNonce;
};

/**
 * Agent side of the hello: announce @p hello in plaintext (no
 * secret), or open with hello-auth, verify the driver's challenge
 * proof, and answer with the authenticated hello. Throws
 * ConfigError (named) when the driver fails its side of the proof
 * or speaks the wrong flavor for this agent's configuration.
 * Returns the effective hello (see AgentHandshakeResult) and the
 * driver nonce for metric authentication.
 */
AgentHandshakeResult agentHandshake(
    LineChannel &channel, const AgentHello &hello,
    const std::optional<std::string> &secret, int timeout_ms);

/**
 * Worker-handshake log parsing, shared by every driver of `--worker`
 * subprocesses (the local transport and the agent): both tail the
 * worker's captured log for `@regate-worker v1` lines.
 */

/**
 * Incremental scan state for one worker's log. Everything the
 * driver needs from the log — heartbeat progress and the done
 * line's whole-file digest — is captured as the bytes stream past,
 * so no path ever re-reads the whole log.
 */
struct WorkerLogTail
{
    std::size_t offset = 0;   ///< Bytes consumed so far.
    std::string progress;     ///< Latest heartbeat ("k/n").
    std::string doneDigest;   ///< file_digest= of the done line.
};

/**
 * Scan a chunk of new log bytes for `@regate-worker v1` case and
 * done lines, updating @p tail->progress / @p tail->doneDigest from
 * complete lines (a trailing partial line is ignored; the caller
 * re-presents it once its newline lands). Returns how many new
 * heartbeat lines were seen.
 */
int scanWorkerLog(const std::string &text, WorkerLogTail *tail);

/**
 * Incrementally tail a worker's log file: reads @p log_path (a
 * still-missing file is simply "nothing yet"), scans the unread
 * suffix from @p tail->offset, and advances the offset past the
 * last complete line — a trailing partial line is left for the
 * next call, so polling stays O(new bytes) across a whole attempt.
 * Returns how many new heartbeat lines were seen. Shared by the
 * local transport and the agent so the partial-line subtleties
 * live in exactly one place.
 */
int tailWorkerLog(const std::string &log_path, WorkerLogTail *tail);

}  // namespace net
}  // namespace regate

#endif  // REGATE_NET_AGENT_PROTOCOL_H
