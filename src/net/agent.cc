#include "net/agent.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/error.h"
#include "models/spec.h"
#include "net/agent_protocol.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "net/socket.h"
#include "net/transport.h"
#include "orch/probe.h"
#include "sim/serialize.h"

namespace regate {
namespace net {

namespace {

/**
 * Make arbitrary error text frame-safe: the frame grammar cannot
 * quote '"' or newlines (formatFrame asserts on them), and failure
 * reasons routinely embed quoted paths or offending frame text.
 */
std::string
frameSafe(std::string text)
{
    for (char &c : text)
        if (c == '"' || c == '\n' || c == '\r')
            c = '\'';
    return text;
}

/**
 * One driver session: translates protocol frames into operations on
 * a LocalTransport (the same slot machinery the orchestrator uses
 * for its own subprocesses — spawn, heartbeat tailing,
 * digest-verified artifact pickup, kill) and the transport's events
 * back into frames. The agent adds only what the wire needs: slot
 * bookkeeping for fetchable artifacts, and ConfigError validation
 * of driver-supplied slot ids.
 */
class AgentSession
{
  public:
    AgentSession(const AgentOptions &opt, std::size_t cases,
                 std::string spec_digest, LineChannel channel,
                 const std::optional<std::string> &secret)
        : opt_(opt), cases_(cases),
          specDigest_(std::move(spec_digest)),
          channel_(std::move(channel)), secret_(secret),
          local_(opt.bin, opt.dir, opt.slots, opt.specFile),
          slots_(static_cast<std::size_t>(opt.slots))
    {}

    /** Did the handshake complete (the driver heard our slots)? */
    bool helloAccepted() const { return helloAccepted_; }

    void run();

  private:
    struct Slot
    {
        bool busy = false;
        std::string artifact;  ///< Validated bytes awaiting fetch.
        bool hasArtifact = false;
    };

    void
    event(const std::string &line)
    {
        if (opt_.events)
            *opt_.events << "agent: " << line << "\n" << std::flush;
    }

    Slot &
    at(int slot)
    {
        REGATE_CHECK(slot >= 0 && static_cast<std::size_t>(slot) <
                                      slots_.size(),
                     "driver addressed slot ", slot, ", this agent "
                     "offers ", slots_.size());
        return slots_[static_cast<std::size_t>(slot)];
    }

    void
    send(const Frame &frame)
    {
        channel_.sendLine(formatFrame(frame));
    }

    void handleFrame(const Frame &frame);
    void handleAssign(const Frame &frame);
    void handleFetch(const Frame &frame);
    /** Transport events -> done/fail/case/metric frames. */
    void pumpTransport();
    void sendFail(int slot_id, const std::string &reason);
    void sendMetric(int slot_id, const MetricSample &sample);
    /** Stream registry counter movement since the last report. */
    void sendCounterDeltas(int slot_id);

    const AgentOptions &opt_;
    std::size_t cases_;
    std::string specDigest_;
    LineChannel channel_;
    std::optional<std::string> secret_;
    LocalTransport local_;
    std::vector<Slot> slots_;
    bool helloAccepted_ = false;
    bool metricsOffered_ = false;  ///< Survived hello negotiation.
    bool metricsEnabled_ = false;  ///< Driver sent assign metrics=1.
    std::string driverNonce_;      ///< Binds outgoing metric HMACs.
    std::uint64_t metricSeq_ = 0;  ///< Strictly increasing per session.
    /** Last streamed counter values, for delta reporting. */
    std::vector<std::pair<std::string, std::uint64_t>> lastCounters_;
};

void
AgentSession::handleAssign(const Frame &frame)
{
    int slot_id = frame.getIndex("slot");
    auto &slot = at(slot_id);
    REGATE_CHECK(!slot.busy, "driver assigned slot ", slot_id,
                 " while it is still running an attempt");
    ShardAssignment a;
    a.shard = frame.getIndex("shard");
    a.shardCount = frame.getIndex("shards");
    a.attempt = frame.getIndex("attempt");
    a.stallSeconds = frame.getIndex("stall");
    a.slowCaseSeconds = frame.getIndex("slow");
    // Telemetry streaming is armed by the driver, per session: only
    // a driver that heard our metrics capability on the hello sends
    // the key, and we never stream to one that did not ask.
    if (metricsOffered_ && frame.has("metrics") &&
        frame.get("metrics") == "1")
        metricsEnabled_ = true;

    std::string desc;
    try {
        desc = local_.start(slot_id, a);
    } catch (const ConfigError &e) {
        // A failed fork/exec is one failed attempt on one slot —
        // the same way the driver treats its own local spawn
        // failures — not grounds to evict this whole agent (and
        // every other slot it serves) from the fleet.
        sendFail(slot_id, std::string("spawn failed: ") + e.what());
        return;
    }
    slot.busy = true;
    slot.hasArtifact = false;
    slot.artifact.clear();
    event("slot " + std::to_string(slot_id) + ": assign shard " +
          std::to_string(a.shard) + "/" +
          std::to_string(a.shardCount) + " attempt " +
          std::to_string(a.attempt) + " " + desc);
    auto &trace = obs::TraceRecorder::instance();
    if (trace.enabled())
        trace.instant("agent.assign", "fleet",
                      {{"slot", std::to_string(slot_id)},
                       {"shard", std::to_string(a.shard)}});
    auto &flight = obs::FlightRecorder::instance();
    if (flight.enabled()) {
        char detail[48];
        std::snprintf(detail, sizeof(detail),
                      "slot=%d shard=%d attempt=%d", slot_id,
                      a.shard, a.attempt);
        flight.instant("agent.assign", detail);
    }
}

void
AgentSession::handleFetch(const Frame &frame)
{
    int slot_id = frame.getIndex("slot");
    auto &slot = at(slot_id);
    REGATE_CHECK(slot.hasArtifact, "driver fetched slot ", slot_id,
                 " which holds no finished artifact");
    Frame reply;
    reply.verb = "artifact";
    reply.kv = {{"slot", std::to_string(slot_id)},
                {"bytes", std::to_string(slot.artifact.size())},
                {"digest", sim::contentDigest(slot.artifact)}};
    send(reply);
    channel_.sendBytes(slot.artifact);
    event("slot " + std::to_string(slot_id) + ": artifact sent (" +
          std::to_string(slot.artifact.size()) + " bytes)");
    slot.artifact.clear();
    slot.hasArtifact = false;
    local_.finishAttempt(slot_id, true);
}

void
AgentSession::handleFrame(const Frame &frame)
{
    if (frame.verb == "assign") {
        handleAssign(frame);
    } else if (frame.verb == "fetch") {
        handleFetch(frame);
    } else if (frame.verb == "kill") {
        int slot_id = frame.getIndex("slot");
        if (at(slot_id).busy) {
            local_.kill(slot_id);
            event("slot " + std::to_string(slot_id) +
                  ": killed on driver request");
        }
    } else {
        throw ConfigError("unexpected frame '" + frame.verb +
                          "' from driver");
    }
}

void
AgentSession::sendFail(int slot_id, const std::string &reason)
{
    Frame f;
    f.verb = "fail";
    f.kv = {{"slot", std::to_string(slot_id)},
            {"reason", frameSafe(reason)}};
    send(f);
    event("slot " + std::to_string(slot_id) + ": failed (" + reason +
          ")");
}

void
AgentSession::sendMetric(int slot_id, const MetricSample &sample)
{
    if (!metricsEnabled_)
        return;
    auto seq = ++metricSeq_;
    std::string auth;
    if (secret_)
        auth = metricAuth(*secret_, driverNonce_, slot_id, seq,
                          sample);
    send(metricFrame(slot_id, seq, sample, auth));
}

void
AgentSession::sendCounterDeltas(int slot_id)
{
    if (!metricsEnabled_)
        return;
    // Diff the registry against the last report: only movement
    // crosses the wire, so an idle counter costs nothing and the
    // driver can blindly add every delta it receives.
    auto now = obs::MetricsRegistry::instance().counterValues();
    auto last = lastCounters_.begin();
    for (const auto &[name, value] : now) {
        while (last != lastCounters_.end() && last->first < name)
            ++last;
        std::uint64_t prev =
            (last != lastCounters_.end() && last->first == name)
                ? last->second
                : 0;
        if (value > prev) {
            MetricSample sample;
            sample.name = name;
            sample.kind = 'c';
            sample.value = value - prev;
            sample.count = 1;
            sendMetric(slot_id, sample);
        }
    }
    lastCounters_ = std::move(now);
}

void
AgentSession::pumpTransport()
{
    for (const auto &ev : local_.poll()) {
        if (ev.kind == TransportEvent::Kind::Metric) {
            // Relay the local transport's synthesized samples
            // (per-case durations) to the driver under the same
            // wire names it would synthesize for its own local
            // slots.
            MetricSample sample;
            sample.name = ev.metricName;
            sample.kind = ev.metricKind;
            sample.value = ev.metricValue;
            sample.count = ev.metricCount;
            sendMetric(ev.slot, sample);
            continue;
        }
        auto &slot = slots_[static_cast<std::size_t>(ev.slot)];
        switch (ev.kind) {
          case TransportEvent::Kind::Progress: {
            Frame f;
            f.verb = "case";
            f.kv = {{"slot", std::to_string(ev.slot)},
                    {"done", ev.detail}};
            send(f);
            break;
          }
          case TransportEvent::Kind::Finished:
            slot.busy = false;
            if (!ev.cleanExit) {
                local_.finishAttempt(ev.slot, false);
                sendFail(ev.slot, ev.detail);
                break;
            }
            // fetchArtifact verifies the worker-reported digest
            // against the bytes on this host's disk; the driver
            // re-verifies what it receives, so the artifact is
            // digest-checked end to end across both hops.
            try {
                slot.artifact = local_.fetchArtifact(ev.slot);
                slot.hasArtifact = true;
                Frame f;
                f.verb = "done";
                f.kv = {{"slot", std::to_string(ev.slot)},
                        {"bytes",
                         std::to_string(slot.artifact.size())},
                        {"digest",
                         sim::contentDigest(slot.artifact)}};
                send(f);
                event("slot " + std::to_string(ev.slot) +
                      ": done (" +
                      std::to_string(slot.artifact.size()) +
                      " bytes)");
            } catch (const ConfigError &e) {
                local_.finishAttempt(ev.slot, false);
                sendFail(ev.slot,
                         std::string("artifact invalid: ") +
                             e.what());
            }
            // Each settled attempt also reports this process's
            // counter movement (cache traffic, backoff pressure),
            // so the driver's sweep-wide snapshot sees the whole
            // fleet, not just its own process.
            sendCounterDeltas(ev.slot);
            break;
          case TransportEvent::Kind::Lost:
            // LocalTransport never loses slots (it is the process
            // pool on this very host).
            break;
          case TransportEvent::Kind::Metric:
            break;  // Handled above.
        }
    }
}

void
AgentSession::run()
{
    // The session renders as one span on the agent's timeline, with
    // assign instants inside it.
    obs::TraceRecorder::Span session_span("agent.session", "fleet");
    AgentHello hello;
    hello.bin = std::filesystem::path(opt_.bin).filename().string();
    hello.slots = opt_.slots;
    hello.cases = cases_;
    hello.spec = specDigest_;
    hello.metrics = true;
    try {
        auto shake = agentHandshake(channel_, hello, secret_, 10000);
        metricsOffered_ = shake.hello.metrics;
        driverNonce_ = shake.driverNonce;
        helloAccepted_ = true;
    } catch (const ConfigError &e) {
        // A driver that resets between connect and handshake, a
        // port scanner, or a driver failing the challenge proof
        // (wrong secret) costs this session only, never the agent.
        // Tell the driver why if it can still hear — its log then
        // names the real reason instead of a bare disconnect.
        event(std::string("handshake failed: ") + e.what());
        try {
            Frame f;
            f.verb = "error";
            f.kv = {{"msg", frameSafe(e.what())}};
            send(f);
        } catch (const ConfigError &) {
        }
        return;
    }

    for (;;) {
        try {
            bool open = channel_.fill();
            while (auto line = channel_.nextLine())
                handleFrame(parseFrame(*line));
            if (!open) {
                event("driver disconnected");
                return;
            }
            pumpTransport();
        } catch (const ConfigError &e) {
            // A protocol violation or a dead socket (possibly
            // surfacing as a failed send mid-report) ends the
            // session, never the agent; tell the driver why if it
            // can still hear.
            event(std::string("session error: ") + e.what());
            try {
                Frame f;
                f.verb = "error";
                f.kv = {{"msg", frameSafe(e.what())}};
                send(f);
            } catch (const ConfigError &) {
            }
            return;
        }
        waitReadable(channel_.fd(), 15);
    }
    // ~LocalTransport kills and reaps anything still running, so a
    // vanished driver never leaks workers on this host.
}

/** Seed re-dial jitter from the dial target, deterministically per
 *  driver so a fleet of joiners still de-correlates. */
std::uint64_t
jitterSeed(const std::string &host, std::uint16_t port)
{
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
    for (char c : host)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h ^ port;
}

/**
 * Join mode: dial the orchestrator's --join-port and serve one
 * session per connection, re-dialing with capped exponential
 * backoff (common/backoff.h) after a lost or refused dial — so an
 * agent started before its driver, or surviving a driver restart,
 * folds itself back into the sweep. Every dial counts toward
 * maxSessions whether or not it reached a session (a rejected
 * handshake still consumed the dial), so a bounded joiner can never
 * spin forever against a dead or hostile driver.
 */
int
joinDriver(const AgentOptions &options, std::size_t cases,
           const std::string &spec_digest,
           const std::optional<std::string> &secret)
{
    auto event = [&](const std::string &line) {
        if (options.events)
            *options.events << "agent: " << line << "\n"
                            << std::flush;
    };
    auto target =
        options.joinHost + ":" + std::to_string(options.joinPort);
    event("joining driver at " + target);
    Backoff backoff(BackoffPolicy{},
                    jitterSeed(options.joinHost, options.joinPort));
    int sessions = 0;
    for (;;) {
        bool served = false;
        try {
            auto conn = tcpConnect(options.joinHost,
                                   options.joinPort);
            event("driver accepted the join from " + target);
            AgentSession session(options, cases, spec_digest,
                                 LineChannel(std::move(conn),
                                             target),
                                 secret);
            session.run();
            served = session.helloAccepted();
            obs::TraceRecorder::instance().flush();
        } catch (const ConfigError &e) {
            event(std::string("join dial failed: ") + e.what());
        }
        if (options.maxSessions > 0 &&
            ++sessions >= options.maxSessions) {
            event("served " + std::to_string(sessions) +
                  " session(s); exiting");
            return served ? 0 : 1;
        }
        if (served) {
            backoff.reset();
        } else if (backoff.exhausted()) {
            event("giving up on " + target + " after " +
                  std::to_string(backoff.attempts()) +
                  " failed join(s)");
            return 1;
        }
        auto delay = backoff.nextDelaySec();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
    }
}

}  // namespace

int
runAgent(const AgentOptions &options)
{
    auto event = [&](const std::string &line) {
        if (options.events)
            *options.events << "agent: " << line << "\n"
                            << std::flush;
    };

    std::size_t cases = 0;
    std::string spec_digest;
    try {
        cases = orch::probeGridCases(options.bin, options.specFile);
        // The digest pins which spec file this host runs; the driver
        // cross-checks it at hello time.
        if (!options.specFile.empty())
            spec_digest =
                models::parseSpecFile(options.specFile).digest;
    } catch (const ConfigError &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 2;
    }

    std::optional<std::string> secret;
    try {
        secret = loadFleetSecret(options.secretFile);
    } catch (const ConfigError &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 2;
    }

    if (!options.traceOut.empty())
        obs::TraceRecorder::instance().start(options.traceOut);

    try {
        std::filesystem::create_directories(options.dir);
        // An agent killed by signal (or stalled hard enough to be
        // SIGTERMed by an operator) leaves its recent timeline in
        // the work directory; the driver's own postmortem names the
        // lost shards, this one shows what the host was doing.
        obs::FlightRecorder::installCrashHandlers(
            options.dir + "/agent.postmortem.json");
        if (!options.joinHost.empty())
            return joinDriver(options, cases, spec_digest, secret);
        std::uint16_t port = 0;
        auto listener = tcpListen(options.port, &port);
        event("serving " + options.bin + " (" +
              std::to_string(cases) + " cases, " +
              std::to_string(options.slots) + " slots)");
        event("listening on port " + std::to_string(port));

        int sessions = 0;
        for (;;) {
            std::string peer;
            Socket conn;
            try {
                conn = tcpAccept(listener, &peer);
            } catch (const ConfigError &e) {
                // Transient accept failures (ECONNABORTED from a
                // client resetting mid-handshake, fd pressure) must
                // not take the host's slots out of the fleet.
                event(std::string("accept failed: ") + e.what());
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                continue;
            }
            event("driver connected from " + peer);
            AgentSession(options, cases, spec_digest,
                         LineChannel(std::move(conn), peer),
                         secret)
                .run();
            obs::TraceRecorder::instance().flush();
            if (options.maxSessions > 0 &&
                ++sessions >= options.maxSessions) {
                event("served " + std::to_string(sessions) +
                      " session(s); exiting");
                return 0;
            }
        }
    } catch (const ConfigError &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace net
}  // namespace regate
