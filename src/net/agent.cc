#include "net/agent.h"

#include <chrono>
#include <filesystem>
#include <iostream>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.h"
#include "net/agent_protocol.h"
#include "net/socket.h"
#include "net/transport.h"
#include "orch/probe.h"
#include "sim/serialize.h"

namespace regate {
namespace net {

namespace {

/**
 * Make arbitrary error text frame-safe: the frame grammar cannot
 * quote '"' or newlines (formatFrame asserts on them), and failure
 * reasons routinely embed quoted paths or offending frame text.
 */
std::string
frameSafe(std::string text)
{
    for (char &c : text)
        if (c == '"' || c == '\n' || c == '\r')
            c = '\'';
    return text;
}

/**
 * One driver session: translates protocol frames into operations on
 * a LocalTransport (the same slot machinery the orchestrator uses
 * for its own subprocesses — spawn, heartbeat tailing,
 * digest-verified artifact pickup, kill) and the transport's events
 * back into frames. The agent adds only what the wire needs: slot
 * bookkeeping for fetchable artifacts, and ConfigError validation
 * of driver-supplied slot ids.
 */
class AgentSession
{
  public:
    AgentSession(const AgentOptions &opt, std::size_t cases,
                 LineChannel channel)
        : opt_(opt), cases_(cases), channel_(std::move(channel)),
          local_(opt.bin, opt.dir, opt.slots),
          slots_(static_cast<std::size_t>(opt.slots))
    {}

    void run();

  private:
    struct Slot
    {
        bool busy = false;
        std::string artifact;  ///< Validated bytes awaiting fetch.
        bool hasArtifact = false;
    };

    void
    event(const std::string &line)
    {
        if (opt_.events)
            *opt_.events << "agent: " << line << "\n" << std::flush;
    }

    Slot &
    at(int slot)
    {
        REGATE_CHECK(slot >= 0 && static_cast<std::size_t>(slot) <
                                      slots_.size(),
                     "driver addressed slot ", slot, ", this agent "
                     "offers ", slots_.size());
        return slots_[static_cast<std::size_t>(slot)];
    }

    void
    send(const Frame &frame)
    {
        channel_.sendLine(formatFrame(frame));
    }

    void handleFrame(const Frame &frame);
    void handleAssign(const Frame &frame);
    void handleFetch(const Frame &frame);
    /** Transport events -> done/fail/case frames. */
    void pumpTransport();
    void sendFail(int slot_id, const std::string &reason);

    const AgentOptions &opt_;
    std::size_t cases_;
    LineChannel channel_;
    LocalTransport local_;
    std::vector<Slot> slots_;
};

void
AgentSession::handleAssign(const Frame &frame)
{
    int slot_id = frame.getIndex("slot");
    auto &slot = at(slot_id);
    REGATE_CHECK(!slot.busy, "driver assigned slot ", slot_id,
                 " while it is still running an attempt");
    ShardAssignment a;
    a.shard = frame.getIndex("shard");
    a.shardCount = frame.getIndex("shards");
    a.attempt = frame.getIndex("attempt");
    a.stallSeconds = frame.getIndex("stall");
    a.slowCaseSeconds = frame.getIndex("slow");

    std::string desc;
    try {
        desc = local_.start(slot_id, a);
    } catch (const ConfigError &e) {
        // A failed fork/exec is one failed attempt on one slot —
        // the same way the driver treats its own local spawn
        // failures — not grounds to evict this whole agent (and
        // every other slot it serves) from the fleet.
        sendFail(slot_id, std::string("spawn failed: ") + e.what());
        return;
    }
    slot.busy = true;
    slot.hasArtifact = false;
    slot.artifact.clear();
    event("slot " + std::to_string(slot_id) + ": assign shard " +
          std::to_string(a.shard) + "/" +
          std::to_string(a.shardCount) + " attempt " +
          std::to_string(a.attempt) + " " + desc);
}

void
AgentSession::handleFetch(const Frame &frame)
{
    int slot_id = frame.getIndex("slot");
    auto &slot = at(slot_id);
    REGATE_CHECK(slot.hasArtifact, "driver fetched slot ", slot_id,
                 " which holds no finished artifact");
    Frame reply;
    reply.verb = "artifact";
    reply.kv = {{"slot", std::to_string(slot_id)},
                {"bytes", std::to_string(slot.artifact.size())},
                {"digest", sim::contentDigest(slot.artifact)}};
    send(reply);
    channel_.sendBytes(slot.artifact);
    event("slot " + std::to_string(slot_id) + ": artifact sent (" +
          std::to_string(slot.artifact.size()) + " bytes)");
    slot.artifact.clear();
    slot.hasArtifact = false;
    local_.finishAttempt(slot_id, true);
}

void
AgentSession::handleFrame(const Frame &frame)
{
    if (frame.verb == "assign") {
        handleAssign(frame);
    } else if (frame.verb == "fetch") {
        handleFetch(frame);
    } else if (frame.verb == "kill") {
        int slot_id = frame.getIndex("slot");
        if (at(slot_id).busy) {
            local_.kill(slot_id);
            event("slot " + std::to_string(slot_id) +
                  ": killed on driver request");
        }
    } else {
        throw ConfigError("unexpected frame '" + frame.verb +
                          "' from driver");
    }
}

void
AgentSession::sendFail(int slot_id, const std::string &reason)
{
    Frame f;
    f.verb = "fail";
    f.kv = {{"slot", std::to_string(slot_id)},
            {"reason", frameSafe(reason)}};
    send(f);
    event("slot " + std::to_string(slot_id) + ": failed (" + reason +
          ")");
}

void
AgentSession::pumpTransport()
{
    for (const auto &ev : local_.poll()) {
        auto &slot = slots_[static_cast<std::size_t>(ev.slot)];
        switch (ev.kind) {
          case TransportEvent::Kind::Progress: {
            Frame f;
            f.verb = "case";
            f.kv = {{"slot", std::to_string(ev.slot)},
                    {"done", ev.detail}};
            send(f);
            break;
          }
          case TransportEvent::Kind::Finished:
            slot.busy = false;
            if (!ev.cleanExit) {
                local_.finishAttempt(ev.slot, false);
                sendFail(ev.slot, ev.detail);
                break;
            }
            // fetchArtifact verifies the worker-reported digest
            // against the bytes on this host's disk; the driver
            // re-verifies what it receives, so the artifact is
            // digest-checked end to end across both hops.
            try {
                slot.artifact = local_.fetchArtifact(ev.slot);
                slot.hasArtifact = true;
                Frame f;
                f.verb = "done";
                f.kv = {{"slot", std::to_string(ev.slot)},
                        {"bytes",
                         std::to_string(slot.artifact.size())},
                        {"digest",
                         sim::contentDigest(slot.artifact)}};
                send(f);
                event("slot " + std::to_string(ev.slot) +
                      ": done (" +
                      std::to_string(slot.artifact.size()) +
                      " bytes)");
            } catch (const ConfigError &e) {
                local_.finishAttempt(ev.slot, false);
                sendFail(ev.slot,
                         std::string("artifact invalid: ") +
                             e.what());
            }
            break;
          case TransportEvent::Kind::Lost:
            // LocalTransport never loses slots (it is the process
            // pool on this very host).
            break;
        }
    }
}

void
AgentSession::run()
{
    AgentHello hello;
    hello.bin = std::filesystem::path(opt_.bin).filename().string();
    hello.slots = opt_.slots;
    hello.cases = cases_;
    try {
        send(helloFrame(hello));
    } catch (const ConfigError &e) {
        // A driver that resets between connect and handshake (or a
        // port scanner) costs this session only, never the agent.
        event(std::string("handshake failed: ") + e.what());
        return;
    }

    for (;;) {
        try {
            bool open = channel_.fill();
            while (auto line = channel_.nextLine())
                handleFrame(parseFrame(*line));
            if (!open) {
                event("driver disconnected");
                return;
            }
            pumpTransport();
        } catch (const ConfigError &e) {
            // A protocol violation or a dead socket (possibly
            // surfacing as a failed send mid-report) ends the
            // session, never the agent; tell the driver why if it
            // can still hear.
            event(std::string("session error: ") + e.what());
            try {
                Frame f;
                f.verb = "error";
                f.kv = {{"msg", frameSafe(e.what())}};
                send(f);
            } catch (const ConfigError &) {
            }
            return;
        }
        waitReadable(channel_.fd(), 15);
    }
    // ~LocalTransport kills and reaps anything still running, so a
    // vanished driver never leaks workers on this host.
}

}  // namespace

int
runAgent(const AgentOptions &options)
{
    auto event = [&](const std::string &line) {
        if (options.events)
            *options.events << "agent: " << line << "\n"
                            << std::flush;
    };

    std::size_t cases = 0;
    try {
        cases = orch::probeGridCases(options.bin);
    } catch (const ConfigError &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 2;
    }

    try {
        std::filesystem::create_directories(options.dir);
        std::uint16_t port = 0;
        auto listener = tcpListen(options.port, &port);
        event("serving " + options.bin + " (" +
              std::to_string(cases) + " cases, " +
              std::to_string(options.slots) + " slots)");
        event("listening on port " + std::to_string(port));

        int sessions = 0;
        for (;;) {
            std::string peer;
            Socket conn;
            try {
                conn = tcpAccept(listener, &peer);
            } catch (const ConfigError &e) {
                // Transient accept failures (ECONNABORTED from a
                // client resetting mid-handshake, fd pressure) must
                // not take the host's slots out of the fleet.
                event(std::string("accept failed: ") + e.what());
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                continue;
            }
            event("driver connected from " + peer);
            AgentSession(options, cases,
                         LineChannel(std::move(conn), peer))
                .run();
            if (options.maxSessions > 0 &&
                ++sessions >= options.maxSessions) {
                event("served " + std::to_string(sessions) +
                      " session(s); exiting");
                return 0;
            }
        }
    } catch (const ConfigError &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "regate_agent: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace net
}  // namespace regate
