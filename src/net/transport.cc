#include "net/transport.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/error.h"
#include "net/agent_protocol.h"
#include "orch/fs.h"
#include "orch/planner.h"
#include "sim/serialize.h"

namespace regate {
namespace net {

namespace {

/** Handshake timeouts; generous, these are one-line exchanges. */
constexpr int kHelloTimeoutMs = 10000;
/** Artifact fetch budget: a hung agent must not wedge the driver. */
constexpr int kFetchTimeoutMs = 60000;

std::vector<std::pair<std::string, std::string>>
injectionEnv(const ShardAssignment &a)
{
    // Always set the hooks explicitly — "0" for normal attempts —
    // so a REGATE_TEST_* exported in the driving process's own
    // environment (e.g. left over from reproducing a test) can
    // never leak into every worker.
    return {{"REGATE_TEST_STALL_S", std::to_string(a.stallSeconds)},
            {"REGATE_TEST_SLOW_CASE_S",
             std::to_string(a.slowCaseSeconds)}};
}

}  // namespace

// ---- LocalTransport ----

struct LocalTransport::Slot
{
    bool busy = false;
    pid_t pid = -1;
    int shard = -1;
    std::string attemptPath;
    std::string logPath;
    std::size_t logOffset = 0;  ///< Heartbeat scan position.
};

LocalTransport::LocalTransport(std::string bin, std::string dir,
                               int slots)
    : bin_(std::move(bin)), dir_(std::move(dir))
{
    REGATE_CHECK(slots > 0, "local transport needs at least one "
                 "slot, got ", slots);
    slots_.resize(static_cast<std::size_t>(slots));
}

LocalTransport::~LocalTransport() = default;

int
LocalTransport::slotCount() const
{
    return static_cast<int>(slots_.size());
}

LocalTransport::Slot &
LocalTransport::at(int slot)
{
    REGATE_ASSERT(slot >= 0 &&
                      static_cast<std::size_t>(slot) < slots_.size(),
                  name_, " has no slot ", slot);
    return slots_[static_cast<std::size_t>(slot)];
}

const LocalTransport::Slot &
LocalTransport::at(int slot) const
{
    return const_cast<LocalTransport *>(this)->at(slot);
}

std::string
LocalTransport::start(int slot, const ShardAssignment &a)
{
    auto &s = at(slot);
    REGATE_ASSERT(!s.busy, name_, " slot ", slot,
                  " is already running shard ", s.shard);
    // Process-wide serial: attempt/log names embed (pid, serial),
    // and failed attempts keep their logs for forensics — a
    // per-instance counter would collide across the transports an
    // agent creates per session (same pid, same work dir), letting
    // a new worker O_APPEND onto an old session's kept log and
    // replay its stale heartbeats as this attempt's progress.
    static std::atomic<int> next_serial{0};
    int serial = ++next_serial;
    s.shard = a.shard;
    s.attemptPath =
        dir_ + "/" +
        orch::attemptFileName(a.shard,
                              static_cast<long>(::getpid()), serial);
    s.logPath = s.attemptPath + ".log";
    s.logOffset = 0;

    std::string spec = std::to_string(a.shard) + "/" +
                       std::to_string(a.shardCount);
    s.pid = pool_.spawn({bin_, "--worker", "--shard", spec, "--out",
                         s.attemptPath},
                        injectionEnv(a), s.logPath);
    s.busy = true;
    return "pid=" + std::to_string(s.pid);
}

std::vector<TransportEvent>
LocalTransport::poll()
{
    std::vector<TransportEvent> events;

    // Heartbeats: tail each busy slot's log for worker case lines.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        auto &s = slots_[i];
        if (!s.busy)
            continue;
        std::string progress;
        if (tailWorkerHeartbeats(s.logPath, &s.logOffset,
                                 &progress) > 0) {
            TransportEvent ev;
            ev.slot = static_cast<int>(i);
            ev.kind = TransportEvent::Kind::Progress;
            ev.detail = progress;
            events.push_back(std::move(ev));
        }
    }

    for (const auto &exit : pool_.poll()) {
        auto it = slots_.begin();
        for (; it != slots_.end(); ++it)
            if (it->busy && it->pid == exit.pid)
                break;
        REGATE_ASSERT(it != slots_.end(), "reaped unknown pid ",
                      exit.pid);
        it->busy = false;
        TransportEvent ev;
        ev.slot = static_cast<int>(it - slots_.begin());
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = orch::ProcessPool::exitedCleanly(
            exit.rawStatus);
        ev.detail = orch::ProcessPool::describeStatus(
            exit.rawStatus);
        events.push_back(std::move(ev));
    }
    return events;
}

std::string
LocalTransport::fetchArtifact(int slot)
{
    auto &s = at(slot);
    // The worker's reported digest pins the bytes that landed on
    // (possibly shared) storage; the caller merges exactly the
    // bytes read here, so there is no second read that could
    // observe a different file state.
    auto content = readFile(s.attemptPath);
    auto reported = workerDoneDigest(readFile(s.logPath));
    auto on_disk = sim::contentDigest(content);
    REGATE_CHECK(reported == on_disk,
                 "worker reported file digest ", reported, " but ",
                 on_disk,
                 " landed on disk — truncated or concurrent write?");
    return content;
}

void
LocalTransport::kill(int slot)
{
    auto &s = at(slot);
    if (s.busy)
        pool_.kill(s.pid);
}

bool
LocalTransport::promoteArtifact(int slot,
                                const std::string &final_path)
{
    // The attempt file's bytes are exactly what fetchArtifact
    // digest-verified; promote by rename instead of making the
    // caller rewrite the whole artifact next to it.
    auto &s = at(slot);
    orch::renameFile(s.attemptPath, final_path);
    return true;
}

void
LocalTransport::finishAttempt(int slot, bool success)
{
    auto &s = at(slot);
    orch::removeFileIfExists(s.attemptPath);
    if (success)
        orch::removeFileIfExists(s.logPath);
    // Failure keeps the log for forensics (failureRef points at it).
}

std::string
LocalTransport::failureRef(int slot) const
{
    return "worker log: " + at(slot).logPath;
}

// ---- TcpTransport ----

struct TcpTransport::Slot
{
    bool busy = false;
    int shard = -1;
    bool done = false;          ///< done frame seen, artifact not yet
                                ///< fetched.
    std::string doneDigest;     ///< Digest promised by the done frame.
    std::string lastFailure;    ///< reason= of the last fail frame.
};

std::unique_ptr<TcpTransport>
TcpTransport::connect(const std::string &host, std::uint16_t port,
                      int cli_slots, const std::string &expect_bin,
                      std::size_t expect_cases)
{
    auto name = host + ":" + std::to_string(port);
    return std::make_unique<TcpTransport>(tcpConnect(host, port),
                                          name, cli_slots,
                                          expect_bin, expect_cases);
}

TcpTransport::TcpTransport(Socket sock, std::string name,
                           int cli_slots,
                           const std::string &expect_bin,
                           std::size_t expect_cases)
    : name_(std::move(name)), channel_(std::move(sock), name_)
{
    auto hello =
        parseHello(parseFrame(channel_.readLine(kHelloTimeoutMs)));
    REGATE_CHECK(hello.bin == expect_bin, name_,
                 ": agent serves ", hello.bin, " but this run "
                 "drives ", expect_bin,
                 " — point every agent at the same figure binary");
    REGATE_CHECK(hello.cases == expect_cases, name_,
                 ": agent's ", hello.bin, " reports ", hello.cases,
                 " grid cases but the local binary reports ",
                 expect_cases, " — mismatched builds?");
    int slots = cli_slots > 0 ? std::min(cli_slots, hello.slots)
                              : hello.slots;
    slots_.resize(static_cast<std::size_t>(slots));
}

TcpTransport::~TcpTransport() = default;

int
TcpTransport::slotCount() const
{
    return static_cast<int>(slots_.size());
}

TcpTransport::Slot &
TcpTransport::at(int slot)
{
    // ConfigError, not an internal assert: slot ids also arrive in
    // agent frames, and a bad one from a buggy/skewed agent must
    // retire THIS transport (poll's ConfigError containment), not
    // abort the whole fleet run.
    REGATE_CHECK(slot >= 0 &&
                     static_cast<std::size_t>(slot) < slots_.size(),
                 name_, " has no slot ", slot);
    return slots_[static_cast<std::size_t>(slot)];
}

const TcpTransport::Slot &
TcpTransport::at(int slot) const
{
    return const_cast<TcpTransport *>(this)->at(slot);
}

void
TcpTransport::markDead(const std::string &reason,
                       std::vector<TransportEvent> *events)
{
    if (!alive_)
        return;
    alive_ = false;
    deathReason_ = reason;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy)
            continue;
        slots_[i].busy = false;
        TransportEvent ev;
        ev.slot = static_cast<int>(i);
        ev.kind = TransportEvent::Kind::Lost;
        ev.detail = reason;
        events->push_back(std::move(ev));
    }
}

void
TcpTransport::handleFrame(const Frame &frame,
                          std::vector<TransportEvent> *events)
{
    if (frame.verb == "error") {
        markDead("agent reported: " + frame.get("msg"), events);
        return;
    }
    int slot = frame.getIndex("slot");
    auto &s = at(slot);
    if (frame.verb == "case") {
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Progress;
        ev.detail = frame.get("done");
        events->push_back(std::move(ev));
    } else if (frame.verb == "done") {
        // An unsolicited done/fail for an idle slot is a protocol
        // violation; letting it through would settle a slot the
        // scheduler never assigned (shard -1) or re-settle a merged
        // one. The throw lands in poll()'s markDead containment.
        REGATE_CHECK(s.busy, name_, ": done frame for idle slot ",
                     slot);
        s.done = true;
        s.doneDigest = frame.get("digest");
        s.busy = false;
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = true;
        ev.detail = "exit 0";
        events->push_back(std::move(ev));
    } else if (frame.verb == "fail") {
        REGATE_CHECK(s.busy, name_, ": fail frame for idle slot ",
                     slot);
        s.busy = false;
        s.done = false;
        s.lastFailure = frame.get("reason");
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = false;
        ev.detail = s.lastFailure;
        events->push_back(std::move(ev));
    } else {
        throw ConfigError(name_ + ": unexpected frame '" +
                          frame.verb + "' from agent");
    }
}

std::string
TcpTransport::start(int slot, const ShardAssignment &a)
{
    REGATE_CHECK(alive_, name_, ": agent connection is gone (",
                 deathReason_, ")");
    auto &s = at(slot);
    REGATE_ASSERT(!s.busy, name_, " slot ", slot,
                  " is already running shard ", s.shard);
    Frame f;
    f.verb = "assign";
    f.kv = {{"slot", std::to_string(slot)},
            {"shard", std::to_string(a.shard)},
            {"shards", std::to_string(a.shardCount)},
            {"attempt", std::to_string(a.attempt)},
            {"stall", std::to_string(a.stallSeconds)},
            {"slow", std::to_string(a.slowCaseSeconds)}};
    try {
        channel_.sendLine(formatFrame(f));
    } catch (const ConfigError &) {
        markDead("agent connection lost on assign", &queued_);
        throw;
    }
    s.busy = true;
    s.shard = a.shard;
    s.done = false;
    return "agent slot " + std::to_string(slot);
}

std::vector<TransportEvent>
TcpTransport::poll()
{
    std::vector<TransportEvent> events;
    std::swap(events, queued_);
    if (!alive_)
        return events;
    try {
        bool open = channel_.fill();
        while (auto line = channel_.nextLine())
            handleFrame(parseFrame(*line), &events);
        if (!open)
            markDead("agent connection lost", &events);
    } catch (const ConfigError &e) {
        markDead(e.what(), &events);
    }
    return events;
}

std::string
TcpTransport::fetchArtifact(int slot)
{
    auto &s = at(slot);
    REGATE_CHECK(alive_, name_, ": agent connection is gone (",
                 deathReason_, ") before slot ", slot,
                 "'s artifact could be fetched");
    REGATE_CHECK(s.done, name_, ": slot ", slot,
                 " has no finished artifact to fetch");
    Frame req;
    req.verb = "fetch";
    req.kv = {{"slot", std::to_string(slot)}};

    try {
        channel_.sendLine(formatFrame(req));
        for (;;) {
            auto frame =
                parseFrame(channel_.readLine(kFetchTimeoutMs));
            if (frame.verb != "artifact") {
                // Heartbeats / exits of other slots keep flowing
                // during a transfer; queue them for the next poll.
                handleFrame(frame, &queued_);
                continue;
            }
            REGATE_CHECK(frame.getIndex("slot") == slot,
                         name_, ": artifact for slot ",
                         frame.get("slot"), " while fetching slot ",
                         slot);
            auto bytes = static_cast<std::size_t>(
                frame.getInt("bytes"));
            auto promised = frame.get("digest");
            auto content =
                channel_.readExact(bytes, kFetchTimeoutMs);
            auto received = sim::contentDigest(content);
            REGATE_CHECK(received == promised,
                         name_, ": artifact digest mismatch — agent "
                         "promised ", promised, " but the received "
                         "bytes hash to ", received);
            REGATE_CHECK(received == s.doneDigest,
                         name_, ": artifact digest ", received,
                         " does not match the done line's ",
                         s.doneDigest);
            s.done = false;
            return content;
        }
    } catch (const ConfigError &) {
        // A broken transfer kills the session: the stream position
        // is unknowable, so no further frame can be trusted.
        markDead("artifact transfer failed", &queued_);
        throw;
    }
}

void
TcpTransport::kill(int slot)
{
    if (!alive_)
        return;
    Frame f;
    f.verb = "kill";
    f.kv = {{"slot", std::to_string(slot)}};
    try {
        channel_.sendLine(formatFrame(f));
    } catch (const ConfigError &) {
        markDead("agent connection lost on kill", &queued_);
    }
}

void
TcpTransport::abandon(const std::string &reason)
{
    markDead(reason, &queued_);
}

void
TcpTransport::finishAttempt(int slot, bool success)
{
    (void)slot;
    (void)success;
    // The agent cleans up its own attempt files; failed-worker logs
    // stay on the agent host for forensics.
}

std::string
TcpTransport::failureRef(int slot) const
{
    (void)slot;
    return "agent " + name_ + " worker logs";
}

}  // namespace net
}  // namespace regate
