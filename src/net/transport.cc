#include "net/transport.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/error.h"
#include "net/agent_protocol.h"
#include "orch/fs.h"
#include "orch/planner.h"
#include "sim/serialize.h"

namespace regate {
namespace net {

namespace {

/** Handshake timeouts; generous, these are one-line exchanges. */
constexpr int kHelloTimeoutMs = 10000;
/** Artifact fetch budget: a hung agent must not wedge the driver. */
constexpr int kFetchTimeoutMs = 60000;

std::vector<std::pair<std::string, std::string>>
injectionEnv(const ShardAssignment &a)
{
    // Always set the hooks explicitly — "0" for normal attempts —
    // so a REGATE_TEST_* exported in the driving process's own
    // environment (e.g. left over from reproducing a test) can
    // never leak into every worker.
    return {{"REGATE_TEST_STALL_S", std::to_string(a.stallSeconds)},
            {"REGATE_TEST_SLOW_CASE_S",
             std::to_string(a.slowCaseSeconds)}};
}

}  // namespace

// ---- LocalTransport ----

struct LocalTransport::Slot
{
    bool busy = false;
    pid_t pid = -1;
    int shard = -1;
    std::string attemptPath;
    std::string logPath;
    WorkerLogTail tail;  ///< Incremental log scan state.
    /** Telemetry: heartbeat deltas become case-duration samples. */
    std::chrono::steady_clock::time_point lastBeat;
    int lastDone = 0;    ///< Cases counted into samples so far.
};

LocalTransport::LocalTransport(std::string bin, std::string dir,
                               int slots, std::string spec_path)
    : bin_(std::move(bin)),
      dir_(std::move(dir)),
      specPath_(std::move(spec_path))
{
    REGATE_CHECK(slots > 0, "local transport needs at least one "
                 "slot, got ", slots);
    slots_.resize(static_cast<std::size_t>(slots));
}

LocalTransport::~LocalTransport() = default;

int
LocalTransport::slotCount() const
{
    return static_cast<int>(slots_.size());
}

LocalTransport::Slot &
LocalTransport::at(int slot)
{
    REGATE_ASSERT(slot >= 0 &&
                      static_cast<std::size_t>(slot) < slots_.size(),
                  name_, " has no slot ", slot);
    return slots_[static_cast<std::size_t>(slot)];
}

const LocalTransport::Slot &
LocalTransport::at(int slot) const
{
    return const_cast<LocalTransport *>(this)->at(slot);
}

std::string
LocalTransport::start(int slot, const ShardAssignment &a)
{
    auto &s = at(slot);
    REGATE_ASSERT(!s.busy, name_, " slot ", slot,
                  " is already running shard ", s.shard);
    // Process-wide serial: attempt/log names embed (pid, serial),
    // and failed attempts keep their logs for forensics — a
    // per-instance counter would collide across the transports an
    // agent creates per session (same pid, same work dir), letting
    // a new worker O_APPEND onto an old session's kept log and
    // replay its stale heartbeats as this attempt's progress.
    static std::atomic<int> next_serial{0};
    int serial = ++next_serial;
    s.shard = a.shard;
    s.attemptPath =
        dir_ + "/" +
        orch::attemptFileName(a.shard,
                              static_cast<long>(::getpid()), serial);
    s.logPath = s.attemptPath + ".log";
    s.tail = WorkerLogTail{};

    std::string shard_spec = std::to_string(a.shard) + "/" +
                             std::to_string(a.shardCount);
    std::vector<std::string> cmd = {bin_, "--worker", "--shard",
                                    shard_spec, "--out",
                                    s.attemptPath};
    if (!specPath_.empty()) {
        cmd.emplace_back("--spec");
        cmd.push_back(specPath_);
    }
    s.pid = pool_.spawn(cmd, injectionEnv(a), s.logPath);
    s.busy = true;
    s.lastBeat = std::chrono::steady_clock::now();
    s.lastDone = 0;
    return "pid=" + std::to_string(s.pid);
}

std::vector<TransportEvent>
LocalTransport::poll()
{
    std::vector<TransportEvent> events;

    // Heartbeats: tail each busy slot's log for worker case lines.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        auto &s = slots_[i];
        if (!s.busy)
            continue;
        if (tailWorkerLog(s.logPath, &s.tail) > 0) {
            TransportEvent ev;
            ev.slot = static_cast<int>(i);
            ev.kind = TransportEvent::Kind::Progress;
            ev.detail = s.tail.progress;
            events.push_back(std::move(ev));

            // Synthesize the same case-duration samples a remote
            // agent streams, from heartbeat deltas: a batch of
            // (k_new - k_old) cases took the wall time since the
            // previous beat. One uniform Metric event path means
            // the orchestrator's aggregation cannot double-count.
            int done = 0, total = 0;
            if (std::sscanf(s.tail.progress.c_str(), "%d/%d",
                            &done, &total) == 2 &&
                done > s.lastDone) {
                auto now = std::chrono::steady_clock::now();
                auto us = std::chrono::duration_cast<
                              std::chrono::microseconds>(
                              now - s.lastBeat)
                              .count();
                TransportEvent m;
                m.slot = static_cast<int>(i);
                m.kind = TransportEvent::Kind::Metric;
                m.metricName = "case_duration_us";
                m.metricKind = 'h';
                m.metricValue =
                    us > 0 ? static_cast<std::uint64_t>(us) : 0;
                m.metricCount =
                    static_cast<std::uint64_t>(done - s.lastDone);
                events.push_back(std::move(m));
                s.lastBeat = now;
                s.lastDone = done;
            }
        }
    }

    for (const auto &exit : pool_.poll()) {
        auto it = slots_.begin();
        for (; it != slots_.end(); ++it)
            if (it->busy && it->pid == exit.pid)
                break;
        REGATE_ASSERT(it != slots_.end(), "reaped unknown pid ",
                      exit.pid);
        it->busy = false;
        // The exit can race past the heartbeat tail above: cases
        // finished between the last tail and the reap would drop
        // out of the duration samples (and the sweep's per-case
        // count would undershoot the grid). One final incremental
        // tail closes the books; fetchArtifact's own tail stays
        // O(new bytes) behind the shared offset.
        tailWorkerLog(it->logPath, &it->tail);
        {
            int done = 0, total = 0;
            if (std::sscanf(it->tail.progress.c_str(), "%d/%d",
                            &done, &total) == 2 &&
                done > it->lastDone) {
                auto now = std::chrono::steady_clock::now();
                auto us = std::chrono::duration_cast<
                              std::chrono::microseconds>(
                              now - it->lastBeat)
                              .count();
                TransportEvent m;
                m.slot = static_cast<int>(it - slots_.begin());
                m.kind = TransportEvent::Kind::Metric;
                m.metricName = "case_duration_us";
                m.metricKind = 'h';
                m.metricValue =
                    us > 0 ? static_cast<std::uint64_t>(us) : 0;
                m.metricCount =
                    static_cast<std::uint64_t>(done - it->lastDone);
                events.push_back(std::move(m));
                it->lastBeat = now;
                it->lastDone = done;
            }
        }
        TransportEvent ev;
        ev.slot = static_cast<int>(it - slots_.begin());
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = orch::ProcessPool::exitedCleanly(
            exit.rawStatus);
        ev.detail = orch::ProcessPool::describeStatus(
            exit.rawStatus);
        events.push_back(std::move(ev));
    }
    return events;
}

std::string
LocalTransport::fetchArtifact(int slot)
{
    auto &s = at(slot);
    // The worker's reported digest pins the bytes that landed on
    // (possibly shared) storage; the caller merges exactly the
    // bytes read here, so there is no second read that could
    // observe a different file state.
    auto content = readFile(s.attemptPath);
    // One last incremental tail catches the done line the exit
    // raced past poll(); the scan state already holds everything
    // before it, so even this final read is O(new bytes), never a
    // whole-log re-read.
    tailWorkerLog(s.logPath, &s.tail);
    REGATE_CHECK(!s.tail.doneDigest.empty(),
                 "worker exited 0 but its log has no handshake "
                 "done line");
    const auto &reported = s.tail.doneDigest;
    auto on_disk = sim::contentDigest(content);
    REGATE_CHECK(reported == on_disk,
                 "worker reported file digest ", reported, " but ",
                 on_disk,
                 " landed on disk — truncated or concurrent write?");
    return content;
}

void
LocalTransport::kill(int slot)
{
    auto &s = at(slot);
    if (s.busy)
        pool_.kill(s.pid);
}

bool
LocalTransport::promoteArtifact(int slot,
                                const std::string &final_path)
{
    // The attempt file's bytes are exactly what fetchArtifact
    // digest-verified; promote by rename instead of making the
    // caller rewrite the whole artifact next to it.
    auto &s = at(slot);
    orch::renameFile(s.attemptPath, final_path);
    return true;
}

void
LocalTransport::finishAttempt(int slot, bool success)
{
    auto &s = at(slot);
    orch::removeFileIfExists(s.attemptPath);
    if (success)
        orch::removeFileIfExists(s.logPath);
    // Failure keeps the log for forensics (failureRef points at it).
}

std::string
LocalTransport::failureRef(int slot) const
{
    return "worker log: " + at(slot).logPath;
}

// ---- TcpTransport ----

struct TcpTransport::Slot
{
    bool busy = false;
    int shard = -1;
    bool done = false;          ///< done frame seen, artifact not yet
                                ///< fetched.
    std::string doneDigest;     ///< Digest promised by the done frame.
    std::string lastFailure;    ///< reason= of the last fail frame.
};

std::unique_ptr<TcpTransport>
TcpTransport::connect(const std::string &host, std::uint16_t port,
                      int cli_slots, const std::string &expect_bin,
                      std::size_t expect_cases,
                      const std::string &expect_spec,
                      const std::optional<std::string> &secret)
{
    auto name = host + ":" + std::to_string(port);
    return std::make_unique<TcpTransport>(tcpConnect(host, port),
                                          name, cli_slots,
                                          expect_bin, expect_cases,
                                          expect_spec, secret);
}

TcpTransport::TcpTransport(Socket sock, std::string name,
                           int cli_slots,
                           const std::string &expect_bin,
                           std::size_t expect_cases,
                           const std::string &expect_spec,
                           const std::optional<std::string> &secret)
    : name_(std::move(name)), channel_(std::move(sock), name_),
      secret_(secret)
{
    auto shake =
        driverHandshake(channel_, secret, kHelloTimeoutMs);
    authenticated_ = shake.authenticated;
    driverNonce_ = shake.driverNonce;
    peerMetrics_ = shake.hello.metrics;
    const auto &hello = shake.hello;
    REGATE_CHECK(hello.bin == expect_bin, name_,
                 ": agent serves ", hello.bin, " but this run "
                 "drives ", expect_bin,
                 " — point every agent at the same figure binary");
    REGATE_CHECK(hello.cases == expect_cases, name_,
                 ": agent's ", hello.bin, " reports ", hello.cases,
                 " grid cases but the local binary reports ",
                 expect_cases, " — mismatched builds?");
    REGATE_CHECK(hello.spec == expect_spec, name_,
                 ": spec digest mismatch — agent runs with spec \"",
                 hello.spec, "\" but this run expects \"",
                 expect_spec,
                 "\" — point every agent at the same --spec file "
                 "(or none)");
    int slots = cli_slots > 0 ? std::min(cli_slots, hello.slots)
                              : hello.slots;
    slots_.resize(static_cast<std::size_t>(slots));
}

TcpTransport::~TcpTransport() = default;

int
TcpTransport::slotCount() const
{
    return static_cast<int>(slots_.size());
}

TcpTransport::Slot &
TcpTransport::at(int slot)
{
    // ConfigError, not an internal assert: slot ids also arrive in
    // agent frames, and a bad one from a buggy/skewed agent must
    // retire THIS transport (poll's ConfigError containment), not
    // abort the whole fleet run.
    REGATE_CHECK(slot >= 0 &&
                     static_cast<std::size_t>(slot) < slots_.size(),
                 name_, " has no slot ", slot);
    return slots_[static_cast<std::size_t>(slot)];
}

const TcpTransport::Slot &
TcpTransport::at(int slot) const
{
    return const_cast<TcpTransport *>(this)->at(slot);
}

void
TcpTransport::markDead(const std::string &reason,
                       std::vector<TransportEvent> *events)
{
    if (!alive_)
        return;
    alive_ = false;
    deathReason_ = reason;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy)
            continue;
        slots_[i].busy = false;
        TransportEvent ev;
        ev.slot = static_cast<int>(i);
        ev.kind = TransportEvent::Kind::Lost;
        ev.detail = reason;
        events->push_back(std::move(ev));
    }
}

void
TcpTransport::handleFrame(const Frame &frame,
                          std::vector<TransportEvent> *events)
{
    if (frame.verb == "error") {
        markDead("agent reported: " + frame.get("msg"), events);
        return;
    }
    int slot = frame.getIndex("slot");
    auto &s = at(slot);
    if (frame.verb == "metric") {
        // Never assumed: an agent that did not offer the capability
        // on its hello has no business streaming samples — treat it
        // as the protocol violation it is (poll's markDead
        // containment), exactly like any other unexpected verb.
        REGATE_CHECK(peerMetrics_, name_,
                     ": metric frame from an agent that never "
                     "negotiated the metrics capability");
        auto seq =
            static_cast<std::uint64_t>(frame.getInt("seq"));
        auto sample = parseMetric(frame);
        if (authenticated_) {
            REGATE_CHECK(
                frame.has("auth") &&
                    frame.get("auth") ==
                        metricAuth(*secret_, driverNonce_, slot,
                                   seq, sample),
                name_, ": metric frame authentication failed: "
                "HMAC mismatch — tampered or wrong secret");
            // Strictly increasing per session: a recorded sample
            // cannot be replayed to inflate the aggregates.
            REGATE_CHECK(seq > lastMetricSeq_, name_,
                         ": replayed metric frame (seq ", seq,
                         " after ", lastMetricSeq_, ")");
        }
        lastMetricSeq_ = std::max(lastMetricSeq_, seq);
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Metric;
        ev.metricName = sample.name;
        ev.metricKind = sample.kind;
        ev.metricValue = sample.value;
        ev.metricCount = sample.count;
        events->push_back(std::move(ev));
        return;
    }
    if (frame.verb == "case") {
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Progress;
        ev.detail = frame.get("done");
        events->push_back(std::move(ev));
    } else if (frame.verb == "done") {
        // An unsolicited done/fail for an idle slot is a protocol
        // violation; letting it through would settle a slot the
        // scheduler never assigned (shard -1) or re-settle a merged
        // one. The throw lands in poll()'s markDead containment.
        REGATE_CHECK(s.busy, name_, ": done frame for idle slot ",
                     slot);
        // Read every required field BEFORE mutating the slot: a
        // malformed frame must throw while the slot is still busy,
        // so markDead surfaces its in-flight attempt as Lost
        // instead of silently dropping it.
        const auto &digest = frame.get("digest");
        s.done = true;
        s.doneDigest = digest;
        s.busy = false;
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = true;
        ev.detail = "exit 0";
        events->push_back(std::move(ev));
    } else if (frame.verb == "fail") {
        REGATE_CHECK(s.busy, name_, ": fail frame for idle slot ",
                     slot);
        const auto &reason = frame.get("reason");  // May throw.
        s.busy = false;
        s.done = false;
        s.lastFailure = reason;
        TransportEvent ev;
        ev.slot = slot;
        ev.kind = TransportEvent::Kind::Finished;
        ev.cleanExit = false;
        ev.detail = s.lastFailure;
        events->push_back(std::move(ev));
    } else {
        throw ConfigError(name_ + ": unexpected frame '" +
                          frame.verb + "' from agent");
    }
}

std::string
TcpTransport::start(int slot, const ShardAssignment &a)
{
    REGATE_CHECK(alive_, name_, ": agent connection is gone (",
                 deathReason_, ")");
    auto &s = at(slot);
    REGATE_ASSERT(!s.busy, name_, " slot ", slot,
                  " is already running shard ", s.shard);
    Frame f;
    f.verb = "assign";
    f.kv = {{"slot", std::to_string(slot)},
            {"shard", std::to_string(a.shard)},
            {"shards", std::to_string(a.shardCount)},
            {"attempt", std::to_string(a.attempt)},
            {"stall", std::to_string(a.stallSeconds)},
            {"slow", std::to_string(a.slowCaseSeconds)}};
    // Enable the agent's metric streaming for this attempt. Old
    // agents ignore the unknown key; agents that never offered the
    // capability never get it (and their metric frames would be
    // rejected by name above).
    if (peerMetrics_)
        f.kv.emplace_back("metrics", "1");
    try {
        channel_.sendLine(formatFrame(f));
    } catch (const ConfigError &) {
        markDead("agent connection lost on assign", &queued_);
        throw;
    }
    s.busy = true;
    s.shard = a.shard;
    s.done = false;
    return "agent slot " + std::to_string(slot);
}

std::vector<TransportEvent>
TcpTransport::poll()
{
    std::vector<TransportEvent> events;
    std::swap(events, queued_);
    if (!alive_)
        return events;
    try {
        bool open = channel_.fill();
        while (auto line = channel_.nextLine())
            handleFrame(parseFrame(*line), &events);
        if (!open)
            markDead("agent connection lost", &events);
    } catch (const ConfigError &e) {
        markDead(e.what(), &events);
    }
    return events;
}

std::string
TcpTransport::fetchArtifact(int slot)
{
    auto &s = at(slot);
    REGATE_CHECK(alive_, name_, ": agent connection is gone (",
                 deathReason_, ") before slot ", slot,
                 "'s artifact could be fetched");
    REGATE_CHECK(s.done, name_, ": slot ", slot,
                 " has no finished artifact to fetch");
    Frame req;
    req.verb = "fetch";
    req.kv = {{"slot", std::to_string(slot)}};

    try {
        channel_.sendLine(formatFrame(req));
        for (;;) {
            auto frame =
                parseFrame(channel_.readLine(kFetchTimeoutMs));
            if (frame.verb != "artifact") {
                // Heartbeats / exits of other slots keep flowing
                // during a transfer; queue them for the next poll.
                handleFrame(frame, &queued_);
                continue;
            }
            REGATE_CHECK(frame.getIndex("slot") == slot,
                         name_, ": artifact for slot ",
                         frame.get("slot"), " while fetching slot ",
                         slot);
            auto bytes = static_cast<std::size_t>(
                frame.getInt("bytes"));
            auto promised = frame.get("digest");
            auto content =
                channel_.readExact(bytes, kFetchTimeoutMs);
            auto received = sim::contentDigest(content);
            REGATE_CHECK(received == promised,
                         name_, ": artifact digest mismatch — agent "
                         "promised ", promised, " but the received "
                         "bytes hash to ", received);
            REGATE_CHECK(received == s.doneDigest,
                         name_, ": artifact digest ", received,
                         " does not match the done line's ",
                         s.doneDigest);
            s.done = false;
            return content;
        }
    } catch (const ConfigError &) {
        // A broken transfer kills the session: the stream position
        // is unknowable, so no further frame can be trusted.
        markDead("artifact transfer failed", &queued_);
        throw;
    }
}

void
TcpTransport::kill(int slot)
{
    if (!alive_)
        return;
    Frame f;
    f.verb = "kill";
    f.kv = {{"slot", std::to_string(slot)}};
    try {
        channel_.sendLine(formatFrame(f));
    } catch (const ConfigError &) {
        markDead("agent connection lost on kill", &queued_);
    }
}

void
TcpTransport::abandon(const std::string &reason)
{
    markDead(reason, &queued_);
}

void
TcpTransport::finishAttempt(int slot, bool success)
{
    (void)slot;
    (void)success;
    // The agent cleans up its own attempt files; failed-worker logs
    // stay on the agent host for forensics.
}

std::string
TcpTransport::failureRef(int slot) const
{
    (void)slot;
    return "agent " + name_ + " worker logs";
}

// ---- ReconnectingTransport ----

namespace {

/** Seed re-dial jitter from the dial target, deterministically per
 *  host so a fleet of reconnecting links still de-correlates. */
std::uint64_t
jitterSeed(const std::string &host, std::uint16_t port)
{
    std::uint64_t h = 1469598103934665603ull;  // FNV offset basis.
    for (char c : host)
        h = (h ^ static_cast<unsigned char>(c)) *
            1099511628211ull;
    return h ^ port;
}

}  // namespace

ReconnectingTransport::ReconnectingTransport(DialConfig config,
                                             BackoffPolicy backoff)
    : config_(std::move(config)),
      name_(config_.host + ":" + std::to_string(config_.port)),
      backoff_(backoff, jitterSeed(config_.host, config_.port))
{
    // First dial fails fast: a host that was never reachable is a
    // usage error, not an outage to ride out.
    inner_ = dial();
    slotCount_ = inner_->slotCount();
}

std::unique_ptr<TcpTransport>
ReconnectingTransport::dial()
{
    auto transport = TcpTransport::connect(
        config_.host, config_.port, config_.cliSlots,
        config_.expectBin, config_.expectCases, config_.expectSpec,
        config_.secret);
    ++sessions_;
    return transport;
}

bool
ReconnectingTransport::alive() const
{
    return inner_ && inner_->alive();
}

bool
ReconnectingTransport::recovering() const
{
    return !alive() && !gaveUp_;
}

bool
ReconnectingTransport::slotUsable(int slot) const
{
    // A re-hello may offer fewer slots than the first one pinned;
    // the tail slots stay out of service until a session offers
    // them again.
    return alive() && slot < inner_->slotCount();
}

void
ReconnectingTransport::noteLoss(const std::string &reason)
{
    lastError_ = reason;
    inner_.reset();
    if (backoff_.exhausted()) {
        gaveUp_ = true;
        return;
    }
    nextDialAt_ =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                backoff_.nextDelaySec()));
}

std::vector<TransportEvent>
ReconnectingTransport::poll()
{
    if (inner_) {
        // poll() still drains queued events after a death, so the
        // Lost events of the drop are all returned here before the
        // dead session is discarded.
        auto events = inner_->poll();
        if (!inner_->alive())
            noteLoss(inner_->deathReason());
        return events;
    }
    if (gaveUp_ || Clock::now() < nextDialAt_)
        return {};
    try {
        inner_ = dial();
        // The handshake re-validated bin/cases; a success rearms
        // the backoff for the next outage.
        backoff_.reset();
    } catch (const ConfigError &e) {
        noteLoss(e.what());
        if (gaveUp_) {
            // Surface WHY the host is finally being given up on —
            // once recovering() goes false the orchestrator only
            // sees a dead transport.
            TransportEvent ev;
            ev.slot = -1;
            ev.kind = TransportEvent::Kind::Lost;
            ev.detail = name_ + ": giving up after " +
                        std::to_string(backoff_.attempts()) +
                        " failed re-dial(s): " + e.what();
            // No slot was busy (they all Lost at the drop), so the
            // orchestrator must tolerate slot=-1 fleet-level
            // events.
            return {ev};
        }
    }
    return {};
}

std::string
ReconnectingTransport::start(int slot, const ShardAssignment &a)
{
    REGATE_CHECK(alive(), name_, ": agent link is down (",
                 lastError_.empty() ? "reconnecting" : lastError_,
                 ")");
    REGATE_CHECK(slotUsable(slot), name_, ": slot ", slot,
                 " is not offered by the current session");
    return inner_->start(slot, a);
}

std::string
ReconnectingTransport::fetchArtifact(int slot)
{
    REGATE_CHECK(inner_, name_, ": agent link is down (",
                 lastError_, ") before slot ", slot,
                 "'s artifact could be fetched");
    return inner_->fetchArtifact(slot);
}

void
ReconnectingTransport::kill(int slot)
{
    if (inner_)
        inner_->kill(slot);
}

void
ReconnectingTransport::abandon(const std::string &reason)
{
    // A wedged session is as dead as a dropped one — but the HOST
    // may recover (an un-SIGSTOPped agent, a rebooted machine), so
    // abandoning feeds the same re-dial loop instead of retiring
    // the transport outright.
    if (inner_)
        inner_->abandon(reason);
}

bool
ReconnectingTransport::promoteArtifact(int slot,
                                       const std::string &final_path)
{
    return inner_ && inner_->promoteArtifact(slot, final_path);
}

void
ReconnectingTransport::finishAttempt(int slot, bool success)
{
    if (inner_)
        inner_->finishAttempt(slot, success);
}

std::string
ReconnectingTransport::failureRef(int slot) const
{
    return inner_ ? inner_->failureRef(slot)
                  : "agent " + name_ + " worker logs";
}

bool
ReconnectingTransport::authenticated() const
{
    return inner_ && inner_->authenticated();
}

}  // namespace net
}  // namespace regate
