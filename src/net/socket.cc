#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"

namespace regate {
namespace net {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

}  // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket
tcpListen(std::uint16_t port, std::uint16_t *bound_port)
{
    // CLOEXEC on every fleet socket: spawned workers must not
    // inherit them, or a SIGKILLed agent's orphaned worker keeps
    // the listening port bound and a restarted agent cannot take
    // the dead one's place.
    Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    REGATE_CHECK(sock.valid(), "cannot create socket: ",
                 errnoText());
    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    REGATE_CHECK(::bind(sock.fd(),
                        reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)) == 0,
                 "cannot bind TCP port ", port, ": ", errnoText());
    REGATE_CHECK(::listen(sock.fd(), 8) == 0, "cannot listen on ",
                 port, ": ", errnoText());
    if (bound_port) {
        socklen_t len = sizeof(addr);
        REGATE_CHECK(::getsockname(sock.fd(),
                                   reinterpret_cast<sockaddr *>(
                                       &addr),
                                   &len) == 0,
                     "getsockname failed: ", errnoText());
        *bound_port = ntohs(addr.sin_port);
    }
    return sock;
}

Socket
tcpAccept(const Socket &listener, std::string *peer)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    int fd = -1;
    do {
        fd = ::accept4(listener.fd(),
                       reinterpret_cast<sockaddr *>(&addr), &len,
                       SOCK_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    REGATE_CHECK(fd >= 0, "accept failed: ", errnoText());
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (peer) {
        char host[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
        *peer = std::string(host) + ":" +
                std::to_string(ntohs(addr.sin_port));
    }
    return Socket(fd);
}

Socket
tcpConnect(const std::string &host, std::uint16_t port)
{
    // Bounded connect: a powered-off or firewalled fleet host must
    // fail startup in seconds, not wait out the kernel's SYN
    // retries (minutes) while every other slot sits idle.
    constexpr int kConnectTimeoutMs = 10000;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    int rc = ::getaddrinfo(host.c_str(),
                           std::to_string(port).c_str(), &hints,
                           &res);
    REGATE_CHECK(rc == 0 && res, "cannot resolve ", host, ": ",
                 gai_strerror(rc));
    Socket sock(::socket(res->ai_family,
                         res->ai_socktype | SOCK_CLOEXEC,
                         res->ai_protocol));
    if (!sock.valid()) {
        ::freeaddrinfo(res);
        throw ConfigError("cannot create socket: " + errnoText());
    }
    int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
    int ok = -1;
    do {
        ok = ::connect(sock.fd(), res->ai_addr, res->ai_addrlen);
    } while (ok < 0 && errno == EINTR);
    ::freeaddrinfo(res);
    if (ok < 0 && errno == EINPROGRESS) {
        pollfd pfd{};
        pfd.fd = sock.fd();
        pfd.events = POLLOUT;
        int pr = 0;
        do {
            pr = ::poll(&pfd, 1, kConnectTimeoutMs);
        } while (pr < 0 && errno == EINTR);
        REGATE_CHECK(pr > 0, "cannot connect to ", host, ":", port,
                     ": no answer within ",
                     kConnectTimeoutMs / 1000, "s");
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
        REGATE_CHECK(err == 0, "cannot connect to ", host, ":",
                     port, ": ", std::strerror(err));
        ok = 0;
    }
    REGATE_CHECK(ok == 0, "cannot connect to ", host, ":", port,
                 ": ", errnoText());
    ::fcntl(sock.fd(), F_SETFL, flags);
    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    return sock;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    int rc = 0;
    do {
        rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    return rc > 0;
}

LineChannel::LineChannel(Socket sock, std::string peer_name)
    : sock_(std::move(sock)), peer_(std::move(peer_name))
{
    REGATE_CHECK(sock_.valid(), peer_, ": channel on a dead socket");
}

bool
LineChannel::fill()
{
    if (eof_)
        return false;
    for (;;) {
        char chunk[4096];
        ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk),
                           MSG_DONTWAIT);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            eof_ = true;
            return false;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        eof_ = true;
        throw ConfigError(peer_ + ": connection error: " +
                          errnoText());
    }
}

std::optional<std::string>
LineChannel::nextLine()
{
    auto nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) {
        // Compact the consumed prefix away so a long session does
        // not grow the buffer without bound.
        if (pos_ > 0) {
            buf_.erase(0, pos_);
            pos_ = 0;
        }
        return std::nullopt;
    }
    std::string line = buf_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    return line;
}

bool
LineChannel::fillOnce(int timeout_ms)
{
    if (!waitReadable(sock_.fd(), timeout_ms))
        return false;
    fill();
    return true;
}

namespace {

/**
 * Turn a per-operation timeout into a fixed deadline, so the budget
 * is TOTAL: a peer trickling one byte per poll interval cannot
 * re-arm it forever and wedge the single-threaded driver loop.
 */
class Deadline
{
  public:
    explicit Deadline(int timeout_ms)
        : deadline_(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms < 0
                                                  ? 0
                                                  : timeout_ms)),
          infinite_(timeout_ms < 0)
    {}

    /** Remaining budget in ms for one poll; <0 only if infinite. */
    int
    remainingMs() const
    {
        if (infinite_)
            return -1;
        auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline_ - std::chrono::steady_clock::now())
                .count();
        return left > 0 ? static_cast<int>(left) : 0;
    }

    bool
    expired() const
    {
        return !infinite_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

  private:
    std::chrono::steady_clock::time_point deadline_;
    bool infinite_;
};

}  // namespace

std::string
LineChannel::readLine(int timeout_ms)
{
    Deadline deadline(timeout_ms);
    for (;;) {
        if (auto line = nextLine())
            return *line;
        REGATE_CHECK(!eof_, peer_, ": connection closed",
                     pos_ < buf_.size() ? " mid-frame (truncated "
                                          "protocol line)"
                                        : "");
        REGATE_CHECK(!deadline.expired() &&
                         fillOnce(deadline.remainingMs()),
                     peer_,
                     ": timed out waiting for a protocol line");
    }
}

std::string
LineChannel::readExact(std::size_t n, int timeout_ms)
{
    // Unlike readLine (bounded, one small frame), a payload can
    // legitimately take several timeout periods over a slow link —
    // so the deadline is PROGRESS-based (re-armed whenever bytes
    // arrive) under a hard overall cap of kOverallFactor budgets,
    // which keeps a byte-trickling wedged peer from re-arming the
    // driver's fetch forever while a merely slow link gets an
    // order of magnitude more than one budget.
    constexpr int kOverallFactor = 10;
    Deadline overall(timeout_ms < 0 ? timeout_ms
                                    : timeout_ms * kOverallFactor);
    Deadline chunk(timeout_ms);
    while (buf_.size() - pos_ < n) {
        REGATE_CHECK(!eof_, peer_, ": connection closed "
                     "mid-transfer (", buf_.size() - pos_, " of ",
                     n, " payload bytes received)");
        auto had = buf_.size();
        REGATE_CHECK(!chunk.expired() && !overall.expired() &&
                         fillOnce(chunk.remainingMs()),
                     peer_,
                     ": timed out mid-transfer (", buf_.size() - pos_,
                     " of ", n, " payload bytes received)");
        if (buf_.size() > had)
            chunk = Deadline(timeout_ms);
    }
    std::string out = buf_.substr(pos_, n);
    pos_ += n;
    return out;
}

void
LineChannel::sendLine(const std::string &line)
{
    sendBytes(line + "\n");
}

void
LineChannel::sendBytes(const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a dead peer must surface as a ConfigError
        // on this connection, not SIGPIPE the whole fleet driver.
        ssize_t n = ::send(sock_.fd(), bytes.data() + sent,
                           bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            eof_ = true;
            throw ConfigError(peer_ + ": send failed: " +
                              errnoText());
        }
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace net
}  // namespace regate
