/**
 * @file
 * The compiler backend driver: runs fusion and tiling over an
 * operator graph (the tile-level path the engine consumes), and the
 * idleness + instrumentation passes over VLIW kernels (the ISA-level
 * path, §4.3). Mirrors the paper's backend, where both passes run
 * after instruction scheduling and SRAM allocation.
 */

#ifndef REGATE_COMPILER_COMPILER_H
#define REGATE_COMPILER_COMPILER_H

#include "arch/gating_params.h"
#include "arch/npu_config.h"
#include "compiler/fusion.h"
#include "compiler/idleness.h"
#include "compiler/instrument.h"
#include "compiler/scheduler.h"
#include "compiler/tiling.h"
#include "graph/graph.h"

namespace regate {
namespace compiler {

/** Combined result of the graph-level passes. */
struct CompileResult
{
    graph::OperatorGraph graph;  ///< Annotated copy.
    FusionStats fusion;
    TilingStats tiling;
};

/** Run fusion + tiling for @p cfg. */
CompileResult compileGraph(const graph::OperatorGraph &input,
                           const arch::NpuConfig &cfg,
                           const TilingOptions &tiling_opts = {});

/**
 * Compile a VLIW kernel with software-managed VU power gating:
 * schedule, analyze idleness, instrument with setpm.
 */
struct KernelCompileResult
{
    isa::Program program;
    IdlenessAnalysis idleness;
    InstrumentStats instrumentation;
};

KernelCompileResult compileKernel(const KernelSpec &spec,
                                  const isa::VliwCoreConfig &core_cfg,
                                  const arch::GatingParams &params);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_COMPILER_H
