/**
 * @file
 * Operator-fusion pass (§3, §4.4): consecutive vector operators
 * (elementwise, softmax, normalization) whose working set fits in the
 * scratchpad are fused into their producer so intermediate tensors
 * never round-trip through HBM. This is the standard XLA/TVM fusion
 * the paper's simulator frontend applies.
 */

#ifndef REGATE_COMPILER_FUSION_H
#define REGATE_COMPILER_FUSION_H

#include <cstdint>

#include "graph/graph.h"

namespace regate {
namespace compiler {

/** What the pass did. */
struct FusionStats
{
    std::uint64_t fusedOps = 0;
    double hbmBytesSaved = 0;
};

/**
 * Fuse in place. @p sram_bytes bounds the fused working set (an op
 * whose activation traffic exceeds the scratchpad cannot be kept
 * on chip).
 */
FusionStats fuseGraph(graph::OperatorGraph &graph,
                      std::uint64_t sram_bytes);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_FUSION_H
