/**
 * @file
 * Kernel scheduler: lowers a tiled GEMM (+ VU post-processing) into a
 * VLIW program for the core model. This produces exactly the Fig. 15
 * instruction pattern: SA pops streaming output tiles while VUs
 * post-process them, with the VUs idle most of each period.
 */

#ifndef REGATE_COMPILER_SCHEDULER_H
#define REGATE_COMPILER_SCHEDULER_H

#include "isa/program.h"

namespace regate {
namespace compiler {

/** Shape of the kernel to schedule. */
struct KernelSpec
{
    int numSa = 2;          ///< SAs fed in parallel.
    int numVu = 2;          ///< VUs post-processing SA output.
    int tiles = 4;          ///< Output tiles per SA.
    Cycles popCycles = 8;   ///< Cycles per SA pop (8x128 elements).
    Cycles vuCycles = 1;    ///< VU cycles per popped tile.
    int vuOpsPerTile = 2;   ///< VU instructions per tile (e.g. add+act).
};

/**
 * Build the un-instrumented kernel: per tile, one bundle popping all
 * SAs, the VU post-processing bundles, and one reserved
 * power-management slot bundle timed to dispatch a VU wake-up delay
 * before the next pop (the Fig. 15 I4 position). No setpm
 * instructions; the instrumentation pass fills the reserved slots.
 */
isa::Program buildMatmulKernel(const KernelSpec &spec);

/** Issue hold before the reserved pm slot (exposed for tests). */
Cycles pmSlotNop(const KernelSpec &spec);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_SCHEDULER_H
