#include "compiler/fusion.h"

namespace regate {
namespace compiler {

using graph::OpKind;

namespace {

bool
isFusableConsumer(OpKind kind)
{
    return kind == OpKind::Elementwise || kind == OpKind::Softmax ||
           kind == OpKind::Normalization;
}

bool
isProducer(OpKind kind)
{
    // Anything that leaves a tensor on chip; collectives and pure
    // transfers end the fusion chain.
    return kind == OpKind::MatMul || kind == OpKind::Elementwise ||
           kind == OpKind::Softmax || kind == OpKind::Normalization ||
           kind == OpKind::Embedding;
}

}  // namespace

FusionStats
fuseGraph(graph::OperatorGraph &graph, std::uint64_t sram_bytes)
{
    FusionStats stats;
    for (auto &block : graph.blocks) {
        for (std::size_t i = 1; i < block.ops.size(); ++i) {
            auto &op = block.ops[i];
            const auto &prev = block.ops[i - 1];
            if (!isFusableConsumer(op.kind) || !isProducer(prev.kind))
                continue;
            double traffic = op.hbmBytes();
            if (traffic > static_cast<double>(sram_bytes))
                continue;
            op.fusedIntoPrev = true;
            stats.fusedOps += block.repeat;
            stats.hbmBytesSaved += traffic * block.repeat;
            op.hbmReadBytes = 0;
            op.hbmWriteBytes = 0;
        }
    }
    return stats;
}

}  // namespace compiler
}  // namespace regate
