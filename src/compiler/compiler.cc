#include "compiler/compiler.h"

namespace regate {
namespace compiler {

CompileResult
compileGraph(const graph::OperatorGraph &input,
             const arch::NpuConfig &cfg,
             const TilingOptions &tiling_opts)
{
    CompileResult result;
    result.graph = input;
    result.graph.validate();
    result.fusion = fuseGraph(result.graph, cfg.sramBytes);
    result.tiling = tileGraph(result.graph, cfg, tiling_opts);
    return result;
}

KernelCompileResult
compileKernel(const KernelSpec &spec,
              const isa::VliwCoreConfig &core_cfg,
              const arch::GatingParams &params)
{
    KernelCompileResult result;
    result.program = buildMatmulKernel(spec);
    result.idleness = analyzeVuIdleness(result.program, core_cfg);
    result.instrumentation =
        instrumentVuGating(result.program, result.idleness, params);
    return result;
}

}  // namespace compiler
}  // namespace regate
