/**
 * @file
 * Component idleness analysis (§4.3): extracts, per VU, the idle
 * intervals between consecutive VU instructions by dry-running the
 * program on the core timing model. Static graphs make this exact —
 * "no prediction errors in theory".
 */

#ifndef REGATE_COMPILER_IDLENESS_H
#define REGATE_COMPILER_IDLENESS_H

#include <vector>

#include "core/interval.h"
#include "isa/program.h"
#include "isa/vliw_core.h"

namespace regate {
namespace compiler {

/** One idle interval of one VU, with the bundle indices around it. */
struct VuIdleInterval
{
    int unit = 0;               ///< VU index.
    std::size_t lastUseBundle = 0;  ///< Bundle of the last VU op before.
    std::size_t nextUseBundle = 0;  ///< Bundle of the next VU op after.
    core::Interval interval;    ///< [lastUseEnd, nextUseStart) cycles.
};

/** Full analysis result. */
struct IdlenessAnalysis
{
    Cycles totalCycles = 0;
    std::vector<VuIdleInterval> vuIdle;
    std::vector<Cycles> bundleDispatch;  ///< Per-bundle dispatch cycle.
};

/**
 * Analyze @p program on a core described by @p cfg (no gating during
 * the dry run).
 */
IdlenessAnalysis analyzeVuIdleness(const isa::Program &program,
                                   const isa::VliwCoreConfig &cfg);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_IDLENESS_H
