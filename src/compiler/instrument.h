/**
 * @file
 * setpm instrumentation pass (§4.3): given the VU idleness analysis,
 * insert `setpm ...,vu,off` at the start of each gateable idle
 * interval and `setpm ...,vu,on` early enough that the wake-up
 * completes before the next use (no exposed stall).
 *
 * The BET-based policy gates an interval only if it exceeds both the
 * BET and 2x the power-on/off delay. Multiple VUs going idle at the
 * same bundle share one setpm via the unit bitmap (§4.2).
 */

#ifndef REGATE_COMPILER_INSTRUMENT_H
#define REGATE_COMPILER_INSTRUMENT_H

#include "arch/gating_params.h"
#include "compiler/idleness.h"
#include "isa/program.h"

namespace regate {
namespace compiler {

/** What the pass did. */
struct InstrumentStats
{
    std::uint64_t gatedIntervals = 0;
    std::uint64_t setpmInserted = 0;
    Cycles gatedCycles = 0;  ///< Idle cycles covered by off..on pairs.
};

/**
 * Instrument @p program in place using @p analysis of the *same*
 * program. Off-setpms attach to the last-use bundle's misc slot; on-
 * setpms attach to the bundle preceding the next use (both fall back
 * to skipping the interval if the slot is taken by a conflicting
 * setpm — one misc slot per bundle).
 */
InstrumentStats instrumentVuGating(isa::Program &program,
                                   const IdlenessAnalysis &analysis,
                                   const arch::GatingParams &params);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_INSTRUMENT_H
