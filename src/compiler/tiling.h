/**
 * @file
 * Tiling pass: computes each operator's SRAM working-set demand (the
 * Fig. 7 metric) and routes undersized GEMMs to the VU.
 *
 * Demand follows the paper's definition (§3): "the minimum tile size
 * that maximizes the on-chip data reuse". For a GEMM the cheapest
 * full-reuse residency is the smaller of weights or activations plus
 * streaming double-buffers; note this is a *demand*, not an
 * allocation — it can exceed the physical scratchpad (Fig. 7 shows up
 * to 1.5 GB for LLM training). For streaming operators the demand is
 * the minimum double-buffer that hides HBM latency.
 */

#ifndef REGATE_COMPILER_TILING_H
#define REGATE_COMPILER_TILING_H

#include "arch/npu_config.h"
#include "graph/graph.h"

namespace regate {
namespace compiler {

/** Tuning knobs. */
struct TilingOptions
{
    /**
     * GEMMs whose per-replica row count is below this are mapped to
     * the VU: the tensors are too small to amortize the SA warm-up
     * (§3, LLM decode).
     */
    std::int64_t vuRowThreshold = 32;
};

/** What the pass did. */
struct TilingStats
{
    std::uint64_t vuMappedGemms = 0;
    double maxDemandBytes = 0;
};

/** Annotate every operator in place. */
TilingStats tileGraph(graph::OperatorGraph &graph,
                      const arch::NpuConfig &cfg,
                      const TilingOptions &opts = {});

/** Demand of a single operator (exposed for tests). */
double operatorSramDemand(const graph::Operator &op,
                          const arch::NpuConfig &cfg);

}  // namespace compiler
}  // namespace regate

#endif  // REGATE_COMPILER_TILING_H
