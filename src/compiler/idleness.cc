#include "compiler/idleness.h"

#include "common/error.h"

namespace regate {
namespace compiler {

IdlenessAnalysis
analyzeVuIdleness(const isa::Program &program,
                  const isa::VliwCoreConfig &cfg)
{
    // Dry-run on an ungated core: this is the schedule the compiler
    // sees after instruction scheduling.
    isa::VliwCoreConfig dry = cfg;
    dry.autoIdleDetect = false;
    isa::VliwCore core(dry);
    core.run(program);

    IdlenessAnalysis out;
    out.totalCycles = core.totalCycles();
    out.bundleDispatch = core.bundleDispatch();
    for (int v = 0; v < cfg.numVu; ++v) {
        const auto &trace = core.vuTrace(v);
        REGATE_ASSERT(trace.busy.size() == trace.busyBundle.size(),
                      "trace bundle attribution out of sync");
        for (std::size_t i = 0; i + 1 < trace.busy.size(); ++i) {
            Cycles gap_start = trace.busy[i].end;
            Cycles gap_end = trace.busy[i + 1].start;
            if (gap_end <= gap_start)
                continue;
            VuIdleInterval idle;
            idle.unit = v;
            idle.lastUseBundle = trace.busyBundle[i];
            idle.nextUseBundle = trace.busyBundle[i + 1];
            idle.interval = {gap_start, gap_end};
            out.vuIdle.push_back(idle);
        }
    }
    return out;
}

}  // namespace compiler
}  // namespace regate
