#include "compiler/instrument.h"

#include "common/error.h"
#include "core/bet.h"

namespace regate {
namespace compiler {

namespace {

/**
 * Try to merge a setpm for VU @p unit with mode @p mode into
 * @p bundle's misc slot. Succeeds if the slot is empty or already
 * holds a compatible VU setpm (same mode).
 */
bool
mergeSetpm(isa::Bundle &bundle, int unit, core::PowerMode mode)
{
    std::uint8_t bit = static_cast<std::uint8_t>(1u << unit);
    if (!bundle.misc.has_value()) {
        isa::SetpmInstr instr;
        instr.fuType = isa::FuType::Vu;
        instr.mode = mode;
        instr.bitmap = bit;
        instr.immediate = true;
        bundle.misc = instr;
        return true;
    }
    auto &misc = *bundle.misc;
    if (misc.fuType != isa::FuType::Vu || misc.mode != mode ||
        !misc.immediate) {
        return false;
    }
    misc.bitmap |= bit;
    return true;
}

}  // namespace

InstrumentStats
instrumentVuGating(isa::Program &program,
                   const IdlenessAnalysis &analysis,
                   const arch::GatingParams &params)
{
    InstrumentStats stats;
    const Cycles bet = params.breakEven(arch::GatedUnit::Vu);
    const Cycles delay = params.onOffDelay(arch::GatedUnit::Vu);

    // Program mutation below only touches misc slots, so the dispatch
    // times from the dry run remain valid while we plan.
    auto &bundles =
        const_cast<std::vector<isa::Bundle> &>(program.bundles());
    REGATE_ASSERT(analysis.bundleDispatch.size() == bundles.size(),
                  "analysis does not match program");

    for (const auto &idle : analysis.vuIdle) {
        Cycles len = idle.interval.length();
        if (!core::shouldGateSw(len, bet, delay))
            continue;
        REGATE_CHECK(idle.unit < 8, "bitmap setpm addresses 8 units");

        // Latest bundle whose dispatch leaves the full wake delay
        // before the next use.
        Cycles wake_by = idle.interval.end - delay;
        std::size_t on_bundle = idle.lastUseBundle;
        for (std::size_t b = idle.lastUseBundle + 1;
             b < idle.nextUseBundle; ++b) {
            if (analysis.bundleDispatch[b] <= wake_by)
                on_bundle = b;
        }
        if (on_bundle == idle.lastUseBundle)
            continue;  // No room to wake without stalling.

        if (!mergeSetpm(bundles[idle.lastUseBundle], idle.unit,
                        core::PowerMode::Off)) {
            continue;
        }
        if (!mergeSetpm(bundles[on_bundle], idle.unit,
                        core::PowerMode::On)) {
            // Roll back the off-bitmap bit we just set.
            auto &misc = bundles[idle.lastUseBundle].misc;
            misc->bitmap &=
                static_cast<std::uint8_t>(~(1u << idle.unit));
            if (misc->bitmap == 0)
                misc.reset();
            continue;
        }
        ++stats.gatedIntervals;
        stats.gatedCycles += len;
    }

    stats.setpmInserted = program.setpmCount();
    return stats;
}

}  // namespace compiler
}  // namespace regate
