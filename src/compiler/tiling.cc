#include "compiler/tiling.h"

#include <algorithm>

#include "common/error.h"

namespace regate {
namespace compiler {

using graph::OpKind;

namespace {

constexpr double kDtypeBytes = 2.0;  // bf16 compute path.

// HBM latency assumed by the streaming double-buffer sizing; matches
// mem/hbm.cc.
constexpr double kHbmLatency = 400e-9;

/** Minimum double-buffer that hides HBM latency at full bandwidth. */
double
streamingBuffer(const arch::NpuConfig &cfg)
{
    return 2.0 * cfg.hbmBandwidth * kHbmLatency;
}

double
gemmDemand(const graph::Operator &op, const arch::NpuConfig &cfg)
{
    const double m = static_cast<double>(op.m);
    const double k = static_cast<double>(op.k);
    const double n = static_cast<double>(op.n);
    const double w = cfg.saWidth;

    // Full-reuse residency options for one GEMM instance: keep the
    // weights [k, n] and stream activation/output stripes of w rows,
    // or keep the activations [m, k] and stream weight/output stripes
    // of w columns. Double-buffer the streamed side.
    double weight_resident =
        k * n + 2.0 * std::min(m, w) * (k + n);
    double act_resident = m * k + 2.0 * std::min(n, w) * (k + m);
    return std::min(weight_resident, act_resident) * kDtypeBytes;
}

}  // namespace

double
operatorSramDemand(const graph::Operator &op, const arch::NpuConfig &cfg)
{
    switch (op.kind) {
      case OpKind::MatMul:
        return gemmDemand(op, cfg);
      case OpKind::Elementwise:
      case OpKind::Normalization:
        return streamingBuffer(cfg);
      case OpKind::Softmax:
        // Needs a full reduction row resident on top of the stream.
        return streamingBuffer(cfg) + (1 << 20);
      case OpKind::Embedding:
        // Pooling accumulators + gather staging.
        return 2.0 * streamingBuffer(cfg);
      case OpKind::Collective:
        // Ring-chunk staging buffers (send + recv, double-buffered).
        return std::min(op.collBytes, 4.0 * (1 << 20));
      case OpKind::Transfer:
        return streamingBuffer(cfg);
    }
    throw LogicError("unknown OpKind");
}

TilingStats
tileGraph(graph::OperatorGraph &graph, const arch::NpuConfig &cfg,
          const TilingOptions &opts)
{
    TilingStats stats;
    for (auto &block : graph.blocks) {
        for (auto &op : block.ops) {
            op.sramDemandBytes =
                op.fusedIntoPrev ? 0.0 : operatorSramDemand(op, cfg);
            stats.maxDemandBytes =
                std::max(stats.maxDemandBytes, op.sramDemandBytes);
            if (op.kind == OpKind::MatMul &&
                op.m < opts.vuRowThreshold) {
                op.mapToVu = true;
                stats.vuMappedGemms += block.repeat;
            }
        }
    }
    return stats;
}

}  // namespace compiler
}  // namespace regate
