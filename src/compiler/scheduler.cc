#include "compiler/scheduler.h"

#include "common/error.h"

namespace regate {
namespace compiler {

isa::Program
buildMatmulKernel(const KernelSpec &spec)
{
    REGATE_CHECK(spec.numSa >= 1 && spec.numVu >= 1 && spec.tiles >= 1,
                 "degenerate kernel spec");
    REGATE_CHECK(spec.vuOpsPerTile >= 1, "need at least one VU op");

    isa::Program prog;
    for (int t = 0; t < spec.tiles; ++t) {
        // Pop the next tile from every SA; the first VU op of the
        // post-processing rides in the same bundle (the Fig. 15
        // I1/I5 pattern).
        auto b = prog.bundle();
        for (int s = 0; s < spec.numSa; ++s)
            b.saPop(s, spec.popCycles);
        for (int v = 0; v < spec.numVu; ++v)
            b.vuOp(v, spec.vuCycles);

        // Remaining VU post-processing bundles.
        for (int i = 1; i < spec.vuOpsPerTile; ++i) {
            auto vb = prog.bundle();
            for (int v = 0; v < spec.numVu; ++v)
                vb.vuOp(v, spec.vuCycles);
            if (i == spec.vuOpsPerTile - 1)
                vb.nop(pmSlotNop(spec));
        }
        if (spec.vuOpsPerTile == 1)
            b.nop(pmSlotNop(spec));

        // Reserved power-management slot (the Fig. 15 I4 bundle):
        // dispatches `wake delay` cycles before the next tile's pop,
        // so an instrumentation pass can wake the VUs with zero
        // exposed stall. Un-instrumented it is a harmless nop issued
        // while the SA pops drain.
        prog.bundle();
    }
    return prog;
}

Cycles
pmSlotNop(const KernelSpec &spec)
{
    // Bundles issued since the pop bundle: vuOpsPerTile - 1 VU
    // bundles at one cycle each; hold issue so the pm slot lands two
    // cycles (the VU on/off delay) before the next pop.
    Cycles consumed = static_cast<Cycles>(spec.vuOpsPerTile - 1);
    Cycles target = spec.popCycles > 2 ? spec.popCycles - 2 : 1;
    return target > consumed ? target - consumed : 1;
}

}  // namespace compiler
}  // namespace regate
