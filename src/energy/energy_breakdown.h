/**
 * @file
 * Per-component static/dynamic energy bookkeeping, mirroring the
 * paper's Fig. 3 breakdown (Idle + {static, dynamic} x {SA, VU, SRAM,
 * ICI, HBM, Other}).
 */

#ifndef REGATE_ENERGY_ENERGY_BREAKDOWN_H
#define REGATE_ENERGY_ENERGY_BREAKDOWN_H

#include "arch/component.h"

namespace regate {
namespace energy {

/** Energy (joules) split into static and dynamic per component. */
struct EnergyBreakdown
{
    arch::ComponentMap<double> staticJ;   ///< Leakage energy while busy.
    arch::ComponentMap<double> dynamicJ;  ///< Switching energy.
    double idleJ = 0;  ///< Energy burned outside the duty cycle.

    /** Total busy-time energy (static + dynamic, no idle). */
    double busyTotal() const;

    /** Total including the idle portion. */
    double total() const { return busyTotal() + idleJ; }

    /** Static share of busy energy (paper: 30%-72% across gens). */
    double staticShareBusy() const;

    /** Static share of one component within chip static energy. */
    double staticShare(arch::Component c) const;

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);

    /** Scale all entries (e.g., per-iteration -> per-job). */
    EnergyBreakdown scaled(double f) const;
};

}  // namespace energy
}  // namespace regate

#endif  // REGATE_ENERGY_ENERGY_BREAKDOWN_H
