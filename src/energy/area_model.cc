#include "energy/area_model.h"

#include "common/error.h"

namespace regate {
namespace energy {

using arch::Component;
using arch::TechNode;

namespace {

// Logic block areas at the 16 nm reference node, mm^2; scaled by the
// node's density factor. Calibrated so SAs occupy ~10.7% of a
// TPUv4i-class die (paper §4.4 / [38]).
constexpr double kPeArea16 = 0.0010;       // bf16 MAC + 3 regs.
constexpr double kVuLaneArea16 = 0.0045;   // fp32 ALU + regfile slice.

// SRAM macro density in MB per mm^2 (SRAM scales worse than logic).
double
sramDensityMbPerMm2(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return 1.0;
      case TechNode::N7:
        return 2.8;
      case TechNode::N4:
        return 3.5;
    }
    throw LogicError("unknown TechNode");
}

// HBM controller + PHY area per GB/s of bandwidth (PHYs shrink slowly).
double
hbmAreaPerGBps(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return 0.020;
      case TechNode::N7:
        return 0.007;
      case TechNode::N4:
        return 0.0035;
    }
    throw LogicError("unknown TechNode");
}

// ICI controller + SerDes area per link.
double
iciAreaPerLink(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return 5.0;
      case TechNode::N7:
        return 3.5;
      case TechNode::N4:
        return 3.0;
    }
    throw LogicError("unknown TechNode");
}

// "Other" (management, control, PCIe, misc datapath) area relative to
// the sum of the modeled components; chosen so Other lands at ~42% of
// chip static power, matching the 39.1%-45.8% band in §3.
constexpr double kOtherAreaFactor = 0.72;

}  // namespace

AreaModel::AreaModel(const arch::NpuConfig &cfg)
    : cfg_(cfg)
{
    cfg.validate();
    const auto &tech = arch::techParams(cfg.node);

    peArea_ = kPeArea16 / tech.densityScale;
    saArea_ = peArea_ * cfg.saWidth * cfg.saWidth;
    vuArea_ = kVuLaneArea16 / tech.densityScale * cfg.vuLanes();

    auto &mm2 = baseline_.mm2;
    mm2[Component::Sa] = saArea_ * cfg.numSa;
    mm2[Component::Vu] = vuArea_ * cfg.numVu;
    mm2[Component::Sram] =
        static_cast<double>(cfg.sramBytes) / (1 << 20) /
        sramDensityMbPerMm2(cfg.node);
    mm2[Component::Hbm] =
        cfg.hbmBandwidth / 1e9 * hbmAreaPerGBps(cfg.node);
    mm2[Component::Ici] = cfg.iciLinks * iciAreaPerLink(cfg.node);

    double subtotal = mm2[Component::Sa] + mm2[Component::Vu] +
                      mm2[Component::Sram] + mm2[Component::Hbm] +
                      mm2[Component::Ici];
    mm2[Component::Other] = kOtherAreaFactor * subtotal;

    GatingAreaOverheads ov;
    gatingOverhead_ =
        mm2[Component::Sa] * ov.perPe +
        cfg.numSa * saArea_ * ov.saControl +
        mm2[Component::Vu] * ov.perVu +
        mm2[Component::Sram] * ov.sramPerSegment +
        mm2[Component::Hbm] * ov.hbmIdleDetect +
        mm2[Component::Ici] * ov.iciIdleDetect;
}

}  // namespace energy
}  // namespace regate
