#include "energy/power_model.h"

#include "common/error.h"

namespace regate {
namespace energy {

using arch::Component;
using arch::TechNode;

WorkCounters &
WorkCounters::operator+=(const WorkCounters &o)
{
    macs += o.macs;
    vuOps += o.vuOps;
    sramBytes += o.sramBytes;
    hbmBytes += o.hbmBytes;
    iciBytes += o.iciBytes;
    return *this;
}

namespace {

// Leakage densities (W/mm^2) for the PHY-heavy interface blocks,
// calibrated so HBM lands at ~13% and ICI at ~7-11% of chip static
// power on NPU-D, inside the §3 bands (9.0%-22.4% and 5.3%-12.0%).
double
hbmPhyLeakDensity(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return 0.60;
      case TechNode::N7:
        return 0.98;
      case TechNode::N4:
        return 1.14;
    }
    throw LogicError("unknown TechNode");
}

double
iciPhyLeakDensity(TechNode node)
{
    switch (node) {
      case TechNode::N16:
        return 0.32;
      case TechNode::N7:
        return 0.43;
      case TechNode::N4:
        return 0.43;
    }
    throw LogicError("unknown TechNode");
}

// "Other" static power as a fraction of chip static power (§3 band:
// 39.1%-45.8%).
constexpr double kOtherStaticShare = 0.42;

// Control/clock-distribution dynamic overhead attributed to Other.
constexpr double kOtherDynamicFactor = 0.20;

}  // namespace

PowerModel::PowerModel(const arch::NpuConfig &cfg)
    : cfg_(cfg), area_(cfg)
{
    const auto &tech = arch::techParams(cfg.node);
    const auto &mm2 = area_.baseline().mm2;

    staticW_[Component::Sa] = mm2[Component::Sa] * tech.leakageDensityLogic;
    staticW_[Component::Vu] = mm2[Component::Vu] * tech.leakageDensityLogic;
    staticW_[Component::Sram] =
        mm2[Component::Sram] * tech.leakageDensitySram;
    staticW_[Component::Hbm] =
        mm2[Component::Hbm] * hbmPhyLeakDensity(cfg.node);
    staticW_[Component::Ici] =
        mm2[Component::Ici] * iciPhyLeakDensity(cfg.node);

    double subtotal = staticW_[Component::Sa] + staticW_[Component::Vu] +
                      staticW_[Component::Sram] +
                      staticW_[Component::Hbm] + staticW_[Component::Ici];
    staticW_[Component::Other] =
        subtotal * kOtherStaticShare / (1.0 - kOtherStaticShare);
}

double
PowerModel::staticPower(arch::Component c) const
{
    return staticW_[c];
}

double
PowerModel::totalStaticPower() const
{
    return staticW_.sum();
}

double
PowerModel::saStaticPower() const
{
    return staticW_[Component::Sa] / cfg_.numSa;
}

double
PowerModel::peStaticPower() const
{
    return saStaticPower() / (cfg_.saWidth * cfg_.saWidth);
}

double
PowerModel::vuStaticPower() const
{
    return staticW_[Component::Vu] / cfg_.numVu;
}

double
PowerModel::sramSegmentStaticPower() const
{
    return staticW_[Component::Sram] /
           static_cast<double>(cfg_.sramSegments());
}

double
PowerModel::hbmStaticPower() const
{
    return staticW_[Component::Hbm];
}

double
PowerModel::iciStaticPower() const
{
    return staticW_[Component::Ici];
}

arch::ComponentMap<double>
PowerModel::dynamicEnergy(const WorkCounters &work) const
{
    const auto &tech = arch::techParams(cfg_.node);
    arch::ComponentMap<double> e;
    e[Component::Sa] = work.macs * tech.energyPerMac;
    e[Component::Vu] = work.vuOps * tech.energyPerVuOp;
    e[Component::Sram] = work.sramBytes * tech.energyPerSramByte;
    e[Component::Hbm] = work.hbmBytes * tech.energyPerHbmByte;
    e[Component::Ici] = work.iciBytes * tech.energyPerIciByte;
    double subtotal = e[Component::Sa] + e[Component::Vu] +
                      e[Component::Sram] + e[Component::Hbm] +
                      e[Component::Ici];
    e[Component::Other] = subtotal * kOtherDynamicFactor;
    return e;
}

}  // namespace energy
}  // namespace regate
