/**
 * @file
 * Chip area model in the spirit of McPAT [48] / NeuroMeter [80].
 *
 * Component areas are derived from microarchitectural parameters (SA
 * dimensions, VU lanes, SRAM capacity, HBM bandwidth, ICI link count)
 * and the feature size (§4.4). Areas feed the static-power model and
 * the hardware-overhead accounting (ReGate adds 3.3% chip area on a
 * TPUv4i-class chip; §4.4).
 */

#ifndef REGATE_ENERGY_AREA_MODEL_H
#define REGATE_ENERGY_AREA_MODEL_H

#include "arch/component.h"
#include "arch/npu_config.h"

namespace regate {
namespace energy {

/** Component areas in mm^2. */
struct AreaBreakdown
{
    arch::ComponentMap<double> mm2;  ///< Per-component area.

    /** Total die area, mm^2. */
    double total() const { return mm2.sum(); }

    /** Fraction of die area taken by @p c. */
    double
    share(arch::Component c) const
    {
        return mm2[c] / total();
    }
};

/**
 * Area overheads of the ReGate power-gating logic (§4.4). Fractions
 * are relative to the area of the block they are attached to, except
 * where noted.
 */
struct GatingAreaOverheads
{
    double perPe = 0.0636;       ///< Gating transistors per PE (6.36%).
    double saControl = 0.00001;  ///< Row/col control logic per SA.
    double perVu = 0.034;        ///< Per-VU gating + idle FSM.
    double sramPerSegment = 0.11;   ///< Sleep/off support per SRAM mm^2.
    double hbmIdleDetect = 0.0;  ///< Idle detection reuses ctrl logic.
    double iciIdleDetect = 0.0;  ///< Whole-IP gating, negligible.
};

/** Parametric area model for one NPU chip. */
class AreaModel
{
  public:
    explicit AreaModel(const arch::NpuConfig &cfg);

    /** Baseline (no ReGate) component areas. */
    const AreaBreakdown &baseline() const { return baseline_; }

    /** Extra area added by the ReGate gating logic, mm^2. */
    double gatingOverheadMm2() const { return gatingOverhead_; }

    /** Gating overhead as a fraction of baseline die area. */
    double
    gatingOverheadFraction() const
    {
        return gatingOverhead_ / baseline_.total();
    }

    /** Area of one PE in mm^2 at this node. */
    double peArea() const { return peArea_; }

    /** Area of one full systolic array in mm^2. */
    double saArea() const { return saArea_; }

    /** Area of one vector unit in mm^2. */
    double vuArea() const { return vuArea_; }

  private:
    const arch::NpuConfig &cfg_;
    AreaBreakdown baseline_;
    double peArea_ = 0;
    double saArea_ = 0;
    double vuArea_ = 0;
    double gatingOverhead_ = 0;
};

}  // namespace energy
}  // namespace regate

#endif  // REGATE_ENERGY_AREA_MODEL_H
