#include "energy/energy_breakdown.h"

namespace regate {
namespace energy {

double
EnergyBreakdown::busyTotal() const
{
    return staticJ.sum() + dynamicJ.sum();
}

double
EnergyBreakdown::staticShareBusy() const
{
    double busy = busyTotal();
    return busy > 0 ? staticJ.sum() / busy : 0.0;
}

double
EnergyBreakdown::staticShare(arch::Component c) const
{
    double s = staticJ.sum();
    return s > 0 ? staticJ[c] / s : 0.0;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    staticJ += o.staticJ;
    dynamicJ += o.dynamicJ;
    idleJ += o.idleJ;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::scaled(double f) const
{
    EnergyBreakdown out = *this;
    for (auto c : arch::kAllComponents) {
        out.staticJ[c] *= f;
        out.dynamicJ[c] *= f;
    }
    out.idleJ *= f;
    return out;
}

}  // namespace energy
}  // namespace regate
