/**
 * @file
 * Static and dynamic power model (§4.4).
 *
 * Static power: per-component area x node leakage density, with
 * PHY-heavy blocks (HBM, ICI) using their own densities. "Other" is
 * pinned to ~42% of chip static power, inside the paper's 39.1%-45.8%
 * band.
 *
 * Dynamic energy: per-event switching costs (pJ/MAC, pJ/byte, ...)
 * from the technology parameters, plus a 20% overhead for control and
 * clock distribution attributed to "Other".
 */

#ifndef REGATE_ENERGY_POWER_MODEL_H
#define REGATE_ENERGY_POWER_MODEL_H

#include "arch/component.h"
#include "arch/npu_config.h"
#include "energy/area_model.h"

namespace regate {
namespace energy {

/** Work counters accumulated by the simulator for one interval. */
struct WorkCounters
{
    double macs = 0;        ///< SA multiply-accumulates.
    double vuOps = 0;       ///< VU lane operations.
    double sramBytes = 0;   ///< Scratchpad bytes read+written.
    double hbmBytes = 0;    ///< HBM bytes transferred.
    double iciBytes = 0;    ///< ICI bytes transferred (per chip).

    WorkCounters &operator+=(const WorkCounters &o);
};

/** Per-chip power model for one NPU generation. */
class PowerModel
{
  public:
    explicit PowerModel(const arch::NpuConfig &cfg);

    /** Active-state static power of one component, watts. */
    double staticPower(arch::Component c) const;

    /** Total chip static power (all components active), watts. */
    double totalStaticPower() const;

    /**
     * Static power of a single instance of a unit, watts: one SA, one
     * PE, one VU, one 4 KB SRAM segment. Used by the gating engine to
     * convert gated cycles into saved energy.
     */
    double saStaticPower() const;
    double peStaticPower() const;
    double vuStaticPower() const;
    double sramSegmentStaticPower() const;
    double hbmStaticPower() const;
    double iciStaticPower() const;

    /** Dynamic energy for a batch of work, joules, per component. */
    arch::ComponentMap<double>
    dynamicEnergy(const WorkCounters &work) const;

    const arch::NpuConfig &config() const { return cfg_; }
    const AreaModel &areaModel() const { return area_; }

  private:
    const arch::NpuConfig &cfg_;
    AreaModel area_;
    arch::ComponentMap<double> staticW_;
};

}  // namespace energy
}  // namespace regate

#endif  // REGATE_ENERGY_POWER_MODEL_H
