#include "graph/tensor.h"

#include "common/error.h"

namespace regate {
namespace graph {

int
dtypeBytes(DType t)
{
    switch (t) {
      case DType::BF16:
        return 2;
      case DType::FP32:
        return 4;
      case DType::INT8:
        return 1;
      case DType::INT32:
        return 4;
    }
    throw LogicError("unknown DType");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::BF16:
        return "bf16";
      case DType::FP32:
        return "fp32";
      case DType::INT8:
        return "int8";
      case DType::INT32:
        return "int32";
    }
    throw LogicError("unknown DType");
}

std::int64_t
Tensor::numel() const
{
    std::int64_t n = 1;
    for (auto d : shape) {
        REGATE_CHECK(d >= 0, "tensor '", name, "' has negative dim ", d);
        n *= d;
    }
    return n;
}

std::int64_t
Tensor::bytes() const
{
    return numel() * dtypeBytes(dtype);
}

}  // namespace graph
}  // namespace regate
