/**
 * @file
 * Operator graphs: sequences of blocks, where a block is a straight
 * run of operators executed `repeat` times (e.g., one transformer
 * layer repeated 126x, or one decode step repeated per output token).
 * Repetition is first-class so the simulator can analyze a block once
 * and scale the compressed activity timelines (core/activity.h).
 */

#ifndef REGATE_GRAPH_GRAPH_H
#define REGATE_GRAPH_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/operator.h"

namespace regate {
namespace graph {

/** A straight-line run of operators executed `repeat` times. */
struct Block
{
    std::string name;
    std::uint64_t repeat = 1;
    std::vector<Operator> ops;
};

/** A whole per-chip workload graph. */
struct OperatorGraph
{
    std::string name;
    std::vector<Block> blocks;

    /** Total operator instances (block repeats applied). */
    std::uint64_t opCount() const;

    /** Total GEMM FLOPs per chip. */
    double totalFlops() const;

    /** Total HBM bytes per chip. */
    double totalHbmBytes() const;

    /** Total collective payload bytes per chip. */
    double totalCollectiveBytes() const;

    /** Validate every operator. */
    void validate() const;
};

}  // namespace graph
}  // namespace regate

#endif  // REGATE_GRAPH_GRAPH_H
