#include "graph/operator.h"

#include "common/error.h"
#include "common/hash.h"

namespace regate {
namespace graph {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul:
        return "MatMul";
      case OpKind::Elementwise:
        return "Elementwise";
      case OpKind::Softmax:
        return "Softmax";
      case OpKind::Normalization:
        return "Normalization";
      case OpKind::Embedding:
        return "Embedding";
      case OpKind::Collective:
        return "Collective";
      case OpKind::Transfer:
        return "Transfer";
    }
    throw LogicError("unknown OpKind");
}

double
Operator::macs() const
{
    if (kind != OpKind::MatMul)
        return 0.0;
    return static_cast<double>(batch) * static_cast<double>(m) *
           static_cast<double>(k) * static_cast<double>(n);
}

double
Operator::flops() const
{
    return kind == OpKind::MatMul ? 2.0 * macs() : vuOps;
}

bool
Operator::sameWork(const Operator &o) const
{
    return kind == o.kind && batch == o.batch && m == o.m && k == o.k &&
           n == o.n && vuOps == o.vuOps &&
           hbmReadBytes == o.hbmReadBytes &&
           hbmWriteBytes == o.hbmWriteBytes && coll == o.coll &&
           collBytes == o.collBytes && lookups == o.lookups &&
           bytesPerLookup == o.bytesPerLookup &&
           fusedIntoPrev == o.fusedIntoPrev &&
           sramDemandBytes == o.sramDemandBytes && mapToVu == o.mapToVu;
}

std::size_t
Operator::workHash() const
{
    std::size_t seed = 0;
    hashField(seed, static_cast<std::uint8_t>(kind));
    hashField(seed, batch);
    hashField(seed, m);
    hashField(seed, k);
    hashField(seed, n);
    hashField(seed, vuOps);
    hashField(seed, hbmReadBytes);
    hashField(seed, hbmWriteBytes);
    hashField(seed, static_cast<std::uint8_t>(coll));
    hashField(seed, collBytes);
    hashField(seed, lookups);
    hashField(seed, bytesPerLookup);
    hashField(seed, fusedIntoPrev);
    hashField(seed, sramDemandBytes);
    hashField(seed, mapToVu);
    return seed;
}

void
Operator::validate() const
{
    if (kind == OpKind::MatMul) {
        REGATE_CHECK(batch >= 1 && m >= 1 && k >= 1 && n >= 1,
                     "MatMul '", name, "' has degenerate dims ", batch,
                     "x[", m, ",", k, ",", n, "]");
    }
    if (kind == OpKind::Collective) {
        REGATE_CHECK(coll != CollKind::None, "collective '", name,
                     "' missing kind");
        REGATE_CHECK(collBytes > 0, "collective '", name,
                     "' moves no bytes");
    }
    if (kind == OpKind::Embedding) {
        REGATE_CHECK(lookups > 0 && bytesPerLookup > 0, "embedding '",
                     name, "' has no lookups");
    }
    REGATE_CHECK(hbmReadBytes >= 0 && hbmWriteBytes >= 0 && vuOps >= 0,
                 "operator '", name, "' has negative work");
}

}  // namespace graph
}  // namespace regate
