/**
 * @file
 * The tensor-operator IR the workload generators emit and the
 * compiler/simulator consume. Each operator carries the per-chip work
 * quantities the tile-level simulator needs (§4.4: "tile-level
 * information, including computation, SRAM access, and ICI/DMA
 * operations").
 */

#ifndef REGATE_GRAPH_OPERATOR_H
#define REGATE_GRAPH_OPERATOR_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/tensor.h"

namespace regate {
namespace graph {

/** Operator categories. */
enum class OpKind : std::uint8_t {
    MatMul,       ///< GEMM (attention/conv are lowered to GEMMs).
    Elementwise,  ///< Add/mul/activation chains on the VU.
    Softmax,      ///< Row softmax (VU + memory).
    Normalization,///< LayerNorm / RMSNorm.
    Embedding,    ///< Table lookup + pooling (DLRM).
    Collective,   ///< ICI collective.
    Transfer,     ///< Pure HBM copy (weight prefetch, KV-cache IO).
};

/** Printable name. */
std::string opKindName(OpKind kind);

/** Collective kinds (mirrors ici::CollectiveKind to avoid a cycle). */
enum class CollKind : std::uint8_t {
    None,
    AllReduce,
    ReduceScatter,
    AllGather,
    AllToAll,
    P2P,
};

/** One tensor operator, sized per chip. */
struct Operator
{
    OpKind kind = OpKind::Elementwise;
    std::string name;

    /**
     * Effective GEMM dims for MatMul ops: batch independent GEMMs of
     * [m, k] x [k, n]. Conv2D is lowered by the model generators to
     * the im2col GEMM (m = out pixels, k = cin*kh*kw, n = cout).
     */
    std::int64_t batch = 1;
    std::int64_t m = 0, k = 0, n = 0;

    /** VU lane-operations (activations, reductions, optimizer math). */
    double vuOps = 0;

    /** HBM traffic in bytes (weights + non-resident activations). */
    double hbmReadBytes = 0;
    double hbmWriteBytes = 0;

    /** Collective payload per chip (Collective ops only). */
    CollKind coll = CollKind::None;
    double collBytes = 0;

    /** Embedding ops: lookups per chip and bytes per lookup. */
    double lookups = 0;
    double bytesPerLookup = 0;

    // ---- Filled in by the compiler (tiling / fusion passes) ----

    /** Fused into the previous operator (no HBM round-trip). */
    bool fusedIntoPrev = false;

    /** SRAM working-set demand (Fig. 7 metric), bytes. */
    double sramDemandBytes = 0;

    /** Small GEMMs the compiler routes to the VU (§3: LLM decode). */
    bool mapToVu = false;

    /** GEMM MACs (0 for non-MatMul ops). */
    double macs() const;

    /** FLOPs (2 x MACs for GEMMs, vuOps otherwise). */
    double flops() const;

    /** Total HBM bytes. */
    double hbmBytes() const { return hbmReadBytes + hbmWriteBytes; }

    /**
     * True when @p o describes exactly the same work: every field that
     * influences simulation is equal. The name is ignored — two ops
     * named differently but shaped identically simulate identically,
     * which is what lets the engine memoize per-operator results
     * (LLM decoder stacks repeat the same handful of shapes).
     */
    bool sameWork(const Operator &o) const;

    /**
     * Content hash over the same fields sameWork compares. Equal-work
     * operators hash equal; suitable as an unordered_map key.
     */
    std::size_t workHash() const;

    /** Sanity-check field consistency; throws ConfigError. */
    void validate() const;
};

}  // namespace graph
}  // namespace regate

#endif  // REGATE_GRAPH_OPERATOR_H
