#include "graph/graph.h"

#include "common/error.h"

namespace regate {
namespace graph {

std::uint64_t
OperatorGraph::opCount() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks)
        n += b.repeat * b.ops.size();
    return n;
}

double
OperatorGraph::totalFlops() const
{
    double total = 0;
    for (const auto &b : blocks) {
        double block = 0;
        for (const auto &op : b.ops)
            block += op.flops();
        total += block * static_cast<double>(b.repeat);
    }
    return total;
}

double
OperatorGraph::totalHbmBytes() const
{
    double total = 0;
    for (const auto &b : blocks) {
        double block = 0;
        for (const auto &op : b.ops)
            block += op.hbmBytes();
        total += block * static_cast<double>(b.repeat);
    }
    return total;
}

double
OperatorGraph::totalCollectiveBytes() const
{
    double total = 0;
    for (const auto &b : blocks) {
        double block = 0;
        for (const auto &op : b.ops)
            block += op.collBytes;
        total += block * static_cast<double>(b.repeat);
    }
    return total;
}

void
OperatorGraph::validate() const
{
    REGATE_CHECK(!blocks.empty(), "graph '", name, "' has no blocks");
    for (const auto &b : blocks) {
        REGATE_CHECK(b.repeat >= 1, "block '", b.name,
                     "' has zero repeat");
        REGATE_CHECK(!b.ops.empty(), "block '", b.name, "' is empty");
        for (const auto &op : b.ops)
            op.validate();
    }
}

}  // namespace graph
}  // namespace regate
