/**
 * @file
 * Minimal tensor metadata for the operator IR. The simulator is a
 * timing/energy model, so tensors carry shapes and element sizes, not
 * data.
 */

#ifndef REGATE_GRAPH_TENSOR_H
#define REGATE_GRAPH_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace regate {
namespace graph {

/** Element types used by the workloads. */
enum class DType : std::uint8_t { BF16, FP32, INT8, INT32 };

/** Bytes per element. */
int dtypeBytes(DType t);

/** Printable name. */
std::string dtypeName(DType t);

/** Shape + dtype descriptor. */
struct Tensor
{
    std::string name;
    std::vector<std::int64_t> shape;
    DType dtype = DType::BF16;

    /** Number of elements. */
    std::int64_t numel() const;

    /** Bytes occupied. */
    std::int64_t bytes() const;
};

}  // namespace graph
}  // namespace regate

#endif  // REGATE_GRAPH_TENSOR_H
