/**
 * @file
 * Tests for the kernel scheduler: the generated VLIW program must
 * reproduce the Fig. 15 activity pattern (VUs briefly active per SA
 * pop period).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "compiler/scheduler.h"
#include "isa/vliw_core.h"

namespace regate {
namespace compiler {
namespace {

TEST(Scheduler, BuildsExpectedBundleCount)
{
    KernelSpec spec;
    spec.tiles = 4;
    spec.vuOpsPerTile = 2;
    auto prog = buildMatmulKernel(spec);
    // Per tile: one pop bundle, (vuOpsPerTile - 1) VU bundles, and
    // one reserved power-management slot bundle.
    EXPECT_EQ(prog.size(), 4u * 3u);
    EXPECT_EQ(prog.setpmCount(), 0u);  // Not instrumented yet.
}

TEST(Scheduler, RunsOnCoreWithExpectedTiming)
{
    KernelSpec spec;
    spec.numSa = 2;
    spec.numVu = 2;
    spec.tiles = 4;
    spec.popCycles = 8;
    spec.vuOpsPerTile = 2;

    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    isa::VliwCore core(cfg);
    core.run(buildMatmulKernel(spec));

    // SAs pop back-to-back: 4 tiles x 8 cycles.
    EXPECT_EQ(core.saActivity(0).activeCycles(), 32u);
    // VUs are active vuOpsPerTile cycles per 8-cycle period.
    auto vu = core.vuActivity(0);
    EXPECT_EQ(vu.activeCycles(), 8u);
    EXPECT_NEAR(vu.utilization(), 2.0 / 8.0, 0.1);
}

TEST(Scheduler, VuIdleGapsMatchPopPeriod)
{
    KernelSpec spec;
    spec.tiles = 8;
    spec.popCycles = 16;
    spec.vuOpsPerTile = 2;
    isa::VliwCoreConfig cfg;
    isa::VliwCore core(cfg);
    core.run(buildMatmulKernel(spec));

    auto vu = core.vuActivity(0);
    // Gaps of popCycles - vuOpsPerTile = 14 cycles dominate.
    bool found = false;
    for (const auto &g : vu.gaps())
        found |= g.length == 14 && g.count >= 7;
    EXPECT_TRUE(found);
}

TEST(Scheduler, Validation)
{
    KernelSpec bad;
    bad.tiles = 0;
    EXPECT_THROW(buildMatmulKernel(bad), ConfigError);
    KernelSpec bad2;
    bad2.vuOpsPerTile = 0;
    EXPECT_THROW(buildMatmulKernel(bad2), ConfigError);
}

}  // namespace
}  // namespace compiler
}  // namespace regate
