/**
 * @file
 * Golden-figure regression harness: renders downsized fig03 / fig21 /
 * table3 configurations to canonical CSV at full double precision and
 * byte-compares against checked-in golden files, so cache or
 * parallelism changes can never silently drift the paper's reproduced
 * numbers — any change in any digit of any cell fails here.
 *
 * The goldens live in tests/golden/ (REGATE_GOLDEN_DIR, injected by
 * CMake). To regenerate after an *intentional* model change:
 *
 *     REGATE_UPDATE_GOLDEN=1 ctest --test-dir build -R golden
 *
 * then review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "carbon/carbon_model.h"
#include "compiler/compiler.h"
#include "core/bet.h"
#include "energy/power_model.h"
#include "isa/vliw_core.h"
#include "sim/report.h"

#ifndef REGATE_GOLDEN_DIR
#error "REGATE_GOLDEN_DIR must be defined (see CMakeLists.txt)"
#endif

namespace regate {
namespace sim {
namespace {

using arch::Component;

/**
 * Round-trip double formatting (%.17g reproduces every bit of an
 * IEEE-754 double), locale-independent: a 1-ulp drift in any
 * reproduced number changes the rendered bytes.
 */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Downsized Fig. 3 (energy breakdown): four workloads spanning every
 * family trait (prefill, decode, DLRM, diffusion) on NPU-D. Raw
 * fractions, not the table's rounded percentages.
 */
std::string
renderFig03Small()
{
    std::ostringstream out;
    out << "workload,idle_share,dyn_sa,sta_sa,dyn_vu,sta_vu,"
           "dyn_sram,sta_sram,dyn_ici,sta_ici,dyn_hbm,sta_hbm,"
           "dyn_oth,sta_oth,static_share_busy\n";
    for (auto w :
         {models::Workload::Prefill8B, models::Workload::Decode8B,
          models::Workload::DlrmS, models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        const auto &e = rep.run().result(Policy::NoPG).energy;
        double total =
            rep.podTotalEnergy(Policy::NoPG) / rep.setup.chips;
        out << models::workloadName(w) << ','
            << num(rep.idleShare(Policy::NoPG));
        for (auto c : {Component::Sa, Component::Vu, Component::Sram,
                       Component::Ici, Component::Hbm,
                       Component::Other}) {
            out << ',' << num(e.dynamicJ[c] * 1.1 / total) << ','
                << num(e.staticJ[c] * 1.1 / total);
        }
        out << ',' << num(e.staticShareBusy()) << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 21 (leakage sensitivity): two workloads, three
 * leakage settings (default, middle, worst).
 */
std::string
renderFig21Small()
{
    const double settings[][3] = {
        {0.03, 0.25, 0.002}, {0.2, 0.4, 0.1}, {0.6, 0.8, 0.4}};
    std::ostringstream out;
    out << "workload,logic_off,sram_sleep,sram_off,"
           "sav_base,sav_hw,sav_full\n";
    for (auto w :
         {models::Workload::DlrmL, models::Workload::DiTXL}) {
        for (const auto &s : settings) {
            arch::LeakageRatios r;
            r.logicOff = s[0];
            r.sramSleep = s[1];
            r.sramOff = s[2];
            auto rep = simulateWorkload(w, arch::NpuGeneration::D,
                                        arch::GatingParams(r));
            out << models::workloadName(w) << ',' << num(s[0]) << ','
                << num(s[1]) << ',' << num(s[2]) << ','
                << num(rep.run().savingVsNoPg(Policy::Base)) << ','
                << num(rep.run().savingVsNoPg(Policy::HW)) << ','
                << num(rep.run().savingVsNoPg(Policy::Full)) << '\n';
        }
    }
    return out.str();
}

/** Table 3 (delays/BETs/windows + derived energies), all units. */
std::string
renderTable3()
{
    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    energy::PowerModel power(cfg);
    arch::GatingParams params;

    std::ostringstream out;
    out << "unit,on_off_delay,bet,window,unit_static_w,"
           "transition_energy_j\n";
    for (auto u : {arch::GatedUnit::SaPe, arch::GatedUnit::SaFull,
                   arch::GatedUnit::Vu, arch::GatedUnit::Hbm,
                   arch::GatedUnit::Ici, arch::GatedUnit::SramSleep,
                   arch::GatedUnit::SramOff}) {
        double p = 0;
        switch (u) {
          case arch::GatedUnit::SaPe:
            p = power.peStaticPower();
            break;
          case arch::GatedUnit::SaFull:
            p = power.saStaticPower();
            break;
          case arch::GatedUnit::Vu:
            p = power.vuStaticPower();
            break;
          case arch::GatedUnit::Hbm:
            p = power.hbmStaticPower();
            break;
          case arch::GatedUnit::Ici:
            p = power.iciStaticPower();
            break;
          case arch::GatedUnit::SramSleep:
          case arch::GatedUnit::SramOff:
            p = power.sramSegmentStaticPower();
            break;
        }
        double e_tr = core::transitionEnergy(
            p, params.breakEven(u), params.onOffDelay(u),
            params.gatedLeakage(u), cfg.cycleTime());
        out << arch::gatedUnitName(u) << ','
            << params.onOffDelay(u) << ',' << params.breakEven(u)
            << ',' << params.detectionWindow(u) << ',' << num(p)
            << ',' << num(e_tr) << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 4 (utilization family): SA temporal utilization for
 * four workloads spanning the family traits on NPU-B and NPU-D.
 */
std::string
renderFig04Small()
{
    std::ostringstream out;
    out << "workload,gen,sa_temporal_util\n";
    for (auto w :
         {models::Workload::Prefill8B, models::Workload::Decode8B,
          models::Workload::DlrmS, models::Workload::DiTXL}) {
        for (auto gen :
             {arch::NpuGeneration::B, arch::NpuGeneration::D}) {
            auto rep = simulateWorkload(w, gen);
            out << models::workloadName(w) << ','
                << arch::generationName(gen) << ','
                << num(rep.run().temporalUtil(Component::Sa)) << '\n';
        }
    }
    return out.str();
}

/**
 * Downsized Fig. 18 (power family): average per-chip power under
 * every policy plus NoPG/Full peak power, three workloads on NPU-D.
 */
std::string
renderFig18Small()
{
    std::ostringstream out;
    out << "workload,avg_nopg,avg_base,avg_hw,avg_full,avg_ideal,"
           "peak_nopg,peak_full\n";
    for (auto w : {models::Workload::Prefill8B,
                   models::Workload::DlrmS,
                   models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        out << models::workloadName(w);
        for (auto p : allPolicies())
            out << ',' << num(rep.run().result(p).avgPowerW);
        out << ',' << num(rep.run().result(Policy::NoPG).peakPowerW)
            << ',' << num(rep.run().result(Policy::Full).peakPowerW)
            << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 24 (carbon family): operational carbon reduction
 * per gating design plus the Full busy-energy saving, three
 * workloads on NPU-D.
 */
std::string
renderFig24Small()
{
    std::ostringstream out;
    out << "workload,red_base,red_hw,red_full,red_ideal,"
           "busy_saving_full\n";
    for (auto w : {models::Workload::Prefill8B,
                   models::Workload::DlrmS,
                   models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        out << models::workloadName(w);
        for (auto p : {Policy::Base, Policy::HW, Policy::Full,
                       Policy::Ideal}) {
            out << ','
                << num(carbon::operationalCarbonReduction(rep, p));
        }
        out << ',' << num(rep.run().savingVsNoPg(Policy::Full))
            << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 15 (SetPM timeline — the last uncovered figure
 * family): the paper's exact setpm VU-gating program executed
 * instruction by instruction on the VLIW core (dispatch cycles,
 * gated intervals, wake stalls), then a small kernel run through
 * the compiler's idleness + instrumentation passes. All integers —
 * any drift in the core's cycle accounting or the compiler's setpm
 * placement changes the bytes.
 */
std::string
renderFig15Small()
{
    using core::PowerMode;
    using isa::FuType;

    // The paper's program: 2 SAs, 2 VUs, 8-cycle pops, 2-cycle VU
    // on/off delay (bench/fig15_setpm_timeline.cc renders the same
    // program as a table).
    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    cfg.vuWakeDelay = 2;

    isa::Program p;
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);
    p.bundle().saPop(0).saPop(1).nop(6);
    p.bundle().setpm(0b11, FuType::Vu, PowerMode::On);
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);

    isa::VliwCore core(cfg);
    core.run(p);

    std::ostringstream out;
    out << "record,value\n";
    for (std::size_t i = 0; i < p.bundles().size(); ++i) {
        out << "dispatch_I" << i + 1 << ','
            << core.bundleDispatch()[i] << '\n';
        out << "misc_I" << i + 1 << ','
            << (p.bundles()[i].misc.has_value()
                    ? p.bundles()[i].misc->toString()
                    : "-")
            << '\n';
    }
    out << "total_cycles," << core.totalCycles() << '\n'
        << "wake_stalls," << core.wakeStallCycles() << '\n';
    for (int vu = 0; vu < cfg.numVu; ++vu) {
        std::size_t k = 0;
        for (const auto &iv : core.vuTrace(vu).gated)
            out << "vu" << vu << "_gated_" << k++ << ',' << iv.start
                << ".." << iv.end << '\n';
        out << "vu" << vu << "_gated_cycles,"
            << core.vuTrace(vu).gatedCycles() << '\n';
    }

    // Downsized compiler-instrumented kernel (fig15's second half
    // uses 16 tiles x 100-cycle pops; 4 x 50 keeps the golden fast).
    compiler::KernelSpec spec;
    spec.tiles = 4;
    spec.popCycles = 50;
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;
    auto result = compiler::compileKernel(spec, cfg, params);

    isa::VliwCore gated(cfg);
    gated.run(result.program);
    out << "kernel_setpm_inserted,"
        << result.instrumentation.setpmInserted << '\n'
        << "kernel_gated_intervals,"
        << result.instrumentation.gatedIntervals << '\n'
        << "kernel_vu0_gated_cycles,"
        << gated.vuTrace(0).gatedCycles() << '\n'
        << "kernel_total_cycles," << gated.totalCycles() << '\n'
        << "kernel_wake_stalls," << gated.wakeStallCycles() << '\n';
    return out.str();
}

void
checkGolden(const std::string &name, const std::string &rendered)
{
    std::string path = std::string(REGATE_GOLDEN_DIR) + "/" + name;
    if (std::getenv("REGATE_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rendered;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with REGATE_UPDATE_GOLDEN=1 to create)";
    std::stringstream golden;
    golden << in.rdbuf();
    // Byte equality: any drift in any digit is a failure. The diff
    // gtest prints on mismatch is the review artifact.
    EXPECT_EQ(golden.str(), rendered)
        << "golden mismatch for " << name
        << "; if the change is intentional, regenerate with "
           "REGATE_UPDATE_GOLDEN=1 and review the diff";
}

TEST(GoldenFigures, Fig03EnergyBreakdownSmall)
{
    checkGolden("fig03_energy_breakdown_small.csv",
                renderFig03Small());
}

TEST(GoldenFigures, Fig21LeakageSensitivitySmall)
{
    checkGolden("fig21_sens_leakage_small.csv", renderFig21Small());
}

TEST(GoldenFigures, Table3DelaysAndBets)
{
    checkGolden("table3_delays_bets.csv", renderTable3());
}

TEST(GoldenFigures, Fig04SaTemporalUtilSmall)
{
    checkGolden("fig04_sa_temporal_util_small.csv",
                renderFig04Small());
}

TEST(GoldenFigures, Fig18PowerSmall)
{
    checkGolden("fig18_power_small.csv", renderFig18Small());
}

TEST(GoldenFigures, Fig24CarbonReductionSmall)
{
    checkGolden("fig24_carbon_reduction_small.csv",
                renderFig24Small());
}

TEST(GoldenFigures, Fig15SetpmTimelineSmall)
{
    checkGolden("fig15_setpm_timeline_small.csv",
                renderFig15Small());
}

}  // namespace
}  // namespace sim
}  // namespace regate
