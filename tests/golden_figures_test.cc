/**
 * @file
 * Golden-figure regression harness: renders downsized fig03 / fig21 /
 * table3 configurations to canonical CSV at full double precision and
 * byte-compares against checked-in golden files, so cache or
 * parallelism changes can never silently drift the paper's reproduced
 * numbers — any change in any digit of any cell fails here.
 *
 * The goldens live in tests/golden/ (REGATE_GOLDEN_DIR, injected by
 * CMake). To regenerate after an *intentional* model change:
 *
 *     REGATE_UPDATE_GOLDEN=1 ctest --test-dir build -R golden
 *
 * then review the diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "carbon/carbon_model.h"
#include "core/bet.h"
#include "energy/power_model.h"
#include "sim/report.h"

#ifndef REGATE_GOLDEN_DIR
#error "REGATE_GOLDEN_DIR must be defined (see CMakeLists.txt)"
#endif

namespace regate {
namespace sim {
namespace {

using arch::Component;

/**
 * Round-trip double formatting (%.17g reproduces every bit of an
 * IEEE-754 double), locale-independent: a 1-ulp drift in any
 * reproduced number changes the rendered bytes.
 */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Downsized Fig. 3 (energy breakdown): four workloads spanning every
 * family trait (prefill, decode, DLRM, diffusion) on NPU-D. Raw
 * fractions, not the table's rounded percentages.
 */
std::string
renderFig03Small()
{
    std::ostringstream out;
    out << "workload,idle_share,dyn_sa,sta_sa,dyn_vu,sta_vu,"
           "dyn_sram,sta_sram,dyn_ici,sta_ici,dyn_hbm,sta_hbm,"
           "dyn_oth,sta_oth,static_share_busy\n";
    for (auto w :
         {models::Workload::Prefill8B, models::Workload::Decode8B,
          models::Workload::DlrmS, models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        const auto &e = rep.run.result(Policy::NoPG).energy;
        double total =
            rep.podTotalEnergy(Policy::NoPG) / rep.setup.chips;
        out << models::workloadName(w) << ','
            << num(rep.idleShare(Policy::NoPG));
        for (auto c : {Component::Sa, Component::Vu, Component::Sram,
                       Component::Ici, Component::Hbm,
                       Component::Other}) {
            out << ',' << num(e.dynamicJ[c] * 1.1 / total) << ','
                << num(e.staticJ[c] * 1.1 / total);
        }
        out << ',' << num(e.staticShareBusy()) << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 21 (leakage sensitivity): two workloads, three
 * leakage settings (default, middle, worst).
 */
std::string
renderFig21Small()
{
    const double settings[][3] = {
        {0.03, 0.25, 0.002}, {0.2, 0.4, 0.1}, {0.6, 0.8, 0.4}};
    std::ostringstream out;
    out << "workload,logic_off,sram_sleep,sram_off,"
           "sav_base,sav_hw,sav_full\n";
    for (auto w :
         {models::Workload::DlrmL, models::Workload::DiTXL}) {
        for (const auto &s : settings) {
            arch::LeakageRatios r;
            r.logicOff = s[0];
            r.sramSleep = s[1];
            r.sramOff = s[2];
            auto rep = simulateWorkload(w, arch::NpuGeneration::D,
                                        arch::GatingParams(r));
            out << models::workloadName(w) << ',' << num(s[0]) << ','
                << num(s[1]) << ',' << num(s[2]) << ','
                << num(rep.run.savingVsNoPg(Policy::Base)) << ','
                << num(rep.run.savingVsNoPg(Policy::HW)) << ','
                << num(rep.run.savingVsNoPg(Policy::Full)) << '\n';
        }
    }
    return out.str();
}

/** Table 3 (delays/BETs/windows + derived energies), all units. */
std::string
renderTable3()
{
    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    energy::PowerModel power(cfg);
    arch::GatingParams params;

    std::ostringstream out;
    out << "unit,on_off_delay,bet,window,unit_static_w,"
           "transition_energy_j\n";
    for (auto u : {arch::GatedUnit::SaPe, arch::GatedUnit::SaFull,
                   arch::GatedUnit::Vu, arch::GatedUnit::Hbm,
                   arch::GatedUnit::Ici, arch::GatedUnit::SramSleep,
                   arch::GatedUnit::SramOff}) {
        double p = 0;
        switch (u) {
          case arch::GatedUnit::SaPe:
            p = power.peStaticPower();
            break;
          case arch::GatedUnit::SaFull:
            p = power.saStaticPower();
            break;
          case arch::GatedUnit::Vu:
            p = power.vuStaticPower();
            break;
          case arch::GatedUnit::Hbm:
            p = power.hbmStaticPower();
            break;
          case arch::GatedUnit::Ici:
            p = power.iciStaticPower();
            break;
          case arch::GatedUnit::SramSleep:
          case arch::GatedUnit::SramOff:
            p = power.sramSegmentStaticPower();
            break;
        }
        double e_tr = core::transitionEnergy(
            p, params.breakEven(u), params.onOffDelay(u),
            params.gatedLeakage(u), cfg.cycleTime());
        out << arch::gatedUnitName(u) << ','
            << params.onOffDelay(u) << ',' << params.breakEven(u)
            << ',' << params.detectionWindow(u) << ',' << num(p)
            << ',' << num(e_tr) << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 4 (utilization family): SA temporal utilization for
 * four workloads spanning the family traits on NPU-B and NPU-D.
 */
std::string
renderFig04Small()
{
    std::ostringstream out;
    out << "workload,gen,sa_temporal_util\n";
    for (auto w :
         {models::Workload::Prefill8B, models::Workload::Decode8B,
          models::Workload::DlrmS, models::Workload::DiTXL}) {
        for (auto gen :
             {arch::NpuGeneration::B, arch::NpuGeneration::D}) {
            auto rep = simulateWorkload(w, gen);
            out << models::workloadName(w) << ','
                << arch::generationName(gen) << ','
                << num(rep.run.temporalUtil(Component::Sa)) << '\n';
        }
    }
    return out.str();
}

/**
 * Downsized Fig. 18 (power family): average per-chip power under
 * every policy plus NoPG/Full peak power, three workloads on NPU-D.
 */
std::string
renderFig18Small()
{
    std::ostringstream out;
    out << "workload,avg_nopg,avg_base,avg_hw,avg_full,avg_ideal,"
           "peak_nopg,peak_full\n";
    for (auto w : {models::Workload::Prefill8B,
                   models::Workload::DlrmS,
                   models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        out << models::workloadName(w);
        for (auto p : allPolicies())
            out << ',' << num(rep.run.result(p).avgPowerW);
        out << ',' << num(rep.run.result(Policy::NoPG).peakPowerW)
            << ',' << num(rep.run.result(Policy::Full).peakPowerW)
            << '\n';
    }
    return out.str();
}

/**
 * Downsized Fig. 24 (carbon family): operational carbon reduction
 * per gating design plus the Full busy-energy saving, three
 * workloads on NPU-D.
 */
std::string
renderFig24Small()
{
    std::ostringstream out;
    out << "workload,red_base,red_hw,red_full,red_ideal,"
           "busy_saving_full\n";
    for (auto w : {models::Workload::Prefill8B,
                   models::Workload::DlrmS,
                   models::Workload::DiTXL}) {
        auto rep = simulateWorkload(w, arch::NpuGeneration::D);
        out << models::workloadName(w);
        for (auto p : {Policy::Base, Policy::HW, Policy::Full,
                       Policy::Ideal}) {
            out << ','
                << num(carbon::operationalCarbonReduction(rep, p));
        }
        out << ',' << num(rep.run.savingVsNoPg(Policy::Full))
            << '\n';
    }
    return out.str();
}

void
checkGolden(const std::string &name, const std::string &rendered)
{
    std::string path = std::string(REGATE_GOLDEN_DIR) + "/" + name;
    if (std::getenv("REGATE_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rendered;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with REGATE_UPDATE_GOLDEN=1 to create)";
    std::stringstream golden;
    golden << in.rdbuf();
    // Byte equality: any drift in any digit is a failure. The diff
    // gtest prints on mismatch is the review artifact.
    EXPECT_EQ(golden.str(), rendered)
        << "golden mismatch for " << name
        << "; if the change is intentional, regenerate with "
           "REGATE_UPDATE_GOLDEN=1 and review the diff";
}

TEST(GoldenFigures, Fig03EnergyBreakdownSmall)
{
    checkGolden("fig03_energy_breakdown_small.csv",
                renderFig03Small());
}

TEST(GoldenFigures, Fig21LeakageSensitivitySmall)
{
    checkGolden("fig21_sens_leakage_small.csv", renderFig21Small());
}

TEST(GoldenFigures, Table3DelaysAndBets)
{
    checkGolden("table3_delays_bets.csv", renderTable3());
}

TEST(GoldenFigures, Fig04SaTemporalUtilSmall)
{
    checkGolden("fig04_sa_temporal_util_small.csv",
                renderFig04Small());
}

TEST(GoldenFigures, Fig18PowerSmall)
{
    checkGolden("fig18_power_small.csv", renderFig18Small());
}

TEST(GoldenFigures, Fig24CarbonReductionSmall)
{
    checkGolden("fig24_carbon_reduction_small.csv",
                renderFig24Small());
}

}  // namespace
}  // namespace sim
}  // namespace regate
