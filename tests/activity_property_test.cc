/**
 * @file
 * Property tests for the timeline gap algebra overhaul: the O(log G)
 * seam arithmetic in repeated() must match n-fold append(), the
 * ordered-merge append() must match a naive re-sort reference, and
 * the sorted-gap-multiset invariant must hold after every operation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/prng.h"
#include "core/activity.h"

namespace regate {
namespace core {
namespace {

/** Random timeline with irregular bursts (may be all idle/active). */
ActivityTimeline
randomTimeline(Prng &rng)
{
    Cycles span = 8 + rng.uniform(0, 120);
    int shape = static_cast<int>(rng.uniform(0, 9));
    if (shape == 0)
        return ActivityTimeline::allIdle(span);
    if (shape == 1)
        return ActivityTimeline::allActive(span);
    std::vector<Interval> ivs;
    Cycles cursor = rng.uniform(0, 6);
    while (cursor + 2 < span) {
        Cycles len = 1 + rng.uniform(0, 7);
        Cycles end = std::min(span, cursor + len);
        ivs.push_back({cursor, end});
        cursor = end + rng.uniform(0, 9);
    }
    return ActivityTimeline::fromIntervals(span, ivs);
}

/** The naive append reference: collect all gaps, re-sort, re-group. */
std::vector<GapGroup>
naiveAppendGaps(const ActivityTimeline &a, const ActivityTimeline &b)
{
    // Expand both multisets minus the seam-side gaps, add the fused
    // seam gap, then rebuild groups from a sorted map — the behaviour
    // the seed's addGap + full re-sort produced.
    std::map<Cycles, std::uint64_t> groups;
    for (const auto &g : a.gaps())
        groups[g.length] += g.count;
    for (const auto &g : b.gaps())
        groups[g.length] += g.count;
    auto drop = [&groups](Cycles len) {
        if (len == 0)
            return;
        auto it = groups.find(len);
        ASSERT_NE(it, groups.end());
        if (--it->second == 0)
            groups.erase(it);
    };
    drop(a.trailingIdle());
    drop(b.leadingIdle());
    Cycles seam = a.trailingIdle() + b.leadingIdle();
    if (seam > 0)
        groups[seam] += 1;
    std::vector<GapGroup> out;
    for (const auto &[len, cnt] : groups)
        out.push_back({len, cnt});
    return out;
}

TEST(ActivityProperty, AppendMatchesNaiveResort)
{
    Prng rng(4242);
    for (int iter = 0; iter < 200; ++iter) {
        auto a = randomTimeline(rng);
        auto b = randomTimeline(rng);
        if (a.span() == 0 || b.span() == 0)
            continue;

        auto expect = naiveAppendGaps(a, b);

        auto merged = a;
        merged.append(b);
        merged.checkInvariants();
        EXPECT_EQ(merged.gaps(), expect) << "iteration " << iter;
        EXPECT_EQ(merged.span(), a.span() + b.span());
        EXPECT_EQ(merged.activeCycles(),
                  a.activeCycles() + b.activeCycles());
    }
}

TEST(ActivityProperty, RepeatedMatchesNFoldAppend)
{
    Prng rng(1337);
    for (int iter = 0; iter < 100; ++iter) {
        auto unit = randomTimeline(rng);
        std::uint64_t reps = 2 + rng.uniform(0, 30);

        auto manual = unit;
        for (std::uint64_t i = 1; i < reps; ++i)
            manual.append(unit);
        auto fast = unit.repeated(reps);
        fast.checkInvariants();
        manual.checkInvariants();

        EXPECT_EQ(fast, manual) << "iteration " << iter << " reps "
                                << reps;
    }
}

TEST(ActivityProperty, RepeatedLargeCountsStayExact)
{
    // The overhaul's whole point: repeat counts in the tens of
    // thousands (LLM decode blocks) must stay exact without iterating.
    auto unit = ActivityTimeline::periodic(4096, 3, 16, 128);
    for (std::uint64_t reps : {1024ull, 65536ull, 1048576ull}) {
        auto t = unit.repeated(reps);
        t.checkInvariants();
        EXPECT_EQ(t.span(), unit.span() * reps);
        EXPECT_EQ(t.activeCycles(), unit.activeCycles() * reps);
        Cycles gap_total = 0;
        for (const auto &g : t.gaps())
            gap_total += g.length * g.count;
        EXPECT_EQ(gap_total, t.idleCycles());
    }
}

TEST(ActivityProperty, RepeatedEqualsRepeatedOfRepeated)
{
    Prng rng(777);
    for (int iter = 0; iter < 50; ++iter) {
        auto unit = randomTimeline(rng);
        auto once = unit.repeated(12);
        auto twice = unit.repeated(3).repeated(4);
        // Composition in stages fuses the same seams: totals match.
        EXPECT_EQ(once.span(), twice.span());
        EXPECT_EQ(once.activeCycles(), twice.activeCycles());
        EXPECT_EQ(once.activations(), twice.activations());
    }
}

TEST(ActivityProperty, GapsAlwaysSortedStrictlyAscending)
{
    Prng rng(31);
    for (int iter = 0; iter < 100; ++iter) {
        auto a = randomTimeline(rng);
        auto b = randomTimeline(rng);
        a.append(b);
        auto r = a.repeated(1 + rng.uniform(0, 40));
        for (const auto *t : {&a, &r}) {
            Cycles prev = 0;
            for (const auto &g : t->gaps()) {
                EXPECT_GT(g.length, prev);
                EXPECT_GT(g.count, 0u);
                prev = g.length;
            }
        }
    }
}

TEST(ActivityProperty, SelfAppendIsSafe)
{
    auto t = ActivityTimeline::fromIntervals(20, {{2, 5}, {10, 12}});
    auto doubled = t.repeated(2);
    t.append(t);
    EXPECT_EQ(t, doubled);
}

}  // namespace
}  // namespace core
}  // namespace regate
