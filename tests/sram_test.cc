/**
 * @file
 * Tests for the segment-wise power-gated scratchpad (§4.1): setpm
 * range semantics, sleep/off wake costs, data-loss detection, and
 * leakage accounting.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/units.h"
#include "mem/sram.h"

namespace regate {
namespace mem {
namespace {

using core::PowerMode;
using units::KiB;

SramScratchpad
makePad()
{
    static arch::GatingParams params;
    return SramScratchpad(KiB(64), KiB(4), params);
}

TEST(Sram, StartsAllOn)
{
    auto pad = makePad();
    EXPECT_EQ(pad.numSegments(), 16u);
    EXPECT_EQ(pad.countInState(SegmentState::On), 16u);
    arch::GatingParams p;
    EXPECT_DOUBLE_EQ(pad.leakageFraction(p), 1.0);
}

TEST(Sram, SetRangeOff)
{
    auto pad = makePad();
    // Shrink to the first 16 KB: segments 4..15 off.
    EXPECT_EQ(pad.setRange(KiB(16), KiB(64), PowerMode::Off, 0), 12u);
    EXPECT_EQ(pad.countInState(SegmentState::Off), 12u);
    EXPECT_EQ(pad.segmentState(3), SegmentState::On);
    EXPECT_EQ(pad.segmentState(4), SegmentState::Off);
}

TEST(Sram, PartialSegmentsUntouched)
{
    auto pad = makePad();
    // Range not segment-aligned: only fully covered segments gate.
    EXPECT_EQ(pad.setRange(KiB(2), KiB(10), PowerMode::Off, 0), 1u);
    EXPECT_EQ(pad.segmentState(0), SegmentState::On);
    EXPECT_EQ(pad.segmentState(1), SegmentState::Off);
    EXPECT_EQ(pad.segmentState(2), SegmentState::On);
}

TEST(Sram, SleepRetainsData)
{
    auto pad = makePad();
    pad.write(0, KiB(8), 0);
    pad.setRange(0, KiB(8), PowerMode::Sleep, 10);
    EXPECT_EQ(pad.countInState(SegmentState::Sleep), 2u);

    // Read wakes the segments (4-cycle stall) but data is intact.
    Cycles stall = pad.read(0, KiB(8), 20);
    EXPECT_EQ(stall, 4u);
    EXPECT_EQ(pad.stats().dataLossReads, 0u);
    EXPECT_EQ(pad.countInState(SegmentState::On), 16u);
}

TEST(Sram, OffLosesData)
{
    auto pad = makePad();
    pad.write(0, KiB(4), 0);
    pad.setRange(0, KiB(4), PowerMode::Off, 10);

    Cycles stall = pad.read(0, KiB(4), 20);
    EXPECT_EQ(stall, 10u);  // Off wake delay (Table 3).
    EXPECT_EQ(pad.stats().dataLossReads, 1u);
}

TEST(Sram, WriteAfterOffIsSafe)
{
    auto pad = makePad();
    pad.setRange(0, KiB(4), PowerMode::Off, 0);
    pad.write(0, KiB(4), 10);  // Re-populates the segment.
    EXPECT_EQ(pad.read(0, KiB(4), 20), 0u);
    EXPECT_EQ(pad.stats().dataLossReads, 0u);
}

TEST(Sram, LeakageFractionTracksStates)
{
    auto pad = makePad();
    arch::GatingParams p;
    pad.setRange(0, KiB(32), PowerMode::Sleep, 0);   // 8 segments.
    pad.setRange(KiB(32), KiB(64), PowerMode::Off, 0);  // 8 segments.
    double expect = (8 * 0.25 + 8 * 0.002) / 16.0;
    EXPECT_NEAR(pad.leakageFraction(p), expect, 1e-12);
}

TEST(Sram, WakeEventsCounted)
{
    auto pad = makePad();
    pad.setRange(0, KiB(16), PowerMode::Sleep, 0);
    pad.read(0, KiB(16), 5);
    EXPECT_EQ(pad.stats().wakeEvents, 4u);
    EXPECT_EQ(pad.stats().wakeStallCycles, 4u);  // Max, not sum.
}

TEST(Sram, SetRangeOnWakes)
{
    auto pad = makePad();
    pad.setRange(0, KiB(8), PowerMode::Off, 0);
    EXPECT_EQ(pad.setRange(0, KiB(8), PowerMode::On, 5), 2u);
    EXPECT_EQ(pad.countInState(SegmentState::On), 16u);
}

TEST(Sram, Validation)
{
    arch::GatingParams p;
    EXPECT_THROW(SramScratchpad(KiB(3), KiB(4), p), ConfigError);
    EXPECT_THROW(SramScratchpad(0, KiB(4), p), ConfigError);
    auto pad = makePad();
    EXPECT_THROW(pad.read(KiB(63), KiB(4), 0), ConfigError);
    EXPECT_THROW(pad.write(0, 0, 0), ConfigError);
    EXPECT_THROW(pad.setRange(KiB(8), KiB(4), PowerMode::Off, 0),
                 ConfigError);
    EXPECT_THROW(pad.segmentState(99), ConfigError);
}

}  // namespace
}  // namespace mem
}  // namespace regate
