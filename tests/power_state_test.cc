/**
 * @file
 * Tests for the per-unit power-state manager used by the NPU core
 * pipeline (§4.1/§4.2).
 */

#include <gtest/gtest.h>

#include "core/power_state.h"

namespace regate {
namespace core {
namespace {

TEST(PowerState, ModeNames)
{
    EXPECT_EQ(powerModeName(PowerMode::Auto), "auto");
    EXPECT_EQ(powerModeName(PowerMode::On), "on");
    EXPECT_EQ(powerModeName(PowerMode::Off), "off");
    EXPECT_EQ(powerModeName(PowerMode::Sleep), "sleep");
}

TEST(PowerState, StartsPoweredAndReady)
{
    UnitPowerState u(10);
    EXPECT_TRUE(u.poweredOn());
    EXPECT_TRUE(u.ready(0));
    EXPECT_EQ(u.gatedCycles(100), 0u);
}

TEST(PowerState, OffGatesAndTracksCycles)
{
    UnitPowerState u(10);
    u.setMode(PowerMode::Off, 100);
    EXPECT_FALSE(u.poweredOn());
    EXPECT_FALSE(u.ready(150));
    EXPECT_EQ(u.gatedCycles(150), 50u);
    EXPECT_EQ(u.gateEvents(), 1u);
}

TEST(PowerState, WakeOnDispatch)
{
    UnitPowerState u(10);
    u.setMode(PowerMode::Off, 100);
    Cycles usable = u.wake(160);
    EXPECT_EQ(usable, 170u);
    EXPECT_FALSE(u.ready(165));
    EXPECT_TRUE(u.ready(170));
    EXPECT_EQ(u.gatedCycles(200), 60u);
}

TEST(PowerState, WakeWhenAlreadyOnIsFree)
{
    UnitPowerState u(10);
    EXPECT_EQ(u.wake(42), 42u);
    EXPECT_EQ(u.gateEvents(), 0u);
}

TEST(PowerState, SetModeOnWakes)
{
    UnitPowerState u(5);
    u.setMode(PowerMode::Off, 10);
    u.setMode(PowerMode::On, 30);
    EXPECT_TRUE(u.ready(35));
    EXPECT_FALSE(u.ready(34));
    EXPECT_EQ(u.gatedCycles(100), 20u);
}

TEST(PowerState, RepeatedGateAccumulates)
{
    UnitPowerState u(2);
    u.gateNow(0);
    u.wake(10);
    u.gateNow(20);
    u.wake(25);
    EXPECT_EQ(u.gatedCycles(100), 15u);
    EXPECT_EQ(u.gateEvents(), 2u);
}

TEST(PowerState, DoubleGateIsIdempotent)
{
    UnitPowerState u(2);
    u.gateNow(5);
    u.gateNow(8);
    EXPECT_EQ(u.gateEvents(), 1u);
}

TEST(PowerState, AutoDoesNotChangePhysicalState)
{
    UnitPowerState u(2);
    u.setMode(PowerMode::Off, 0);
    u.setMode(PowerMode::Auto, 10);
    EXPECT_FALSE(u.poweredOn());
    EXPECT_EQ(u.mode(), PowerMode::Auto);
}

}  // namespace
}  // namespace core
}  // namespace regate
