#!/usr/bin/env python3
"""Flight-recorder postmortem path, end to end (bench/flight_probe).

Scenarios:

1. SIGSEGV mid-sweep inside an open span: the probe must die with
   the real signal status (the handler re-raises with the default
   disposition), leave a `trace_check.py --postmortem`-clean dump
   whose timestamps are monotone and whose open-span frontier names
   the interrupted case, AND salvage the partial --trace-out buffer
   that the orderly flush never got to write.
2. SIGABRT and SIGTERM take the same path.
3. Clean run (--signal none): exit 0, NO postmortem appears, and
   the trace flushes normally.
4. REGATE_FLIGHT_KB=0 disables the recorder: the crash still kills
   the process with the right signal, and no dump is written.

Usage: postmortem_check.py --probe BUILD/flight_probe
                           --trace-check tools/trace_check.py
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path


def run(cmd, env=None):
    merged = dict(os.environ)
    if env:
        merged.update(env)
    return subprocess.run([str(c) for c in cmd], env=merged,
                         capture_output=True, text=True)


def check(ok, what, detail=""):
    if not ok:
        sys.exit(f"FAIL: {what}\n{detail}")
    print(f"ok: {what}")


def validate_postmortem(trace_check, path):
    proc = run([sys.executable, trace_check, "--postmortem", path])
    check(proc.returncode == 0,
          f"{Path(path).name} passes trace_check --postmortem",
          proc.stdout + proc.stderr)
    return json.loads(Path(path).read_text())


def signal_case(args, tmp, name, signum):
    pm = Path(tmp) / f"{name}.postmortem.json"
    tr = Path(tmp) / f"{name}.trace.json"
    proc = run([args.probe, "--postmortem", pm, "--trace-out", tr,
                "--signal", name])
    # ASan builds report SIGSEGV/SIGABRT through their own exit
    # path AFTER our handler ran; accept either the raw signal
    # status or ASan's nonzero exit, never success.
    died_by_signal = proc.returncode == -signum
    check(died_by_signal or proc.returncode not in (0, None),
          f"{name}: probe died ({proc.returncode})",
          proc.stderr)
    check(pm.exists(), f"{name}: postmortem dump exists")
    events = validate_postmortem(args.trace_check, pm)

    names = {ev["name"] for ev in events}
    check(f"signal.{signal.Signals(signum).name}" in names,
          f"{name}: dump records the fatal signal instant",
          str(sorted(names)))
    check("probe.doom" in names,
          f"{name}: dump holds the pre-crash history")
    open_bs = [ev for ev in events if ev["ph"] == "B"]
    check(any(ev["name"] == "probe.case" for ev in open_bs),
          f"{name}: the interrupted span is open in the dump")
    ts = [ev["ts"] for ev in events]
    check(ts == sorted(ts), f"{name}: timestamps are monotone")

    # The partial trace the crash handler salvaged must itself be
    # parseable (open spans allowed — the orderly flush never ran).
    check(tr.exists(), f"{name}: partial --trace-out salvaged")
    proc = run([sys.executable, args.trace_check, "--postmortem",
                tr])
    check(proc.returncode == 0,
          f"{name}: salvaged trace passes trace_check --postmortem",
          proc.stdout + proc.stderr)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--probe", required=True)
    ap.add_argument("--trace-check", required=True)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        signal_case(args, tmp, "segv", signal.SIGSEGV)
        signal_case(args, tmp, "abrt", signal.SIGABRT)
        signal_case(args, tmp, "term", signal.SIGTERM)

        pm = Path(tmp) / "clean.postmortem.json"
        tr = Path(tmp) / "clean.trace.json"
        proc = run([args.probe, "--postmortem", pm, "--trace-out",
                    tr, "--signal", "none"])
        check(proc.returncode == 0, "clean: probe exits 0",
              proc.stderr)
        check(not pm.exists(), "clean: no postmortem appears")
        proc = run([sys.executable, args.trace_check, str(tr)])
        check(proc.returncode == 0,
              "clean: trace flushes and validates strictly",
              proc.stdout + proc.stderr)

        pm = Path(tmp) / "disabled.postmortem.json"
        proc = run([args.probe, "--postmortem", pm, "--signal",
                    "term"], env={"REGATE_FLIGHT_KB": "0"})
        check(proc.returncode != 0,
              f"disabled: probe still dies ({proc.returncode})")
        check(not pm.exists(),
              "disabled: REGATE_FLIGHT_KB=0 writes no dump")

    print("postmortem_check: all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
