/**
 * @file
 * Tests for the tiling pass: SRAM demand (the Fig. 7 metric) and the
 * VU-routing of small GEMMs.
 */

#include <gtest/gtest.h>

#include "compiler/tiling.h"
#include "common/units.h"

namespace regate {
namespace compiler {
namespace {

using arch::NpuGeneration;
using graph::Operator;
using graph::OpKind;

Operator
gemm(std::int64_t m, std::int64_t k, std::int64_t n)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "gemm";
    op.m = m;
    op.k = k;
    op.n = n;
    return op;
}

TEST(Tiling, WeightResidentDemandForLargeM)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    // Large M, modest weights: keeping the [k, n] weights resident is
    // the cheapest full-reuse plan.
    auto op = gemm(1 << 20, 1024, 1024);
    double demand = operatorSramDemand(op, cfg);
    double weights = 1024.0 * 1024 * 2;
    EXPECT_GE(demand, weights);
    EXPECT_LT(demand, weights + units::MiB(8));
}

TEST(Tiling, ActivationResidentDemandForSmallM)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    // Tiny activations, huge weights (decode lm_head): keeping the
    // activations resident is cheaper.
    auto op = gemm(8, 8192, 128000);
    double demand = operatorSramDemand(op, cfg);
    EXPECT_LT(demand, units::MiB(32));
}

TEST(Tiling, DemandCanExceedCapacity)
{
    // Fig. 7: demands reach hundreds of MB to 1.5 GB -- the metric is
    // a demand, not an allocation.
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    auto op = gemm(1 << 16, 16384, 53248);
    EXPECT_GT(operatorSramDemand(op, cfg),
              static_cast<double>(cfg.sramBytes));
}

TEST(Tiling, StreamingOpsDemandDoubleBuffer)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    Operator ew;
    ew.kind = OpKind::Elementwise;
    ew.vuOps = 1e9;
    double demand = operatorSramDemand(ew, cfg);
    // 2 x BW x latency: ~2.2 MB on NPU-D; far below DLRM's 8 MB cap.
    EXPECT_GT(demand, units::MiB(1));
    EXPECT_LT(demand, units::MiB(8));
}

TEST(Tiling, SmallGemmsRouteToVu)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    graph::OperatorGraph g;
    g.name = "decode";
    graph::Block b;
    b.name = "b";
    b.repeat = 5;
    b.ops.push_back(gemm(8, 4096, 4096));     // Decode-style: to VU.
    b.ops.push_back(gemm(4096, 4096, 4096));  // Prefill-style: SA.
    g.blocks.push_back(b);

    auto stats = tileGraph(g, cfg);
    EXPECT_TRUE(g.blocks[0].ops[0].mapToVu);
    EXPECT_FALSE(g.blocks[0].ops[1].mapToVu);
    EXPECT_EQ(stats.vuMappedGemms, 5u);
}

TEST(Tiling, FusedOpsHaveNoSeparateDemand)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    graph::OperatorGraph g;
    g.name = "fused";
    graph::Block b;
    b.name = "b";
    b.ops.push_back(gemm(1024, 1024, 1024));
    graph::Operator relu;
    relu.kind = OpKind::Elementwise;
    relu.vuOps = 100;
    relu.fusedIntoPrev = true;
    b.ops.push_back(relu);
    g.blocks.push_back(b);

    tileGraph(g, cfg);
    EXPECT_GT(g.blocks[0].ops[0].sramDemandBytes, 0.0);
    EXPECT_DOUBLE_EQ(g.blocks[0].ops[1].sramDemandBytes, 0.0);
}

TEST(Tiling, CollectiveDemandCapped)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    Operator coll;
    coll.kind = OpKind::Collective;
    coll.coll = graph::CollKind::AllReduce;
    coll.collBytes = 1e12;
    EXPECT_LE(operatorSramDemand(coll, cfg),
              4.0 * units::MiB(4));
}

TEST(Tiling, ThresholdConfigurable)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    graph::OperatorGraph g;
    g.name = "t";
    graph::Block b;
    b.name = "b";
    b.ops.push_back(gemm(100, 512, 512));
    g.blocks.push_back(b);

    TilingOptions opts;
    opts.vuRowThreshold = 128;
    tileGraph(g, cfg, opts);
    EXPECT_TRUE(g.blocks[0].ops[0].mapToVu);
}

TEST(Tiling, TracksMaxDemand)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    graph::OperatorGraph g;
    g.name = "t";
    graph::Block b;
    b.name = "b";
    b.ops.push_back(gemm(4096, 8192, 8192));
    g.blocks.push_back(b);
    auto stats = tileGraph(g, cfg);
    EXPECT_DOUBLE_EQ(stats.maxDemandBytes,
                     g.blocks[0].ops[0].sramDemandBytes);
}

}  // namespace
}  // namespace compiler
}  // namespace regate
