/**
 * @file
 * Unit tests for the fleet transport subsystem (src/net/): the
 * line-framed protocol's parser (malformed / truncated /
 * version-mismatched frames), and TcpTransport's failure paths
 * driven through a scripted fake agent on a socketpair —
 * digest-mismatched artifact transfer, mid-transfer disconnect,
 * fail frames, and connection loss. Every rejection must carry a
 * precise message; every loss must surface as events the
 * orchestrator's retry machinery can act on. The happy paths run
 * end to end against real agents in tests/orch_check.py and the CI
 * fleet-e2e job.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.h"
#include "net/agent_protocol.h"
#include "net/socket.h"
#include "net/transport.h"
#include "sim/serialize.h"

namespace regate {
namespace net {
namespace {

// ---- Frame format / parse ----

TEST(AgentProtocol, FrameRoundTripsPlainAndQuotedValues)
{
    Frame f;
    f.verb = "fail";
    f.kv = {{"slot", "3"}, {"reason", "signal 9 (Killed)"}};
    auto line = formatFrame(f);
    EXPECT_EQ(line, "@regate-net v1 fail slot=3 "
                    "reason=\"signal 9 (Killed)\"");
    auto back = parseFrame(line);
    EXPECT_EQ(back.verb, "fail");
    EXPECT_EQ(back.getInt("slot"), 3);
    EXPECT_EQ(back.get("reason"), "signal 9 (Killed)");
}

TEST(AgentProtocol, RejectsNonFrameLine)
{
    EXPECT_THROW(parseFrame("hello world"), ConfigError);
    EXPECT_THROW(parseFrame(""), ConfigError);
    EXPECT_THROW(parseFrame("@regate-worker v1 start"), ConfigError);
}

TEST(AgentProtocol, RejectsVersionMismatchNamingBothVersions)
{
    try {
        parseFrame("@regate-net v2 hello role=agent");
        FAIL() << "v2 frame was accepted";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("version mismatch"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("v2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("v1"), std::string::npos) << msg;
    }
    EXPECT_THROW(parseFrame("@regate-net vX hello"), ConfigError);
}

TEST(AgentProtocol, RejectsMissingVerbAndMalformedTokens)
{
    EXPECT_THROW(parseFrame("@regate-net v1"), ConfigError);
    EXPECT_THROW(parseFrame("@regate-net v1 "), ConfigError);
    // A key=value where the verb should be.
    EXPECT_THROW(parseFrame("@regate-net v1 slot=3"), ConfigError);
    // A bare word where key=value tokens should be.
    EXPECT_THROW(parseFrame("@regate-net v1 done noequals"),
                 ConfigError);
    // An unterminated quoted value.
    EXPECT_THROW(
        parseFrame("@regate-net v1 fail slot=0 reason=\"oops"),
        ConfigError);
    // Garbage glued to a closing quote.
    EXPECT_THROW(
        parseFrame("@regate-net v1 fail reason=\"x\"y slot=0"),
        ConfigError);
}

TEST(AgentProtocol, FieldAccessorsNameTheMissingOrBadField)
{
    auto f = parseFrame("@regate-net v1 done slot=2 digest=abc");
    EXPECT_TRUE(f.has("slot"));
    EXPECT_FALSE(f.has("bytes"));
    EXPECT_THROW(f.get("bytes"), ConfigError);
    EXPECT_THROW(f.getInt("digest"), ConfigError);  // not a number
    EXPECT_THROW(
        parseFrame("@regate-net v1 done slot=99999999999999999999")
            .getInt("slot"),
        ConfigError);  // out of range
}

TEST(AgentProtocol, HelloValidation)
{
    AgentHello hello;
    hello.bin = "fig21_sens_leakage";
    hello.slots = 4;
    hello.cases = 25;
    auto back = parseHello(parseFrame(formatFrame(
        helloFrame(hello))));
    EXPECT_EQ(back.bin, hello.bin);
    EXPECT_EQ(back.slots, 4);
    EXPECT_EQ(back.cases, 25u);

    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 hello role=driver bin=x "
                     "slots=1 cases=1")),
                 ConfigError);
    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 hello role=agent bin=x "
                     "slots=0 cases=1")),
                 ConfigError);
    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 done slot=0")),
                 ConfigError);
}

TEST(AgentProtocol, WorkerLogScraping)
{
    std::string log =
        "@regate-worker v1 start kind=run shard=0/2 cases=4 "
        "range=0..2\n"
        "@regate-worker v1 case 1/2\n"
        "@regate-worker v1 case 2/2\n"
        "@regate-worker v1 done out=f bytes=9 "
        "file_digest=00000000deadbeef\n";
    std::string progress;
    EXPECT_EQ(scanWorkerHeartbeats(log, &progress), 2);
    EXPECT_EQ(progress, "2/2");
    EXPECT_EQ(workerDoneDigest(log), "00000000deadbeef");

    // A partial trailing heartbeat line is left for the next scan.
    EXPECT_EQ(scanWorkerHeartbeats("@regate-worker v1 case 3/",
                                   &progress),
              0);
    EXPECT_THROW(workerDoneDigest("no done line here"), ConfigError);
    EXPECT_THROW(workerDoneDigest("@regate-worker v1 done out=f\n"),
                 ConfigError);
}

// ---- TcpTransport against a scripted fake agent ----

/** The fake agent's end of a socketpair; writes raw protocol bytes. */
class FakeAgent
{
  public:
    FakeAgent()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw std::runtime_error("socketpair failed");
        driverEnd_ = Socket(fds[0]);
        agentFd_ = fds[1];
    }

    ~FakeAgent() { closeAgent(); }

    /** The driver-side socket (hand to TcpTransport). */
    Socket takeDriverEnd() { return std::move(driverEnd_); }

    void
    say(const std::string &bytes)
    {
        ASSERT_EQ(::send(agentFd_, bytes.data(), bytes.size(),
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }

    void
    sayLine(const std::string &line)
    {
        say(line + "\n");
    }

    /** Drain whatever the driver sent (assign/fetch frames). */
    void
    drain()
    {
        char buf[4096];
        while (::recv(agentFd_, buf, sizeof(buf), MSG_DONTWAIT) > 0) {
        }
    }

    void
    closeAgent()
    {
        if (agentFd_ >= 0) {
            ::close(agentFd_);
            agentFd_ = -1;
        }
    }

  private:
    Socket driverEnd_;
    int agentFd_ = -1;
};

/** A transport handshaken against the fake agent's stock hello. */
std::unique_ptr<TcpTransport>
makeTransport(FakeAgent &agent)
{
    agent.sayLine("@regate-net v1 hello role=agent "
                  "bin=fig_testcase slots=2 cases=8");
    return std::make_unique<TcpTransport>(agent.takeDriverEnd(),
                                          "fake:0", 0,
                                          "fig_testcase", 8);
}

ShardAssignment
assignment(int shard)
{
    ShardAssignment a;
    a.shard = shard;
    a.shardCount = 4;
    a.attempt = 1;
    return a;
}

TEST(TcpTransport, RejectsVersionMismatchedHello)
{
    FakeAgent agent;
    agent.sayLine("@regate-net v2 hello role=agent bin=x slots=1 "
                  "cases=8");
    try {
        TcpTransport t(agent.takeDriverEnd(), "fake:0", 0, "x", 8);
        FAIL() << "v2 hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("version mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, RejectsTruncatedHello)
{
    FakeAgent agent;
    agent.say("@regate-net v1 hel");  // no newline, then EOF
    agent.closeAgent();
    try {
        TcpTransport t(agent.takeDriverEnd(), "fake:0", 0, "x", 8);
        FAIL() << "truncated hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("mid-frame"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, RejectsBinAndCaseCountMismatch)
{
    {
        FakeAgent agent;
        agent.sayLine("@regate-net v1 hello role=agent bin=fig22 "
                      "slots=1 cases=8");
        EXPECT_THROW(TcpTransport(agent.takeDriverEnd(), "fake:0",
                                  0, "fig21", 8),
                     ConfigError);
    }
    {
        FakeAgent agent;
        agent.sayLine("@regate-net v1 hello role=agent bin=fig21 "
                      "slots=1 cases=9");
        EXPECT_THROW(TcpTransport(agent.takeDriverEnd(), "fake:0",
                                  0, "fig21", 8),
                     ConfigError);
    }
}

TEST(TcpTransport, CliSlotCapTakesTheMinimum)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);  // advertises 2
    EXPECT_EQ(transport->slotCount(), 2);

    FakeAgent capped;
    capped.sayLine("@regate-net v1 hello role=agent "
                   "bin=fig_testcase slots=8 cases=8");
    TcpTransport t(capped.takeDriverEnd(), "fake:0", 3,
                   "fig_testcase", 8);
    EXPECT_EQ(t.slotCount(), 3);
}

TEST(TcpTransport, DigestMismatchedArtifactIsRejected)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(1));

    std::string payload = "not the promised bytes\n";
    auto real = sim::contentDigest(payload);
    std::string bogus(16, '0');
    ASSERT_NE(real, bogus);

    // The agent promises a digest the payload does not hash to.
    agent.sayLine("@regate-net v1 done slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + bogus);
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Finished);
    EXPECT_TRUE(events[0].cleanExit);

    agent.sayLine("@regate-net v1 artifact slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + bogus);
    agent.say(payload);
    try {
        transport->fetchArtifact(0);
        FAIL() << "digest-mismatched artifact was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("digest mismatch"),
                  std::string::npos)
            << e.what();
    }
    // A broken transfer poisons the whole session.
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, ArtifactDisagreeingWithDoneLineIsRejected)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(1));

    std::string payload = "switched artifact bytes\n";
    auto real = sim::contentDigest(payload);
    std::string other(16, 'a');

    // done promises one digest; the artifact self-consistently
    // carries different bytes (hash matches the artifact frame but
    // not the done line) — a swapped-file bug the driver must catch.
    agent.sayLine("@regate-net v1 done slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + other);
    ASSERT_EQ(transport->poll().size(), 1u);
    agent.sayLine("@regate-net v1 artifact slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + real);
    agent.say(payload);
    try {
        transport->fetchArtifact(0);
        FAIL() << "artifact disagreeing with done was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("done line"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, MidTransferDisconnectIsAFailedAttempt)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(2));

    std::string payload(100, 'x');
    auto digest = sim::contentDigest(payload);
    agent.sayLine("@regate-net v1 done slot=0 bytes=100 digest=" +
                  digest);
    ASSERT_EQ(transport->poll().size(), 1u);
    agent.sayLine("@regate-net v1 artifact slot=0 bytes=100 "
                  "digest=" + digest);
    agent.say(payload.substr(0, 10));  // 10 of 100 bytes...
    // ...then the host dies while the driver waits for the rest.
    // (Closing only after fetchArtifact has sent its request — a
    // pre-closed peer would fail that send instead of the read.)
    std::thread reaper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        // Consume the fetch request first: closing with unread data
        // is an RST (also a failed attempt, but a different
        // message); this test pins the clean-FIN truncation path.
        agent.drain();
        agent.closeAgent();
    });
    try {
        transport->fetchArtifact(0);
        FAIL() << "mid-transfer disconnect went unnoticed";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("mid-transfer"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("10 of 100"), std::string::npos) << msg;
    }
    reaper.join();
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, FailFrameAndConnectionLossBecomeEvents)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    transport->start(1, assignment(3));
    agent.drain();

    agent.sayLine("@regate-net v1 fail slot=0 "
                  "reason=\"signal 9 (Killed)\"");
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].slot, 0);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Finished);
    EXPECT_FALSE(events[0].cleanExit);
    EXPECT_EQ(events[0].detail, "signal 9 (Killed)");

    // The agent dies; the busy slot surfaces as Lost exactly once.
    agent.closeAgent();
    events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].slot, 1);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_FALSE(transport->alive());
    EXPECT_TRUE(transport->poll().empty());

    // Every later interaction names the loss instead of hanging.
    EXPECT_THROW(transport->start(0, assignment(1)), ConfigError);
    EXPECT_THROW(transport->fetchArtifact(1), ConfigError);
}

TEST(TcpTransport, MalformedFrameFromAgentKillsTheSession)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    agent.sayLine("@regate-net v1 done");  // no slot= field
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, ErrorFrameNamesTheAgentsComplaint)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    agent.sayLine("@regate-net v1 error msg=\"driver addressed "
                  "slot 7, this agent offers 2\"");
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_NE(events[0].detail.find("slot 7"), std::string::npos);
}

}  // namespace
}  // namespace net
}  // namespace regate
