/**
 * @file
 * Unit tests for the fleet transport subsystem (src/net/): the
 * line-framed protocol's parser (malformed / truncated /
 * version-mismatched frames), the v2 HMAC hello handshake (wrong
 * secrets, replayed hellos, downgrades — each rejected by name),
 * seeded chaos fault-injection on the frame stream
 * (drop/duplicate/truncate must fail by name, never hang), and
 * TcpTransport's failure paths driven through a scripted fake agent
 * on a socketpair — digest-mismatched artifact transfer,
 * mid-transfer disconnect, fail frames, and connection loss. Every
 * rejection must carry a precise message; every loss must surface
 * as events the orchestrator's retry machinery can act on. The
 * happy paths run end to end against real agents in
 * tests/orch_check.py and the CI fleet jobs.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/prng.h"
#include "net/agent_protocol.h"
#include "net/socket.h"
#include "net/transport.h"
#include "sim/serialize.h"

namespace regate {
namespace net {
namespace {

// ---- Frame format / parse ----

TEST(AgentProtocol, FrameRoundTripsPlainAndQuotedValues)
{
    Frame f;
    f.verb = "fail";
    f.kv = {{"slot", "3"}, {"reason", "signal 9 (Killed)"}};
    auto line = formatFrame(f);
    EXPECT_EQ(line, "@regate-net v1 fail slot=3 "
                    "reason=\"signal 9 (Killed)\"");
    auto back = parseFrame(line);
    EXPECT_EQ(back.verb, "fail");
    EXPECT_EQ(back.getInt("slot"), 3);
    EXPECT_EQ(back.get("reason"), "signal 9 (Killed)");
}

TEST(AgentProtocol, RejectsNonFrameLine)
{
    EXPECT_THROW(parseFrame("hello world"), ConfigError);
    EXPECT_THROW(parseFrame(""), ConfigError);
    EXPECT_THROW(parseFrame("@regate-worker v1 start"), ConfigError);
}

TEST(AgentProtocol, RejectsVersionMismatchNamingBothVersions)
{
    // v1 (session) and v2 (auth handshake) both parse now; v3 is
    // from the future.
    EXPECT_EQ(parseFrame("@regate-net v2 hello-auth role=agent "
                         "nonce=ab").version,
              kAuthProtocolVersion);
    try {
        parseFrame("@regate-net v3 hello role=agent");
        FAIL() << "v3 frame was accepted";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("version mismatch"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("v3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("v1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("v2"), std::string::npos) << msg;
    }
    EXPECT_THROW(parseFrame("@regate-net vX hello"), ConfigError);
}

TEST(AgentProtocol, RejectsMissingVerbAndMalformedTokens)
{
    EXPECT_THROW(parseFrame("@regate-net v1"), ConfigError);
    EXPECT_THROW(parseFrame("@regate-net v1 "), ConfigError);
    // A key=value where the verb should be.
    EXPECT_THROW(parseFrame("@regate-net v1 slot=3"), ConfigError);
    // A bare word where key=value tokens should be.
    EXPECT_THROW(parseFrame("@regate-net v1 done noequals"),
                 ConfigError);
    // An unterminated quoted value.
    EXPECT_THROW(
        parseFrame("@regate-net v1 fail slot=0 reason=\"oops"),
        ConfigError);
    // Garbage glued to a closing quote.
    EXPECT_THROW(
        parseFrame("@regate-net v1 fail reason=\"x\"y slot=0"),
        ConfigError);
}

TEST(AgentProtocol, FieldAccessorsNameTheMissingOrBadField)
{
    auto f = parseFrame("@regate-net v1 done slot=2 digest=abc");
    EXPECT_TRUE(f.has("slot"));
    EXPECT_FALSE(f.has("bytes"));
    EXPECT_THROW(f.get("bytes"), ConfigError);
    EXPECT_THROW(f.getInt("digest"), ConfigError);  // not a number
    EXPECT_THROW(
        parseFrame("@regate-net v1 done slot=99999999999999999999")
            .getInt("slot"),
        ConfigError);  // out of range
}

TEST(AgentProtocol, HelloValidation)
{
    AgentHello hello;
    hello.bin = "fig21_sens_leakage";
    hello.slots = 4;
    hello.cases = 25;
    auto back = parseHello(parseFrame(formatFrame(
        helloFrame(hello))));
    EXPECT_EQ(back.bin, hello.bin);
    EXPECT_EQ(back.slots, 4);
    EXPECT_EQ(back.cases, 25u);

    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 hello role=driver bin=x "
                     "slots=1 cases=1")),
                 ConfigError);
    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 hello role=agent bin=x "
                     "slots=0 cases=1")),
                 ConfigError);
    EXPECT_THROW(parseHello(parseFrame(
                     "@regate-net v1 done slot=0")),
                 ConfigError);
}

TEST(AgentProtocol, WorkerLogScrapingAccumulatesAcrossChunks)
{
    WorkerLogTail tail;
    EXPECT_EQ(scanWorkerLog("@regate-worker v1 start kind=run "
                            "shard=0/2 cases=4 range=0..2\n"
                            "@regate-worker v1 case 1/2\n",
                            &tail),
              1);
    EXPECT_EQ(tail.progress, "1/2");
    EXPECT_TRUE(tail.doneDigest.empty());

    // The done digest is captured as the bytes stream past, so no
    // later phase ever re-reads the whole log.
    EXPECT_EQ(scanWorkerLog("@regate-worker v1 case 2/2\n"
                            "@regate-worker v1 done out=f bytes=9 "
                            "file_digest=00000000deadbeef\n",
                            &tail),
              1);
    EXPECT_EQ(tail.progress, "2/2");
    EXPECT_EQ(tail.doneDigest, "00000000deadbeef");

    // A partial trailing heartbeat line is left for the next scan,
    // and a done line without a digest field simply reports none
    // (the transport turns that into a failed attempt).
    WorkerLogTail partial;
    EXPECT_EQ(scanWorkerLog("@regate-worker v1 case 3/", &partial),
              0);
    EXPECT_TRUE(partial.progress.empty());
    WorkerLogTail bare;
    EXPECT_EQ(scanWorkerLog("@regate-worker v1 done out=f\n",
                            &bare),
              0);
    EXPECT_TRUE(bare.doneDigest.empty());
}

TEST(AgentProtocol, TailWorkerLogReadsOnlyNewBytes)
{
    auto dir = std::filesystem::path(::testing::TempDir());
    auto log = (dir / "regate_net_test_tail.log").string();
    std::filesystem::remove(log);

    // A still-missing log is simply "nothing yet".
    WorkerLogTail tail;
    EXPECT_EQ(tailWorkerLog(log, &tail), 0);
    EXPECT_EQ(tail.offset, 0u);

    // A partial trailing line is not consumed: its offset stays
    // put until the newline lands, then the whole line scans once.
    {
        std::ofstream f(log);
        f << "@regate-worker v1 case 1/4\n@regate-worker v1 case 2/";
    }
    EXPECT_EQ(tailWorkerLog(log, &tail), 1);
    EXPECT_EQ(tail.progress, "1/4");
    EXPECT_EQ(tail.offset, std::string("@regate-worker v1 case "
                                       "1/4\n")
                               .size());
    {
        std::ofstream f(log, std::ios::app);
        f << "4\n@regate-worker v1 done out=f bytes=9 "
             "file_digest=00000000deadbeef\n";
    }
    EXPECT_EQ(tailWorkerLog(log, &tail), 1);
    EXPECT_EQ(tail.progress, "2/4");
    EXPECT_EQ(tail.doneDigest, "00000000deadbeef");

    // Fully consumed: another tail is a no-op.
    EXPECT_EQ(tailWorkerLog(log, &tail), 0);
    std::filesystem::remove(log);
}

// ---- TcpTransport against a scripted fake agent ----

/** The fake agent's end of a socketpair; writes raw protocol bytes. */
class FakeAgent
{
  public:
    FakeAgent()
    {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw std::runtime_error("socketpair failed");
        driverEnd_ = Socket(fds[0]);
        agentFd_ = fds[1];
    }

    ~FakeAgent() { closeAgent(); }

    /** The driver-side socket (hand to TcpTransport). */
    Socket takeDriverEnd() { return std::move(driverEnd_); }

    void
    say(const std::string &bytes)
    {
        ASSERT_EQ(::send(agentFd_, bytes.data(), bytes.size(),
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(bytes.size()));
    }

    void
    sayLine(const std::string &line)
    {
        say(line + "\n");
    }

    /** Drain whatever the driver sent (assign/fetch frames). */
    void
    drain()
    {
        char buf[4096];
        while (::recv(agentFd_, buf, sizeof(buf), MSG_DONTWAIT) > 0) {
        }
    }

    /** Drain and return what the driver sent, for content checks. */
    std::string
    received()
    {
        std::string out;
        char buf[4096];
        ssize_t n;
        while ((n = ::recv(agentFd_, buf, sizeof(buf),
                           MSG_DONTWAIT)) > 0)
            out.append(buf, static_cast<std::size_t>(n));
        return out;
    }

    void
    closeAgent()
    {
        if (agentFd_ >= 0) {
            ::close(agentFd_);
            agentFd_ = -1;
        }
    }

  private:
    Socket driverEnd_;
    int agentFd_ = -1;
};

/** A transport handshaken against the fake agent's stock hello. */
std::unique_ptr<TcpTransport>
makeTransport(FakeAgent &agent)
{
    agent.sayLine("@regate-net v1 hello role=agent "
                  "bin=fig_testcase slots=2 cases=8");
    return std::make_unique<TcpTransport>(agent.takeDriverEnd(),
                                          "fake:0", 0,
                                          "fig_testcase", 8);
}

ShardAssignment
assignment(int shard)
{
    ShardAssignment a;
    a.shard = shard;
    a.shardCount = 4;
    a.attempt = 1;
    return a;
}

TEST(TcpTransport, RejectsVersionMismatchedHello)
{
    FakeAgent agent;
    agent.sayLine("@regate-net v3 hello role=agent bin=x slots=1 "
                  "cases=8");
    try {
        TcpTransport t(agent.takeDriverEnd(), "fake:0", 0, "x", 8);
        FAIL() << "v3 hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("version mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, RejectsTruncatedHello)
{
    FakeAgent agent;
    agent.say("@regate-net v1 hel");  // no newline, then EOF
    agent.closeAgent();
    try {
        TcpTransport t(agent.takeDriverEnd(), "fake:0", 0, "x", 8);
        FAIL() << "truncated hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("mid-frame"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, RejectsBinAndCaseCountMismatch)
{
    {
        FakeAgent agent;
        agent.sayLine("@regate-net v1 hello role=agent bin=fig22 "
                      "slots=1 cases=8");
        EXPECT_THROW(TcpTransport(agent.takeDriverEnd(), "fake:0",
                                  0, "fig21", 8),
                     ConfigError);
    }
    {
        FakeAgent agent;
        agent.sayLine("@regate-net v1 hello role=agent bin=fig21 "
                      "slots=1 cases=9");
        EXPECT_THROW(TcpTransport(agent.takeDriverEnd(), "fake:0",
                                  0, "fig21", 8),
                     ConfigError);
    }
}

TEST(TcpTransport, CliSlotCapTakesTheMinimum)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);  // advertises 2
    EXPECT_EQ(transport->slotCount(), 2);

    FakeAgent capped;
    capped.sayLine("@regate-net v1 hello role=agent "
                   "bin=fig_testcase slots=8 cases=8");
    TcpTransport t(capped.takeDriverEnd(), "fake:0", 3,
                   "fig_testcase", 8);
    EXPECT_EQ(t.slotCount(), 3);
}

TEST(TcpTransport, DigestMismatchedArtifactIsRejected)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(1));

    std::string payload = "not the promised bytes\n";
    auto real = sim::contentDigest(payload);
    std::string bogus(16, '0');
    ASSERT_NE(real, bogus);

    // The agent promises a digest the payload does not hash to.
    agent.sayLine("@regate-net v1 done slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + bogus);
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Finished);
    EXPECT_TRUE(events[0].cleanExit);

    agent.sayLine("@regate-net v1 artifact slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + bogus);
    agent.say(payload);
    try {
        transport->fetchArtifact(0);
        FAIL() << "digest-mismatched artifact was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("digest mismatch"),
                  std::string::npos)
            << e.what();
    }
    // A broken transfer poisons the whole session.
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, ArtifactDisagreeingWithDoneLineIsRejected)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(1));

    std::string payload = "switched artifact bytes\n";
    auto real = sim::contentDigest(payload);
    std::string other(16, 'a');

    // done promises one digest; the artifact self-consistently
    // carries different bytes (hash matches the artifact frame but
    // not the done line) — a swapped-file bug the driver must catch.
    agent.sayLine("@regate-net v1 done slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + other);
    ASSERT_EQ(transport->poll().size(), 1u);
    agent.sayLine("@regate-net v1 artifact slot=0 bytes=" +
                  std::to_string(payload.size()) +
                  " digest=" + real);
    agent.say(payload);
    try {
        transport->fetchArtifact(0);
        FAIL() << "artifact disagreeing with done was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("done line"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TcpTransport, MidTransferDisconnectIsAFailedAttempt)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(2));

    std::string payload(100, 'x');
    auto digest = sim::contentDigest(payload);
    agent.sayLine("@regate-net v1 done slot=0 bytes=100 digest=" +
                  digest);
    ASSERT_EQ(transport->poll().size(), 1u);
    agent.sayLine("@regate-net v1 artifact slot=0 bytes=100 "
                  "digest=" + digest);
    agent.say(payload.substr(0, 10));  // 10 of 100 bytes...
    // ...then the host dies while the driver waits for the rest.
    // (Closing only after fetchArtifact has sent its request — a
    // pre-closed peer would fail that send instead of the read.)
    std::thread reaper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        // Consume the fetch request first: closing with unread data
        // is an RST (also a failed attempt, but a different
        // message); this test pins the clean-FIN truncation path.
        agent.drain();
        agent.closeAgent();
    });
    try {
        transport->fetchArtifact(0);
        FAIL() << "mid-transfer disconnect went unnoticed";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("mid-transfer"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("10 of 100"), std::string::npos) << msg;
    }
    reaper.join();
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, FailFrameAndConnectionLossBecomeEvents)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    transport->start(1, assignment(3));
    agent.drain();

    agent.sayLine("@regate-net v1 fail slot=0 "
                  "reason=\"signal 9 (Killed)\"");
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].slot, 0);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Finished);
    EXPECT_FALSE(events[0].cleanExit);
    EXPECT_EQ(events[0].detail, "signal 9 (Killed)");

    // The agent dies; the busy slot surfaces as Lost exactly once.
    agent.closeAgent();
    events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].slot, 1);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_FALSE(transport->alive());
    EXPECT_TRUE(transport->poll().empty());

    // Every later interaction names the loss instead of hanging.
    EXPECT_THROW(transport->start(0, assignment(1)), ConfigError);
    EXPECT_THROW(transport->fetchArtifact(1), ConfigError);
}

TEST(TcpTransport, MalformedFrameFromAgentKillsTheSession)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    agent.sayLine("@regate-net v1 done");  // no slot= field
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_FALSE(transport->alive());
}

TEST(TcpTransport, ErrorFrameNamesTheAgentsComplaint)
{
    FakeAgent agent;
    auto transport = makeTransport(agent);
    transport->start(0, assignment(0));
    agent.sayLine("@regate-net v1 error msg=\"driver addressed "
                  "slot 7, this agent offers 2\"");
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_NE(events[0].detail.find("slot 7"), std::string::npos);
}

// ---- Metric frames (the telemetry side channel) ----

TEST(AgentProtocol, MetricFrameRoundTrips)
{
    MetricSample sample;
    sample.name = "case_duration_us";
    sample.kind = 'h';
    sample.value = 5000;
    sample.count = 2;
    auto line = formatFrame(metricFrame(3, 17, sample, "deadbeef"));
    EXPECT_EQ(line, "@regate-net v1 metric slot=3 seq=17 "
                    "name=case_duration_us kind=h v=5000 n=2 "
                    "auth=deadbeef");
    auto frame = parseFrame(line);
    EXPECT_EQ(frame.getIndex("slot"), 3);
    EXPECT_EQ(frame.getInt("seq"), 17);
    EXPECT_EQ(frame.get("auth"), "deadbeef");
    auto back = parseMetric(frame);
    EXPECT_EQ(back.name, sample.name);
    EXPECT_EQ(back.kind, 'h');
    EXPECT_EQ(back.value, 5000u);
    EXPECT_EQ(back.count, 2u);

    // Without a tag the auth key is absent, not empty — the
    // plaintext frame stays minimal.
    auto plain = formatFrame(metricFrame(0, 1, sample));
    EXPECT_EQ(plain.find("auth="), std::string::npos);
}

TEST(AgentProtocol, MalformedMetricFramesRejectedByName)
{
    auto reject = [](const std::string &line,
                     const std::string &needle) {
        try {
            parseMetric(parseFrame(line));
            FAIL() << "accepted: " << line;
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << line << " failed with: " << e.what();
        }
    };
    reject("@regate-net v1 metric slot=0 seq=1 kind=c v=1 n=1",
           "carries no name");
    reject("@regate-net v1 metric slot=0 seq=1 name=\"\" kind=c "
           "v=1 n=1",
           "empty name");
    reject("@regate-net v1 metric slot=0 seq=1 name=x kind=z v=1 "
           "n=1",
           "expected c or h");
    reject("@regate-net v1 metric slot=0 seq=1 name=x kind=c v=1 "
           "n=0",
           "zero observations");
    reject("@regate-net v1 metric slot=0 seq=1 name=x kind=c "
           "v=oops n=1",
           "not a non-negative integer");
    reject("@regate-net v1 done slot=0", "expected a metric frame");
}

TEST(AgentProtocol, MetricAuthBindsEveryField)
{
    MetricSample sample;
    sample.name = "net.backoff.attempts";
    sample.value = 4;
    auto tag = metricAuth("secret", "nonce", 1, 9, sample);
    EXPECT_EQ(metricAuth("secret", "nonce", 1, 9, sample), tag);

    EXPECT_NE(metricAuth("other", "nonce", 1, 9, sample), tag);
    EXPECT_NE(metricAuth("secret", "nonce2", 1, 9, sample), tag);
    EXPECT_NE(metricAuth("secret", "nonce", 2, 9, sample), tag);
    EXPECT_NE(metricAuth("secret", "nonce", 1, 10, sample), tag);
    auto moved = sample;
    moved.value = 5;
    EXPECT_NE(metricAuth("secret", "nonce", 1, 9, moved), tag);
}

TEST(TcpTransport, NegotiatedMetricFrameBecomesMetricEvent)
{
    FakeAgent agent;
    agent.sayLine("@regate-net v1 hello role=agent "
                  "bin=fig_testcase slots=2 cases=8 metrics=1");
    TcpTransport transport(agent.takeDriverEnd(), "fake:0", 0,
                           "fig_testcase", 8);
    EXPECT_TRUE(transport.metricsNegotiated());
    transport.start(0, assignment(0));
    // The assign arms streaming on a metrics-capable peer.
    EXPECT_NE(agent.received().find(" metrics=1"),
              std::string::npos);

    agent.sayLine("@regate-net v1 metric slot=0 seq=1 "
                  "name=case_duration_us kind=h v=9000 n=3");
    agent.sayLine("@regate-net v1 metric slot=0 seq=2 "
                  "name=sim.run_cache.hits kind=c v=7 n=1");
    auto events = transport.poll();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Metric);
    EXPECT_EQ(events[0].slot, 0);
    EXPECT_EQ(events[0].metricName, "case_duration_us");
    EXPECT_EQ(events[0].metricKind, 'h');
    EXPECT_EQ(events[0].metricValue, 9000u);
    EXPECT_EQ(events[0].metricCount, 3u);
    EXPECT_EQ(events[1].metricKind, 'c');
    EXPECT_EQ(events[1].metricValue, 7u);
    EXPECT_TRUE(transport.alive());
}

TEST(TcpTransport, UnnegotiatedMetricFrameKillsTheSession)
{
    // The stock hello never offered metrics, so a metric frame is a
    // protocol violation from this peer — the session dies like any
    // other malformed traffic, it does not silently count samples.
    FakeAgent agent;
    auto transport = makeTransport(agent);
    EXPECT_FALSE(transport->metricsNegotiated());
    transport->start(0, assignment(0));
    // No streaming armed on a metrics-less peer.
    EXPECT_EQ(agent.received().find(" metrics=1"),
              std::string::npos);

    agent.sayLine("@regate-net v1 metric slot=0 seq=1 name=x "
                  "kind=c v=1 n=1");
    auto events = transport->poll();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TransportEvent::Kind::Lost);
    EXPECT_NE(events[0].detail.find("metric"), std::string::npos);
    EXPECT_FALSE(transport->alive());
}

// ---- The v2 authenticated hello ----

/** Both ends of a socketpair wrapped as LineChannels. */
struct ChannelPair
{
    LineChannel driver;  ///< The orchestrator's end.
    LineChannel agent;   ///< The agent's end.
};

ChannelPair
makeChannelPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        throw std::runtime_error("socketpair failed");
    return {LineChannel(Socket(fds[0]), "fake-agent:0"),
            LineChannel(Socket(fds[1]), "fake-driver:0")};
}

AgentHello
stockHello()
{
    AgentHello hello;
    hello.bin = "fig_testcase";
    hello.slots = 2;
    hello.cases = 8;
    return hello;
}

TEST(AuthHandshake, ChallengeResponseRoundTripAuthenticates)
{
    auto pair = makeChannelPair();
    std::optional<std::string> secret("fleet-secret");
    std::thread agent([&] {
        agentHandshake(pair.agent, stockHello(), secret, 2000);
    });
    auto result = driverHandshake(pair.driver, secret, 2000);
    agent.join();
    EXPECT_TRUE(result.authenticated);
    EXPECT_EQ(result.hello.bin, "fig_testcase");
    EXPECT_EQ(result.hello.slots, 2);
    EXPECT_EQ(result.hello.cases, 8u);
}

TEST(AuthHandshake, PlaintextHelloStaysUnauthenticated)
{
    auto pair = makeChannelPair();
    std::thread agent([&] {
        agentHandshake(pair.agent, stockHello(), std::nullopt,
                       2000);
    });
    auto result = driverHandshake(pair.driver, std::nullopt, 2000);
    agent.join();
    EXPECT_FALSE(result.authenticated);
    EXPECT_EQ(result.hello.slots, 2);
}

TEST(AuthHandshake, WrongSecretIsRejectedByName)
{
    // The agent verifies the driver's challenge proof FIRST, so a
    // secret mismatch is caught on the agent before it reveals
    // capabilities — and the error frame it sends back (like
    // net/agent.cc does) lets the driver log the real reason.
    auto pair = makeChannelPair();
    std::optional<std::string> driver_secret("correct-secret");
    std::optional<std::string> agent_secret("wrong-secret");
    std::thread agent([&] {
        try {
            agentHandshake(pair.agent, stockHello(), agent_secret,
                           2000);
            ADD_FAILURE() << "mismatched secrets authenticated";
        } catch (const ConfigError &e) {
            EXPECT_NE(std::string(e.what())
                          .find("bad challenge proof"),
                      std::string::npos)
                << e.what();
            Frame f;
            f.verb = "error";
            f.kv = {{"msg", e.what()}};
            pair.agent.sendLine(formatFrame(f));
        }
    });
    try {
        driverHandshake(pair.driver, driver_secret, 2000);
        FAIL() << "mismatched secrets authenticated";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("agent reported"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("wrong secret"), std::string::npos)
            << msg;
    }
    agent.join();
}

TEST(AuthHandshake, TamperedHelloFailsTheMac)
{
    // An in-path attacker inflating the slot count (to starve the
    // sweep onto its host) breaks the MAC: the capabilities are
    // inside it.
    auto pair = makeChannelPair();
    std::string secret = "fleet-secret";
    std::thread agent([&] {
        Frame opening;
        opening.version = kAuthProtocolVersion;
        opening.verb = "hello-auth";
        opening.kv = {{"role", "agent"}, {"nonce", makeNonce()}};
        pair.agent.sendLine(formatFrame(opening));
        auto challenge = parseFrame(pair.agent.readLine(2000));
        auto hello = stockHello();
        auto mac = agentAuth(secret, challenge.get("nonce"), hello);
        hello.slots = 64;  // Tampered after the MAC was computed.
        auto f = helloFrame(hello);
        f.version = kAuthProtocolVersion;
        f.kv.emplace_back("auth", mac);
        pair.agent.sendLine(formatFrame(f));
    });
    try {
        driverHandshake(pair.driver,
                        std::optional<std::string>(secret), 2000);
        FAIL() << "tampered hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("HMAC mismatch"),
                  std::string::npos)
            << e.what();
    }
    agent.join();
}

TEST(AuthHandshake, ReplayedHelloIsRejected)
{
    std::optional<std::string> secret("fleet-secret");
    std::string recorded;

    // Record a legitimately-authenticated hello line...
    {
        auto pair = makeChannelPair();
        std::thread agent([&] {
            Frame opening;
            opening.version = kAuthProtocolVersion;
            opening.verb = "hello-auth";
            opening.kv = {{"role", "agent"},
                          {"nonce", makeNonce()}};
            pair.agent.sendLine(formatFrame(opening));
            auto challenge =
                parseFrame(pair.agent.readLine(2000));
            auto hello = stockHello();
            auto f = helloFrame(hello);
            f.version = kAuthProtocolVersion;
            f.kv.emplace_back(
                "auth", agentAuth(*secret, challenge.get("nonce"),
                                  hello));
            recorded = formatFrame(f);
            pair.agent.sendLine(recorded);
        });
        auto result = driverHandshake(pair.driver, secret, 2000);
        agent.join();
        ASSERT_TRUE(result.authenticated);
    }

    // ...then replay it on a fresh connection: the driver's nonce
    // is fresh, so the recorded MAC no longer verifies.
    auto pair = makeChannelPair();
    std::thread replayer([&] {
        Frame opening;
        opening.version = kAuthProtocolVersion;
        opening.verb = "hello-auth";
        opening.kv = {{"role", "agent"}, {"nonce", makeNonce()}};
        pair.agent.sendLine(formatFrame(opening));
        pair.agent.readLine(2000);  // Fresh challenge, ignored.
        pair.agent.sendLine(recorded);
    });
    try {
        driverHandshake(pair.driver, secret, 2000);
        FAIL() << "replayed hello was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("replayed"),
                  std::string::npos)
            << e.what();
    }
    replayer.join();
}

TEST(AuthHandshake, MetricsCapabilityNegotiatesEndToEnd)
{
    // New agent, new driver: the challenge advertises metrics, the
    // agent keeps its offer, and both ends agree on the driver
    // nonce the metric-frame MACs will be bound to.
    auto pair = makeChannelPair();
    std::optional<std::string> secret("fleet-secret");
    AgentHandshakeResult agent_side;
    std::thread agent([&] {
        auto hello = stockHello();
        hello.metrics = true;
        agent_side =
            agentHandshake(pair.agent, hello, secret, 2000);
    });
    auto result = driverHandshake(pair.driver, secret, 2000);
    agent.join();
    EXPECT_TRUE(result.authenticated);
    EXPECT_TRUE(result.hello.metrics);
    EXPECT_TRUE(agent_side.hello.metrics);
    EXPECT_FALSE(result.driverNonce.empty());
    EXPECT_EQ(agent_side.driverNonce, result.driverNonce);

    // An agent that never offers the capability stays metrics-less
    // even against a metrics-capable driver.
    auto pair2 = makeChannelPair();
    std::thread plain_agent([&] {
        agentHandshake(pair2.agent, stockHello(), secret, 2000);
    });
    auto plain = driverHandshake(pair2.driver, secret, 2000);
    plain_agent.join();
    EXPECT_TRUE(plain.authenticated);
    EXPECT_FALSE(plain.hello.metrics);
}

TEST(AuthHandshake, OldDriverWithoutMetricsDowngradesTheHello)
{
    // A driver predating the metrics key sends a challenge without
    // it. The agent must answer with a metrics-less hello whose MAC
    // the old driver's (metrics-less) input verifies — byte-for-
    // byte what builds before the capability computed.
    auto pair = makeChannelPair();
    std::string secret = "fleet-secret";
    AgentHandshakeResult agent_side;
    std::thread agent([&] {
        auto hello = stockHello();
        hello.metrics = true;  // Offered, but the driver is old.
        agent_side = agentHandshake(
            pair.agent, hello,
            std::optional<std::string>(secret), 2000);
    });

    // Scripted old driver: no metrics key on the challenge.
    auto opening = parseFrame(pair.driver.readLine(2000));
    ASSERT_EQ(opening.verb, "hello-auth");
    Frame challenge;
    challenge.version = kAuthProtocolVersion;
    challenge.verb = "challenge";
    auto driver_nonce = makeNonce();
    challenge.kv = {
        {"nonce", driver_nonce},
        {"proof", driverProof(secret, opening.get("nonce"))}};
    pair.driver.sendLine(formatFrame(challenge));

    auto answer = parseFrame(pair.driver.readLine(2000));
    agent.join();
    ASSERT_EQ(answer.verb, "hello");
    EXPECT_FALSE(answer.has("metrics"));
    auto hello = parseHello(answer);
    EXPECT_FALSE(hello.metrics);
    EXPECT_FALSE(agent_side.hello.metrics);
    // The old driver's MAC input (no metrics suffix) verifies.
    EXPECT_EQ(answer.get("auth"),
              agentAuth(secret, driver_nonce, hello));
}

TEST(AuthHandshake, DowngradeToPlaintextIsRejected)
{
    // A plaintext hello against a driver holding a secret is a
    // downgrade attempt (or a misconfigured host) — named either
    // way.
    auto pair = makeChannelPair();
    std::thread agent([&] {
        agentHandshake(pair.agent, stockHello(), std::nullopt,
                       2000);
    });
    try {
        driverHandshake(pair.driver,
                        std::optional<std::string>("fleet-secret"),
                        2000);
        FAIL() << "plaintext hello was accepted against a secret";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("unauthenticated"),
                  std::string::npos)
            << e.what();
    }
    agent.join();
}

TEST(AuthHandshake, AuthHelloAgainstSecretlessDriverIsRejected)
{
    auto pair = makeChannelPair();
    std::optional<std::string> agent_secret("fleet-secret");
    std::thread agent([&] {
        // The driver rejects and hangs up before answering the
        // challenge; the agent side surfaces that as a read error.
        EXPECT_THROW(agentHandshake(pair.agent, stockHello(),
                                    agent_secret, 2000),
                     ConfigError);
    });
    try {
        driverHandshake(pair.driver, std::nullopt, 2000);
        FAIL() << "auth hello was accepted without a secret";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what())
                      .find("no secret is configured"),
                  std::string::npos)
            << e.what();
    }
    // Unblock the agent side: drop the driver end.
    pair.driver = makeChannelPair().driver;
    agent.join();
}

// ---- Chaos: corrupted frame streams fail by name, never hang ----

TEST(TcpTransport, ChaosCorruptedFramesSettleWithNamedErrors)
{
    // Seeded fault injection on the agent->driver byte stream: one
    // frame gets a byte dropped, duplicated, or the stream is
    // truncated mid-frame and closed. Whatever the corruption, the
    // driver must settle in bounded time — a parse error or the
    // EOF surfaces the busy slot as a named Lost event; a
    // corruption that still parses surfaces as a normal event
    // first. Nothing may hang or die namelessly.
    Prng prng(0xc4a05c4a05ull);
    const std::string wires[] = {
        "@regate-net v1 case slot=0 done=1/2\n",
        "@regate-net v1 done slot=0 bytes=24 "
        "digest=0011223344556677\n",
        "@regate-net v1 fail slot=0 reason=\"signal 9 (Killed)\"\n",
    };
    for (int iter = 0; iter < 150; ++iter) {
        FakeAgent agent;
        auto transport = makeTransport(agent);
        transport->start(0, assignment(0));
        agent.drain();

        std::string wire = wires[prng.uniform(0, 2)];
        auto pos = static_cast<std::size_t>(
            prng.uniform(0, wire.size() - 1));
        switch (prng.uniform(0, 2)) {
          case 0:
            wire.erase(pos, 1);
            break;
          case 1:
            wire.insert(pos, 1, wire[pos]);
            break;
          default:
            wire.resize(pos);  // Truncate; EOF lands mid-frame.
            break;
        }
        agent.say(wire);
        agent.closeAgent();

        bool settled = false;
        for (int spin = 0; spin < 2000 && !settled; ++spin) {
            for (const auto &ev : transport->poll()) {
                if (ev.kind == TransportEvent::Kind::Lost) {
                    EXPECT_FALSE(ev.detail.empty())
                        << "nameless loss at iter " << iter;
                    settled = true;
                }
                if (ev.kind == TransportEvent::Kind::Finished)
                    settled = true;
            }
            if (!settled)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
        }
        EXPECT_TRUE(settled)
            << "iter " << iter << " corrupted wire never settled";
    }
}

}  // namespace
}  // namespace net
}  // namespace regate
