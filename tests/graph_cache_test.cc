/**
 * @file
 * Tests for the compiled-graph / whole-run caches (sim/graph_cache.h)
 * and the parallel SLO search: cache hits must be indistinguishable
 * from cold compiles/simulations, the new content-hash keys must be
 * collision-free across realistic setups, and parallel findBestSetup
 * must pick the exact winner the serial loop picks at any thread
 * count.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "sim/graph_cache.h"
#include "sim/slo.h"
#include "sim/sweep.h"

namespace regate {
namespace sim {
namespace {

using models::RunSetup;
using models::Workload;

/** Field-by-field equality of two operator graphs. */
void
expectGraphsIdentical(const graph::OperatorGraph &a,
                      const graph::OperatorGraph &b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const auto &ba = a.blocks[i];
        const auto &bb = b.blocks[i];
        EXPECT_EQ(ba.name, bb.name);
        EXPECT_EQ(ba.repeat, bb.repeat);
        ASSERT_EQ(ba.ops.size(), bb.ops.size());
        for (std::size_t j = 0; j < ba.ops.size(); ++j) {
            EXPECT_EQ(ba.ops[j].name, bb.ops[j].name);
            EXPECT_TRUE(ba.ops[j].sameWork(bb.ops[j]))
                << "op " << ba.ops[j].name << " differs";
        }
    }
}

/** Exact comparison of everything a figure reads out of a run. */
void
expectRunsIdentical(const WorkloadRun &a, const WorkloadRun &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.sramUsedIntegral, b.sramUsedIntegral);
    ASSERT_EQ(a.opRecords.size(), b.opRecords.size());
    for (std::size_t i = 0; i < a.opRecords.size(); ++i) {
        EXPECT_EQ(a.opRecords[i].duration(),
                  b.opRecords[i].duration());
        EXPECT_EQ(a.opRecords[i].dynamicJ(),
                  b.opRecords[i].dynamicJ());
    }
    for (auto p : allPolicies()) {
        const auto &ra = a.result(p);
        const auto &rb = b.result(p);
        EXPECT_EQ(ra.overheadCycles, rb.overheadCycles);
        EXPECT_EQ(ra.seconds, rb.seconds);
        EXPECT_EQ(ra.avgPowerW, rb.avgPowerW);
        EXPECT_EQ(ra.peakPowerW, rb.peakPowerW);
        EXPECT_EQ(ra.vuGateEvents, rb.vuGateEvents);
        EXPECT_EQ(ra.sramSetpmPairs, rb.sramSetpmPairs);
        EXPECT_EQ(0, std::memcmp(&ra.energy, &rb.energy,
                                 sizeof(ra.energy)))
            << "energy breakdown mismatch for " << policyName(p);
    }
}

TEST(CompiledGraphCache, HitIdenticalToColdCompile)
{
    CompiledGraphCache cache;
    for (auto w : {Workload::Decode13B, Workload::DlrmM,
                   Workload::Gligen}) {
        const auto gen = arch::NpuGeneration::D;
        auto setup = models::defaultSetup(w, gen);
        const auto &cfg = arch::npuConfig(gen);

        EXPECT_EQ(cache.lookup(w, setup, gen), nullptr);
        auto stored = cache.store(
            w, setup, gen,
            compiler::compileGraph(models::buildGraph(w, setup), cfg));
        auto hit = cache.lookup(w, setup, gen);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit.get(), stored.get());  // Same immutable entry.

        // A from-scratch compile matches the cached one field by
        // field (build + compile are deterministic).
        auto cold = compiler::compileGraph(
            models::buildGraph(w, setup), cfg);
        expectGraphsIdentical(hit->graph, cold.graph);
        EXPECT_EQ(hit->fusion.fusedOps, cold.fusion.fusedOps);
        EXPECT_EQ(hit->tiling.vuMappedGemms, cold.tiling.vuMappedGemms);
        EXPECT_EQ(hit->tiling.maxDemandBytes, cold.tiling.maxDemandBytes);
    }
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.hits(), 3u);
    EXPECT_EQ(cache.misses(), 3u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(CompiledGraphCache, DistinctKeysDoNotCollide)
{
    CompiledGraphCache cache;
    const auto w = Workload::Prefill13B;
    const auto gen = arch::NpuGeneration::D;
    auto setup = models::defaultSetup(w, gen);
    const auto &cfg = arch::npuConfig(gen);
    cache.store(w, setup, gen,
                compiler::compileGraph(models::buildGraph(w, setup),
                                       cfg));

    // Different workload, generation, or setup: all misses.
    EXPECT_EQ(cache.lookup(Workload::Decode13B, setup, gen), nullptr);
    EXPECT_EQ(cache.lookup(w, setup, arch::NpuGeneration::C), nullptr);
    RunSetup other = setup;
    other.batch *= 2;
    EXPECT_EQ(cache.lookup(w, other, gen), nullptr);
    other = setup;
    other.par.tp *= 2;
    EXPECT_EQ(cache.lookup(w, other, gen), nullptr);

    // A value-equal copy of the setup hits.
    RunSetup copy = setup;
    EXPECT_NE(cache.lookup(w, copy, gen), nullptr);
}

TEST(WorkloadMemo, WarmSimulateWorkloadBitwiseIdenticalToUncached)
{
    for (auto w : {Workload::Decode70B, Workload::DlrmL,
                   Workload::DiTXL}) {
        const auto gen = arch::NpuGeneration::D;
        // First call may be cold, second is a whole-run replay; the
        // uncached call rebuilds, recompiles, and resimulates from
        // scratch with no shared state.
        auto first = simulateWorkload(w, gen);
        auto warm = simulateWorkload(w, gen);
        auto independent = simulateWorkloadUncached(w, gen);
        expectRunsIdentical(first.run(), warm.run());
        expectRunsIdentical(warm.run(), independent.run());
        EXPECT_EQ(warm.units, independent.units);
    }
}

TEST(WorkloadMemo, RunCacheKeyedByGatingParams)
{
    const auto w = Workload::DlrmM;
    const auto gen = arch::NpuGeneration::D;
    arch::GatingParams scaled;
    scaled.setDelayScale(2.0);

    auto base = simulateWorkload(w, gen);
    auto alt = simulateWorkload(w, gen, scaled);
    // Different params must not replay each other's runs: the Base
    // policy pays the scaled wake-up delays directly, so its overhead
    // must differ between the two parameter sets.
    EXPECT_NE(base.run().result(Policy::Base).overheadCycles,
              alt.run().result(Policy::Base).overheadCycles);

    // And each stays self-consistent on replay.
    expectRunsIdentical(alt.run(), simulateWorkload(w, gen, scaled).run());
}

TEST(WorkloadMemo, ClearSharedCachesForcesColdRun)
{
    const auto w = Workload::Prefill8B;
    const auto gen = arch::NpuGeneration::B;
    simulateWorkload(w, gen);
    auto hits_before = sharedRunCache().hits();
    simulateWorkload(w, gen);
    EXPECT_GT(sharedRunCache().hits(), hits_before);

    clearSharedCaches();
    EXPECT_EQ(sharedRunCache().size(), 0u);
    EXPECT_EQ(sharedGraphCache().size(), 0u);
    auto misses_before = sharedRunCache().misses();
    auto rep = simulateWorkload(w, gen);
    EXPECT_GT(sharedRunCache().misses(), misses_before);
    EXPECT_GT(rep.run().cycles, 0u);
}

TEST(WorkloadMemo, WarmHitPerformsZeroRunCopies)
{
    const auto w = Workload::Decode13B;
    const auto gen = arch::NpuGeneration::D;
    clearSharedCaches();
    auto first = simulateWorkload(w, gen);  // Cold: fills the memo.
    ASSERT_NE(first.runShared(), nullptr);

    // The warm hit must be a pointer bump: zero WorkloadRun deep
    // copies, and the report aliases the cache's immutable entry.
    auto copies_before = WorkloadRun::copies();
    auto warm = simulateWorkload(w, gen);
    EXPECT_EQ(WorkloadRun::copies(), copies_before)
        << "warm simulateWorkload deep-copied the run";
    EXPECT_EQ(warm.runShared().get(), first.runShared().get());

    // Prove the counter observes real copies: one deliberate deep
    // copy bumps it by exactly one.
    WorkloadRun copied(first.run());
    EXPECT_EQ(WorkloadRun::copies(), copies_before + 1);
    EXPECT_EQ(copied.cycles, first.run().cycles);
    EXPECT_EQ(copied.opRecords.size(), first.run().opRecords.size());
}

TEST(WorkloadMemo, UncachedLeavesSharedCachesUntouched)
{
    const auto w = Workload::DlrmS;
    const auto gen = arch::NpuGeneration::C;
    clearSharedCaches();
    auto warm = simulateWorkload(w, gen);  // Populate shared caches.

    auto run_size = sharedRunCache().size();
    auto run_hits = sharedRunCache().hits();
    auto run_misses = sharedRunCache().misses();
    auto run_evictions = sharedRunCache().evictions();
    auto graph_size = sharedGraphCache().size();
    auto graph_hits = sharedGraphCache().hits();
    auto graph_misses = sharedGraphCache().misses();
    auto op_size = sharedOpCache(gen).size();
    ASSERT_GT(run_size, 0u);
    ASSERT_GT(op_size, 0u);

    // The independent path (fig16 validation) must not read from or
    // write to any shared cache — same results, untouched state.
    auto independent = simulateWorkloadUncached(w, gen);
    EXPECT_EQ(sharedRunCache().size(), run_size);
    EXPECT_EQ(sharedRunCache().hits(), run_hits);
    EXPECT_EQ(sharedRunCache().misses(), run_misses);
    EXPECT_EQ(sharedRunCache().evictions(), run_evictions);
    EXPECT_EQ(sharedGraphCache().size(), graph_size);
    EXPECT_EQ(sharedGraphCache().hits(), graph_hits);
    EXPECT_EQ(sharedGraphCache().misses(), graph_misses);
    EXPECT_EQ(sharedOpCache(gen).size(), op_size);
    expectRunsIdentical(warm.run(), independent.run());
}

TEST(WorkloadMemo, SharedCachesMirrorOntoMetricsRegistry)
{
    // Only the process-wide shared caches attach registry mirrors
    // (sim.run_cache.* / sim.graph_cache.*); private instances in
    // the tests above stay local, so the mirror deltas here must
    // track sharedRunCache()'s own counters move for move. The
    // fixture-free suite runs in one process, so measure deltas and
    // start from a clean registry slate (resetForTest keeps every
    // cached reference valid — that contract is what makes a reset
    // safe mid-process).
    auto &reg = obs::MetricsRegistry::instance();
    reg.resetForTest();
    clearSharedCaches();

    auto hits_before = sharedRunCache().hits();
    auto misses_before = sharedRunCache().misses();
    simulateWorkload(Workload::Prefill8B, arch::NpuGeneration::C);
    simulateWorkload(Workload::Prefill8B, arch::NpuGeneration::C);
    auto hit_delta = sharedRunCache().hits() - hits_before;
    auto miss_delta = sharedRunCache().misses() - misses_before;
    ASSERT_GT(hit_delta, 0u);
    ASSERT_GT(miss_delta, 0u);
    EXPECT_EQ(reg.counter("sim.run_cache.hits").value(), hit_delta);
    EXPECT_EQ(reg.counter("sim.run_cache.misses").value(),
              miss_delta);
    EXPECT_GT(reg.counter("sim.graph_cache.misses").value(), 0u);

    // The byte/entry gauges track the shared run cache's live state.
    EXPECT_EQ(
        static_cast<std::uint64_t>(
            reg.gauge("sim.run_cache.bytes").value()),
        sharedRunCache().totalBytes());
    EXPECT_EQ(static_cast<std::uint64_t>(
                  reg.gauge("sim.run_cache.entries").value()),
              sharedRunCache().size());

    // A private cache must not move the shared mirrors.
    auto mirrored_misses =
        reg.counter("sim.graph_cache.misses").value();
    CompiledGraphCache scratch;
    auto setup =
        models::defaultSetup(Workload::DlrmS, arch::NpuGeneration::D);
    EXPECT_EQ(scratch.lookup(Workload::DlrmS, setup,
                             arch::NpuGeneration::D),
              nullptr);
    EXPECT_GT(scratch.misses(), 0u);
    EXPECT_EQ(reg.counter("sim.graph_cache.misses").value(),
              mirrored_misses);
    reg.resetForTest();
}

TEST(EngineClearCaches, DropsMemoizedOperators)
{
    const auto w = Workload::Decode13B;
    const auto gen = arch::NpuGeneration::D;
    const auto &cfg = arch::npuConfig(gen);
    auto setup = models::defaultSetup(w, gen);
    auto compiled =
        compiler::compileGraph(models::buildGraph(w, setup), cfg);

    Engine engine(cfg);
    auto a = engine.run(compiled.graph, setup.chips);
    EXPECT_GT(engine.opCache().size(), 0u);

    engine.clearCaches();
    EXPECT_EQ(engine.opCache().size(), 0u);
    auto b = engine.run(compiled.graph, setup.chips);
    EXPECT_EQ(b.opCacheHits, a.opCacheHits);
    EXPECT_EQ(b.opCacheMisses, a.opCacheMisses);
    expectRunsIdentical(a, b);
}

// ---- Hash quality (mirrors workHash()/sameWork() coverage) ----

TEST(SetupHash, CopiesHashEqual)
{
    for (auto w : models::allWorkloads()) {
        auto setup = models::defaultSetup(w, arch::NpuGeneration::D);
        RunSetup copy = setup;
        EXPECT_TRUE(setup == copy);
        EXPECT_EQ(setup.contentHash(), copy.contentHash());
    }
}

TEST(SetupHash, DistinctSetupsHashDistinct)
{
    // Collect every candidate setup the SLO search explores across
    // all workloads and generations — a realistic key population —
    // and require zero hash collisions between value-distinct setups.
    std::vector<RunSetup> setups;
    for (auto w : models::allWorkloads()) {
        for (auto gen : arch::allGenerations()) {
            for (const auto &s : candidateSetups(w, gen))
                setups.push_back(s);
        }
    }
    ASSERT_GT(setups.size(), 100u);
    for (std::size_t i = 0; i < setups.size(); ++i) {
        for (std::size_t j = i + 1; j < setups.size(); ++j) {
            if (setups[i] == setups[j]) {
                EXPECT_EQ(setups[i].contentHash(),
                          setups[j].contentHash());
            } else {
                EXPECT_NE(setups[i].contentHash(),
                          setups[j].contentHash())
                    << "collision between distinct setups " << i
                    << " and " << j;
            }
        }
    }
}

TEST(SetupHash, EveryFieldContributes)
{
    RunSetup base;
    base.chips = 8;
    base.batch = 64;
    base.par = {2, 2, 2};

    auto perturbed = [&](auto mutate) {
        RunSetup s = base;
        mutate(s);
        EXPECT_FALSE(s == base);
        EXPECT_NE(s.contentHash(), base.contentHash());
    };
    perturbed([](RunSetup &s) { s.chips = 16; });
    perturbed([](RunSetup &s) { s.batch = 128; });
    perturbed([](RunSetup &s) { s.par.dp = 4; });
    perturbed([](RunSetup &s) { s.par.tp = 4; });
    perturbed([](RunSetup &s) { s.par.pp = 4; });
}

TEST(ParamsHash, CopiesEqualDistinctDiffer)
{
    arch::GatingParams a;
    arch::GatingParams b;
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.contentHash(), b.contentHash());

    arch::GatingParams scaled;
    scaled.setDelayScale(2.0);
    EXPECT_FALSE(a == scaled);
    EXPECT_NE(a.contentHash(), scaled.contentHash());

    arch::LeakageRatios r;
    r.logicOff = 0.2;
    arch::GatingParams leaky(r);
    EXPECT_FALSE(a == leaky);
    EXPECT_NE(a.contentHash(), leaky.contentHash());
}

// ---- Parallel SLO search determinism ----

TEST(ParallelFindBestSetup, MatchesSerialAtEveryThreadCount)
{
    // REGATE_THREADS only sizes the default pool, so passing explicit
    // pools of 1/2/8 workers exercises exactly the configurations
    // REGATE_THREADS=1,2,8 would produce.
    for (auto w : {Workload::DlrmS, Workload::Prefill13B,
                   Workload::Decode8B}) {
        for (auto gen :
             {arch::NpuGeneration::A, arch::NpuGeneration::D}) {
            auto serial = findBestSetupSerial(w, gen);
            for (unsigned threads : {1u, 2u, 8u}) {
                // Drop the shared memos so the parallel search
                // genuinely simulates its candidates concurrently
                // instead of replaying the serial pass's cached runs.
                clearSharedCaches();
                ThreadPool pool(threads);
                auto par = findBestSetup(w, gen, {}, &pool);
                EXPECT_TRUE(par.setup == serial.setup)
                    << models::workloadName(w) << " threads="
                    << threads;
                EXPECT_EQ(par.secondsPerUnit, serial.secondsPerUnit);
                EXPECT_EQ(par.energyPerUnit, serial.energyPerUnit);
                EXPECT_EQ(par.sloRatio, serial.sloRatio);
                expectRunsIdentical(par.report.run(),
                                    serial.report.run());
            }
        }
    }
}

TEST(ParallelFindBestSetup, DefaultPoolMatchesSerial)
{
    auto serial = findBestSetupSerial(Workload::DlrmM,
                                      arch::NpuGeneration::C);
    clearSharedCaches();  // Force the parallel pass to re-simulate.
    auto par = findBestSetup(Workload::DlrmM, arch::NpuGeneration::C);
    EXPECT_TRUE(par.setup == serial.setup);
    EXPECT_EQ(par.energyPerUnit, serial.energyPerUnit);
    EXPECT_EQ(par.sloRatio, serial.sloRatio);
}

TEST(RunCacheLru, EvictsLeastRecentlyUsedWithinByteBudget)
{
    auto rep = simulateWorkload(Workload::DlrmS,
                                arch::NpuGeneration::D);
    auto setup = rep.setup;
    std::size_t bytes = WorkloadRunCache::entryBytes(rep.run());
    EXPECT_GT(bytes, sizeof(WorkloadRun));

    // Four keys (distinct delay scales), one identical payload each,
    // so every entry charges the same byte count and the LRU order
    // is the only thing deciding who survives a budget of two.
    auto paramsFor = [](double scale) {
        arch::GatingParams p;
        p.setDelayScale(scale);
        return p;
    };
    WorkloadRunCache cache(2 * bytes + bytes / 2);
    for (double scale : {1.0, 2.0, 3.0})
        cache.store(Workload::DlrmS, setup, arch::NpuGeneration::D,
                    paramsFor(scale), rep.run());
    // Budget fits two: storing the third evicted scale 1.0.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_LE(cache.totalBytes(), cache.byteBudget());
    EXPECT_EQ(cache.lookup(Workload::DlrmS, setup,
                           arch::NpuGeneration::D, paramsFor(1.0)),
              nullptr);

    // Touch scale 2.0, then store a fourth entry: 3.0 is now the
    // least recently used and must be the one to go.
    EXPECT_NE(cache.lookup(Workload::DlrmS, setup,
                           arch::NpuGeneration::D, paramsFor(2.0)),
              nullptr);
    cache.store(Workload::DlrmS, setup, arch::NpuGeneration::D,
                paramsFor(4.0), rep.run());
    EXPECT_NE(cache.lookup(Workload::DlrmS, setup,
                           arch::NpuGeneration::D, paramsFor(2.0)),
              nullptr);
    EXPECT_EQ(cache.lookup(Workload::DlrmS, setup,
                           arch::NpuGeneration::D, paramsFor(3.0)),
              nullptr);

    // An entry bigger than the whole budget still survives its own
    // store (the cache never evicts the most recent entry).
    cache.setByteBudget(1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCacheLru, EvictionPreservesResultCorrectness)
{
    auto grid = makeGrid({Workload::Prefill8B, Workload::Decode8B,
                          Workload::DlrmS, Workload::DiTXL},
                         {arch::NpuGeneration::D});
    clearSharedCaches();
    auto reference = SweepRunner::runSerial(grid);

    // Shrink the shared run memo to a single entry's worth of bytes:
    // every grid point now evicts its predecessor, so the sweep
    // below constantly re-simulates — and must not change a bit.
    std::size_t old_budget = sharedRunCache().byteBudget();
    sharedRunCache().setByteBudget(1);
    clearSharedCaches();
    SweepRunner runner(2);
    auto thrashed = runner.run(grid);
    auto again = runner.run(grid);  // Warm pass under eviction.
    EXPECT_LE(sharedRunCache().size(), 1u);
    EXPECT_GT(sharedRunCache().evictions(), 0u);
    sharedRunCache().setByteBudget(old_budget);

    ASSERT_EQ(thrashed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        expectRunsIdentical(thrashed[i].run(), reference[i].run());
        expectRunsIdentical(again[i].run(), reference[i].run());
        EXPECT_EQ(thrashed[i].units, reference[i].units);
    }
}

}  // namespace
}  // namespace sim
}  // namespace regate
