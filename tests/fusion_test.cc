/**
 * @file
 * Tests for the operator-fusion pass.
 */

#include <gtest/gtest.h>

#include "compiler/fusion.h"
#include "common/units.h"

namespace regate {
namespace compiler {
namespace {

using graph::Block;
using graph::Operator;
using graph::OperatorGraph;
using graph::OpKind;

OperatorGraph
matmulReluGraph(double relu_traffic)
{
    OperatorGraph g;
    g.name = "mm-relu";
    Block b;
    b.name = "b";
    b.repeat = 2;

    Operator mm;
    mm.kind = OpKind::MatMul;
    mm.name = "mm";
    mm.m = mm.k = mm.n = 128;
    mm.hbmReadBytes = 1e6;
    b.ops.push_back(mm);

    Operator relu;
    relu.kind = OpKind::Elementwise;
    relu.name = "relu";
    relu.vuOps = 128 * 128;
    relu.hbmReadBytes = relu_traffic / 2;
    relu.hbmWriteBytes = relu_traffic / 2;
    b.ops.push_back(relu);

    g.blocks.push_back(b);
    return g;
}

TEST(Fusion, FusesElementwiseIntoMatmul)
{
    auto g = matmulReluGraph(1e6);
    auto stats = fuseGraph(g, units::MiB(128));
    EXPECT_EQ(stats.fusedOps, 2u);  // Block repeat counts.
    EXPECT_DOUBLE_EQ(stats.hbmBytesSaved, 2e6);
    EXPECT_TRUE(g.blocks[0].ops[1].fusedIntoPrev);
    EXPECT_DOUBLE_EQ(g.blocks[0].ops[1].hbmBytes(), 0.0);
    // VU work preserved: fusion removes traffic, not compute.
    EXPECT_GT(g.blocks[0].ops[1].vuOps, 0.0);
}

TEST(Fusion, SkipsWhenWorkingSetTooLarge)
{
    auto g = matmulReluGraph(1e6);
    auto stats = fuseGraph(g, /*sram_bytes=*/1000);
    EXPECT_EQ(stats.fusedOps, 0u);
    EXPECT_FALSE(g.blocks[0].ops[1].fusedIntoPrev);
}

TEST(Fusion, CollectiveBreaksChain)
{
    OperatorGraph g;
    g.name = "coll-chain";
    Block b;
    b.name = "b";
    Operator coll;
    coll.kind = OpKind::Collective;
    coll.name = "ar";
    coll.coll = graph::CollKind::AllReduce;
    coll.collBytes = 100;
    b.ops.push_back(coll);
    Operator relu;
    relu.kind = OpKind::Elementwise;
    relu.name = "relu";
    relu.vuOps = 10;
    relu.hbmReadBytes = 100;
    b.ops.push_back(relu);
    g.blocks.push_back(b);

    auto stats = fuseGraph(g, units::MiB(128));
    EXPECT_EQ(stats.fusedOps, 0u);
}

TEST(Fusion, ChainsOfVectorOpsFuse)
{
    OperatorGraph g;
    g.name = "chain";
    Block b;
    b.name = "b";
    for (int i = 0; i < 4; ++i) {
        Operator op;
        op.kind = i == 0 ? OpKind::MatMul : OpKind::Elementwise;
        op.name = "op" + std::to_string(i);
        if (i == 0) {
            op.m = op.k = op.n = 64;
        } else {
            op.vuOps = 100;
            op.hbmReadBytes = 50;
        }
        b.ops.push_back(op);
    }
    g.blocks.push_back(b);
    auto stats = fuseGraph(g, units::MiB(128));
    EXPECT_EQ(stats.fusedOps, 3u);
}

TEST(Fusion, FirstOpNeverFuses)
{
    OperatorGraph g;
    g.name = "first";
    Block b;
    b.name = "b";
    Operator relu;
    relu.kind = OpKind::Elementwise;
    relu.name = "relu";
    relu.vuOps = 10;
    relu.hbmReadBytes = 100;
    b.ops.push_back(relu);
    g.blocks.push_back(b);
    auto stats = fuseGraph(g, units::MiB(128));
    EXPECT_EQ(stats.fusedOps, 0u);
    EXPECT_FALSE(g.blocks[0].ops[0].fusedIntoPrev);
}

}  // namespace
}  // namespace compiler
}  // namespace regate
