/**
 * @file
 * Property tests over the policy stack, parameterized across the
 * paper's workloads: energy ordering (Ideal >= Full >= HW >= Base >=
 * 0 vs NoPG), overhead bounds, and breakdown consistency.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>

#include "sim/report.h"

namespace regate {
namespace sim {
namespace {

using arch::Component;
using arch::NpuGeneration;
using models::Workload;

class WorkloadSweep : public ::testing::TestWithParam<Workload>
{
  protected:
    static const WorkloadRun &
    run(Workload w)
    {
        static std::map<Workload, WorkloadReport> cache;
        auto it = cache.find(w);
        if (it == cache.end()) {
            it = cache.emplace(w, simulateWorkload(w, NpuGeneration::D))
                     .first;
        }
        return it->second.run();
    }
};

TEST_P(WorkloadSweep, SavingsOrdering)
{
    const auto &r = run(GetParam());
    EXPECT_GE(r.savingVsNoPg(Policy::Base), 0.0);
    EXPECT_GE(r.savingVsNoPg(Policy::HW),
              r.savingVsNoPg(Policy::Base) - 1e-9);
    EXPECT_GE(r.savingVsNoPg(Policy::Full),
              r.savingVsNoPg(Policy::HW) - 1e-9);
    EXPECT_GE(r.savingVsNoPg(Policy::Ideal),
              r.savingVsNoPg(Policy::Full) - 1e-9);
    EXPECT_LT(r.savingVsNoPg(Policy::Ideal), 0.6);
}

TEST_P(WorkloadSweep, FullSavingsInPaperBallpark)
{
    // Paper: 8.5%-32.8% across the suite; we allow a wider envelope
    // since the substrate differs, but every workload must save
    // meaningfully and none implausibly much.
    const auto &r = run(GetParam());
    EXPECT_GT(r.savingVsNoPg(Policy::Full), 0.05);
    EXPECT_LT(r.savingVsNoPg(Policy::Full), 0.45);
}

TEST_P(WorkloadSweep, FullNearIdeal)
{
    // §6.2: ReGate-Full is within a fraction of a percent of Ideal.
    const auto &r = run(GetParam());
    EXPECT_LT(r.savingVsNoPg(Policy::Ideal) -
                  r.savingVsNoPg(Policy::Full),
              0.03);
}

TEST_P(WorkloadSweep, OverheadBounds)
{
    // Fig. 19: Base <= ~5%, HW < ~1%, Full <= 0.5%.
    const auto &r = run(GetParam());
    EXPECT_LE(r.result(Policy::Base).perfOverhead, 0.05);
    EXPECT_LE(r.result(Policy::HW).perfOverhead, 0.01);
    EXPECT_LE(r.result(Policy::Full).perfOverhead, 0.005);
}

TEST_P(WorkloadSweep, StaticShareInPaperBand)
{
    // §3: when the chip is busy, static power is 30%-72% of energy.
    const auto &r = run(GetParam());
    double share = r.result(Policy::NoPG).energy.staticShareBusy();
    EXPECT_GE(share, 0.30);
    EXPECT_LE(share, 0.78);
}

TEST_P(WorkloadSweep, EnergyBreakdownConsistent)
{
    const auto &r = run(GetParam());
    for (auto p : allPolicies()) {
        const auto &e = r.result(p).energy;
        for (auto c : arch::kAllComponents) {
            EXPECT_GE(e.staticJ[c], 0.0) << arch::componentName(c);
            EXPECT_GE(e.dynamicJ[c], 0.0) << arch::componentName(c);
        }
        EXPECT_GT(e.busyTotal(), 0.0);
    }
}

TEST_P(WorkloadSweep, UtilizationsAreFractions)
{
    const auto &r = run(GetParam());
    for (auto c : arch::kAllComponents) {
        double u = r.temporalUtil(c);
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    EXPECT_GE(r.saSpatialUtil(), 0.0);
    EXPECT_LE(r.saSpatialUtil(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweep,
    ::testing::ValuesIn(models::allWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &info) {
        std::string name = models::workloadName(info.param);
        for (auto &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

// ---- Cross-workload shape checks (Fig. 4/8/17) ----

TEST(PolicyShape, DlrmSavesMost)
{
    auto dlrm = simulateWorkload(Workload::DlrmL, NpuGeneration::D);
    auto prefill =
        simulateWorkload(Workload::Prefill8B, NpuGeneration::D);
    EXPECT_GT(dlrm.run().savingVsNoPg(Policy::Full),
              prefill.run().savingVsNoPg(Policy::Full));
}

TEST(PolicyShape, PrefillSaUtilHigherThanDlrm)
{
    auto dlrm = simulateWorkload(Workload::DlrmL, NpuGeneration::D);
    auto prefill =
        simulateWorkload(Workload::Prefill8B, NpuGeneration::D);
    EXPECT_GT(prefill.run().temporalUtil(Component::Sa), 0.7);
    EXPECT_LT(dlrm.run().temporalUtil(Component::Sa), 0.3);
}

TEST(PolicyShape, DlrmIsIciHeavy)
{
    auto dlrm = simulateWorkload(Workload::DlrmL, NpuGeneration::D);
    EXPECT_GT(dlrm.run().temporalUtil(Component::Ici),
              dlrm.run().temporalUtil(Component::Sa));
}

TEST(PolicyShape, DecodeMapsSmallGemmsToVu)
{
    auto decode = simulateWorkload(Workload::Decode8B,
                                   NpuGeneration::D);
    // Single-chip, batch-8 decode: SA unused (Fig. 4 pattern).
    EXPECT_LT(decode.run().temporalUtil(Component::Sa), 0.05);
    EXPECT_GT(decode.run().temporalUtil(Component::Hbm), 0.9);
}

TEST(PolicyShape, SpatialUtilPrefillVsDiffusion)
{
    auto prefill = simulateWorkload(Workload::Prefill70B,
                                    NpuGeneration::D);
    auto gligen = simulateWorkload(Workload::Gligen,
                                   NpuGeneration::D);
    // Fig. 5: prefill ~0.9+, GLIGEN ~0.5 (head sizes < SA width).
    EXPECT_GT(prefill.run().saSpatialUtil(), 0.85);
    EXPECT_LT(gligen.run().saSpatialUtil(), 0.7);
}

}  // namespace
}  // namespace sim
}  // namespace regate
