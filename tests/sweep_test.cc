/**
 * @file
 * Tests for the parallel sweep subsystem and operator memoization:
 * the thread pool, deterministic ordered fan-out, cached vs uncached
 * engine equivalence (bitwise), and parallel vs serial sweep
 * equivalence (bitwise).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "common/thread_pool.h"
#include "compiler/compiler.h"
#include "sim/sweep.h"

namespace regate {
namespace sim {
namespace {

TEST(ThreadPool, RunsAllTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submit([i, &ran] {
            ++ran;
            return i * i;
        }));
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PropagatesExceptions)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw ConfigError("boom"); });
    EXPECT_THROW(fut.get(), ConfigError);
}

TEST(ParallelMapOrdered, PreservesInputOrder)
{
    ThreadPool pool(8);
    std::vector<int> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(i);
    auto out = parallelMapOrdered(pool, items,
                                  [](int v) { return 3 * v + 1; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * static_cast<int>(i) + 1);
}

/** Exact comparison of everything a figure reads out of a run. */
void
expectRunsIdentical(const WorkloadRun &a, const WorkloadRun &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.sramUsedIntegral, b.sramUsedIntegral);
    for (auto c : arch::kAllComponents)
        EXPECT_TRUE(a.timeline[c] == b.timeline[c])
            << "timeline mismatch for " << arch::componentName(c);
    for (auto p : allPolicies()) {
        const auto &ra = a.result(p);
        const auto &rb = b.result(p);
        EXPECT_EQ(ra.overheadCycles, rb.overheadCycles);
        EXPECT_EQ(ra.seconds, rb.seconds);
        EXPECT_EQ(ra.perfOverhead, rb.perfOverhead);
        EXPECT_EQ(ra.avgPowerW, rb.avgPowerW);
        EXPECT_EQ(ra.peakPowerW, rb.peakPowerW);
        EXPECT_EQ(ra.vuGateEvents, rb.vuGateEvents);
        EXPECT_EQ(ra.sramSetpmPairs, rb.sramSetpmPairs);
        EXPECT_EQ(0, std::memcmp(&ra.energy, &rb.energy,
                                 sizeof(ra.energy)))
            << "energy breakdown mismatch for " << policyName(p);
    }
}

TEST(OpMemoization, CachedRunBitwiseIdenticalToUncached)
{
    for (auto w : {models::Workload::Decode13B,
                   models::Workload::DlrmM,
                   models::Workload::DiTXL}) {
        const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
        auto setup = models::defaultSetup(w, arch::NpuGeneration::D);
        auto compiled = compiler::compileGraph(
            models::buildGraph(w, setup), cfg);

        Engine cached(cfg);
        Engine uncached(cfg);
        uncached.setMemoization(false);

        auto a = cached.run(compiled.graph, setup.chips);
        auto b = uncached.run(compiled.graph, setup.chips);
        expectRunsIdentical(a, b);
        EXPECT_EQ(b.opCacheHits, 0u);
        EXPECT_EQ(b.opCacheMisses, 0u);
        EXPECT_EQ(a.opCacheHits + a.opCacheMisses,
                  static_cast<std::uint64_t>([&] {
                      std::size_t n = 0;
                      for (const auto &blk : compiled.graph.blocks)
                          n += blk.ops.size();
                      return n;
                  }()));

        // A warm re-run hits for every op and stays identical.
        auto c = cached.run(compiled.graph, setup.chips);
        EXPECT_EQ(c.opCacheMisses, 0u);
        EXPECT_GT(c.opCacheHits, 0u);
        expectRunsIdentical(a, c);
    }
}

TEST(OpMemoization, CacheKeyedByPodSize)
{
    // The same collective op on different pod sizes must not share a
    // cache entry: collective latency depends on the torus.
    const auto w = models::Workload::Train70B;
    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    auto setup = models::defaultSetup(w, arch::NpuGeneration::D);
    auto compiled =
        compiler::compileGraph(models::buildGraph(w, setup), cfg);

    Engine engine(cfg);
    auto small = engine.run(compiled.graph, setup.chips);
    auto large = engine.run(compiled.graph, setup.chips * 4);
    // Same engine (same cache): the collective-heavy run must differ.
    EXPECT_NE(small.cycles, large.cycles);

    Engine fresh(cfg);
    fresh.setMemoization(false);
    auto ref = fresh.run(compiled.graph, setup.chips * 4);
    expectRunsIdentical(large, ref);
}

TEST(SweepRunner, ParallelBitwiseIdenticalToSerial)
{
    auto grid = makeGrid({models::Workload::Prefill8B,
                          models::Workload::Decode8B,
                          models::Workload::DlrmS,
                          models::Workload::DiTXL},
                         {arch::NpuGeneration::B,
                          arch::NpuGeneration::D});
    ASSERT_EQ(grid.size(), 8u);

    auto serial = SweepRunner::runSerial(grid);
    // Clear every shared cache (operator, compiled-graph, whole-run)
    // so the parallel pass recomputes every simulation instead of
    // replaying the serial pass's cached results — a genuinely
    // independent comparison.
    clearSharedCaches();
    SweepRunner runner(4);
    auto parallel = runner.run(grid);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].gen, parallel[i].gen);
        EXPECT_EQ(serial[i].units, parallel[i].units);
        expectRunsIdentical(serial[i].run(), parallel[i].run());
    }

    // Re-running the sweep (warm shared cache) stays identical too.
    auto again = runner.run(grid);
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectRunsIdentical(serial[i].run(), again[i].run());
}

TEST(SweepRunner, SearchMatchesSerialSearch)
{
    auto grid = makeGrid({models::Workload::DlrmS},
                         {arch::NpuGeneration::C,
                          arch::NpuGeneration::D});
    SweepRunner runner(2);
    auto results = runner.search(grid);
    ASSERT_EQ(results.size(), 2u);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        auto ref = findBestSetup(grid[i].workload, grid[i].gen,
                                 grid[i].params);
        EXPECT_EQ(results[i].setup.chips, ref.setup.chips);
        EXPECT_EQ(results[i].setup.batch, ref.setup.batch);
        EXPECT_EQ(results[i].secondsPerUnit, ref.secondsPerUnit);
        EXPECT_EQ(results[i].energyPerUnit, ref.energyPerUnit);
        EXPECT_EQ(results[i].sloRatio, ref.sloRatio);
    }
}

TEST(OperatorHash, SameWorkIgnoresNameButNotShape)
{
    graph::Operator a;
    a.kind = graph::OpKind::MatMul;
    a.name = "mm1";
    a.batch = 2;
    a.m = 128;
    a.k = 256;
    a.n = 512;
    graph::Operator b = a;
    b.name = "mm2";
    EXPECT_TRUE(a.sameWork(b));
    EXPECT_EQ(a.workHash(), b.workHash());

    b.n = 513;
    EXPECT_FALSE(a.sameWork(b));
    b = a;
    b.mapToVu = true;
    EXPECT_FALSE(a.sameWork(b));
    b = a;
    b.sramDemandBytes = 4096;
    EXPECT_FALSE(a.sameWork(b));
}

}  // namespace
}  // namespace sim
}  // namespace regate
